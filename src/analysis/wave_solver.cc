#include "mvee/analysis/wave_solver.h"

#include <algorithm>
#include <utility>

namespace mvee {

namespace {

// Union-find with path halving. Union keeps `a`'s root as representative so
// the caller can merge per-node state into a predictable side.
class UnionFind {
 public:
  explicit UnionFind(int32_t count) : parent_(count) {
    for (int32_t i = 0; i < count; ++i) {
      parent_[i] = i;
    }
  }

  int32_t Find(int32_t node) {
    while (parent_[node] != node) {
      parent_[node] = parent_[parent_[node]];
      node = parent_[node];
    }
    return node;
  }

  int32_t Union(int32_t a, int32_t b) {
    const int32_t root_a = Find(a);
    const int32_t root_b = Find(b);
    if (root_a != root_b) {
      parent_[root_b] = root_a;
    }
    return root_a;
  }

 private:
  std::vector<int32_t> parent_;
};

// Iterative Tarjan over the representative copy graph. Emits strongly
// connected components in reverse topological order (every component is
// emitted after all components it has edges into).
class TarjanScc {
 public:
  TarjanScc(const std::vector<std::vector<int32_t>>& succ, UnionFind& uf)
      : succ_(succ), uf_(uf) {
    const size_t n = succ.size();
    index_.assign(n, -1);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, 0);
  }

  // Components, each a list of representative node ids, in emission order.
  std::vector<std::vector<int32_t>> Run(const std::vector<int32_t>& roots) {
    for (int32_t root : roots) {
      if (index_[root] == -1) {
        Visit(root);
      }
    }
    return std::move(components_);
  }

 private:
  struct Frame {
    int32_t node;
    size_t next_child;
  };

  void Visit(int32_t start) {
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    Begin(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int32_t node = frame.node;
      bool descended = false;
      while (frame.next_child < succ_[node].size()) {
        const int32_t target = uf_.Find(succ_[node][frame.next_child++]);
        if (target == node) {
          continue;  // Self loop (collapsed cycle remnant).
        }
        if (index_[target] == -1) {
          Begin(target);
          frames.push_back({target, 0});
          descended = true;
          break;
        }
        if (on_stack_[target]) {
          lowlink_[node] = std::min(lowlink_[node], index_[target]);
        }
      }
      if (descended) {
        continue;
      }
      // node is finished: pop a component if it is a root.
      if (lowlink_[node] == index_[node]) {
        std::vector<int32_t> component;
        for (;;) {
          const int32_t member = stack_.back();
          stack_.pop_back();
          on_stack_[member] = 0;
          component.push_back(member);
          if (member == node) {
            break;
          }
        }
        components_.push_back(std::move(component));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().node] =
            std::min(lowlink_[frames.back().node], lowlink_[node]);
      }
    }
  }

  void Begin(int32_t node) {
    index_[node] = lowlink_[node] = next_index_++;
    stack_.push_back(node);
    on_stack_[node] = 1;
  }

  const std::vector<std::vector<int32_t>>& succ_;
  UnionFind& uf_;
  std::vector<int32_t> index_;
  std::vector<int32_t> lowlink_;
  std::vector<uint8_t> on_stack_;
  std::vector<int32_t> stack_;
  std::vector<std::vector<int32_t>> components_;
  int32_t next_index_ = 0;
};

}  // namespace

WaveSolution SolveWave(const MirModule& module, const ConstraintProgram& program) {
  const int32_t n = program.reg_count;
  WaveSolution solution;
  AnalysisStats& stats = solution.stats;
  stats.solver = "andersen-wave";
  stats.constraints =
      program.addr_of.size() + program.copies.size() + program.indirect_calls.size();
  stats.call_edges_resolved = program.direct_call_edges;

  UnionFind uf(n);
  std::vector<SparseBitmap> pts(n);
  // prev[r]: the frontier node r has already pushed to its successors.
  // Difference propagation moves only pts[r] - prev[r] per wave.
  std::vector<SparseBitmap> prev(n);
  std::vector<std::vector<int32_t>> succ(n);

  for (const auto& [dst, object] : program.addr_of) {
    if (dst >= 0 && dst < n && object >= 0) {
      pts[dst].Insert(static_cast<uint32_t>(object));
    }
  }
  for (const auto& [dst, src] : program.copies) {
    if (dst >= 0 && dst < n && src >= 0 && src < n && dst != src) {
      succ[src].push_back(dst);
      ++stats.copy_edges;
    }
  }

  // Per indirect call site: the callee set already lowered to edges.
  std::vector<SparseBitmap> resolved(program.indirect_calls.size());
  std::vector<std::pair<int32_t, int32_t>> new_edges;

  for (;;) {
    // --- Phase 1: normalize successor lists on live representatives. ---
    std::vector<int32_t> live;
    live.reserve(static_cast<size_t>(n));
    for (int32_t r = 0; r < n; ++r) {
      if (uf.Find(r) != r) {
        continue;
      }
      live.push_back(r);
      auto& edges = succ[r];
      for (int32_t& target : edges) {
        target = uf.Find(target);
      }
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
      edges.erase(std::remove(edges.begin(), edges.end(), r), edges.end());
    }

    // --- Phase 2: online cycle detection — SCCs of the copy graph. ---
    TarjanScc tarjan(succ, uf);
    const std::vector<std::vector<int32_t>> components = tarjan.Run(live);

    // --- Phase 3: collapse multi-node components. ---
    for (const auto& component : components) {
      if (component.size() < 2) {
        continue;
      }
      const int32_t rep = component.front();
      for (size_t i = 1; i < component.size(); ++i) {
        const int32_t member = component[i];
        uf.Union(rep, member);
        pts[rep].UnionWith(pts[member]);
        pts[member] = SparseBitmap();
        // prev is per-successor-set state; the merged node has the union of
        // everyone's successors, to which no single member has pushed its
        // whole frontier. Reset so the next wave re-pushes everything once.
        prev[member] = SparseBitmap();
        auto& merged_edges = succ[rep];
        merged_edges.insert(merged_edges.end(), succ[member].begin(), succ[member].end());
        succ[member].clear();
        succ[member].shrink_to_fit();
      }
      prev[rep] = SparseBitmap();
      stats.sccs_collapsed += component.size() - 1;
    }

    // --- Phase 4: one topological wave of difference propagation. ---
    // Components arrive in reverse topological order; walk them backwards so
    // every node pushes before its successors pull, making one pass reach
    // the fixpoint for the current graph.
    bool propagated = false;
    for (auto it = components.rbegin(); it != components.rend(); ++it) {
      // Phase 3 only unions within a component, so front() is the live
      // representative of every component, singleton or collapsed.
      const int32_t rep = uf.Find(it->front());
      ++stats.solver_iterations;
      SparseBitmap delta;
      prev[rep].UnionWithDelta(pts[rep], &delta);
      if (delta.Empty()) {
        continue;
      }
      propagated = true;
      for (int32_t raw_target : succ[rep]) {
        const int32_t target = uf.Find(raw_target);
        if (target != rep) {
          pts[target].UnionWith(delta);
        }
      }
    }

    // --- Phase 5: on-the-fly call graph — resolve indirect calls. ---
    bool grew = false;
    for (size_t site = 0; site < program.indirect_calls.size(); ++site) {
      const IndirectCallConstraint& call = program.indirect_calls[site];
      if (call.fptr < 0 || call.fptr >= n) {
        continue;
      }
      pts[uf.Find(call.fptr)].ForEach([&](uint32_t object) {
        if (object >= program.object_function.size()) {
          return;
        }
        const int32_t callee = program.object_function[object];
        if (callee < 0 || !resolved[site].Insert(static_cast<uint32_t>(callee))) {
          return;
        }
        ++stats.call_edges_resolved;
        new_edges.clear();
        AppendCallCopies(module, callee, call.dst, call.args, &new_edges);
        for (const auto& [dst, src] : new_edges) {
          if (dst < 0 || dst >= n || src < 0 || src >= n) {
            continue;
          }
          const int32_t src_rep = uf.Find(src);
          const int32_t dst_rep = uf.Find(dst);
          if (src_rep == dst_rep) {
            continue;
          }
          succ[src_rep].push_back(dst_rep);
          ++stats.copy_edges;
          // src may already have pushed its frontier; seed the new edge with
          // the full current set so nothing is lost, then let waves carry
          // future growth.
          pts[dst_rep].UnionWith(pts[src_rep]);
          grew = true;
        }
      });
    }

    if (!propagated && !grew) {
      break;
    }
  }

  solution.rep.resize(n);
  for (int32_t r = 0; r < n; ++r) {
    solution.rep[r] = uf.Find(r);
    if (solution.rep[r] == r) {
      stats.points_to_bytes += pts[r].MemoryBytes();
    }
  }
  solution.pts = std::move(pts);
  return solution;
}

}  // namespace mvee
