#include "mvee/analysis/constraints.h"

#include <algorithm>

namespace mvee {

size_t AppendCallCopies(const MirModule& module, int32_t callee_function, int32_t call_dst,
                        const std::vector<int32_t>& args,
                        std::vector<std::pair<int32_t, int32_t>>* out) {
  if (callee_function < 0 || static_cast<size_t>(callee_function) >= module.functions.size()) {
    return 0;
  }
  const MirFunction& callee = module.functions[callee_function];
  size_t appended = 0;
  const size_t bound = std::min(args.size(), callee.params.size());
  for (size_t i = 0; i < bound; ++i) {
    if (args[i] >= 0) {
      out->emplace_back(callee.params[i], args[i]);
      ++appended;
    }
  }
  if (call_dst >= 0 && callee.return_reg >= 0) {
    out->emplace_back(call_dst, callee.return_reg);
    ++appended;
  }
  return appended;
}

ConstraintProgram BuildConstraintProgram(const MirModule& module) {
  ConstraintProgram program;
  program.reg_count = module.register_count;
  program.object_function.reserve(module.objects.size());
  for (const MirObject& object : module.objects) {
    program.object_function.push_back(object.function_index);
  }

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc:
          program.addr_of.emplace_back(inst.dst, inst.object);
          break;
        case MirOp::kMov:
        case MirOp::kGep:
          program.copies.emplace_back(inst.dst, inst.src);
          break;
        case MirOp::kCall: {
          // Static callee: lower parameter/return flow to copy edges now.
          const int32_t callee = (inst.object >= 0 &&
                                  static_cast<size_t>(inst.object) < module.objects.size())
                                     ? module.objects[inst.object].function_index
                                     : -1;
          if (callee >= 0) {
            ++program.direct_call_edges;
          }
          AppendCallCopies(module, callee, inst.dst, inst.args, &program.copies);
          break;
        }
        case MirOp::kIndirectCall:
          program.indirect_calls.push_back({inst.ptr, inst.dst, inst.args});
          break;
        default:
          break;
      }
    }
  }
  return program;
}

}  // namespace mvee
