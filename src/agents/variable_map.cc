#include "mvee/agents/variable_map.h"

#include "mvee/util/hash.h"
#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

constexpr size_t kProbeLimit = 64;
// Address-table slots per possible entry. The tables stay this sparse (a
// plan binds one address per entry per variant) so probes terminate fast.
constexpr size_t kTableSlotsPerEntry = 8;

// 8-byte bucketing, same rationale as WoC/PVO (adjacent 32-bit halves of one
// 64-bit line are one sync variable); +1 keeps the null bucket distinct from
// the empty-slot sentinel 0.
uint64_t BucketKey(const void* addr) {
  return (reinterpret_cast<uint64_t>(addr) >> 3) + 1;
}

}  // namespace

VariableAgentMap::Entry::Entry(std::string entry_name, AgentKind kind,
                               const AgentConfig& config)
    : name(std::move(entry_name)),
      seeded_kind(kind),
      route(MakeRoute(kind, RouteState::kActive, 0)),
      inflight(config.max_threads),
      recorded(config.max_threads),
      replayed(config.num_variants > 0 ? config.num_variants - 1 : 0) {
  for (auto& per_variant : replayed) {
    per_variant = std::vector<PaddedCount>(config.max_threads);
  }
}

VariableAgentMap::VariableAgentMap(const AgentConfig& config, AgentKind default_kind,
                                   AgentControl control)
    : config_(ValidatedAgentConfig(config)),
      control_(std::move(control)),
      default_entry_(std::make_unique<Entry>("", default_kind, config_)) {
  size_t capacity = 2;
  while (capacity < kMaxEntries * kTableSlotsPerEntry) {
    capacity <<= 1;
  }
  table_mask_ = capacity - 1;
  tables_ = std::vector<Table>(config_.num_variants);
  for (auto& table : tables_) {
    table.keys = std::vector<std::atomic<uint64_t>>(capacity);
    table.values = std::vector<std::atomic<Entry*>>(capacity);
  }
}

VariableAgentMap::~VariableAgentMap() {
  const size_t count = entry_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    delete entries_[i].load(std::memory_order_relaxed);
  }
}

VariableAgentMap::Entry* VariableAgentMap::EntryFor(const std::string& name,
                                                    AgentKind kind) {
  std::lock_guard<std::mutex> lock(register_mutex_);
  const size_t count = entry_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    Entry* entry = entries_[i].load(std::memory_order_relaxed);
    if (entry->name == name) {
      return entry;
    }
  }
  if (count >= kMaxEntries) {
    return nullptr;  // Fail closed: the variable keeps the default route.
  }
  auto* entry = new Entry(name, kind, config_);
  // Publish the pointer before the count: a lock-free reader that observes
  // the new count is guaranteed to see the pointer.
  entries_[count].store(entry, std::memory_order_release);
  entry_count_.store(count + 1, std::memory_order_release);
  return entry;
}

VariableAgentMap::Entry* VariableAgentMap::FindByName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  const size_t count = entry_count_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    Entry* entry = entries_[i].load(std::memory_order_relaxed);
    if (entry->name == name) {
      return entry;
    }
  }
  return nullptr;
}

bool VariableAgentMap::Bind(uint32_t variant, const void* addr, Entry* entry) {
  if (entry == nullptr || variant >= tables_.size()) {
    return false;
  }
  const uint64_t key = BucketKey(addr);
  std::lock_guard<std::mutex> lock(register_mutex_);
  Table& table = tables_[variant];
  // Keep the table at most half full so the hot-path probe below always
  // terminates well inside kProbeLimit.
  if (table.inserts >= (table_mask_ + 1) / 2) {
    return false;
  }
  uint64_t index = ClockAddressHash(key) & table_mask_;
  for (size_t probe = 0; probe < kProbeLimit; ++probe) {
    const uint64_t current = table.keys[index].load(std::memory_order_relaxed);
    if (current == key) {
      // Re-binding the same address: a no-op if it already routes here,
      // a refused bind otherwise (routes are append-only; migration, not
      // re-binding, changes where a variable goes).
      return table.values[index].load(std::memory_order_relaxed) == entry;
    }
    if (current == 0) {
      // Value first (relaxed), then the key with release: a reader that
      // acquires the key is guaranteed to see the value. All writers are
      // serialized by register_mutex_, so plain stores suffice.
      table.values[index].store(entry, std::memory_order_relaxed);
      table.keys[index].store(key, std::memory_order_release);
      ++table.inserts;
      return true;
    }
    index = (index + 1) & table_mask_;
  }
  return false;
}

VariableAgentMap::Entry* VariableAgentMap::Find(uint32_t variant, const void* addr) const {
  // Nothing bound anywhere (the common single-agent-equivalent case): skip
  // the probe entirely.
  if (entry_count_.load(std::memory_order_acquire) == 0) {
    return default_entry_.get();
  }
  if (variant >= tables_.size()) {
    return default_entry_.get();
  }
  const uint64_t key = BucketKey(addr);
  const Table& table = tables_[variant];
  uint64_t index = ClockAddressHash(key) & table_mask_;
  for (size_t probe = 0; probe < kProbeLimit; ++probe) {
    const uint64_t current = table.keys[index].load(std::memory_order_acquire);
    if (current == key) {
      return table.values[index].load(std::memory_order_relaxed);
    }
    if (current == 0) {
      return default_entry_.get();
    }
    index = (index + 1) & table_mask_;
  }
  return default_entry_.get();
}

AgentKind VariableAgentMap::MasterEnter(Entry* entry, uint32_t tid) {
  auto& flag = entry->inflight[tid].value;
  SpinWait waiter;
  for (;;) {
    // The Dekker pair with Migrate's quiesce: flag published, THEN route
    // loaded, both seq_cst. Migrate publishes kQuiescing (seq_cst), THEN
    // scans the flags. In the seq_cst total order either our route load
    // sees the publish (we back off below), or it precedes the publish —
    // and then our flag store precedes the migrator's scan, which therefore
    // sees the flag up until MasterExit has made the op's record visible.
    flag.store(1, std::memory_order_seq_cst);
    const uint64_t word = entry->route.load(std::memory_order_seq_cst);
    if (RouteStateOf(word) == RouteState::kActive) [[likely]] {
      return RouteKind(word);
    }
    // Migration in flight: withdraw and wait for the flip (or the abort
    // path, which restores the old route — either way the route returns to
    // kActive, so this wait is bounded by migrate_timeout).
    flag.store(0, std::memory_order_release);
    if (control_.aborted()) {
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

void VariableAgentMap::MasterExit(Entry* entry, uint32_t tid) {
  auto& count = entry->recorded[tid].value;
  // Owner-written: only master thread tid bumps this. The release pairs with
  // the slave gate's acquire — a slave admitted on this count must also see
  // the sub-agent's published record. (The runtimes' own replay waits
  // publish/acquire their records too; this makes the gate self-sufficient.)
  count.store(count.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  // This release pairs with the quiesce scan's acquire: whoever observes the
  // flag cleared also sees the count (and the sub-agent's published record).
  entry->inflight[tid].value.store(0, std::memory_order_release);
}

AgentKind VariableAgentMap::SlaveEnter(Entry* entry, uint32_t variant, uint32_t tid) {
  // My op's ordinal on this entry (owner-read; bumped in SlaveExit).
  const uint64_t mine = entry->replayed[variant - 1][tid].value.load(std::memory_order_relaxed);
  SpinWait waiter;
  DeadlineGate deadline(config_.replay_deadline);
  for (;;) {
    const uint64_t word = entry->route.load(std::memory_order_acquire);
    // kNull routes are migration-frozen (Migrate refuses them), so the word's
    // kind is the kind for every ordinal — no need to chase the master.
    if (RouteKind(word) == AgentKind::kNull) [[unlikely]] {
      return AgentKind::kNull;
    }
    // Admission rule: wait until the MASTER has recorded this same ordinal,
    // then replay under the current word's kind. Proof that the word's kind
    // is ordinal `mine`'s record kind, in every state:
    //  - recorded[tid] > mine and the word unchanged across the read (epochs
    //    never repeat, so the re-load is ABA-free) pin `mine` below the NEXT
    //    migration's freeze point — recorded[tid] is stable from quiesce to
    //    flip, so any in-progress or later migration freezes at > mine and
    //    keeps ordinal `mine` on this side of its flip.
    //  - And `mine` is at or above the LAST flip's freeze point: that flip's
    //    drain waited for replayed[v][tid] to reach it, and our replayed
    //    count still is `mine` — so the master recorded ordinal `mine` after
    //    the last flip, under the word's kind (induction across migrations:
    //    docs/DESIGN.md §11).
    // A slave ahead of the master parks HERE, never inside a runtime whose
    // stream the ordinal may yet migrate out of.
    if (entry->recorded[tid].value.load(std::memory_order_acquire) > mine &&
        entry->route.load(std::memory_order_acquire) == word) [[likely]] {
      return RouteKind(word);
    }
    if (control_.should_unwind(variant)) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      if (control_.on_stall) {
        control_.on_stall("adaptive replay stall (variable '" + entry->name + "', variant " +
                          std::to_string(variant) + " tid " + std::to_string(tid) +
                          " waiting for master ordinal " + std::to_string(mine) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

void VariableAgentMap::SlaveExit(Entry* entry, uint32_t variant, uint32_t tid) {
  auto& count = entry->replayed[variant - 1][tid].value;
  // Owner-written; the release pairs with the drain loop's acquire, which
  // must see the replayed op's effects before flipping the route.
  count.store(count.load(std::memory_order_relaxed) + 1, std::memory_order_release);
}

bool VariableAgentMap::AbortMigration(Entry* entry, AgentKind from, uint64_t epoch,
                                      const char* phase) {
  (void)phase;
  // Restore the old route. Always safe before the flip: no op was admitted
  // under the new kind, so master and slaves are still consistently on
  // `from` — blocked masters and draining slaves simply resume.
  entry->route.store(MakeRoute(from, RouteState::kActive, epoch), std::memory_order_seq_cst);
  migrations_aborted_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool VariableAgentMap::Migrate(Entry* entry, AgentKind to) {
  // One migration at a time, map-wide. Serialization keeps the epoch
  // protocol's induction simple (docs/DESIGN.md §11) and migration is a
  // rare, controller-paced event.
  std::lock_guard<std::mutex> lock(migrate_mutex_);
  const uint64_t start = entry->route.load(std::memory_order_acquire);
  const AgentKind from = RouteKind(start);
  if (from == to) {
    return false;
  }
  // kNull routes are migration-frozen: the slave gate's kNull fast path does
  // not chase the master's recorded count (a null route has no records), so
  // a null-routed slave may run arbitrarily far ahead — a flip would strand
  // its already-replayed ordinals outside the new runtime's stream. The
  // controller never selects kNull entries anyway; this closes ForceMigrate.
  if (from == AgentKind::kNull || to == AgentKind::kNull) {
    return false;
  }
  uint64_t epoch = RouteEpoch(start);
  DeadlineGate deadline(config_.migrate_timeout);
  SpinWait waiter;

  // Phase 1 — quiesce the masters: publish kQuiescing (seq_cst half of the
  // Dekker pair, see MasterEnter), then wait for every inflight flag to read
  // 0 once. A flag that flickers 1 afterwards belongs to a master that will
  // observe kQuiescing and withdraw — it cannot record under `from`.
  entry->route.store(MakeRoute(from, RouteState::kQuiescing, ++epoch),
                     std::memory_order_seq_cst);
  for (uint32_t t = 0; t < config_.max_threads; ++t) {
    waiter.Reset();
    while (entry->inflight[t].value.load(std::memory_order_seq_cst) != 0) {
      if (control_.aborted() || deadline.Expired(waiter)) {
        return AbortMigration(entry, from, ++epoch, "quiesce");
      }
      waiter.Pause();
    }
  }

  // Phase 2 — snapshot the freeze point: recorded[t] is final for this epoch
  // (masters are quiesced and stay parked until the flip), and every counted
  // op's record is visible (the MasterExit release / scan acquire pairing).
  // Migration-local — the slave gate reads recorded[] directly.
  std::vector<uint64_t> frozen(config_.max_threads);
  for (uint32_t t = 0; t < config_.max_threads; ++t) {
    frozen[t] = entry->recorded[t].value.load(std::memory_order_acquire);
  }

  // Phase 3 — drain the slaves: publish kDraining (slaves below the freeze
  // point keep replaying under `from` — the gate admits them against
  // recorded[]), then wait until every live slave's per-thread replay count
  // reaches it. The flip-only-after-drain rule is what lets the slave gate
  // trust an active route word: see SlaveEnter.
  entry->route.store(MakeRoute(from, RouteState::kDraining, ++epoch),
                     std::memory_order_seq_cst);
  for (uint32_t v = 1; v < config_.num_variants; ++v) {
    for (uint32_t t = 0; t < config_.max_threads; ++t) {
      waiter.Reset();
      for (;;) {
        if ((detached_.load(std::memory_order_acquire) & (uint32_t{1} << v)) != 0 ||
            control_.variant_dead(v)) {
          break;  // Excised variants owe no replay.
        }
        if (entry->replayed[v - 1][t].value.load(std::memory_order_acquire) >= frozen[t]) {
          break;
        }
        if (control_.aborted() || deadline.Expired(waiter)) {
          return AbortMigration(entry, from, ++epoch, "drain");
        }
        waiter.Pause();
      }
    }
  }

  // Phase 4 — flip. The release ordering (inside seq_cst) makes the drained
  // state visible to every master/slave that acquires the new route word.
  entry->route.store(MakeRoute(to, RouteState::kActive, ++epoch),
                     std::memory_order_seq_cst);
  entry->migrations.fetch_add(1, std::memory_order_relaxed);
  migrations_done_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void VariableAgentMap::DetachVariant(uint32_t variant) {
  detached_.fetch_or(uint32_t{1} << variant, std::memory_order_acq_rel);
}

}  // namespace mvee
