// Intrusive refcounted base for virtual kernel objects.
//
// Every descriptor-reachable kernel object (VFile, VPipe, VListener,
// VConnection) derives from VObject and is held through VRef<T>. The seed
// kept four std::shared_ptr fields per fd entry — 64 bytes of mostly-null
// pointers, two atomic refcount bumps per copy, and a separate control block
// allocation per object. A VRef is one raw pointer; the refcount lives in
// the object itself, so an fd-table slot can publish a single VObject* that
// lock-free readers validate with the slot's generation tag (fd_table.h).

#ifndef MVEE_VKERNEL_VOBJECT_H_
#define MVEE_VKERNEL_VOBJECT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace mvee {

class WaitQueue;

class VObject {
 public:
  VObject() = default;
  VObject(const VObject&) = delete;
  VObject& operator=(const VObject&) = delete;
  virtual ~VObject() = default;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    // acq_rel: the deleting thread must observe every other thread's final
    // writes to the object (their Unrefs release, the last one acquires).
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }
  uint32_t RefCount() const { return refs_.load(std::memory_order_relaxed); }

  // The readiness queue sys_poll subscribes to, or nullptr for objects that
  // are always ready (regular files).
  virtual WaitQueue* waitq() { return nullptr; }

 private:
  std::atomic<uint32_t> refs_{1};  // Creator owns the initial reference.
};

// Intrusive smart pointer over VObject subclasses. Adopts (does not Ref) on
// raw-pointer construction — pair with `new T` or VObject::Ref'd pointers.
template <typename T>
class VRef {
 public:
  VRef() = default;
  VRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  // Adopts `adopted`: takes over one existing reference.
  explicit VRef(T* adopted) : ptr_(adopted) {}

  VRef(const VRef& other) : ptr_(other.ptr_) {
    if (ptr_ != nullptr) {
      ptr_->Ref();
    }
  }
  VRef(VRef&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }

  template <typename U>
  VRef(const VRef<U>& other) : ptr_(other.get()) {  // NOLINT: converting copy
    if (ptr_ != nullptr) {
      ptr_->Ref();
    }
  }

  VRef& operator=(const VRef& other) {
    VRef(other).Swap(*this);
    return *this;
  }
  VRef& operator=(VRef&& other) noexcept {
    VRef(std::move(other)).Swap(*this);
    return *this;
  }
  VRef& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  ~VRef() { Reset(); }

  void Reset() {
    if (ptr_ != nullptr) {
      ptr_->Unref();
      ptr_ = nullptr;
    }
  }

  // Releases ownership without dropping the reference.
  T* Release() {
    T* ptr = ptr_;
    ptr_ = nullptr;
    return ptr;
  }

  void Swap(VRef& other) { std::swap(ptr_, other.ptr_); }

  T* get() const { return ptr_; }
  T* operator->() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  friend bool operator==(const VRef& a, const VRef& b) { return a.ptr_ == b.ptr_; }
  friend bool operator==(const VRef& a, std::nullptr_t) { return a.ptr_ == nullptr; }
  friend bool operator==(std::nullptr_t, const VRef& a) { return a.ptr_ == nullptr; }
  friend bool operator!=(const VRef& a, const VRef& b) { return a.ptr_ != b.ptr_; }
  friend bool operator!=(const VRef& a, std::nullptr_t) { return a.ptr_ != nullptr; }

 private:
  T* ptr_ = nullptr;
};

// Shares an existing (alive) object: bumps the refcount.
template <typename T>
VRef<T> ShareVRef(T* alive) {
  if (alive != nullptr) {
    alive->Ref();
  }
  return VRef<T>(alive);
}

template <typename T, typename... Args>
VRef<T> MakeVRef(Args&&... args) {
  return VRef<T>(new T(std::forward<Args>(args)...));
}

}  // namespace mvee

#endif  // MVEE_VKERNEL_VOBJECT_H_
