// Static agent-assignment plan extraction (docs/DESIGN.md §11).
//
// This closes the loop ROADMAP item 3 calls for: the sync-op identification
// pipeline (§4.3, syncop_analysis.h) finds WHICH objects are sync variables;
// this pass decides which replication agent each of them should START on,
// from the same points-to facts — the SFIP-style pattern of ahead-of-time
// analysis feeding a cheap runtime mechanism. The derived AgentAssignmentPlan
// seeds AgentFleet's VariableAgentMap; the runtime controller then corrects
// any verdict the static model got wrong.
//
// Verdict ladder (first match wins), per sync object:
//   kAmbiguouslyAliased — some touching site may also touch ANOTHER sync
//       object (points-to sets overlap). Per-variable clocks keyed on the
//       master address would let the slave observe a different interleaving
//       than the master serialized; a strict-order agent (PO) is the sound
//       choice.
//   kThreadLocal — non-global storage whose every touching site sits in one
//       function: the MIR model's proxy for thread confinement (MIR has no
//       thread-creation edges; a stack/heap object used by a single function
//       is the analogue of an object that never escapes its creating
//       thread). Ordering it buys nothing — route kNull, record nothing.
//   kSharedHot — several RMW sites across several functions: the classic
//       hot lock/counter shape where WoC/PVO clock ping-pong costs more
//       than a strict order. Route kTotalOrder.
//   kUncontendedShared — everything else: genuinely shared but with no
//       static evidence of contention. Route kPerVariableOrder (private
//       clock, no false conflicts).

#ifndef MVEE_ANALYSIS_ASSIGNMENT_PLAN_H_
#define MVEE_ANALYSIS_ASSIGNMENT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mvee/agents/variable_map.h"
#include "mvee/analysis/mir.h"
#include "mvee/analysis/syncop_analysis.h"

namespace mvee {

enum class AssignmentVerdict : uint8_t {
  kThreadLocal = 0,
  kUncontendedShared,
  kSharedHot,
  kAmbiguouslyAliased,
};

const char* AssignmentVerdictName(AssignmentVerdict verdict);

// Per-sync-variable derivation result (the explainable row; the plan entry
// is its distilled (name, kind) pair).
struct VariableAssignment {
  std::string name;
  int32_t object = -1;
  AssignmentVerdict verdict = AssignmentVerdict::kUncontendedShared;
  AgentKind kind = AgentKind::kPerVariableOrder;
  size_t sites = 0;           // Touching memory-op sites.
  size_t rmw_sites = 0;       // ...of which LOCK-RMW / XCHG.
  size_t touching_functions = 0;
  bool aliased = false;
};

struct AssignmentPlanReport {
  std::vector<VariableAssignment> variables;
  // The distilled plan AgentFleet consumes.
  AgentAssignmentPlan plan;
};

struct AssignmentPlanOptions {
  // kNull routes skip record/replay entirely — the payoff of a thread-local
  // verdict, but also the most trust placed in the static model. Off maps
  // kThreadLocal to kPerVariableOrder instead (sound under any verdict).
  bool allow_null_routes = true;
  // Engine knobs for the Andersen run backing the plan (solver selection).
  AnalysisOptions analysis;
};

// Derives the plan from `module` using the Andersen points-to (the precise
// one — plan quality is exactly a precision question, §4.3.1) and the
// sync-variable set in `report` (produced by IdentifySyncOps*; pass the
// report whose precision you trust).
AssignmentPlanReport DeriveAssignmentPlan(const MirModule& module, const SyncOpReport& report,
                                          const AssignmentPlanOptions& options = {});

// Formats the report for logs: one "name verdict -> agent (sites/rmw/fns)"
// line per variable.
std::string FormatAssignmentPlan(const AssignmentPlanReport& report);

}  // namespace mvee

#endif  // MVEE_ANALYSIS_ASSIGNMENT_PLAN_H_
