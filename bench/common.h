// Shared helpers for the benchmark harnesses (one binary per paper table /
// figure — see docs/DESIGN.md §4).

#ifndef MVEE_BENCH_COMMON_H_
#define MVEE_BENCH_COMMON_H_

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/util/log.h"
#include "mvee/workloads/workload.h"

namespace mvee {
namespace bench {

// Scale factor for the workload volumes. The paper machine runs the full
// PARSEC/SPLASH inputs for minutes each; the harness defaults to a scale
// that finishes the full sweep in a few minutes on one core. Override with
// MVEE_BENCH_SCALE=0.05 etc.
inline double BenchScale(double fallback = 0.02) {
  if (const char* env = std::getenv("MVEE_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0) {
      return value;
    }
  }
  return fallback;
}

// Positive-integer knob from the environment (thread counts, iteration
// budgets); unset/zero/garbage falls back.
inline int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const int64_t value = std::atoll(env);
    if (value > 0) {
      return value;
    }
  }
  return fallback;
}

// Thread-safe sync-op counting agent for native rate measurements (Table 2).
class RateCountingAgent final : public SyncAgent {
 public:
  void BeforeSyncOp(uint32_t, const void*) override {}
  void AfterSyncOp(uint32_t, const void*) override {
    ops_.fetch_add(1, std::memory_order_relaxed);
  }
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "rate-counting"; }
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> ops_{0};
};

struct NativeRun {
  double seconds = 0.0;
  uint64_t syscalls = 0;
  uint64_t sync_ops = 0;
};

// Runs a workload natively (no MVEE) and reports wall time + rates.
inline NativeRun RunNative(const WorkloadConfig& config, double scale) {
  NativeRunner runner;
  RateCountingAgent agent;
  runner.set_agent(&agent);
  const auto start = std::chrono::steady_clock::now();
  runner.Run(MakeWorkloadProgram(config, scale));
  const auto end = std::chrono::steady_clock::now();
  NativeRun result;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  result.syscalls = runner.counters().total;
  result.sync_ops = agent.ops();
  return result;
}

struct MveeRun {
  double seconds = 0.0;
  bool ok = false;
  MveeReport report;
};

// Runs a workload under the MVEE with `variants` variants and `agent`.
inline MveeRun RunUnderMvee(const WorkloadConfig& config, double scale, uint32_t variants,
                            AgentKind agent) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = agent;
  options.enable_aslr = false;  // Matches the paper's performance runs (§5.1).
  // Generous for legitimate replay lag at bench scale, short enough that a
  // pathological agent stall (PO on the atomic-heavy stand-ins) does not
  // dominate the sweep's wall time.
  options.rendezvous_timeout = std::chrono::milliseconds(30000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
  options.agent_config.buffer_capacity = 1 << 16;
  Mvee mvee(options);
  MveeRun result;
  result.ok = mvee.Run(MakeWorkloadProgram(config, scale)).ok();
  result.report = mvee.report();
  result.seconds = result.report.wall_seconds;
  return result;
}

// --- Machine-readable output -----------------------------------------------
//
// Benches that measure per-agent throughput append AgentBenchResult records
// and flush them to BENCH_agents.json so the perf trajectory is diffable
// across commits (CI archives the file; regressions show up as rate drops).

struct AgentBenchResult {
  std::string kind;            // AgentKindName(...)
  std::string mode;            // e.g. "cached" / "uncached"
  double ops_per_sec = 0.0;    // master record-path sync ops per second
  uint64_t record_stalls = 0;
  uint64_t replay_stalls = 0;
};

// Where a machine-readable bench result file lands: the working directory by
// default, or MVEE_BENCH_JSON_DIR if set.
inline std::string ResolveBenchJsonPath(const std::string& filename) {
  if (const char* dir = std::getenv("MVEE_BENCH_JSON_DIR")) {
    return std::string(dir) + "/" + filename;
  }
  return filename;
}

// Writes `entries` as a JSON array to `path` (default: BENCH_agents.json in
// the working directory; override the directory with MVEE_BENCH_JSON_DIR).
inline void WriteAgentsJson(const std::vector<AgentBenchResult>& entries,
                            const std::string& filename = "BENCH_agents.json") {
  const std::string path = ResolveBenchJsonPath(filename);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "WriteAgentsJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"agents\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const AgentBenchResult& entry = entries[i];
    std::fprintf(file,
                 "    {\"kind\": \"%s\", \"mode\": \"%s\", \"ops_per_sec\": %.1f, "
                 "\"record_stalls\": %llu, \"replay_stalls\": %llu}%s\n",
                 entry.kind.c_str(), entry.mode.c_str(), entry.ops_per_sec,
                 static_cast<unsigned long long>(entry.record_stalls),
                 static_cast<unsigned long long>(entry.replay_stalls),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

// Appends `entries` to an existing BENCH_agents.json (splicing them into the
// "agents" array), so several bench binaries can contribute to one archived
// file. Falls back to WriteAgentsJson when the file is missing or does not
// end with the writer's "  ]\n}" footer.
inline void AppendAgentsJson(const std::vector<AgentBenchResult>& entries,
                             const std::string& filename = "BENCH_agents.json") {
  const std::string path = ResolveBenchJsonPath(filename);
  std::string existing;
  if (std::FILE* file = std::fopen(path.c_str(), "r")) {
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      existing.append(buffer, n);
    }
    std::fclose(file);
  }
  const size_t close = existing.rfind("\n  ]");
  if (close == std::string::npos) {
    WriteAgentsJson(entries, filename);
    return;
  }
  // Comma-separate from the previous entry unless the array is still empty
  // (the last non-whitespace character before the splice point is '[').
  size_t last = close;
  while (last > 0 && std::isspace(static_cast<unsigned char>(existing[last - 1]))) {
    --last;
  }
  const bool array_empty = last > 0 && existing[last - 1] == '[';
  std::string spliced;
  for (size_t i = 0; i < entries.size(); ++i) {
    const AgentBenchResult& entry = entries[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "%s\n    {\"kind\": \"%s\", \"mode\": \"%s\", \"ops_per_sec\": %.1f, "
                  "\"record_stalls\": %llu, \"replay_stalls\": %llu}",
                  (i == 0 && array_empty) ? "" : ",", entry.kind.c_str(), entry.mode.c_str(),
                  entry.ops_per_sec, static_cast<unsigned long long>(entry.record_stalls),
                  static_cast<unsigned long long>(entry.replay_stalls));
    spliced += line;
  }
  existing.insert(close, spliced);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "AppendAgentsJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fwrite(existing.data(), 1, existing.size(), file);
  std::fclose(file);
  std::printf("appended %zu entries to %s\n", entries.size(), path.c_str());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace mvee

#endif  // MVEE_BENCH_COMMON_H_
