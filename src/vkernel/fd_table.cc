#include "mvee/vkernel/fd_table.h"

#include <bit>
#include <cerrno>

#include "mvee/syscall/record.h"
#include "mvee/util/spin.h"

namespace mvee {

// --- FdTable::Ref ------------------------------------------------------------

// The kind licenses the downcast, so every kind-checked accessor reads the
// packed word ONCE: kind and pointer can never be paired across a connect's
// listener -> connection flip.
static_assert(alignof(VObject) >= 8, "low obj_kind bits must be free for the FdKind");
static_assert(static_cast<uintptr_t>(FdKind::kConnClient) <= 7, "FdKind must fit 3 bits");

FdTable::Ref& FdTable::Ref::operator=(Ref&& other) noexcept {
  if (this != &other) {
    Release();
    table_ = other.table_;
    slot_ = other.slot_;
    leased_ = other.leased_;
    other.table_ = nullptr;
    other.slot_ = nullptr;
    other.leased_ = false;
  }
  return *this;
}

FdTable::Ref::~Ref() { Release(); }

void FdTable::Ref::Release() {
  if (leased_) {
    slot_->state.fetch_sub(kReaderOne, std::memory_order_release);
  }
  table_ = nullptr;
  slot_ = nullptr;
  leased_ = false;
}

FdTable::Ref::ObjectView FdTable::Ref::view() const {
  const uintptr_t word = slot_->obj_kind.load(std::memory_order_acquire);
  return ObjectView{KindOf(word), ObjectOf(word)};
}

FdKind FdTable::Ref::kind() const {
  return KindOf(slot_->obj_kind.load(std::memory_order_acquire));
}

VObject* FdTable::Ref::object() const {
  return ObjectOf(slot_->obj_kind.load(std::memory_order_acquire));
}

VFile* FdTable::Ref::file() const {
  const uintptr_t word = slot_->obj_kind.load(std::memory_order_acquire);
  return KindOf(word) == FdKind::kFile ? static_cast<VFile*>(ObjectOf(word)) : nullptr;
}

VPipe* FdTable::Ref::pipe() const {
  const uintptr_t word = slot_->obj_kind.load(std::memory_order_acquire);
  const FdKind k = KindOf(word);
  return k == FdKind::kPipeRead || k == FdKind::kPipeWrite
             ? static_cast<VPipe*>(ObjectOf(word))
             : nullptr;
}

VListener* FdTable::Ref::listener() const {
  const uintptr_t word = slot_->obj_kind.load(std::memory_order_acquire);
  return KindOf(word) == FdKind::kListener ? static_cast<VListener*>(ObjectOf(word))
                                           : nullptr;
}

VConnection* FdTable::Ref::conn() const {
  const uintptr_t word = slot_->obj_kind.load(std::memory_order_acquire);
  const FdKind k = KindOf(word);
  return k == FdKind::kConnServer || k == FdKind::kConnClient
             ? static_cast<VConnection*>(ObjectOf(word))
             : nullptr;
}

VRef<VObject> FdTable::Ref::ShareObject(const ObjectView& view) const {
  return ShareVRef(view.object);
}

uint64_t FdTable::Ref::offset() const { return slot_->offset.load(std::memory_order_relaxed); }
void FdTable::Ref::set_offset(uint64_t offset) {
  slot_->offset.store(offset, std::memory_order_relaxed);
}
void FdTable::Ref::AdvanceOffset(uint64_t delta) {
  slot_->offset.fetch_add(delta, std::memory_order_relaxed);
}
int64_t FdTable::Ref::flags() const { return slot_->flags; }
uint16_t FdTable::Ref::port() const { return slot_->port.load(std::memory_order_relaxed); }
void FdTable::Ref::set_port(uint16_t port) {
  slot_->port.store(port, std::memory_order_relaxed);
}
uint32_t FdTable::Ref::order_domain() const { return slot_->order_domain; }
const std::string& FdTable::Ref::path() const { return slot_->path; }

void FdTable::Ref::InstallListener(VRef<VListener> listener) {
  // Common case: a bare socket (null object) becoming a listener; the slot
  // owns the reference until Close. The release exchange pairs with the
  // readers' acquire loads. A displaced non-null object (degenerate
  // re-listen) cannot be Unref'd here — a concurrent leased reader may
  // still hold its raw pointer — so it parks in the table's retired list.
  const uintptr_t desired = PackObjKind(listener.Release(), FdKind::kListener);
  const uintptr_t previous = slot_->obj_kind.exchange(desired, std::memory_order_acq_rel);
  if (ObjectOf(previous) != nullptr) {
    table_->RetireObject(ObjectOf(previous));
  }
}

void FdTable::Ref::PromoteToClientConn(VRef<VConnection> conn) {
  const uintptr_t desired = PackObjKind(conn.Release(), FdKind::kConnClient);
  const uintptr_t previous = slot_->obj_kind.exchange(desired, std::memory_order_acq_rel);
  if (ObjectOf(previous) != nullptr) {
    table_->RetireObject(ObjectOf(previous));
  }
}

void FdTable::Ref::LeakLease() {
  if (!leased_) {
    return;  // Baseline refs hold no lease; nothing to leak.
  }
  table_->RecordLeakedLease(slot_);
  leased_ = false;  // ~Ref will not release; the reader count stays elevated.
}

// --- FdTable -----------------------------------------------------------------

FdTable::FdTable(bool sharded)
    : sharded_(sharded), next_order_domain_(OrderDomainIds::kFirstFd) {
  stdout_file_ = MakeVRef<VFile>();

  FdEntry in;
  in.kind = FdKind::kFile;
  in.object = MakeVRef<VFile>();
  in.path = "<stdin>";
  FdEntry out;
  out.kind = FdKind::kFile;
  out.object = stdout_file_;
  out.path = "<stdout>";
  FdEntry err;
  err.kind = FdKind::kFile;
  err.object = MakeVRef<VFile>();
  err.path = "<stderr>";
  Allocate(std::move(in));
  Allocate(std::move(out));
  Allocate(std::move(err));
}

FdTable::~FdTable() {
  for (Slot& slot : slots_) {
    VObject* object = ObjectOf(slot.obj_kind.exchange(0, std::memory_order_relaxed));
    if (object != nullptr) {
      object->Unref();
    }
  }
  for (VObject* object : retired_) {
    object->Unref();
  }
}

void FdTable::RetireObject(VObject* object) {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  retired_.push_back(object);
}

void FdTable::RecordLeakedLease(Slot* slot) {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  leaked_leases_.push_back(slot);
}

size_t FdTable::ReleaseAbandonedLeases() {
  std::vector<Slot*> leaked;
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    leaked.swap(leaked_leases_);
  }
  for (Slot* slot : leaked) {
    // Same release a ~Ref would have performed; a Close spinning in its
    // reader drain observes the count reach zero and completes.
    slot->state.fetch_sub(kReaderOne, std::memory_order_release);
  }
  return leaked.size();
}

size_t FdTable::AbandonedLeaseCount() const {
  std::lock_guard<std::mutex> lock(retired_mutex_);
  return leaked_leases_.size();
}

int32_t FdTable::LowestFree() const {
  for (size_t word = 0; word < live_bitmap_.size(); ++word) {
    if (live_bitmap_[word] != ~uint64_t{0}) {
      const int bit = std::countr_one(live_bitmap_[word]);
      return static_cast<int32_t>(word * 64 + static_cast<size_t>(bit));
    }
  }
  return -1;
}

void FdTable::Publish(Slot& slot, FdEntry&& entry) {
  slot.obj_kind.store(PackObjKind(entry.object.Release(), entry.kind),
                      std::memory_order_relaxed);
  slot.offset.store(entry.offset, std::memory_order_relaxed);
  slot.port.store(entry.port, std::memory_order_relaxed);
  slot.flags = entry.flags;
  slot.path = std::move(entry.path);
  slot.order_domain = next_order_domain_++;
  // The release gen bump is the publication edge: a reader whose acquire RMW
  // observes the odd generation observes every plain field written above.
  slot.state.fetch_add(kGenOne, std::memory_order_release);
}

int32_t FdTable::Allocate(FdEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int32_t fd = LowestFree();
  if (fd < 0) {
    return -EMFILE;
  }
  live_bitmap_[static_cast<size_t>(fd) / 64] |= uint64_t{1} << (fd % 64);
  Publish(slots_[static_cast<size_t>(fd)], std::move(entry));
  return fd;
}

int32_t FdTable::Dup(int32_t fd) {
  // The duplicate has its own offset/flags state in this kernel (entries
  // are copied, not shared descriptions), so it gets its own ordering
  // domain (assigned by Publish).
  FdEntry copy;
  if (!sharded_) {
    // Baseline: copy under the table mutex — an unleased Ref would race a
    // concurrent Close's TearDown (the seed's Dup was fully locked too).
    // Allocate re-locks afterwards; dup is cold.
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd < 0 || fd >= kMaxFds) {
      return -EBADF;
    }
    Slot& slot = slots_[static_cast<size_t>(fd)];
    if (!LiveState(slot.state.load(std::memory_order_relaxed))) {
      return -EBADF;
    }
    const uintptr_t word = slot.obj_kind.load(std::memory_order_relaxed);
    copy.kind = KindOf(word);
    copy.object = ShareVRef(ObjectOf(word));
    copy.offset = slot.offset.load(std::memory_order_relaxed);
    copy.flags = slot.flags;
    copy.path = slot.path;
    copy.port = slot.port.load(std::memory_order_relaxed);
  } else {
    // Sharded: copy under the source's lease FIRST, then allocate — holding
    // a lease while taking the allocation mutex would deadlock against a
    // Close that holds the mutex while draining leases.
    Ref source = Get(fd);
    if (!source) {
      return -EBADF;
    }
    const Ref::ObjectView view = source.view();
    copy.kind = view.kind;
    copy.object = source.ShareObject(view);
    copy.offset = source.offset();
    copy.flags = source.flags();
    copy.path = source.path();
    copy.port = source.port();
  }
  return Allocate(std::move(copy));
}

FdTable::Ref FdTable::Get(int32_t fd) {
  if (fd < 0 || fd >= kMaxFds) {
    return Ref{};
  }
  Slot& slot = slots_[static_cast<size_t>(fd)];
  if (!sharded_) {
    // Baseline: the seed's one-global-mutex lookup cost, same pointer-until-
    // Close validity contract.
    std::lock_guard<std::mutex> lock(mutex_);
    if (!LiveState(slot.state.load(std::memory_order_relaxed))) {
      return Ref{};
    }
    return Ref{this, &slot, /*leased=*/false};
  }
  // Lock-free lease: one acquire RMW in, parity check, one release RMW out
  // (in ~Ref). A transient bump on a free slot never touches the payload.
  const uint64_t state = slot.state.fetch_add(kReaderOne, std::memory_order_acquire);
  if (!LiveState(state)) {
    slot.state.fetch_sub(kReaderOne, std::memory_order_release);
    return Ref{};
  }
  return Ref{this, &slot, /*leased=*/true};
}

void FdTable::TearDown(Slot& slot, uint64_t state_after_kill) {
  // Drain reader leases: the gen is already even, so no new lease succeeds;
  // transient failed-lookup bumps resolve in a few instructions.
  SpinWait waiter;
  uint64_t state = state_after_kill;
  while (ReadersOf(state) != 0) {
    waiter.Pause();
    state = slot.state.load(std::memory_order_acquire);
  }
  const uintptr_t word = slot.obj_kind.exchange(0, std::memory_order_relaxed);
  const FdKind kind = KindOf(word);
  VObject* object = ObjectOf(word);
  // Shadow entries in slave variants carry no kernel object; guard for null.
  if (object != nullptr) {
    switch (kind) {
      case FdKind::kPipeRead:
        static_cast<VPipe*>(object)->CloseReadEnd();
        break;
      case FdKind::kPipeWrite:
        static_cast<VPipe*>(object)->CloseWriteEnd();
        break;
      case FdKind::kConnServer:
        static_cast<VConnection*>(object)->CloseServerSide();
        break;
      case FdKind::kConnClient:
        static_cast<VConnection*>(object)->CloseClientSide();
        break;
      case FdKind::kListener:
        static_cast<VListener*>(object)->Close();
        break;
      default:
        break;
    }
    object->Unref();
  }
  slot.offset.store(0, std::memory_order_relaxed);
  slot.port.store(0, std::memory_order_relaxed);
  slot.flags = 0;
  slot.order_domain = 0;
  slot.path.clear();
}

int64_t FdTable::Close(int32_t fd) {
  if (fd < 0 || fd >= kMaxFds) {
    return -EBADF;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<size_t>(fd)];
  if (!LiveState(slot.state.load(std::memory_order_relaxed))) {
    return -EBADF;
  }
  // Kill: flip the generation so new lookups fail, then drain and reclaim.
  const uint64_t state = slot.state.fetch_add(kGenOne, std::memory_order_acq_rel) + kGenOne;
  TearDown(slot, state);
  live_bitmap_[static_cast<size_t>(fd) / 64] &= ~(uint64_t{1} << (fd % 64));
  return 0;
}

uint32_t FdTable::OrderDomainOf(int32_t fd) const {
  // const_cast: Get only manipulates the slot's atomic state word.
  Ref ref = const_cast<FdTable*>(this)->Get(fd);
  if (!ref) {
    return OrderDomainIds::kNone;
  }
  return ref.order_domain();
}

size_t FdTable::LiveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const uint64_t word : live_bitmap_) {
    live += static_cast<size_t>(std::popcount(word));
  }
  return live;
}

}  // namespace mvee
