#include "mvee/vkernel/vkernel.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "mvee/util/fault_injection.h"

namespace mvee {

namespace {

// Whence values for lseek.
constexpr int64_t kSeekSet = 0;
constexpr int64_t kSeekCur = 1;
constexpr int64_t kSeekEnd = 2;

SyscallResult Err(int64_t negative_errno) {
  SyscallResult result;
  result.retval = negative_errno;
  return result;
}

SyscallResult Ret(int64_t value) {
  SyscallResult result;
  result.retval = value;
  return result;
}

// Publishes the first `size` bytes of the caller's out buffer as the
// result's replication payload. With a pooled buffer (the monitor's round
// slab / loose record) the bytes are copied once into the recycled pool and
// the result carries a span into it — no per-call heap allocation. Without a
// pool (native runner, direct kernel calls) there is nobody to replicate to,
// so the result carries no payload.
void PublishPayload(const SyscallRequest& request, SyscallResult* result, size_t size) {
  if (request.payload_pool == nullptr || size == 0) {
    return;
  }
  request.payload_pool->Assign(request.out_data.data(), size);
  result->out_payload = request.payload_pool->view();
}

}  // namespace

VirtualKernel::VirtualKernel(uint64_t rng_seed, bool sharded)
    : sharded_(sharded),
      vfs_(sharded),
      network_(&wait_registry_),
      futexes_(sharded, &wait_registry_, &wait_registry_.stats()),
      rng_(rng_seed) {
  // One counted stream per logical tid: the sequence a thread set observes
  // depends only on (seed, tid, draw index) — scheduling-independent, and
  // never behind rng_mutex_.
  for (uint32_t i = 0; i < kRngStreams; ++i) {
    rng_streams_[i].rng.Seed(SplitMix64(rng_seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))));
  }
}

SyscallResult VirtualKernel::Execute(ProcessState& process, const SyscallRequest& request) {
  switch (request.sysno) {
    case Sysno::kOpen:
    case Sysno::kClose:
    case Sysno::kRead:
    case Sysno::kWrite:
    case Sysno::kPread:
    case Sysno::kPwrite:
    case Sysno::kLseek:
    case Sysno::kStat:
    case Sysno::kUnlink:
    case Sysno::kDup:
    case Sysno::kFcntl:
    case Sysno::kPipe:
      return ExecuteFile(process, request);

    case Sysno::kBrk:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
      return ExecuteMemory(process, request);

    case Sysno::kSocket:
    case Sysno::kBind:
    case Sysno::kListen:
    case Sysno::kAccept:
    case Sysno::kConnect:
    case Sysno::kSend:
    case Sysno::kRecv:
    case Sysno::kShutdown:
      return ExecuteNet(process, request);

    case Sysno::kPoll:
      return ExecutePoll(process, request);

    case Sysno::kGettimeofday:
    case Sysno::kClockGettime:
    case Sysno::kRdtsc:
    case Sysno::kNanosleep:
      return ExecuteTime(request);

    case Sysno::kFutex: {
      // Futex words are keyed by the master variant's own address
      // (local_addr): waits and wakes both come from master threads, so the
      // key never needs to be comparable across variants.
      if (request.arg0 == FutexOp::kWait) {
        return Ret(futexes_.Wait(request.local_addr, request.futex_word,
                                 static_cast<int32_t>(request.arg1)));
      }
      if (request.arg0 == FutexOp::kWake) {
        // Fault site (docs/fault_injection.md, drop-futex-wake): swallow the
        // wake. The targeted waiters stay queued — a genuine lost-wakeup
        // shape — until the watchdog's NudgeBlockedCalls issues a legal
        // spurious WakeAll.
        if (FaultInjector::Global().ShouldFire(FaultSite::kDropFutexWake,
                                              process.variant_index())) {
          return Ret(0);
        }
        return Ret(futexes_.Wake(request.local_addr, static_cast<int32_t>(request.arg1)));
      }
      return Err(-EINVAL);
    }

    case Sysno::kGetrandom:
      return ExecuteGetrandom(request);

    case Sysno::kSchedYield:
      std::this_thread::yield();
      return Ret(0);

    case Sysno::kGetpid:
      return Ret(process.pid());

    case Sysno::kGettid:
      // The runtime passes the logical thread id; identical across variants.
      return Ret(request.arg0);

    case Sysno::kClone:
      return Ret(process.NextTid());

    case Sysno::kExit:
    case Sysno::kExitGroup:
      return Ret(0);

    case Sysno::kMveeSelfAware:
    case Sysno::kMveeCheckpoint:
      // Non-existing kernel syscalls: the real kernel would return -ENOSYS;
      // the monitor intercepts them before they get here (paper §4.5).
      return Err(-ENOSYS);

    case Sysno::kCount:
      break;
  }
  return Err(-ENOSYS);
}

SyscallResult VirtualKernel::ExecuteGetrandom(const SyscallRequest& request) {
  SyscallResult result;
  if (sharded_ && request.tid < kRngStreams) {
    // Per-thread-set stream: no lock. The monitor's rendezvous admits one
    // in-flight call per thread set, so stream `tid` is never raced.
    Rng& rng = rng_streams_[request.tid].rng;
    for (auto& byte : request.out_data) {
      byte = static_cast<uint8_t>(rng.Next());
    }
  } else {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    for (auto& byte : request.out_data) {
      byte = static_cast<uint8_t>(rng_.Next());
    }
  }
  PublishPayload(request, &result, request.out_data.size());
  result.retval = static_cast<int64_t>(request.out_data.size());
  return result;
}

SyscallResult VirtualKernel::ExecuteFile(ProcessState& process, const SyscallRequest& request) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kOpen: {
      const bool create = (request.arg0 & VOpenFlags::kCreate) != 0;
      auto file = vfs_.Open(request.path, create);
      if (file == nullptr) {
        return Err(-ENOENT);
      }
      if ((request.arg0 & VOpenFlags::kTruncate) != 0) {
        file->Truncate();
      }
      FdEntry entry;
      entry.kind = FdKind::kFile;
      entry.offset = (request.arg0 & VOpenFlags::kAppend) != 0 ? file->Size() : 0;
      entry.object = std::move(file);
      entry.flags = request.arg0;
      entry.path = request.path;
      return Ret(fds.Allocate(std::move(entry)));
    }

    case Sysno::kClose:
      return Ret(fds.Close(static_cast<int32_t>(request.arg0)));

    case Sysno::kRead: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      // One snapshot of (kind, object): a concurrent connect() must not pair
      // a stale kind with a new object across two reads.
      const FdTable::Ref::ObjectView view = entry.view();
      if (view.object == nullptr) {
        return Err(-EBADF);
      }
      SyscallResult result;
      if (view.kind == FdKind::kFile) {
        auto* file = static_cast<VFile*>(view.object);
        result.retval =
            file->ReadAt(entry.offset(), request.out_data.data(), request.out_data.size());
        if (result.retval > 0) {
          entry.AdvanceOffset(static_cast<uint64_t>(result.retval));
        }
      } else if (view.kind == FdKind::kPipeRead) {
        // Blocking call: share the pipe out of the slot so the lease is not
        // held across the wait (a concurrent close must be able to drain).
        VRef<VObject> pipe = entry.ShareObject(view);
        entry = FdTable::Ref{};
        result.retval = static_cast<VPipe*>(pipe.get())
                            ->Read(request.out_data.data(), request.out_data.size());
      } else if (view.kind == FdKind::kConnServer) {
        VRef<VObject> conn = entry.ShareObject(view);
        entry = FdTable::Ref{};
        result.retval = static_cast<VConnection*>(conn.get())
                            ->ServerRead(request.out_data.data(), request.out_data.size());
      } else if (view.kind == FdKind::kConnClient) {
        VRef<VObject> conn = entry.ShareObject(view);
        entry = FdTable::Ref{};
        result.retval = static_cast<VConnection*>(conn.get())
                            ->ClientRead(request.out_data.data(), request.out_data.size());
      } else {
        return Err(-EBADF);
      }
      // Fault site (docs/fault_injection.md, leak-fd-lease): forget to
      // return the reader lease. A later Close of this fd wedges in its
      // drain until ReleaseAbandonedLeases repairs the count. No-op for the
      // blocking kinds above (their lease was already returned).
      if (FaultInjector::Global().ShouldFire(FaultSite::kLeakFdLease,
                                            process.variant_index())) {
        entry.LeakLease();
      }
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kWrite: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      const FdTable::Ref::ObjectView view = entry.view();
      if (view.object == nullptr) {
        return Err(-EBADF);
      }
      if (view.kind == FdKind::kFile) {
        auto* file = static_cast<VFile*>(view.object);
        const int64_t n =
            file->WriteAt(entry.offset(), request.in_data.data(), request.in_data.size());
        if (n > 0) {
          entry.AdvanceOffset(static_cast<uint64_t>(n));
        }
        return Ret(n);
      }
      if (view.kind == FdKind::kPipeWrite) {
        VRef<VObject> pipe = entry.ShareObject(view);
        entry = FdTable::Ref{};
        return Ret(static_cast<VPipe*>(pipe.get())
                       ->Write(request.in_data.data(), request.in_data.size()));
      }
      if (view.kind == FdKind::kConnServer) {
        VRef<VObject> conn = entry.ShareObject(view);
        entry = FdTable::Ref{};
        return Ret(static_cast<VConnection*>(conn.get())
                       ->ServerWrite(request.in_data.data(), request.in_data.size()));
      }
      if (view.kind == FdKind::kConnClient) {
        VRef<VObject> conn = entry.ShareObject(view);
        entry = FdTable::Ref{};
        return Ret(static_cast<VConnection*>(conn.get())
                       ->ClientWrite(request.in_data.data(), request.in_data.size()));
      }
      return Err(-EBADF);
    }

    case Sysno::kPread: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      VFile* file = entry.file();
      if (file == nullptr) {
        return Err(-EBADF);
      }
      SyscallResult result;
      result.retval = file->ReadAt(static_cast<uint64_t>(request.arg1),
                                   request.out_data.data(), request.out_data.size());
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kPwrite: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      VFile* file = entry.file();
      if (file == nullptr) {
        return Err(-EBADF);
      }
      return Ret(file->WriteAt(static_cast<uint64_t>(request.arg1),
                               request.in_data.data(), request.in_data.size()));
    }

    case Sysno::kLseek: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      VFile* file = entry.file();
      if (file == nullptr) {
        return Err(-EBADF);
      }
      int64_t base = 0;
      switch (request.arg2) {
        case kSeekSet:
          base = 0;
          break;
        case kSeekCur:
          base = static_cast<int64_t>(entry.offset());
          break;
        case kSeekEnd:
          base = static_cast<int64_t>(file->Size());
          break;
        default:
          return Err(-EINVAL);
      }
      const int64_t target = base + request.arg1;
      if (target < 0) {
        return Err(-EINVAL);
      }
      entry.set_offset(static_cast<uint64_t>(target));
      return Ret(target);
    }

    case Sysno::kStat: {
      VStat st;
      const int64_t rc = vfs_.Stat(request.path, &st);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(st.size));
    }

    case Sysno::kUnlink:
      return Ret(vfs_.Unlink(request.path));

    case Sysno::kDup:
      return Ret(fds.Dup(static_cast<int32_t>(request.arg0)));

    case Sysno::kFcntl: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      return Ret(entry.flags());
    }

    case Sysno::kPipe: {
      // The pipe registers itself in the wait registry (slot reuse, no
      // grow-forever side list) and is owned by its two descriptors.
      auto pipe = MakeVRef<VPipe>(/*capacity=*/size_t{65536}, &wait_registry_);
      FdEntry read_end;
      read_end.kind = FdKind::kPipeRead;
      read_end.object = pipe;
      FdEntry write_end;
      write_end.kind = FdKind::kPipeWrite;
      write_end.object = std::move(pipe);
      const int32_t rfd = fds.Allocate(std::move(read_end));
      if (rfd < 0) {
        return Err(rfd);
      }
      const int32_t wfd = fds.Allocate(std::move(write_end));
      if (wfd < 0) {
        fds.Close(rfd);  // Partial failure must not leak the read end.
        return Err(wfd);
      }
      return Ret(static_cast<int64_t>(rfd) | (static_cast<int64_t>(wfd) << 32));
    }

    default:
      return Err(-ENOSYS);
  }
}

SyscallResult VirtualKernel::ExecuteMemory(ProcessState& process, const SyscallRequest& request) {
  AddressSpace& mem = process.memory();
  switch (request.sysno) {
    case Sysno::kBrk: {
      uint64_t new_break = 0;
      const int64_t rc = mem.Brk(request.arg0, &new_break);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(new_break));
    }
    case Sysno::kMmap: {
      uint64_t addr = 0;
      const int64_t rc = mem.Mmap(static_cast<uint64_t>(request.arg0), request.arg1, &addr);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(addr));
    }
    case Sysno::kMunmap:
      return Ret(mem.Munmap(request.local_addr, static_cast<uint64_t>(request.arg1)));
    case Sysno::kMprotect:
      return Ret(mem.Mprotect(request.local_addr, static_cast<uint64_t>(request.arg1),
                              request.arg2));
    default:
      return Err(-ENOSYS);
  }
}

SyscallResult VirtualKernel::ExecuteNet(ProcessState& process, const SyscallRequest& request) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kSocket: {
      FdEntry entry;
      entry.kind = FdKind::kListener;  // Becomes a real listener at listen().
      return Ret(fds.Allocate(std::move(entry)));
    }

    case Sysno::kBind: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      entry.set_port(static_cast<uint16_t>(request.arg1));
      return Ret(0);
    }

    case Sysno::kListen: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      VRef<VListener> listener;
      const int64_t rc = network_.Listen(entry.port(), static_cast<int>(request.arg1),
                                         &listener);
      if (rc != 0) {
        return Err(rc);
      }
      entry.InstallListener(std::move(listener));
      return Ret(0);
    }

    case Sysno::kAccept: {
      // Direct-execution path (native runner, tests): same two halves the
      // monitor drives separately for ordering.
      int64_t error = 0;
      VRef<VConnection> conn =
          AcceptBlocking(process, static_cast<int32_t>(request.arg0), &error);
      if (conn == nullptr) {
        return Err(error);
      }
      return Ret(FinishAccept(process, std::move(conn)));
    }

    case Sysno::kConnect: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      auto conn = network_.Connect(static_cast<uint16_t>(request.arg1));
      if (conn == nullptr) {
        return Err(-ECONNREFUSED);
      }
      entry.PromoteToClientConn(std::move(conn));
      return Ret(0);
    }

    case Sysno::kSend: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      const FdTable::Ref::ObjectView view = entry.view();
      if (view.object == nullptr ||
          (view.kind != FdKind::kConnServer && view.kind != FdKind::kConnClient)) {
        return Err(-EBADF);
      }
      VRef<VObject> conn = entry.ShareObject(view);
      entry = FdTable::Ref{};  // Blocking call: do not hold the lease.
      auto* connection = static_cast<VConnection*>(conn.get());
      if (view.kind == FdKind::kConnServer) {
        return Ret(connection->ServerWrite(request.in_data.data(), request.in_data.size()));
      }
      return Ret(connection->ClientWrite(request.in_data.data(), request.in_data.size()));
    }

    case Sysno::kRecv: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      const FdTable::Ref::ObjectView view = entry.view();
      if (view.object == nullptr ||
          (view.kind != FdKind::kConnServer && view.kind != FdKind::kConnClient)) {
        return Err(-EBADF);
      }
      VRef<VObject> conn = entry.ShareObject(view);
      entry = FdTable::Ref{};  // Blocking call: do not hold the lease.
      auto* connection = static_cast<VConnection*>(conn.get());
      SyscallResult result;
      if (view.kind == FdKind::kConnServer) {
        result.retval = connection->ServerRead(request.out_data.data(), request.out_data.size());
      } else {
        result.retval = connection->ClientRead(request.out_data.data(), request.out_data.size());
      }
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kShutdown: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (!entry) {
        return Err(-EBADF);
      }
      const FdTable::Ref::ObjectView view = entry.view();
      if (view.object != nullptr &&
          (view.kind == FdKind::kConnServer || view.kind == FdKind::kConnClient)) {
        static_cast<VConnection*>(view.object)->CloseBoth();
      }
      if (view.object != nullptr && view.kind == FdKind::kListener) {
        network_.CloseListener(entry.port());
      }
      return Ret(0);
    }

    default:
      return Err(-ENOSYS);
  }
}

int64_t VirtualKernel::ScanPollSet(ProcessState& process, const SyscallRequest& request,
                                   uint8_t* revents_buf, size_t nfds, Waiter* waiter,
                                   std::vector<VRef<VObject>>* pinned) {
  FdTable& fds = process.fds();
  int64_t ready = 0;
  for (size_t i = 0; i < nfds; ++i) {
    int32_t fd = 0;
    std::memcpy(&fd, request.in_data.data() + i * 5, sizeof(fd));
    const uint8_t events = request.in_data[i * 5 + 4];
    uint8_t revents = 0;
    FdTable::Ref entry = fds.Get(fd);
    if (!entry) {
      revents = PollEvents::kHup;  // Invalid fd reported as hangup.
    } else {
      // One snapshot of (kind, object) drives both the subscription and the
      // readiness check — two reads could pair a stale kind with a new
      // object across a concurrent connect().
      const FdTable::Ref::ObjectView view = entry.view();
      // Subscribe BEFORE reading the object's state: a change published
      // after the scan then either predates the subscription fence or
      // signals the waiter (waitq.h protocol). The pinned VRef keeps the
      // object (and its queue) alive for the subscription's lifetime even
      // if the fd is closed/reused mid-poll.
      if (waiter != nullptr && view.object != nullptr && view.object->waitq() != nullptr) {
        waiter->Subscribe(view.object->waitq());
        pinned->push_back(entry.ShareObject(view));
      }
      switch (view.kind) {
        case FdKind::kFile:
          revents = static_cast<uint8_t>(events & (PollEvents::kIn | PollEvents::kOut));
          break;
        case FdKind::kPipeRead:
          if (auto* pipe = static_cast<VPipe*>(view.object);
              pipe != nullptr && (events & PollEvents::kIn) != 0 &&
              (pipe->BytesBuffered() > 0 || pipe->write_closed())) {
            revents |= PollEvents::kIn;
          }
          break;
        case FdKind::kPipeWrite:
          if ((events & PollEvents::kOut) != 0) {
            revents |= PollEvents::kOut;  // Bounded pipe: treat as writable.
          }
          break;
        case FdKind::kListener:
          if (auto* listener = static_cast<VListener*>(view.object);
              listener != nullptr && (events & PollEvents::kIn) != 0 &&
              listener->HasPending()) {
            revents |= PollEvents::kIn;
          }
          break;
        case FdKind::kConnServer:
          if (auto* conn = static_cast<VConnection*>(view.object); conn != nullptr) {
            if ((events & PollEvents::kIn) != 0 && conn->ServerReadable()) {
              revents |= PollEvents::kIn;
            }
            if ((events & PollEvents::kOut) != 0 && conn->ServerWritable()) {
              revents |= PollEvents::kOut;
            }
          }
          break;
        case FdKind::kConnClient:
          if (auto* conn = static_cast<VConnection*>(view.object); conn != nullptr) {
            if ((events & PollEvents::kIn) != 0 && conn->ClientReadable()) {
              revents |= PollEvents::kIn;
            }
            if ((events & PollEvents::kOut) != 0 && conn->ClientWritable()) {
              revents |= PollEvents::kOut;
            }
          }
          break;
        case FdKind::kFree:
          revents = PollEvents::kHup;
          break;
      }
    }
    revents_buf[i] = revents;
    ready += revents != 0 ? 1 : 0;
  }
  return ready;
}

// sys_poll over the virtual fd space. Request payload: nfds records of
// (int32 fd little-endian, uint8 events); arg0 = nfds, arg1 = timeout in
// milliseconds (<0 = wait indefinitely). Returns the number of fds with a
// non-zero revents byte in the replicated revents payload (one byte per
// fd, out_payload), 0 on timeout.
//
// Sharded mode: readiness is wait-queue-driven — the poller subscribes a
// Waiter to every waitable fd's queue and parks until one fires, so a pipe
// write wakes the poll immediately instead of after a sleep quantum. The
// legacy implementation (scan + 200us sleep) remains the measurable
// baseline.
SyscallResult VirtualKernel::ExecutePoll(ProcessState& process,
                                         const SyscallRequest& request) {
  if (!sharded_) {
    return ExecutePollLegacy(process, request);
  }
  const auto nfds = static_cast<size_t>(request.arg0);
  if (request.in_data.size() < nfds * 5) {
    return Err(-EINVAL);
  }
  const int64_t timeout_ms = request.arg1;
  const bool timed = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timed ? timeout_ms : 0);

  SyscallResult result;
  // Revents scratch: one byte per fd. The monitor's pooled buffer when
  // provided (the payload slaves replicate), a local fallback otherwise.
  std::vector<uint8_t> local_revents;
  uint8_t* revents_buf;
  if (request.payload_pool != nullptr) {
    revents_buf = request.payload_pool->Reserve(nfds);
  } else {
    local_revents.resize(nfds);
    revents_buf = local_revents.data();
  }

  // `pinned` outlives `waiter` (declared first => destroyed last): the
  // Waiter's destructor unsubscribes from the pinned objects' queues, so the
  // objects must still be alive at that point even if their fds were closed
  // mid-poll. The Waiter itself is constructed lazily: a poll whose first
  // scan is ready (the common event-loop case) must not touch the
  // process-wide registry at all.
  std::vector<VRef<VObject>> pinned;
  std::optional<Waiter> waiter;
  for (;;) {
    if (waiter.has_value()) {
      waiter->Prepare();
    }
    // Subscriptions survive across iterations (idempotent); the first scan
    // with a waiter establishes them, later scans only recheck state. An fd
    // re-pointed at a brand-new object mid-poll is picked up by the bounded
    // park slice.
    const bool subscribe = waiter.has_value() && pinned.empty();
    const int64_t ready =
        ScanPollSet(process, request, revents_buf, nfds, subscribe ? &*waiter : nullptr,
                    subscribe ? &pinned : nullptr);
    const bool timed_out = timed && std::chrono::steady_clock::now() >= deadline;
    if (ready > 0 || timeout_ms == 0 || timed_out || wait_registry_.shutdown()) {
      // Master-side delivery: revents go straight into the caller's buffer;
      // the monitor replicates result.out_payload to the slaves.
      if (!request.out_data.empty()) {
        const size_t count = std::min(nfds, request.out_data.size());
        std::copy(revents_buf, revents_buf + count, request.out_data.begin());
      }
      if (request.payload_pool != nullptr) {
        result.out_payload = request.payload_pool->view();
      }
      result.retval = ready;
      return result;
    }
    if (!waiter.has_value()) {
      // Not ready: arm the waiter and rescan — the subscription must precede
      // the scan whose verdict licenses the park (waitq.h protocol).
      waiter.emplace(&wait_registry_);
      continue;
    }
    waiter->Wait(deadline, timed);
  }
}

// The seed's polled implementation, kept as the in-run baseline: scan, sleep
// a 200us quantum, scan again.
SyscallResult VirtualKernel::ExecutePollLegacy(ProcessState& process,
                                               const SyscallRequest& request) {
  const auto nfds = static_cast<size_t>(request.arg0);
  if (request.in_data.size() < nfds * 5) {
    return Err(-EINVAL);
  }
  const int64_t timeout_ms = request.arg1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);

  SyscallResult result;
  std::vector<uint8_t> local_revents;
  uint8_t* revents_buf;
  if (request.payload_pool != nullptr) {
    revents_buf = request.payload_pool->Reserve(nfds);
  } else {
    local_revents.resize(nfds);
    revents_buf = local_revents.data();
  }
  for (;;) {
    const int64_t ready = ScanPollSet(process, request, revents_buf, nfds,
                                      /*waiter=*/nullptr, /*pinned=*/nullptr);
    const bool timed_out =
        timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline;
    if (ready > 0 || timeout_ms == 0 || timed_out || wait_registry_.shutdown()) {
      if (!request.out_data.empty()) {
        const size_t count = std::min(nfds, request.out_data.size());
        std::copy(revents_buf, revents_buf + count, request.out_data.begin());
      }
      if (request.payload_pool != nullptr) {
        result.out_payload = request.payload_pool->view();
      }
      result.retval = timed_out && ready == 0 ? 0 : ready;
      return result;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

SyscallResult VirtualKernel::ExecuteTime(const SyscallRequest& request) {
  switch (request.sysno) {
    case Sysno::kGettimeofday:
      return Ret(static_cast<int64_t>(clock_.NowMicros()));
    case Sysno::kClockGettime:
      return Ret(static_cast<int64_t>(clock_.NowNanos()));
    case Sysno::kRdtsc:
      return Ret(static_cast<int64_t>(clock_.Rdtsc()));
    case Sysno::kNanosleep:
      std::this_thread::sleep_for(std::chrono::nanoseconds(request.arg0));
      return Ret(0);
    default:
      return Err(-ENOSYS);
  }
}

uint32_t VirtualKernel::OrderDomainOf(ProcessState& process, const SyscallRequest& request) {
  switch (request.sysno) {
    // Descriptor-scoped ops: conflict only with ops on the same descriptor.
    // An invalid fd falls back to the namespace domain, which totally orders
    // the close/reopen traffic that decides *why* the fd was invalid — so
    // the -EBADF replays at the equivalent point in every variant.
    case Sysno::kLseek:
    case Sysno::kFcntl: {
      const uint32_t domain = process.fds().OrderDomainOf(static_cast<int32_t>(request.arg0));
      return domain == OrderDomainIds::kNone ? OrderDomainIds::kFdNamespace : domain;
    }

    // Address-space ops share one allocator; allocation order decides the
    // addresses every variant must agree on.
    case Sysno::kBrk:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
      return OrderDomainIds::kMemory;

    // Tid allocation.
    case Sysno::kClone:
      return OrderDomainIds::kProcess;

    // open/close/dup/pipe mutate the fd namespace; stat scans the shared
    // VFS, so it must order against open-with-create. socket/accept (the
    // replicated fd-allocating calls) are stamped here too by the monitor.
    default:
      return OrderDomainIds::kFdNamespace;
  }
}

VRef<VConnection> VirtualKernel::AcceptBlocking(ProcessState& process, int32_t listen_fd,
                                                int64_t* error) {
  VRef<VObject> listener_ref;
  {
    FdTable::Ref entry = process.fds().Get(listen_fd);
    if (!entry) {
      *error = -EBADF;
      return nullptr;
    }
    // One (kind, object) snapshot licenses the downcast; then share the
    // listener out of the slot — the lease must not be held across the wait
    // (a concurrent close needs to drain it).
    const FdTable::Ref::ObjectView view = entry.view();
    if (view.kind != FdKind::kListener || view.object == nullptr) {
      *error = -EBADF;
      return nullptr;
    }
    listener_ref = entry.ShareObject(view);
  }
  auto* listener = static_cast<VListener*>(listener_ref.get());
  if (!sharded_) {
    // Baseline: the listener's internal condvar.
    auto conn = listener->Accept();
    if (conn == nullptr) {
      *error = -ECONNABORTED;
      return nullptr;
    }
    *error = 0;
    return conn;
  }
  // Wait-queue-driven accept: try, then subscribe-and-park until a
  // connection arrives, the listener closes, or the MVEE shuts down. The
  // Waiter is armed lazily so an accept with a pending connection (a loaded
  // server's common case) never touches the process-wide registry.
  std::optional<Waiter> waiter;
  for (;;) {
    if (waiter.has_value()) {
      waiter->Prepare();
    }
    bool closed = false;
    VRef<VConnection> conn = listener->TryAccept(&closed);
    if (conn != nullptr) {
      *error = 0;
      return conn;
    }
    if (closed || wait_registry_.shutdown()) {
      *error = -ECONNABORTED;
      return nullptr;
    }
    if (!waiter.has_value()) {
      // Subscribe, then re-try: the subscription must precede the check
      // whose verdict licenses the park (waitq.h protocol).
      waiter.emplace(&wait_registry_);
      waiter->Subscribe(listener->waitq());
      continue;
    }
    waiter->Wait({}, /*timed=*/false);
  }
}

int64_t VirtualKernel::FinishAccept(ProcessState& process, VRef<VConnection> conn) {
  FdEntry conn_entry;
  conn_entry.kind = FdKind::kConnServer;
  conn_entry.object = std::move(conn);
  return process.fds().Allocate(std::move(conn_entry));
}

void VirtualKernel::ShutdownBlockedCalls() {
  // One registry: every waitable object (pipes, connections, listeners, the
  // futex table) registered at creation; ShutdownAll closes them all and
  // wakes every parked waiter (waitq.h). No per-kind side lists.
  wait_registry_.ShutdownAll();
}

void VirtualKernel::NudgeBlockedCalls() {
  // Non-destructive wake of everything that could be stuck on a lost signal
  // (docs/DESIGN.md §9 watchdog ladder, stage 2). Futex waiters re-check
  // their word and re-queue if it still holds the expected value — a legal
  // spurious wake, exactly what FUTEX_WAKE permits. Waitq parks need no
  // nudge: every park is slice-bounded and re-scans (waitq.h).
  futexes_.WakeAll();
}

int64_t VirtualKernel::ApplyReplicatedEffect(ProcessState& process,
                                             const SyscallRequest& request,
                                             const SyscallResult& master_result) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kRead: {
      // Advance the slave's file offset to keep later lseek(SEEK_CUR) and
      // sequential reads consistent. Pipes/sockets have no offset.
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry && entry.file() != nullptr && master_result.retval > 0) {
        entry.AdvanceOffset(static_cast<uint64_t>(master_result.retval));
      }
      return 0;
    }
    case Sysno::kWrite: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry && entry.file() != nullptr && master_result.retval > 0) {
        entry.AdvanceOffset(static_cast<uint64_t>(master_result.retval));
      }
      return 0;
    }
    case Sysno::kAccept: {
      // Install a shadow descriptor so the slave's fd numbering stays in sync
      // with the master's. The shadow has no connection: the slave never
      // performs real network I/O.
      if (master_result.retval < 0) {
        return 0;
      }
      FdEntry shadow;
      shadow.kind = FdKind::kConnServer;
      return fds.Allocate(std::move(shadow));
    }
    case Sysno::kSocket: {
      // Shadow socket descriptor; never backed by a real listener (the port
      // namespace is machine-shared, master-only).
      if (master_result.retval < 0) {
        return 0;
      }
      FdEntry shadow;
      shadow.kind = FdKind::kListener;
      return fds.Allocate(std::move(shadow));
    }
    case Sysno::kBind: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry && master_result.retval == 0) {
        entry.set_port(static_cast<uint16_t>(request.arg1));
      }
      return 0;
    }
    case Sysno::kListen:
    case Sysno::kShutdown:
      return 0;  // Shadow descriptors carry no kernel object to act on.
    case Sysno::kConnect: {
      FdTable::Ref entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry && master_result.retval == 0) {
        entry.PromoteToClientConn(nullptr);  // Shadow: kind flip only.
      }
      return 0;
    }
    default:
      return 0;
  }
}

}  // namespace mvee
