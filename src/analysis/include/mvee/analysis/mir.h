// MIR: a miniature typed instruction IR for the sync-op identification
// analysis (paper §4.3).
//
// The paper's pipeline runs on x86 binaries (stage 1, a Ruby disassembler
// script) and on source/LLVM IR (stage 2, points-to analysis; §4.3.1's
// _Atomic qualifier propagation). MIR stands in for both: it is expressive
// enough to carry the three instruction classes the analysis cares about —
//   type (i)   LOCK-prefixed read-modify-writes,
//   type (ii)  XCHG,
//   type (iii) aligned loads/stores —
// plus the pointer-flow instructions (address-of, copy, field/offset
// arithmetic, heap allocation) that points-to analysis needs, and the
// volatile/_Atomic qualifiers of §4.3's extensions.

#ifndef MVEE_ANALYSIS_MIR_H_
#define MVEE_ANALYSIS_MIR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mvee {

// Instruction opcodes.
enum class MirOp : uint8_t {
  kLockRmw = 0,  // type (i): LOCK CMPXCHG / LOCK XADD / LOCK INC ... via ptr
  kXchg,         // type (ii): XCHG reg, [ptr]
  kLoad,         // type (iii) candidate: dst_reg = *ptr (aligned)
  kStore,        // type (iii) candidate: *ptr = src_reg (aligned)
  kAddrOf,       // ptr_dst = &object
  kMov,          // ptr_dst = ptr_src (register copy / cast)
  kGep,          // ptr_dst = ptr_src + offset (field / array arithmetic)
  kAlloc,        // ptr_dst = malloc(...) — fresh heap object
  kCompute,      // pure computation; no pointers (noise for the analysis)
  kAsmBlock,     // opaque inline-assembly block touching `ptr`
  kCall,         // direct call: dst = objects[object].function_index(args...)
  kIndirectCall,  // indirect call through function-pointer register `ptr`
};

// Storage class of a memory object.
enum class MirStorage : uint8_t {
  kGlobal = 0,
  kStack,
  kHeap,
};

// A named memory object (potential sync variable). Objects whose
// function_index is >= 0 are the address-taken identities of functions:
// `p = &f` is modelled as kAddrOf of such an object, so function pointers
// flow through the ordinary points-to lattice and kIndirectCall targets are
// resolved from pts(ptr) — the classic mutually-recursive call-graph /
// points-to fixpoint.
struct MirObject {
  std::string name;
  MirStorage storage = MirStorage::kGlobal;
  bool is_volatile = false;   // §4.3's volatile extension seed.
  bool atomic_qualified = false;  // §4.3.1's explicit _Atomic qualifier.
  int32_t function_index = -1;    // >= 0: this object denotes functions[i].
};

// One instruction. `ptr` names the pointer register operand (for memory
// ops), `object` a directly-referenced object (AddrOf), and dst/src are
// pointer registers for the flow instructions. -1 = unused.
struct MirInst {
  MirOp op = MirOp::kCompute;
  int32_t ptr = -1;     // Pointer operand register.
  int32_t dst = -1;     // Destination pointer register.
  int32_t src = -1;     // Source pointer register.
  int32_t object = -1;  // MirObject index (kAddrOf / kAlloc result object).
  std::string source_line;  // "file.c:123" — the paper maps binary
                            // instructions back to source via debug info.
  // kGep only: statically-known field index, or -1 for opaque pointer
  // arithmetic. The field-sensitive analysis (field_sensitive.h) keys on
  // this; -1 degrades it to "any field", reproducing the paper's complaint
  // that SVF "is overly conservative when analyzing programs containing
  // pointer arithmetic" (§4.3.1).
  int32_t field = -1;
  // kCall / kIndirectCall only: pointer registers passed as arguments; they
  // flow into the callee's params. `dst` receives the callee's return_reg;
  // kCall names the callee via `object` (a function-typed MirObject),
  // kIndirectCall resolves callees from pts(`ptr`).
  std::vector<int32_t> args;
};

// A function: a straight-line list of instructions (control flow is
// irrelevant to a flow-insensitive points-to analysis), plus the pointer
// interface the interprocedural analyses propagate through: `params` receive
// call-site arguments positionally, `return_reg` flows into call-site dsts.
struct MirFunction {
  std::string name;
  std::vector<MirInst> instructions;
  std::vector<int32_t> params;
  int32_t return_reg = -1;
};

// A module ("binary" / "shared library").
struct MirModule {
  std::string name;
  std::vector<MirObject> objects;
  std::vector<MirFunction> functions;
  int32_t register_count = 0;

  size_t InstructionCount() const {
    size_t total = 0;
    for (const auto& function : functions) {
      total += function.instructions.size();
    }
    return total;
  }
};

// Convenience builder so corpus code stays readable.
class MirBuilder {
 public:
  explicit MirBuilder(std::string module_name) { module_.name = std::move(module_name); }

  // Declares an object; returns its index.
  int32_t Object(const std::string& name, MirStorage storage = MirStorage::kGlobal,
                 bool is_volatile = false, bool atomic_qualified = false) {
    module_.objects.push_back({name, storage, is_volatile, atomic_qualified, -1});
    return static_cast<int32_t>(module_.objects.size() - 1);
  }

  // Declares the address-taken identity of function `function_index`;
  // returns the object index (use with AddrOf to take a function's address,
  // or as the kCall target). Idempotent per function.
  int32_t FunctionObject(int32_t function_index) {
    for (size_t i = 0; i < module_.objects.size(); ++i) {
      if (module_.objects[i].function_index == function_index) {
        return static_cast<int32_t>(i);
      }
    }
    module_.objects.push_back({"&" + module_.functions[function_index].name,
                               MirStorage::kGlobal, false, false, function_index});
    return static_cast<int32_t>(module_.objects.size() - 1);
  }

  // Allocates a fresh pointer register.
  int32_t Reg() { return module_.register_count++; }

  // Starts a new function; subsequent Emit calls append to it. Returns the
  // function's index (the kCall / FunctionObject handle).
  int32_t Function(const std::string& name) {
    module_.functions.push_back({name, {}, {}, -1});
    current_ = static_cast<int32_t>(module_.functions.size() - 1);
    return current_;
  }

  // Redirects subsequent Emit/Param/Return calls to an already-declared
  // function — lets corpus generators declare a mutually-recursive call
  // graph up front and fill the bodies afterwards.
  MirBuilder& Select(int32_t function_index) {
    current_ = function_index;
    return *this;
  }

  // Declares a pointer parameter of the current function; call-site argument
  // `i` flows into the i-th declared param. Returns the param's register.
  int32_t Param() {
    const int32_t reg = Reg();
    Current().params.push_back(reg);
    return reg;
  }

  // Declares the current function's returned pointer register.
  void Return(int32_t reg) { Current().return_reg = reg; }

  void Emit(MirInst inst) { Current().instructions.push_back(std::move(inst)); }

  // Shorthand emitters. All return the builder for chaining.
  MirBuilder& AddrOf(int32_t dst, int32_t object, const std::string& line = "") {
    Emit({MirOp::kAddrOf, -1, dst, -1, object, line, -1, {}});
    return *this;
  }
  MirBuilder& Mov(int32_t dst, int32_t src, const std::string& line = "") {
    Emit({MirOp::kMov, -1, dst, src, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& Gep(int32_t dst, int32_t src, const std::string& line = "") {
    Emit({MirOp::kGep, -1, dst, src, -1, line, -1, {}});
    return *this;
  }
  // Field-select with a statically known field index (a struct member
  // access); plain Gep models opaque pointer arithmetic.
  MirBuilder& GepField(int32_t dst, int32_t src, int32_t field,
                       const std::string& line = "") {
    Emit({MirOp::kGep, -1, dst, src, -1, line, field, {}});
    return *this;
  }
  MirBuilder& Alloc(int32_t dst, int32_t object, const std::string& line = "") {
    Emit({MirOp::kAlloc, -1, dst, -1, object, line, -1, {}});
    return *this;
  }
  MirBuilder& LockRmw(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kLockRmw, ptr, -1, -1, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& Xchg(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kXchg, ptr, -1, -1, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& Load(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kLoad, ptr, -1, -1, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& Store(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kStore, ptr, -1, -1, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& Compute(const std::string& line = "") {
    Emit({MirOp::kCompute, -1, -1, -1, -1, line, -1, {}});
    return *this;
  }
  MirBuilder& AsmBlock(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kAsmBlock, ptr, -1, -1, -1, line, -1, {}});
    return *this;
  }
  // Direct call to the function behind `function_object` (a FunctionObject
  // index). `dst` receives the callee's return pointer (-1 = ignored).
  MirBuilder& Call(int32_t dst, int32_t function_object, std::vector<int32_t> args = {},
                   const std::string& line = "") {
    MirInst inst{MirOp::kCall, -1, dst, -1, function_object, line, -1, {}};
    inst.args = std::move(args);
    Emit(std::move(inst));
    return *this;
  }
  // Indirect call through function-pointer register `fptr`; callees are
  // whatever function objects pts(fptr) resolves to.
  MirBuilder& CallIndirect(int32_t dst, int32_t fptr, std::vector<int32_t> args = {},
                           const std::string& line = "") {
    MirInst inst{MirOp::kIndirectCall, fptr, dst, -1, -1, line, -1, {}};
    inst.args = std::move(args);
    Emit(std::move(inst));
    return *this;
  }
  // An inline-assembly block simple enough for the checker to analyze —
  // §4.3.1's third proposed improvement ("permit the use of _Atomic in
  // easy-to-analyze inline assembly blocks"). Marked via src = 1.
  MirBuilder& AsmBlockAnalyzable(int32_t ptr, const std::string& line = "") {
    Emit({MirOp::kAsmBlock, ptr, -1, 1, -1, line, -1, {}});
    return *this;
  }

  MirModule Build() { return std::move(module_); }

 private:
  MirFunction& Current() {
    if (module_.functions.empty()) {
      Function("f0");
    }
    return module_.functions[current_ < 0 ? module_.functions.size() - 1
                                          : static_cast<size_t>(current_)];
  }

  MirModule module_;
  int32_t current_ = -1;
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_MIR_H_
