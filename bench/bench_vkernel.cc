// Virtual-kernel mixed-op throughput: sharded vs the seed's global-mutex
// baseline (MveeOptions::sharded_vkernel, docs/DESIGN.md §7).
//
// The workload drives the virtual kernel directly from 2 variant processes x
// 8 threads (isolating the kernel's own locks from rendezvous cost, the way
// bench_ring_throughput isolates the ring). Each thread runs an nginx-style
// event-loop step against its partner thread:
//
//   - readiness handoff: write one byte into the outgoing pipe, poll the
//     incoming pipe (infinite timeout), read the byte. Baseline ExecutePoll
//     rediscovers readiness on a 200us sleep quantum; the sharded kernel
//     parks on the pipe's wait queue and is woken by the write itself.
//   - fd/VFS churn: open a per-thread path (stripe + per-thread handle
//     cache vs one namespace mutex), pread 64 bytes (lock-free leased
//     lookup vs table mutex), lseek, stat, close.
//   - getrandom(64): per-thread-set counted RNG stream vs rng_mutex_.
//   - futex wake on a private word (no waiter): per-shard lock vs the
//     table-wide mutex.
//
// Every operation above is one kernel call; ops/second is the sum over all
// threads. Both modes run in one binary; results go to BENCH_vkernel.json.
// Knobs:
//   MVEE_BENCH_VK_THREADS      worker threads per variant      (default 8)
//   MVEE_BENCH_VK_VARIANTS     variant processes               (default 2)
//   MVEE_BENCH_VK_ITERS        event-loop steps per thread     (default 1200)
//   MVEE_BENCH_VK_REPS         repetitions, best-of kept       (default 3)
//   MVEE_BENCH_VK_MIN_SPEEDUP  exit nonzero below this         (default 0 = off)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

namespace {

using namespace mvee;
using mvee::bench::EnvInt;

struct VkernelRun {
  std::string mode;
  uint32_t variants = 0;
  uint32_t threads = 0;
  uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  uint64_t waitq_waits = 0;
  uint64_t waitq_wakeups = 0;
};

// One event-loop step for thread `t`: readiness handoff with the partner,
// then the fd/VFS/rng/futex batch. Returns the number of kernel calls made.
uint64_t EventLoopStep(VirtualKernel& kernel, ProcessState& process, uint32_t tid,
                       int32_t out_wfd, int32_t in_rfd, const std::string& blob_path,
                       std::vector<uint8_t>& buffer) {
  uint64_t ops = 0;
  const uint8_t token = 0x5a;

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = out_wfd;
  write.in_data = {&token, 1};
  kernel.Execute(process, write);
  ++ops;

  // poll(in_rfd, kIn, infinite): the readiness primitive under test.
  uint8_t poll_payload[5];
  std::memcpy(poll_payload, &in_rfd, sizeof(in_rfd));
  poll_payload[4] = PollEvents::kIn;
  uint8_t revents = 0;
  SyscallRequest poll;
  poll.sysno = Sysno::kPoll;
  poll.arg0 = 1;
  poll.arg1 = -1;
  poll.tid = tid;
  poll.in_data = {poll_payload, sizeof(poll_payload)};
  poll.out_data = {&revents, 1};
  kernel.Execute(process, poll);
  ++ops;

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = in_rfd;
  read.out_data = {buffer.data(), 1};
  kernel.Execute(process, read);
  ++ops;

  // fd/VFS churn on a per-thread path.
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = blob_path;
  open.arg0 = VOpenFlags::kRead;
  const int64_t fd = kernel.Execute(process, open).retval;
  ++ops;
  if (fd >= 0) {
    SyscallRequest pread;
    pread.sysno = Sysno::kPread;
    pread.arg0 = fd;
    pread.arg1 = 0;
    pread.out_data = buffer;
    kernel.Execute(process, pread);
    ++ops;
    SyscallRequest seek;
    seek.sysno = Sysno::kLseek;
    seek.arg0 = fd;
    seek.arg1 = 8;
    seek.arg2 = 0;
    kernel.Execute(process, seek);
    ++ops;
    SyscallRequest close;
    close.sysno = Sysno::kClose;
    close.arg0 = fd;
    kernel.Execute(process, close);
    ++ops;
  }
  SyscallRequest stat;
  stat.sysno = Sysno::kStat;
  stat.path = blob_path;
  kernel.Execute(process, stat);
  ++ops;

  SyscallRequest rng;
  rng.sysno = Sysno::kGetrandom;
  rng.tid = tid;
  rng.out_data = buffer;
  kernel.Execute(process, rng);
  ++ops;

  SyscallRequest wake;
  wake.sysno = Sysno::kFutex;
  wake.arg0 = FutexOp::kWake;
  wake.arg1 = 1;
  wake.local_addr = 0x10000 + tid * 64;
  kernel.Execute(process, wake);
  ++ops;

  return ops;
}

VkernelRun RunMixed(bool sharded, uint32_t variants, uint32_t threads, int64_t iters) {
  VirtualKernel kernel(42, sharded);
  std::vector<std::unique_ptr<ProcessState>> processes;
  for (uint32_t v = 0; v < variants; ++v) {
    processes.push_back(std::make_unique<ProcessState>(
        /*pid=*/1000 + static_cast<int32_t>(v), 0x10000 + v * 0x1000000,
        0x100000 + v * 0x1000000, sharded));
  }

  // Per-thread blobs + per-pair pipes (threads pair up as t and t^1; an odd
  // thread count leaves the last thread self-paired through its own pipe).
  struct ThreadPlumbing {
    int32_t out_wfd = 0;
    int32_t in_rfd = 0;
    std::string blob;
  };
  std::vector<std::vector<ThreadPlumbing>> plumbing(variants);
  for (uint32_t v = 0; v < variants; ++v) {
    plumbing[v].resize(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      plumbing[v][t].blob = "vk_blob_" + std::to_string(v) + "_" + std::to_string(t);
      kernel.vfs().PutFile(plumbing[v][t].blob, std::vector<uint8_t>(64, 0x42));
    }
    for (uint32_t t = 0; t < threads; t += 2) {
      SyscallRequest pipe;
      pipe.sysno = Sysno::kPipe;
      const int64_t ab = kernel.Execute(*processes[v], pipe).retval;
      const int64_t ba = kernel.Execute(*processes[v], pipe).retval;
      const auto rfd = [](int64_t packed) { return static_cast<int32_t>(packed & 0xffffffff); };
      const auto wfd = [](int64_t packed) { return static_cast<int32_t>(packed >> 32); };
      const uint32_t partner = t + 1 < threads ? t + 1 : t;
      plumbing[v][t].out_wfd = wfd(ab);
      plumbing[v][partner].in_rfd = rfd(ab);
      plumbing[v][partner].out_wfd = wfd(ba);
      plumbing[v][t].in_rfd = rfd(ba);
    }
  }

  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (uint32_t v = 0; v < variants; ++v) {
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, v, t] {
        ProcessState& process = *processes[v];
        const ThreadPlumbing& pipes = plumbing[v][t];
        const uint32_t tid = v * threads + t;
        std::vector<uint8_t> buffer(64);
        uint64_t ops = 0;
        for (int64_t i = 0; i < iters; ++i) {
          ops += EventLoopStep(kernel, process, tid, pipes.out_wfd, pipes.in_rfd,
                               pipes.blob, buffer);
        }
        total_ops.fetch_add(ops, std::memory_order_relaxed);
      });
    }
  }
  for (auto& worker : workers) {
    worker.join();
  }
  const auto end = std::chrono::steady_clock::now();

  VkernelRun run;
  run.mode = sharded ? "sharded" : "baseline";
  run.variants = variants;
  run.threads = threads;
  run.ops = total_ops.load();
  run.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  run.ops_per_sec = run.seconds > 0 ? static_cast<double>(run.ops) / run.seconds : 0;
  const VKernelStatsSnapshot stats = kernel.stats();
  run.waitq_waits = stats.waitq_waits;
  run.waitq_wakeups = stats.waitq_wakeups;
  return run;
}

void WriteVkernelJson(const std::vector<VkernelRun>& runs, double speedup) {
  const std::string path = mvee::bench::ResolveBenchJsonPath("BENCH_vkernel.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"vkernel_mixed\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const VkernelRun& run = runs[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"variants\": %u, \"threads\": %u, "
                 "\"ops\": %llu, \"seconds\": %.4f, \"ops_per_sec\": %.1f, "
                 "\"waitq_waits\": %llu, \"waitq_wakeups\": %llu}%s\n",
                 run.mode.c_str(), run.variants, run.threads,
                 static_cast<unsigned long long>(run.ops), run.seconds, run.ops_per_sec,
                 static_cast<unsigned long long>(run.waitq_waits),
                 static_cast<unsigned long long>(run.waitq_wakeups),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"speedup_sharded_vs_baseline\": %.2f\n}\n", speedup);
  std::fclose(file);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main() {
  using namespace mvee::bench;

  const auto threads = static_cast<uint32_t>(EnvInt("MVEE_BENCH_VK_THREADS", 8));
  const auto variants = static_cast<uint32_t>(EnvInt("MVEE_BENCH_VK_VARIANTS", 2));
  const int64_t iters = EnvInt("MVEE_BENCH_VK_ITERS", 1200);
  const int64_t reps = EnvInt("MVEE_BENCH_VK_REPS", 3);

  PrintHeader("Virtual-kernel mixed-op throughput: global-mutex baseline vs sharded (" +
              std::to_string(variants) + " variant processes, " + std::to_string(threads) +
              " threads each, " + std::to_string(iters) + " event-loop steps/thread)");

  // Warm-up (allocator, file cache) kept out of the measurements.
  RunMixed(/*sharded=*/true, variants, /*threads=*/2, /*iters=*/100);

  std::vector<VkernelRun> runs;
  for (const bool sharded : {false, true}) {
    // Best of `reps`: on small/oversubscribed hosts a single run is
    // dominated by scheduler noise; the best run is the least-perturbed
    // measurement of each mode's intrinsic cost.
    VkernelRun run;
    for (int64_t rep = 0; rep < reps; ++rep) {
      VkernelRun attempt = RunMixed(sharded, variants, threads, iters);
      if (rep == 0 || attempt.ops_per_sec > run.ops_per_sec) {
        run = attempt;
      }
    }
    std::printf("  %-9s %8.3fs  %10.0f ops/s  (%llu ops, waitq waits=%llu wakeups=%llu)\n",
                run.mode.c_str(), run.seconds, run.ops_per_sec,
                static_cast<unsigned long long>(run.ops),
                static_cast<unsigned long long>(run.waitq_waits),
                static_cast<unsigned long long>(run.waitq_wakeups));
    runs.push_back(run);
  }

  const double speedup =
      runs[0].ops_per_sec > 0 ? runs[1].ops_per_sec / runs[0].ops_per_sec : 0;
  std::printf("\n  sharded vs baseline speedup: %.2fx\n", speedup);
  std::printf("  baseline poll spin-scans on a 200us quantum (0 waitq wakeups); the\n"
              "  sharded kernel's polls ride wait-queue wakeups (%llu observed)\n",
              static_cast<unsigned long long>(runs[1].waitq_wakeups));
  WriteVkernelJson(runs, speedup);

  if (runs[1].waitq_wakeups == 0) {
    std::fprintf(stderr, "FAIL: sharded run recorded no wait-queue wakeups\n");
    return 1;
  }
  const double min_speedup = std::getenv("MVEE_BENCH_VK_MIN_SPEEDUP")
                                 ? std::atof(std::getenv("MVEE_BENCH_VK_MIN_SPEEDUP"))
                                 : 0.0;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n", speedup, min_speedup);
    return 1;
  }
  return 0;
}
