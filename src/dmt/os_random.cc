// Seeded random interleaver modelling the native OS scheduler.
//
// Not deterministic in the DMT sense: two runs with different seeds produce
// different schedules, which is exactly the run-to-run nondeterminism that
// makes unsynchronized multi-variant execution diverge (paper §1). Used as
// the master-schedule source for record/replay and as the baseline for the
// natural-nondeterminism measurements in bench_dmt_vs_rr.
//
// Makespan model: threads execute in parallel; each has a local virtual
// time. Acquiring a lock waits for the previous holder's release time;
// waiting on a flag waits for the store's timestamp.

#include <string>

#include "mvee/dmt/scheduler.h"
#include "mvee/util/rng.h"
#include "src/dmt/observer.h"

namespace mvee::dmt {

namespace {

constexpr uint32_t kNoHolder = UINT32_MAX;

}  // namespace

Schedule OsScheduler::Run(const Program& program) {
  Schedule schedule;
  RunState state(program, &schedule);
  const uint32_t threads = program.thread_count();
  Rng rng(SplitMix64(config_.seed));

  std::vector<size_t> cursor(threads, 0);
  std::vector<uint64_t> compute_done(threads, 0);
  std::vector<uint64_t> local_time(threads, 0);
  std::vector<uint32_t> holder(program.lock_count, kNoHolder);
  std::vector<uint64_t> release_time(program.lock_count, 0);
  std::vector<uint64_t> flag_set_time(program.flag_count, 0);

  auto unfinished = [&](uint32_t t) { return cursor[t] < program.threads[t].size(); };

  for (;;) {
    // Collect runnable threads: unfinished and not blocked.
    uint32_t runnable[256];
    uint32_t runnable_count = 0;
    uint32_t unfinished_count = 0;
    for (uint32_t t = 0; t < threads; ++t) {
      if (!unfinished(t)) {
        continue;
      }
      ++unfinished_count;
      const Op& op = program.threads[t][cursor[t]];
      if (op.kind == OpKind::kLock && holder[op.var] != kNoHolder) {
        continue;
      }
      if (op.kind == OpKind::kWaitFlag && !state.FlagSet(op.var)) {
        continue;
      }
      runnable[runnable_count++] = t;
    }
    if (unfinished_count == 0) {
      break;
    }
    if (runnable_count == 0) {
      schedule.completed = false;
      schedule.failure = "os-random: all unfinished threads blocked (deadlock)";
      return schedule;
    }

    const uint32_t turn = runnable[rng.NextBelow(runnable_count)];
    const Op& op = program.threads[turn][cursor[turn]];
    switch (op.kind) {
      case OpKind::kCompute: {
        const uint64_t remaining = op.cost - compute_done[turn];
        const uint64_t chunk = std::min(config_.slice, remaining);
        compute_done[turn] += chunk;
        local_time[turn] += chunk;
        if (compute_done[turn] >= op.cost) {
          compute_done[turn] = 0;
          ++cursor[turn];
        }
        break;
      }
      case OpKind::kLock:
        holder[op.var] = turn;
        local_time[turn] = std::max(local_time[turn], release_time[op.var]) +
                           config_.costs.sync;
        state.RecordLock(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kUnlock:
        holder[op.var] = kNoHolder;
        local_time[turn] += config_.costs.sync;
        release_time[op.var] = local_time[turn];
        state.RecordUnlock(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kSyscall:
        local_time[turn] += config_.costs.syscall;
        state.RecordSyscall(turn);
        ++cursor[turn];
        break;
      case OpKind::kSetFlag:
        local_time[turn] += config_.costs.sync;
        flag_set_time[op.var] = local_time[turn];
        state.RecordSetFlag(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kWaitFlag:
        local_time[turn] = std::max(local_time[turn], flag_set_time[op.var]) +
                           config_.costs.sync;
        state.RecordWaitFlag(turn, op.var);
        ++cursor[turn];
        break;
    }
  }

  for (uint32_t t = 0; t < threads; ++t) {
    schedule.makespan = std::max(schedule.makespan, local_time[t]);
  }
  return schedule;
}

}  // namespace mvee::dmt
