// Kendo-style weak determinism (Olszewski et al. [32], RFDet [29]).
//
// Each thread carries a deterministic logical clock fed by its simulated
// retired-instruction count. A thread may take a scheduling step only when
// its clock is the minimum among unfinished threads (ties broken by thread
// id), and a thread spinning on a contended lock bumps its clock so the
// holder eventually becomes the minimum and can proceed. The resulting
// schedule is a deterministic function of the per-op instruction costs —
// which is precisely why diversified variants, whose costs differ, end up
// with different (though individually stable) schedules (paper §2.1).

#include <string>

#include "mvee/dmt/scheduler.h"
#include "src/dmt/observer.h"

namespace mvee::dmt {

namespace {

constexpr uint32_t kNoHolder = UINT32_MAX;

}  // namespace

Schedule KendoScheduler::Run(const Program& program) {
  Schedule schedule;
  RunState state(program, &schedule);
  const uint32_t threads = program.thread_count();

  std::vector<size_t> cursor(threads, 0);
  std::vector<uint64_t> clock(threads, 0);
  std::vector<uint32_t> holder(program.lock_count, kNoHolder);
  uint32_t finished = 0;
  for (uint32_t t = 0; t < threads; ++t) {
    if (program.threads[t].empty()) {
      ++finished;
    }
  }

  // Generous bound: every op takes O(1) steps plus bounded spinning.
  const uint64_t step_limit = 64 * (program.TotalCost() + 1024);
  uint64_t steps = 0;

  while (finished < threads) {
    if (++steps > step_limit) {
      schedule.completed = false;
      schedule.failure = "kendo: step limit exceeded (livelock)";
      return schedule;
    }
    // Deterministic turn: unfinished thread with min (clock, tid).
    uint32_t turn = kNoHolder;
    for (uint32_t t = 0; t < threads; ++t) {
      if (cursor[t] >= program.threads[t].size()) {
        continue;
      }
      if (turn == kNoHolder || clock[t] < clock[turn]) {
        turn = t;
      }
    }

    const Op& op = program.threads[turn][cursor[turn]];
    switch (op.kind) {
      case OpKind::kCompute:
        clock[turn] += op.cost;
        ++cursor[turn];
        break;
      case OpKind::kLock:
        if (holder[op.var] == kNoHolder) {
          holder[op.var] = turn;
          state.RecordLock(turn, op.var);
          clock[turn] += config_.costs.sync;
          ++cursor[turn];
        } else {
          // det_mutex_lock retry: charge the spin, stay on this op.
          clock[turn] += config_.wait_bump;
        }
        break;
      case OpKind::kUnlock:
        holder[op.var] = kNoHolder;
        state.RecordUnlock(turn, op.var);
        clock[turn] += config_.costs.sync;
        ++cursor[turn];
        break;
      case OpKind::kSyscall:
        state.RecordSyscall(turn);
        clock[turn] += config_.costs.syscall;
        ++cursor[turn];
        break;
      case OpKind::kSetFlag:
        state.RecordSetFlag(turn, op.var);
        clock[turn] += config_.costs.sync;
        ++cursor[turn];
        break;
      case OpKind::kWaitFlag:
        if (state.FlagSet(op.var)) {
          state.RecordWaitFlag(turn, op.var);
          clock[turn] += config_.costs.sync;
          ++cursor[turn];
        } else {
          clock[turn] += config_.wait_bump;
        }
        break;
    }
    if (cursor[turn] >= program.threads[turn].size()) {
      ++finished;
    }
  }

  for (uint32_t t = 0; t < threads; ++t) {
    schedule.makespan = std::max(schedule.makespan, clock[t]);
  }
  return schedule;
}

}  // namespace mvee::dmt
