#include "mvee/vkernel/waitq.h"

#include <algorithm>

#include "mvee/util/fault_injection.h"

namespace mvee {

namespace {

// Safety-net park slice: wakeups are event-driven (Signal), the slice only
// bounds the damage of a missed edge and keeps shutdown responsive for
// waiters with nothing subscribed. Long enough that an idle poller costs
// ~nothing, short enough that a worst-case miss delays a poll by 2ms.
constexpr auto kWaitSlice = std::chrono::milliseconds(2);

}  // namespace

// --- WaitQueue ---------------------------------------------------------------

void WaitQueue::Notify() {
  // Fault site (docs/fault_injection.md, drop-waitq-wake): swallow the
  // readiness signal. Subscribed waiters degrade to slice-granularity
  // polling (the kWaitSlice safety net below) instead of hanging.
  if (FaultInjector::Global().ShouldFire(FaultSite::kDropWaitqWake)) {
    return;
  }
  // Dekker pairing with Subscribe's seq_cst RMW: either this fence + load
  // observes the subscriber, or the subscriber's post-subscribe state scan
  // observes the change published before Notify (docs/DESIGN.md §7).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (subscriber_count_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (Waiter* waiter : subscribers_) {
    waiter->Signal();
  }
}

void WaitQueue::Subscribe(Waiter* waiter) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.push_back(waiter);
  subscriber_count_.fetch_add(1, std::memory_order_seq_cst);
}

void WaitQueue::Unsubscribe(Waiter* waiter) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find(subscribers_.begin(), subscribers_.end(), waiter);
  if (it != subscribers_.end()) {
    *it = subscribers_.back();
    subscribers_.pop_back();
    subscriber_count_.fetch_sub(1, std::memory_order_release);
  }
}

// --- Waiter ------------------------------------------------------------------

Waiter::Waiter(WaitRegistry* registry) : registry_(registry) {
  if (registry_ != nullptr) {
    registry_->TrackWaiter(this);
  }
}

Waiter::~Waiter() {
  for (WaitQueue* queue : subscribed_) {
    queue->Unsubscribe(this);
  }
  if (registry_ != nullptr) {
    registry_->UntrackWaiter(this);
  }
}

void Waiter::Subscribe(WaitQueue* queue) {
  if (queue == nullptr ||
      std::find(subscribed_.begin(), subscribed_.end(), queue) != subscribed_.end()) {
    return;
  }
  subscribed_.push_back(queue);
  queue->Subscribe(this);
}

bool Waiter::ShutdownRequested() const {
  return registry_ != nullptr && registry_->shutdown();
}

void Waiter::Signal() {
  signaled_.store(1, std::memory_order_release);
  spot_.WakeParked();
}

bool Waiter::Wait(std::chrono::steady_clock::time_point deadline, bool timed) {
  WaitStats* stats = registry_ != nullptr ? &registry_->stats() : nullptr;
  // BeginPark / re-check / WaitTicket is the lost-wakeup-free discipline of
  // util/park.h: a Signal between the re-check and the sleep bumps the
  // ticket under the spot's mutex, which WaitTicket cannot miss.
  spot_.BeginPark();
  const uint64_t ticket = spot_.Ticket();
  if (signaled_.load(std::memory_order_acquire) != 0 || ShutdownRequested()) {
    spot_.EndPark();
    if (stats != nullptr) {
      stats->wakeups.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  auto slice = kWaitSlice;
  if (timed) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      spot_.EndPark();
      return false;
    }
    slice = std::min(slice, std::chrono::duration_cast<std::chrono::milliseconds>(
                                deadline - now) +
                                std::chrono::milliseconds(1));
  }
  if (stats != nullptr) {
    stats->waits.fetch_add(1, std::memory_order_relaxed);
  }
  spot_.WaitTicket(ticket, std::chrono::duration_cast<std::chrono::microseconds>(slice));
  spot_.EndPark();
  if (stats != nullptr) {
    if (signaled_.load(std::memory_order_acquire) != 0) {
      stats->wakeups.fetch_add(1, std::memory_order_relaxed);
    }
    if (registry_ != nullptr && registry_->shutdown()) {
      stats->shutdown_wakes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (timed && std::chrono::steady_clock::now() >= deadline &&
      signaled_.load(std::memory_order_acquire) == 0 && !ShutdownRequested()) {
    return false;
  }
  return true;
}

// --- Waitable / WaitRegistry -------------------------------------------------

Waitable::~Waitable() { UnregisterWaitable(); }

void Waitable::UnregisterWaitable() {
  if (wait_registry_ != nullptr) {
    wait_registry_->Unregister(this);
    wait_registry_ = nullptr;
  }
}

void Waitable::RegisterWaitable(WaitRegistry* registry) {
  if (registry == nullptr || wait_registry_ != nullptr) {
    return;
  }
  wait_registry_ = registry;
  registry->Register(this);
}

void WaitRegistry::Register(Waitable* waitable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_slots_.empty()) {
    waitable->registry_slot_ = free_slots_.back();
    free_slots_.pop_back();
    slots_[waitable->registry_slot_] = waitable;
  } else {
    waitable->registry_slot_ = slots_.size();
    slots_.push_back(waitable);
  }
  if (shutdown_.load(std::memory_order_relaxed)) {
    // Late registrant during teardown: close it immediately so nothing can
    // block on an object created after the drain.
    waitable->ShutdownWake();
  }
}

void WaitRegistry::Unregister(Waitable* waitable) {
  // An object's destructor blocks here while ShutdownAll walks the table, so
  // a mid-walk entry can never be destroyed under the walker.
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[waitable->registry_slot_] = nullptr;
  free_slots_.push_back(waitable->registry_slot_);
}

void WaitRegistry::TrackWaiter(Waiter* waiter) {
  std::lock_guard<std::mutex> lock(mutex_);
  waiters_.push_back(waiter);
}

void WaitRegistry::UntrackWaiter(Waiter* waiter) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find(waiters_.begin(), waiters_.end(), waiter);
  if (it != waiters_.end()) {
    *it = waiters_.back();
    waiters_.pop_back();
  }
}

void WaitRegistry::ShutdownAll() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Waitable* waitable : slots_) {
    if (waitable != nullptr) {
      waitable->ShutdownWake();
    }
  }
  for (Waiter* waiter : waiters_) {
    waiter->Signal();
  }
}

size_t WaitRegistry::LiveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size() - free_slots_.size();
}

size_t WaitRegistry::SlotCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace mvee
