// Sparse bitmap for points-to sets.
//
// The textbook Andersen solver stores pts(p) as std::set<int32_t>: ~64 bytes
// and a pointer chase per element, log(n) inserts, and element-at-a-time
// propagation. Production solvers (LLVM's SparseBitVector, SVF) store the
// same sets as sorted runs of fixed-width bit blocks: membership is a word
// test, union is word-parallel, and the common case of propagating a mostly
// duplicated set costs one merge scan instead of n tree inserts. This is
// that representation, sized for dense-ish id spaces (objects are numbered
// contiguously per module).
//
// Chunks cover kBitsPerChunk ids each and live in a sorted vector — cache
// friendly to scan, binary-searchable for point queries, and trivially
// mergeable for the union-with-delta operation difference propagation needs.

#ifndef MVEE_ANALYSIS_SPARSE_BITMAP_H_
#define MVEE_ANALYSIS_SPARSE_BITMAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mvee {

class SparseBitmap {
 public:
  static constexpr uint32_t kWordsPerChunk = 4;
  static constexpr uint32_t kBitsPerChunk = kWordsPerChunk * 64;

  // Sets `bit`; returns true if it was newly set.
  bool Insert(uint32_t bit) {
    Chunk& chunk = FindOrCreateChunk(bit / kBitsPerChunk);
    uint64_t& word = chunk.words[(bit % kBitsPerChunk) / 64];
    const uint64_t mask = uint64_t{1} << (bit % 64);
    if (word & mask) {
      return false;
    }
    word |= mask;
    return true;
  }

  bool Test(uint32_t bit) const {
    const Chunk* chunk = FindChunk(bit / kBitsPerChunk);
    if (chunk == nullptr) {
      return false;
    }
    return (chunk->words[(bit % kBitsPerChunk) / 64] >> (bit % 64)) & 1;
  }

  // this |= other; returns true if any bit was added.
  bool UnionWith(const SparseBitmap& other) { return UnionWithDelta(other, nullptr); }

  // this |= other, recording every newly-set bit into *delta as well (when
  // delta != nullptr) — the primitive difference propagation is built on.
  bool UnionWithDelta(const SparseBitmap& other, SparseBitmap* delta) {
    bool changed = false;
    std::vector<Chunk> merged;
    merged.reserve(std::max(chunks_.size(), other.chunks_.size()));
    size_t i = 0, j = 0;
    while (i < chunks_.size() || j < other.chunks_.size()) {
      if (j >= other.chunks_.size() ||
          (i < chunks_.size() && chunks_[i].base < other.chunks_[j].base)) {
        merged.push_back(chunks_[i++]);
      } else if (i >= chunks_.size() || other.chunks_[j].base < chunks_[i].base) {
        merged.push_back(other.chunks_[j]);
        if (delta != nullptr) {
          delta->MergeChunk(other.chunks_[j]);
        }
        changed = true;
        ++j;
      } else {
        Chunk combined = chunks_[i];
        for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
          const uint64_t added = other.chunks_[j].words[w] & ~combined.words[w];
          if (added != 0) {
            changed = true;
            combined.words[w] |= added;
            if (delta != nullptr) {
              Chunk delta_chunk{combined.base, {}};
              delta_chunk.words[w] = added;
              delta->MergeChunk(delta_chunk);
            }
          }
        }
        merged.push_back(combined);
        ++i;
        ++j;
      }
    }
    chunks_ = std::move(merged);
    return changed;
  }

  bool Intersects(const SparseBitmap& other) const {
    size_t i = 0, j = 0;
    while (i < chunks_.size() && j < other.chunks_.size()) {
      if (chunks_[i].base < other.chunks_[j].base) {
        ++i;
      } else if (other.chunks_[j].base < chunks_[i].base) {
        ++j;
      } else {
        for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
          if (chunks_[i].words[w] & other.chunks_[j].words[w]) {
            return true;
          }
        }
        ++i;
        ++j;
      }
    }
    return false;
  }

  bool Empty() const { return chunks_.empty(); }
  void Clear() { chunks_.clear(); }

  size_t Count() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) {
      for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
        total += static_cast<size_t>(__builtin_popcountll(chunk.words[w]));
      }
    }
    return total;
  }

  size_t MemoryBytes() const { return sizeof(*this) + chunks_.capacity() * sizeof(Chunk); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Chunk& chunk : chunks_) {
      for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
        uint64_t word = chunk.words[w];
        while (word != 0) {
          const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
          fn(chunk.base * kBitsPerChunk + w * 64 + bit);
          word &= word - 1;
        }
      }
    }
  }

  friend bool operator==(const SparseBitmap& a, const SparseBitmap& b) {
    // Chunks are never all-zero (Insert/merge only ever add bits), so
    // structural equality is set equality.
    if (a.chunks_.size() != b.chunks_.size()) {
      return false;
    }
    for (size_t i = 0; i < a.chunks_.size(); ++i) {
      if (a.chunks_[i].base != b.chunks_[i].base) {
        return false;
      }
      for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
        if (a.chunks_[i].words[w] != b.chunks_[i].words[w]) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  struct Chunk {
    uint32_t base = 0;  // Covers ids [base * kBitsPerChunk, +kBitsPerChunk).
    uint64_t words[kWordsPerChunk] = {};
  };

  const Chunk* FindChunk(uint32_t base) const {
    const auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), base,
        [](const Chunk& chunk, uint32_t key) { return chunk.base < key; });
    return (it != chunks_.end() && it->base == base) ? &*it : nullptr;
  }

  Chunk& FindOrCreateChunk(uint32_t base) {
    auto it = std::lower_bound(
        chunks_.begin(), chunks_.end(), base,
        [](const Chunk& chunk, uint32_t key) { return chunk.base < key; });
    if (it == chunks_.end() || it->base != base) {
      it = chunks_.insert(it, Chunk{base, {}});
    }
    return *it;
  }

  void MergeChunk(const Chunk& incoming) {
    Chunk& mine = FindOrCreateChunk(incoming.base);
    for (uint32_t w = 0; w < kWordsPerChunk; ++w) {
      mine.words[w] |= incoming.words[w];
    }
  }

  std::vector<Chunk> chunks_;
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_SPARSE_BITMAP_H_
