// Minimal leveled logger.
//
// The MVEE monitor logs bootstrap, divergence and shutdown events; agents and
// the vkernel log only at debug level. Logging is globally rate-unlimited but
// level-filtered; benches run with the logger silenced.

#ifndef MVEE_UTIL_LOG_H_
#define MVEE_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace mvee {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Sets / reads the global minimum level. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line ("[level] message") to stderr if enabled.
void LogLine(LogLevel level, const std::string& message);

// Stream-style helper: MVEE_LOG(kInfo) << "variant " << id << " started";
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mvee

#define MVEE_LOG(severity) \
  ::mvee::LogMessage(::mvee::LogLevel::severity, __FILE__, __LINE__)

#endif  // MVEE_UTIL_LOG_H_
