// Thread-local sync context.
//
// The instrumented synchronization primitives (src/sync) call the agent
// before and after every atomic access, and sleep through sys_futex when a
// lock is contended. Which agent, which logical thread id, and which futex
// implementation apply depends on the executing variant thread — the variant
// runtime installs a SyncContext in TLS when it starts a thread, exactly the
// role LD_PRELOAD + the self-awareness syscall play in the paper (§4.5).
//
// Outside an MVEE (native runs), no context is installed; primitives fall
// back to the NullAgent and to spinning instead of futex sleeps.

#ifndef MVEE_AGENTS_CONTEXT_H_
#define MVEE_AGENTS_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "mvee/agents/sync_agent.h"

namespace mvee {

// Futex backend the primitives use to sleep/wake. Implemented by the variant
// runtime (routing through the monitor as sys_futex) and by a process-local
// fallback for native runs.
class FutexHook {
 public:
  virtual ~FutexHook() = default;
  // Sleeps while *word == expected (futex semantics). Returns 0 or -EAGAIN.
  virtual int64_t FutexWait(const std::atomic<int32_t>* word, int32_t expected) = 0;
  // Wakes up to `count` waiters; returns the number woken.
  virtual int64_t FutexWake(const std::atomic<int32_t>* word, int32_t count) = 0;
};

struct SyncContext {
  SyncAgent* agent = nullptr;
  FutexHook* futex = nullptr;
  uint32_t tid = 0;

  // Current thread's context; never nullptr (a static null context with the
  // NullAgent backs threads that are not variant threads).
  static SyncContext* Current();
  // Installs `context` for the current thread; returns the previous one so
  // callers can restore it (RAII wrapper below).
  static SyncContext* Install(SyncContext* context);
};

// Registers `addr` as the sync variable `name` with the current thread's
// agent (adaptive routing, docs/DESIGN.md §11). Call once per variant —
// i.e., from code every variant executes, before the variable's first sync
// op, the paper's registration-at-allocation idiom. A no-op under
// non-adaptive agents and native runs.
inline void BindSyncVariable(const char* name, const void* addr) {
  SyncContext::Current()->agent->BindVariable(name, addr);
}

// RAII: installs a context for the current scope.
class ScopedSyncContext {
 public:
  explicit ScopedSyncContext(SyncContext* context) : previous_(SyncContext::Install(context)) {}
  ~ScopedSyncContext() { SyncContext::Install(previous_); }
  ScopedSyncContext(const ScopedSyncContext&) = delete;
  ScopedSyncContext& operator=(const ScopedSyncContext&) = delete;

 private:
  SyncContext* previous_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_CONTEXT_H_
