// Two-stage sync-op identification (paper §4.3) + Table 3 report.
//
// Stage 1 ("analysis.rb"): scan the module for type (i) LOCK-prefixed and
// type (ii) XCHG instructions — these are sync ops by definition, since
// accesses to synchronization variables are atomic.
//
// Stage 2 (points-to): compute the set of objects the stage-1 instructions
// may touch; every aligned load/store that may alias one of those objects is
// a type (iii) sync op. The strategy is sound but not complete: primitives
// built *only* from aligned loads/stores (paper Listing 2) are missed unless
// the volatile extension is enabled, which additionally seeds every
// volatile-qualified object (§4.3's "obvious extension").

#ifndef MVEE_ANALYSIS_SYNCOP_ANALYSIS_H_
#define MVEE_ANALYSIS_SYNCOP_ANALYSIS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "mvee/analysis/mir.h"
#include "mvee/analysis/options.h"
#include "mvee/analysis/stats.h"

namespace mvee {

// Location of one identified sync op.
struct SyncOpSite {
  std::string function;
  size_t instruction_index = 0;
  std::string source_line;
  MirOp op = MirOp::kCompute;
};

// Per-module identification result — one row of the paper's Table 3.
struct SyncOpReport {
  std::string module_name;
  std::vector<SyncOpSite> type_i;    // LOCK-prefixed RMW.
  std::vector<SyncOpSite> type_ii;   // XCHG.
  std::vector<SyncOpSite> type_iii;  // Aliasing aligned load/store.
  // Objects classified as synchronization variables.
  std::set<int32_t> sync_objects;
  // Load/stores *not* marked (precision metric; the paper wastes no cycles
  // ordering non-sync accesses).
  size_t unmarked_memops = 0;
  // Cost accounting of the points-to engine that produced this report
  // (stats.h) — surfaced in the Table-3 output and BENCH_analysis.json.
  AnalysisStats stats;

  size_t TotalSyncOps() const { return type_i.size() + type_ii.size() + type_iii.size(); }
};

struct SyncOpAnalysisOptions {
  // §4.3 extension: also treat volatile-qualified objects as sync variables.
  bool treat_volatile_as_sync = false;
  // Engine knobs (solver selection) for the pipelines that run Andersen.
  AnalysisOptions analysis;
};

// Runs both stages on `module` with the Steensgaard (DSA-style) points-to —
// the paper's first automation attempt.
SyncOpReport IdentifySyncOps(const MirModule& module, const SyncOpAnalysisOptions& options = {});

// Same pipeline but with the Andersen (SVF-style) subset-based points-to —
// the paper's second attempt (§4.3.1). More precise (fewer spurious type
// (iii) marks on unification-heavy code), more expensive.
SyncOpReport IdentifySyncOpsAndersen(const MirModule& module,
                                     const SyncOpAnalysisOptions& options = {});

// Formats reports as the paper's Table 3 (columns (i)/(ii)/(iii)).
std::string FormatTable3(const std::vector<SyncOpReport>& reports);

}  // namespace mvee

#endif  // MVEE_ANALYSIS_SYNCOP_ANALYSIS_H_
