// Futex-style parking for spin loops that may wait a long time.
//
// The wait-free round-slab rendezvous (src/monitor/thread_set.h) waits by
// spinning on slab state words. A thread set that sits idle between rounds —
// or whose master is legitimately blocked in the kernel (futex, accept) —
// must not burn a core forever, and on the small hosts used here must not
// starve the very thread it waits for. After the spin budget a waiter
// *parks* here. The protocol is the classic futex discipline in portable
// C++:
//
//   waiter:  BeginPark (seq_cst RMW) → re-check condition → WaitTicket
//   waker:   publish state (release store) → WakeParked (seq_cst fence+load)
//
// Memory-ordering argument (docs/DESIGN.md §6): the seq_cst RMW in BeginPark
// and the seq_cst fence in WakeParked give the Dekker guarantee between the
// waiter's {parked_++, condition load} and the waker's {state store, parked_
// load} — either the waiter's re-check observes the published state, or the
// waker observes parked_ != 0 and bumps the ticket under the mutex, which
// WaitTicket cannot miss (the ticket was captured before the re-check).
// A wakeup can therefore never fall into the re-check-to-sleep window. As a
// second line of defense every sleep is bounded by `slice`, so even a logic
// bug upstream degrades to slice-granularity polling instead of a hang.

#ifndef MVEE_UTIL_PARK_H_
#define MVEE_UTIL_PARK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mvee {

class ParkingSpot {
 public:
  // Announces intent to park. The caller MUST re-check its wait condition
  // between BeginPark and WaitTicket, and MUST pair with EndPark.
  void BeginPark() { parked_.fetch_add(1, std::memory_order_seq_cst); }
  void EndPark() { parked_.fetch_sub(1, std::memory_order_release); }

  // Capture before the condition re-check; pass to WaitTicket.
  uint64_t Ticket() const { return version_.load(std::memory_order_acquire); }

  // Sleeps until the ticket moves (a WakeParked since Ticket()) or ~slice
  // elapses. Spurious returns are fine — callers loop on their condition.
  void WaitTicket(uint64_t ticket, std::chrono::microseconds slice) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, slice,
                 [&] { return version_.load(std::memory_order_relaxed) != ticket; });
  }

  // Wakes every parked waiter. One fence + one load when nobody is parked —
  // the publisher's hot path never touches the mutex or the condvar.
  void WakeParked() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) == 0) {
      return;
    }
    {
      // The bump must happen under the mutex so a waiter between its ticket
      // re-check and cv_.wait_for cannot miss it.
      std::lock_guard<std::mutex> lock(mutex_);
      version_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  uint32_t parked() const { return parked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint32_t> parked_{0};
  std::atomic<uint64_t> version_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace mvee

#endif  // MVEE_UTIL_PARK_H_
