// AgentFleet: owns the shared runtime of one replication strategy and hands
// out the per-variant agent handles. The MVEE creates one fleet per run and
// "injects" an agent into each variant (the paper's LD_PRELOAD injection,
// §4.5, collapses here to wiring the agent into the variant's thread-local
// sync context).

#ifndef MVEE_AGENTS_AGENT_FLEET_H_
#define MVEE_AGENTS_AGENT_FLEET_H_

#include <memory>

#include "mvee/agents/partial_order.h"
#include "mvee/agents/per_variable.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/agents/total_order.h"
#include "mvee/agents/wall_of_clocks.h"

namespace mvee {

class AgentFleet {
 public:
  AgentFleet(AgentKind kind, const AgentConfig& config, AgentControl control);

  // Creates the agent for `variant_index` (0 = master). For kNull the
  // process-wide NullAgent is returned via a non-owning wrapper.
  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): detach `variant`'s replay cursors from the
  // active runtime's recording rings so the excised variant stops gating the
  // master. No-op for kNull and for the master itself.
  void DetachVariant(uint32_t variant);

  AgentKind kind() const { return kind_; }
  // Aggregated recorder/replayer statistics; nullptr for kNull.
  const AgentStats* stats() const;

 private:
  AgentKind kind_;
  std::unique_ptr<TotalOrderRuntime> total_order_;
  std::unique_ptr<PartialOrderRuntime> partial_order_;
  std::unique_ptr<WallOfClocksRuntime> wall_of_clocks_;
  std::unique_ptr<PerVariableRuntime> per_variable_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_AGENT_FLEET_H_
