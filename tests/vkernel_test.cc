// Unit tests for the virtual kernel substrate: VFS, fd tables, pipes, the
// virtual network, address spaces, futexes, the wait-queue readiness layer,
// and the syscall executor — including the sharded/baseline toggle
// (MveeOptions::sharded_vkernel, docs/DESIGN.md §7).

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(VfsTest, OpenCreateReadWrite) {
  Vfs vfs;
  EXPECT_EQ(vfs.Open("absent", /*create=*/false), nullptr);
  auto file = vfs.Open("f", /*create=*/true);
  ASSERT_NE(file, nullptr);
  file->Append(Bytes("hello").data(), 5);
  uint8_t buffer[8] = {};
  EXPECT_EQ(file->ReadAt(0, buffer, 8), 5);
  EXPECT_EQ(std::string(buffer, buffer + 5), "hello");
  EXPECT_EQ(file->ReadAt(5, buffer, 8), 0);  // EOF.
}

TEST(VfsTest, WriteAtGrowsFile) {
  Vfs vfs;
  auto file = vfs.Open("f", true);
  file->WriteAt(10, Bytes("x").data(), 1);
  EXPECT_EQ(file->Size(), 11u);
}

TEST(VfsTest, StatAndUnlink) {
  Vfs vfs;
  vfs.PutFile("a", {1, 2, 3});
  VStat st;
  EXPECT_EQ(vfs.Stat("a", &st), 0);
  EXPECT_EQ(st.size, 3u);
  EXPECT_EQ(vfs.Unlink("a"), 0);
  EXPECT_EQ(vfs.Stat("a", &st), -ENOENT);
  EXPECT_EQ(vfs.Unlink("a"), -ENOENT);
}

// The sharded VFS keeps a per-thread open-file handle cache; an unlink must
// invalidate it so a re-created path resolves to the fresh file, not the
// cached dead one.
TEST(VfsTest, UnlinkInvalidatesHandleCache) {
  Vfs vfs(/*sharded=*/true);
  vfs.PutFile("doc", {'o', 'l', 'd'});
  auto cached = vfs.Open("doc", false);  // Warms this thread's cache.
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(vfs.Unlink("doc"), 0);
  auto recreated = vfs.Open("doc", /*create=*/true);
  ASSERT_NE(recreated, nullptr);
  EXPECT_NE(recreated, cached);
  EXPECT_EQ(recreated->Size(), 0u);
  // The old handle's contents stay readable (POSIX: open handles survive
  // unlink).
  EXPECT_EQ(cached->Size(), 3u);
}

TEST(VfsTest, StripedNamespaceCountsAcrossStripes) {
  Vfs vfs(/*sharded=*/true);
  for (int i = 0; i < 64; ++i) {
    vfs.PutFile("file_" + std::to_string(i), {static_cast<uint8_t>(i)});
  }
  EXPECT_EQ(vfs.FileCount(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(vfs.Exists("file_" + std::to_string(i)));
  }
}

TEST(FdTableTest, LowestAvailableAllocation) {
  FdTable fds;
  FdEntry entry;
  entry.kind = FdKind::kFile;
  entry.object = MakeVRef<VFile>();
  // 0,1,2 reserved for stdio.
  EXPECT_EQ(fds.Allocate(entry), 3);
  entry.object = MakeVRef<VFile>();
  EXPECT_EQ(fds.Allocate(entry), 4);
  EXPECT_EQ(fds.Close(3), 0);
  // Lowest free slot is reused — the property the paper's §3.1 fd example
  // depends on.
  entry.object = MakeVRef<VFile>();
  EXPECT_EQ(fds.Allocate(std::move(entry)), 3);
}

TEST(FdTableTest, CloseInvalidFd) {
  FdTable fds;
  EXPECT_EQ(fds.Close(99), -EBADF);
  EXPECT_EQ(fds.Close(-1), -EBADF);
  EXPECT_FALSE(fds.Get(99));
}

TEST(FdTableTest, DupCopiesEntry) {
  FdTable fds;
  FdEntry entry;
  entry.kind = FdKind::kFile;
  entry.object = MakeVRef<VFile>();
  entry.path = "p";
  const int32_t fd = fds.Allocate(std::move(entry));
  const int32_t dup = fds.Dup(fd);
  EXPECT_GT(dup, fd);
  EXPECT_EQ(fds.Get(dup).path(), "p");
  // The duplicate shares the object but owns its own reference.
  EXPECT_EQ(fds.Get(dup).object(), fds.Get(fd).object());
  EXPECT_EQ(fds.Dup(1234), -EBADF);
}

TEST(FdTableTest, GenerationTagInvalidatesAcrossReuse) {
  FdTable fds(/*sharded=*/true);
  FdEntry entry;
  entry.kind = FdKind::kFile;
  entry.object = MakeVRef<VFile>();
  const int32_t fd = fds.Allocate(std::move(entry));
  const uint32_t domain_before = fds.OrderDomainOf(fd);
  EXPECT_EQ(fds.Close(fd), 0);
  EXPECT_FALSE(fds.Get(fd));
  FdEntry again;
  again.kind = FdKind::kFile;
  again.object = MakeVRef<VFile>();
  EXPECT_EQ(fds.Allocate(std::move(again)), fd);  // Same number...
  EXPECT_TRUE(fds.Get(fd));
  // ...fresh ordering domain: replay clocks never leak across reuse.
  EXPECT_NE(fds.OrderDomainOf(fd), domain_before);
}

TEST(FdTableTest, FullTableReturnsEmfile) {
  FdTable fds;
  std::vector<int32_t> opened;
  for (;;) {
    FdEntry entry;
    entry.kind = FdKind::kFile;
    const int32_t fd = fds.Allocate(std::move(entry));
    if (fd < 0) {
      EXPECT_EQ(fd, -EMFILE);
      break;
    }
    opened.push_back(fd);
  }
  EXPECT_EQ(opened.size(), static_cast<size_t>(FdTable::kMaxFds) - 3);  // minus stdio
  for (const int32_t fd : opened) {
    EXPECT_EQ(fds.Close(fd), 0);
  }
}

TEST(PipeTest, BlockingRoundTrip) {
  VPipe pipe;
  std::thread writer([&] {
    pipe.Write(Bytes("abc").data(), 3);
    pipe.CloseWriteEnd();
  });
  uint8_t buffer[8] = {};
  int64_t n = pipe.Read(buffer, 8);
  EXPECT_EQ(n, 3);
  EXPECT_EQ(pipe.Read(buffer, 8), 0);  // EOF after close.
  writer.join();
}

TEST(PipeTest, WriteToClosedReadEndFails) {
  VPipe pipe;
  pipe.CloseReadEnd();
  EXPECT_EQ(pipe.Write(Bytes("abc").data(), 3), -EPIPE);
}

TEST(PipeTest, BackpressureBlocksWriter) {
  VPipe pipe(/*capacity=*/4);
  ASSERT_EQ(pipe.Write(Bytes("abcd").data(), 4), 4);
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    pipe.Write(Bytes("e").data(), 1);
    wrote.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(wrote.load());
  uint8_t buffer[4];
  pipe.Read(buffer, 4);
  writer.join();
  EXPECT_TRUE(wrote.load());
}

TEST(NetTest, ListenConnectAcceptEcho) {
  VirtualNetwork network;
  VRef<VListener> listener;
  ASSERT_EQ(network.Listen(8080, 16, &listener), 0);
  EXPECT_EQ(network.Listen(8080, 16, &listener), -EADDRINUSE);

  auto client_conn = network.Connect(8080);
  ASSERT_NE(client_conn, nullptr);
  auto server_conn = listener->Accept();
  ASSERT_EQ(server_conn, client_conn);

  client_conn->ClientWrite(Bytes("ping").data(), 4);
  uint8_t buffer[8] = {};
  EXPECT_EQ(server_conn->ServerRead(buffer, 8), 4);
  server_conn->ServerWrite(Bytes("pong!").data(), 5);
  EXPECT_EQ(client_conn->ClientRead(buffer, 8), 5);
  EXPECT_EQ(std::string(buffer, buffer + 5), "pong!");
}

TEST(NetTest, ConnectToClosedPortFails) {
  VirtualNetwork network;
  EXPECT_EQ(network.Connect(9999), nullptr);
}

TEST(NetTest, CloseAllUnblocksAccept) {
  VirtualNetwork network;
  VRef<VListener> listener;
  ASSERT_EQ(network.Listen(80, 4, &listener), 0);
  std::thread acceptor([&] { EXPECT_EQ(listener->Accept(), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  network.CloseAll();
  acceptor.join();
}

TEST(AddressSpaceTest, BrkQueryAndMove) {
  AddressSpace mem(0x1000, 0x100000);
  uint64_t brk = 0;
  EXPECT_EQ(mem.Brk(0, &brk), 0);
  EXPECT_EQ(brk, 0x1000u);
  EXPECT_EQ(mem.Brk(4096, &brk), 0);
  EXPECT_EQ(brk, 0x2000u);
  EXPECT_EQ(mem.Brk(-4096, &brk), 0);
  EXPECT_EQ(brk, 0x1000u);
  EXPECT_EQ(mem.Brk(-8192, &brk), -ENOMEM);  // Below heap base.
}

TEST(AddressSpaceTest, MmapMunmapMprotect) {
  AddressSpace mem(0x1000, 0x100000);
  uint64_t addr = 0;
  EXPECT_EQ(mem.Mmap(100, VProt::kRead | VProt::kWrite, &addr), 0);
  EXPECT_EQ(addr, 0x100000u);
  EXPECT_EQ(mem.MappingCount(), 1u);
  EXPECT_EQ(mem.ProtOf(addr), VProt::kRead | VProt::kWrite);
  EXPECT_EQ(mem.Mprotect(addr, 100, VProt::kRead), 0);
  EXPECT_EQ(mem.ProtOf(addr), VProt::kRead);
  EXPECT_EQ(mem.Mprotect(addr + 4096, 100, VProt::kRead), -ENOMEM);
  EXPECT_EQ(mem.Munmap(addr, 100), 0);
  EXPECT_EQ(mem.MappingCount(), 0u);
  EXPECT_EQ(mem.Munmap(addr, 100), -EINVAL);
  EXPECT_EQ(mem.Mmap(0, VProt::kRead, &addr), -EINVAL);
}

TEST(AddressSpaceTest, DistinctBasesGiveDistinctAddresses) {
  AddressSpace a(0x1000, 0x100000);
  AddressSpace b(0x5000, 0x500000);
  uint64_t addr_a = 0;
  uint64_t addr_b = 0;
  a.Mmap(4096, VProt::kRead, &addr_a);
  b.Mmap(4096, VProt::kRead, &addr_b);
  EXPECT_NE(addr_a, addr_b);
  // Logical (base-relative) addresses match: the property the monitor's
  // comparison relies on.
  EXPECT_EQ(addr_a - 0x100000, addr_b - 0x500000);
}

// --- Futex table (both concurrency modes) ---

class FutexModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(FutexModeTest, WakeReleasesWaiter) {
  FutexTable futexes(GetParam());
  std::atomic<int32_t> word{1};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_EQ(futexes.Wait(0x1234, &word, 1), 0);
    woke.store(true);
  });
  while (futexes.WaiterCount() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(woke.load());
  EXPECT_EQ(futexes.Wake(0x1234, 1), 1);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST_P(FutexModeTest, ValueMismatchReturnsEagain) {
  FutexTable futexes(GetParam());
  std::atomic<int32_t> word{2};
  EXPECT_EQ(futexes.Wait(0x1, &word, 1), -EAGAIN);
}

TEST_P(FutexModeTest, WakeWithNoWaitersReturnsZero) {
  FutexTable futexes(GetParam());
  EXPECT_EQ(futexes.Wake(0x9, 10), 0);
  // A wake on a never-slept address must not materialize a bucket.
  EXPECT_EQ(futexes.BucketCount(), 0u);
}

TEST_P(FutexModeTest, WakeAllReleasesEveryone) {
  FutexTable futexes(GetParam());
  std::atomic<int32_t> word{5};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] { futexes.Wait(0x7, &word, 5); });
  }
  while (futexes.WaiterCount() < 3) {
    std::this_thread::yield();
  }
  futexes.WakeAll();
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(futexes.WaiterCount(), 0u);
}

// A long-running server must not retain one bucket per futex word ever slept
// on: buckets are reclaimed the moment their last waiter is released.
TEST_P(FutexModeTest, BucketsReclaimedAtZeroWaiters) {
  FutexTable futexes(GetParam());
  constexpr int kAddrs = 16;
  std::atomic<int32_t> word{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kAddrs; ++i) {
    waiters.emplace_back([&, i] { futexes.Wait(0x1000 + i * 8, &word, 0); });
  }
  while (futexes.WaiterCount() < kAddrs) {
    std::this_thread::yield();
  }
  EXPECT_EQ(futexes.BucketCount(), static_cast<size_t>(kAddrs));
  for (int i = 0; i < kAddrs; ++i) {
    EXPECT_EQ(futexes.Wake(0x1000 + i * 8, 1), 1);
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(futexes.WaiterCount(), 0u);
  EXPECT_EQ(futexes.BucketCount(), 0u) << futexes.DebugString();
}

INSTANTIATE_TEST_SUITE_P(ShardedAndGlobal, FutexModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "sharded" : "global";
                         });

// --- Syscall executor ---

class VirtualKernelTest : public ::testing::Test {
 protected:
  VirtualKernel kernel_;
  ProcessState process_{1000, 0x10000, 0x100000};

  int64_t Call(SyscallRequest& request) { return kernel_.Execute(process_, request).retval; }
};

TEST_F(VirtualKernelTest, OpenWriteReadRoundTrip) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "data.txt";
  open.arg0 = VOpenFlags::kRead | VOpenFlags::kWrite | VOpenFlags::kCreate;
  const int64_t fd = Call(open);
  ASSERT_GE(fd, 3);

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = fd;
  const std::string payload = "virtual kernel";
  write.in_data = Bytes(payload);
  EXPECT_EQ(Call(write), static_cast<int64_t>(payload.size()));

  SyscallRequest seek;
  seek.sysno = Sysno::kLseek;
  seek.arg0 = fd;
  seek.arg1 = 0;
  seek.arg2 = 0;  // SEEK_SET
  EXPECT_EQ(Call(seek), 0);

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = fd;
  std::vector<uint8_t> buffer(payload.size());
  read.out_data = buffer;
  EXPECT_EQ(Call(read), static_cast<int64_t>(payload.size()));
  EXPECT_EQ(std::string(buffer.begin(), buffer.end()), payload);
}

TEST_F(VirtualKernelTest, OpenWithoutCreateFails) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "missing";
  open.arg0 = VOpenFlags::kRead;
  EXPECT_EQ(Call(open), -ENOENT);
}

TEST_F(VirtualKernelTest, ReadBadFd) {
  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = 77;
  uint8_t buffer[4];
  read.out_data = buffer;
  EXPECT_EQ(Call(read), -EBADF);
}

TEST_F(VirtualKernelTest, PipePacksTwoFds) {
  SyscallRequest pipe;
  pipe.sysno = Sysno::kPipe;
  const int64_t packed = Call(pipe);
  ASSERT_GE(packed, 0);
  const int32_t rfd = static_cast<int32_t>(packed & 0xffffffff);
  const int32_t wfd = static_cast<int32_t>(packed >> 32);
  EXPECT_NE(rfd, wfd);

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = wfd;
  write.in_data = Bytes("xy");
  EXPECT_EQ(Call(write), 2);

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = rfd;
  uint8_t buffer[4];
  read.out_data = buffer;
  EXPECT_EQ(Call(read), 2);
}

TEST_F(VirtualKernelTest, GetrandomIsDeterministicPerSeed) {
  VirtualKernel kernel_a(7);
  VirtualKernel kernel_b(7);
  ProcessState process_a(1, 0x1000, 0x10000);
  ProcessState process_b(1, 0x1000, 0x10000);
  std::vector<uint8_t> buffer_a(16);
  std::vector<uint8_t> buffer_b(16);
  SyscallRequest request;
  request.sysno = Sysno::kGetrandom;
  request.out_data = buffer_a;
  kernel_a.Execute(process_a, request);
  request.out_data = buffer_b;
  kernel_b.Execute(process_b, request);
  EXPECT_EQ(buffer_a, buffer_b);
}

// Per-thread-set RNG streams: different logical tids draw from independent
// counted streams (no shared lock), and the same tid is reproducible across
// kernels regardless of what other tids drew in between.
TEST_F(VirtualKernelTest, GetrandomStreamsArePerTidAndOrderIndependent) {
  VirtualKernel kernel_a(7, /*sharded=*/true);
  VirtualKernel kernel_b(7, /*sharded=*/true);
  ProcessState process_a(1, 0x1000, 0x10000);
  ProcessState process_b(1, 0x1000, 0x10000);
  std::vector<uint8_t> tid1_a(16), tid2_a(16), tid1_b(16), noise(16);

  SyscallRequest request;
  request.sysno = Sysno::kGetrandom;
  request.tid = 1;
  request.out_data = tid1_a;
  kernel_a.Execute(process_a, request);
  request.tid = 2;
  request.out_data = tid2_a;
  kernel_a.Execute(process_a, request);

  // Kernel B interleaves tid 2 first; tid 1's stream must be unaffected.
  request.tid = 2;
  request.out_data = noise;
  kernel_b.Execute(process_b, request);
  request.tid = 1;
  request.out_data = tid1_b;
  kernel_b.Execute(process_b, request);

  EXPECT_EQ(tid1_a, tid1_b);
  EXPECT_NE(tid1_a, tid2_a);
}

TEST_F(VirtualKernelTest, ApplyReplicatedEffectAdvancesFileOffset) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "f";
  open.arg0 = VOpenFlags::kRead | VOpenFlags::kCreate;
  const int64_t fd = Call(open);
  kernel_.vfs().PutFile("f", {1, 2, 3, 4, 5});

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = fd;
  uint8_t buffer[3];
  read.out_data = buffer;
  SyscallResult master_result;
  master_result.retval = 3;
  kernel_.ApplyReplicatedEffect(process_, read, master_result);

  SyscallRequest seek;
  seek.sysno = Sysno::kLseek;
  seek.arg0 = fd;
  seek.arg1 = 0;
  seek.arg2 = 1;  // SEEK_CUR
  EXPECT_EQ(Call(seek), 3);
}

TEST_F(VirtualKernelTest, ApplyReplicatedEffectInstallsShadowAcceptFd) {
  SyscallRequest accept;
  accept.sysno = Sysno::kAccept;
  accept.arg0 = 3;
  SyscallResult master_result;
  master_result.retval = 4;
  const int64_t shadow_fd = kernel_.ApplyReplicatedEffect(process_, accept, master_result);
  EXPECT_EQ(shadow_fd, 3);  // First free fd in this fresh process.
}

TEST_F(VirtualKernelTest, ClockMonotonic) {
  SyscallRequest t;
  t.sysno = Sysno::kClockGettime;
  const int64_t first = Call(t);
  const int64_t second = Call(t);
  EXPECT_GE(second, first);
  SyscallRequest tsc;
  tsc.sysno = Sysno::kRdtsc;
  const int64_t tsc1 = Call(tsc);
  const int64_t tsc2 = Call(tsc);
  EXPECT_GT(tsc2, tsc1);
}

TEST_F(VirtualKernelTest, SyscallClassification) {
  EXPECT_EQ(ClassOf(Sysno::kRead), SyscallClass::kReplicated);
  EXPECT_EQ(ClassOf(Sysno::kFutex), SyscallClass::kReplicated);  // §4.1 fn 5.
  EXPECT_EQ(ClassOf(Sysno::kOpen), SyscallClass::kOrdered);
  EXPECT_EQ(ClassOf(Sysno::kMmap), SyscallClass::kOrdered);
  EXPECT_EQ(ClassOf(Sysno::kGettid), SyscallClass::kLocal);
  EXPECT_EQ(ClassOf(Sysno::kExit), SyscallClass::kControl);
  EXPECT_EQ(SensitivityOf(Sysno::kWrite), SyscallSensitivity::kSensitive);
  EXPECT_EQ(SensitivityOf(Sysno::kRead), SyscallSensitivity::kBenign);
}

TEST_F(VirtualKernelTest, ComparableDigestIgnoresLocalAddr) {
  SyscallRequest a;
  a.sysno = Sysno::kMprotect;
  a.logical_addr = 0x1000;
  a.local_addr = 0xAAAA0000;
  SyscallRequest b;
  b.sysno = Sysno::kMprotect;
  b.logical_addr = 0x1000;
  b.local_addr = 0xBBBB0000;  // Different raw address (ASLR).
  EXPECT_EQ(a.ComparableDigest(), b.ComparableDigest());
  b.logical_addr = 0x2000;
  EXPECT_NE(a.ComparableDigest(), b.ComparableDigest());
}

TEST_F(VirtualKernelTest, ComparableDigestCoversPayload) {
  SyscallRequest a;
  a.sysno = Sysno::kWrite;
  a.arg0 = 1;
  a.in_data = Bytes("hello");
  SyscallRequest b;
  b.sysno = Sysno::kWrite;
  b.arg0 = 1;
  b.in_data = Bytes("hellO");
  EXPECT_NE(a.ComparableDigest(), b.ComparableDigest());
}

// --- Wait-queue readiness edges (docs/DESIGN.md §7) ---

class WaitQueueKernelTest : public ::testing::Test {
 protected:
  VirtualKernel kernel_{42, /*sharded=*/true};
  ProcessState process_{1000, 0x10000, 0x100000, /*sharded_vkernel=*/true};

  std::pair<int32_t, int32_t> MakePipe() {
    SyscallRequest pipe;
    pipe.sysno = Sysno::kPipe;
    const int64_t packed = kernel_.Execute(process_, pipe).retval;
    EXPECT_GE(packed, 0);
    return {static_cast<int32_t>(packed & 0xffffffff), static_cast<int32_t>(packed >> 32)};
  }

  // One poll entry: (int32 fd, uint8 events), per the sys_poll payload ABI.
  SyscallResult Poll(int32_t fd, uint8_t events, int64_t timeout_ms,
                     std::vector<uint8_t>* payload, std::vector<uint8_t>* revents) {
    payload->resize(5);
    std::memcpy(payload->data(), &fd, sizeof(fd));
    (*payload)[4] = events;
    revents->assign(1, 0);
    SyscallRequest poll;
    poll.sysno = Sysno::kPoll;
    poll.arg0 = 1;
    poll.arg1 = timeout_ms;
    poll.in_data = *payload;
    poll.out_data = *revents;
    return kernel_.Execute(process_, poll);
  }
};

// A poll parked on an idle pipe must be woken by the write itself — no
// timeout, no sleep quantum — and the wakeup must show up in the stats.
TEST_F(WaitQueueKernelTest, PipeWriteWakesParkedPoll) {
  const auto [rfd, wfd] = MakePipe();
  const uint64_t wakeups_before = kernel_.stats().waitq_wakeups;

  std::atomic<int64_t> poll_result{-1};
  std::thread poller([&] {
    std::vector<uint8_t> payload, revents;
    const SyscallResult result =
        Poll(rfd, PollEvents::kIn, /*timeout_ms=*/-1, &payload, &revents);
    EXPECT_EQ(result.retval, 1);
    EXPECT_EQ(revents[0], PollEvents::kIn);
    poll_result.store(result.retval);
  });

  // Give the poller time to scan (not ready) and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(poll_result.load(), -1);

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = wfd;
  write.in_data = Bytes("!");
  EXPECT_EQ(kernel_.Execute(process_, write).retval, 1);
  poller.join();
  EXPECT_EQ(poll_result.load(), 1);
  EXPECT_GT(kernel_.stats().waitq_wakeups, wakeups_before);
  EXPECT_GT(kernel_.stats().waitq_waits, 0u);
}

// fd reuse racing a poll: one thread polls the same descriptor number in a
// loop while another closes and reopens it. The generation-tagged leases
// must keep every scan memory-safe; verdicts may legitimately vary between
// "ready file" and "hangup" depending on what the number points at.
TEST_F(WaitQueueKernelTest, FdReuseAcrossCloseOpenRacingPoll) {
  kernel_.vfs().PutFile("racer", {1, 2, 3});
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> polls{0};

  std::thread poller([&] {
    std::vector<uint8_t> payload, revents;
    while (!stop.load(std::memory_order_relaxed)) {
      // fd 3: the number both the churner's open() and pipe read end land on.
      const SyscallResult result = Poll(3, PollEvents::kIn, /*timeout_ms=*/0,
                                        &payload, &revents);
      ASSERT_GE(result.retval, 0);
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Churn until the poller has interleaved with the close/open cycle a few
  // hundred times (bounded by a deadline so a starved scheduler cannot hang
  // the test). On a one-core host the pacing is what creates the race.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (polls.load(std::memory_order_relaxed) < 300 &&
         std::chrono::steady_clock::now() < deadline) {
    SyscallRequest open;
    open.sysno = Sysno::kOpen;
    open.path = "racer";
    open.arg0 = VOpenFlags::kRead;
    const int64_t fd = kernel_.Execute(process_, open).retval;
    ASSERT_EQ(fd, 3);
    SyscallRequest close;
    close.sysno = Sysno::kClose;
    close.arg0 = fd;
    ASSERT_EQ(kernel_.Execute(process_, close).retval, 0);
  }
  stop.store(true);
  poller.join();
  EXPECT_GT(polls.load(), 0u);
}

// AcceptBlocking with nothing pending must park on the listener's wait queue
// and be released by ShutdownBlockedCalls — the one-registry teardown drain.
TEST_F(WaitQueueKernelTest, ShutdownBlockedCallsWakesAccept) {
  SyscallRequest socket;
  socket.sysno = Sysno::kSocket;
  const int64_t sfd = kernel_.Execute(process_, socket).retval;
  ASSERT_GE(sfd, 0);
  SyscallRequest bind;
  bind.sysno = Sysno::kBind;
  bind.arg0 = sfd;
  bind.arg1 = 7777;
  ASSERT_EQ(kernel_.Execute(process_, bind).retval, 0);
  SyscallRequest listen;
  listen.sysno = Sysno::kListen;
  listen.arg0 = sfd;
  listen.arg1 = 8;
  ASSERT_EQ(kernel_.Execute(process_, listen).retval, 0);

  std::atomic<int64_t> accept_error{1};
  std::thread acceptor([&] {
    int64_t error = 0;
    auto conn = kernel_.AcceptBlocking(process_, static_cast<int32_t>(sfd), &error);
    EXPECT_EQ(conn, nullptr);
    accept_error.store(error);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(accept_error.load(), 1);  // Still blocked.
  kernel_.ShutdownBlockedCalls();
  acceptor.join();
  EXPECT_EQ(accept_error.load(), -ECONNABORTED);
}

// The seed kept a grow-forever weak_ptr list of every pipe ever created; the
// wait registry free-lists its slots, so churn must not grow the table.
TEST_F(WaitQueueKernelTest, RegistrySlotsAreReusedUnderPipeChurn) {
  const size_t slots_before = kernel_.wait_registry().SlotCount();
  for (int i = 0; i < 1000; ++i) {
    const auto [rfd, wfd] = MakePipe();
    SyscallRequest close;
    close.sysno = Sysno::kClose;
    close.arg0 = rfd;
    ASSERT_EQ(kernel_.Execute(process_, close).retval, 0);
    close.arg0 = wfd;
    ASSERT_EQ(kernel_.Execute(process_, close).retval, 0);
  }
  // Both descriptors closed => the pipe is destroyed and its slot freed.
  EXPECT_LE(kernel_.wait_registry().SlotCount(), slots_before + 2);
  EXPECT_EQ(kernel_.wait_registry().LiveCount(),
            1u);  // The futex table's own registration.
}

// --- Toggle equivalence: the sharded kernel and the baseline must produce
// identical program-visible behaviour under a full MVEE run ---

std::string ShardedSweepResult(bool sharded_vkernel) {
  MveeOptions options;
  options.num_variants = 2;
  options.sharded_vkernel = sharded_vkernel;
  Mvee mvee(options);
  mvee.kernel().vfs().PutFile("sweep_in", std::vector<uint8_t>(48, 0x5a));
  const Status status = mvee.Run([](VariantEnv& env) {
    std::string out;
    // Files: open/read/lseek/dup/stat/unlink.
    const int64_t fd = env.Open("sweep_in", VOpenFlags::kRead);
    std::vector<uint8_t> buffer(16);
    out += std::to_string(env.Read(fd, buffer)) + ",";
    out += std::to_string(env.Lseek(fd, 0, 0)) + ",";
    const int64_t dup = env.Dup(fd);
    out += std::to_string(dup) + ",";
    out += std::to_string(env.Stat("sweep_in")) + ",";
    env.Close(dup);
    env.Close(fd);
    // Pipes + poll readiness.
    auto [rfd, wfd] = env.Pipe();
    env.Write(wfd, "pipe!");
    VariantEnv::PollFd pfd;
    pfd.fd = static_cast<int32_t>(rfd);
    pfd.events = PollEvents::kIn;
    out += std::to_string(env.Poll({&pfd, 1}, -1)) + ",";
    out += std::to_string(static_cast<int>(pfd.revents)) + ",";
    out += std::to_string(env.Read(rfd, buffer)) + ",";
    env.Close(rfd);
    env.Close(wfd);
    // Randomness: the value is mode-dependent (per-tid streams vs the global
    // stream) but the shape is not; record only the length.
    out += std::to_string(env.Getrandom(buffer)) + ",";
    // Network echo through listener/connect/accept.
    const int64_t server = env.Socket();
    env.Bind(server, 9321);
    env.Listen(server, 4);
    const int64_t client = env.Socket();
    out += std::to_string(env.Connect(client, 9321)) + ",";
    const int64_t conn = env.Accept(server);
    env.Send(client, "hello");
    out += std::to_string(env.Recv(conn, buffer)) + ",";
    env.Shutdown(conn);
    env.Shutdown(client);
    env.Shutdown(server);
    const int64_t result = env.Open("sweep_out", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(result, out);
    env.Close(result);
  });
  EXPECT_TRUE(status.ok()) << status.ToString() << " (sharded=" << sharded_vkernel << ")";
  auto file = mvee.kernel().vfs().Open("sweep_out", false);
  if (file == nullptr) {
    return "<missing>";
  }
  const auto contents = file->Contents();
  return std::string(contents.begin(), contents.end());
}

TEST(ShardedVkernelToggleTest, VerdictAndOutputEquivalence) {
  const std::string sharded = ShardedSweepResult(true);
  const std::string baseline = ShardedSweepResult(false);
  EXPECT_FALSE(sharded.empty());
  EXPECT_EQ(sharded, baseline);
}

// Wait-queue wakeups must be visible in the run report when a poll blocks
// across a rendezvous (the "no more spin-polling" acceptance signal).
TEST(ShardedVkernelToggleTest, ReportExposesWaitQueueWakeups) {
  MveeOptions options;
  options.num_variants = 2;
  options.sharded_vkernel = true;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto [rfd, wfd] = env.Pipe();
    std::vector<ThreadHandle> handles;
    handles.push_back(env.Spawn([rfd = rfd](VariantEnv& wenv) {
      VariantEnv::PollFd pfd;
      pfd.fd = static_cast<int32_t>(rfd);
      pfd.events = PollEvents::kIn;
      wenv.Poll({&pfd, 1}, -1);  // Parks until the writer fires.
      std::vector<uint8_t> buffer(8);
      wenv.Read(rfd, buffer);
    }));
    env.NanosleepNanos(30'000'000);  // Let the poller park first.
    env.Write(wfd, "x");
    env.Join(handles[0]);
    env.Close(rfd);
    env.Close(wfd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(mvee.report().vkernel_waitq_wakeups, 0u);
}

}  // namespace
}  // namespace mvee
