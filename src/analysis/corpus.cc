#include "mvee/analysis/corpus.h"

#include <string>

#include "mvee/util/hash.h"
#include "mvee/util/rng.h"

namespace mvee {

std::vector<CorpusSpec> Table3Specs() {
  // Counts from paper Table 3.
  return {
      {"libc-2.19.so", 319, 409, 94, 600, 400},
      {"libpthreads-2.19.so", 163, 81, 160, 120, 150},
      {"libgomp.so", 68, 38, 13, 90, 80},
      {"libstdc++.so", 162, 3, 25, 300, 250},
      {"bodytrack", 201, 0, 8, 500, 700},
      {"facesim", 385, 0, 8, 800, 900},
      {"raytrace", 170, 0, 8, 400, 600},
      {"vips", 4, 0, 6, 350, 300},
  };
}

MirModule BuildSyntheticModule(const CorpusSpec& spec, uint64_t seed) {
  MirBuilder builder(spec.module_name);
  Rng rng(seed ^ FnvHashBytes(spec.module_name, std::string(spec.module_name).size()));

  // Sync variables: a pool shared by the atomic sites, so stage 2 has real
  // aliasing structure to resolve (several sites per variable, pointer
  // copies in between).
  const size_t sync_object_count = 1 + (spec.type_i + spec.type_ii) / 8;
  std::vector<int32_t> sync_objects;
  std::vector<int32_t> sync_pointers;  // One canonical pointer per object.
  builder.Function(std::string(spec.module_name) + "::atomics");
  for (size_t i = 0; i < sync_object_count; ++i) {
    const int32_t object =
        builder.Object("sync_var_" + std::to_string(i), MirStorage::kGlobal);
    const int32_t pointer = builder.Reg();
    builder.AddrOf(pointer, object, "sync.c:" + std::to_string(10 + i));
    sync_objects.push_back(object);
    sync_pointers.push_back(pointer);
  }

  // Type (i) sites: LOCK RMW through a (possibly copied) pointer.
  for (size_t i = 0; i < spec.type_i; ++i) {
    const int32_t base = sync_pointers[rng.NextBelow(sync_pointers.size())];
    int32_t pointer = base;
    if (rng.NextBool(0.5)) {
      pointer = builder.Reg();
      builder.Mov(pointer, base);
    }
    builder.LockRmw(pointer, "lock.c:" + std::to_string(100 + i));
  }

  // Type (ii) sites: XCHG.
  for (size_t i = 0; i < spec.type_ii; ++i) {
    const int32_t base = sync_pointers[rng.NextBelow(sync_pointers.size())];
    builder.Xchg(base, "xchg.c:" + std::to_string(300 + i));
  }

  // Type (iii) sites: aligned load/store reached through pointer chains that
  // alias the sync variables (unlock stores, state reads).
  for (size_t i = 0; i < spec.type_iii; ++i) {
    const int32_t base = sync_pointers[rng.NextBelow(sync_pointers.size())];
    const int32_t alias = builder.Reg();
    if (rng.NextBool(0.3)) {
      builder.Gep(alias, base);  // Field access into the sync object.
    } else {
      builder.Mov(alias, base);
    }
    if (rng.NextBool(0.5)) {
      builder.Store(alias, "unlock.c:" + std::to_string(500 + i));
    } else {
      builder.Load(alias, "read.c:" + std::to_string(500 + i));
    }
  }

  // Noise: private objects with their own loads/stores. The analysis must
  // leave every one of these unmarked.
  builder.Function(std::string(spec.module_name) + "::noise");
  for (size_t i = 0; i < spec.noise_memops; ++i) {
    const bool on_heap = rng.NextBool(0.5);
    const int32_t object = builder.Object("private_" + std::to_string(i),
                                          on_heap ? MirStorage::kHeap : MirStorage::kStack);
    const int32_t pointer = builder.Reg();
    if (on_heap) {
      builder.Alloc(pointer, object);
    } else {
      builder.AddrOf(pointer, object);
    }
    if (rng.NextBool(0.5)) {
      builder.Load(pointer, "noise.c:" + std::to_string(i));
    } else {
      builder.Store(pointer, "noise.c:" + std::to_string(i));
    }
  }
  for (size_t i = 0; i < spec.noise_computes; ++i) {
    builder.Compute("math.c:" + std::to_string(i));
  }

  return builder.Build();
}

std::vector<MirModule> BuildTable3Corpus() {
  std::vector<MirModule> corpus;
  for (const auto& spec : Table3Specs()) {
    corpus.push_back(BuildSyntheticModule(spec));
  }
  return corpus;
}

MirModule BuildListing1Module() {
  // int spinlock;
  // spinlock_lock:   while (!CAS(ptr, 0, 1)) sched_yield();   // LOCK CMPXCHG
  // spinlock_unlock: *ptr = 0;                                // plain store
  MirBuilder builder("listing1_spinlock");
  const int32_t spinlock = builder.Object("spinlock", MirStorage::kGlobal);
  builder.Function("spinlock_lock");
  const int32_t lock_ptr = builder.Reg();
  builder.AddrOf(lock_ptr, spinlock, "listing1.c:12");
  builder.LockRmw(lock_ptr, "listing1.c:4");
  builder.Function("spinlock_unlock");
  const int32_t unlock_ptr = builder.Reg();
  builder.Mov(unlock_ptr, lock_ptr, "listing1.c:8");
  builder.Store(unlock_ptr, "listing1.c:9");
  // A bystander store that must not be marked.
  builder.Function("unrelated");
  const int32_t other = builder.Object("counter", MirStorage::kGlobal);
  const int32_t other_ptr = builder.Reg();
  builder.AddrOf(other_ptr, other);
  builder.Store(other_ptr, "listing1.c:20");
  return builder.Build();
}

MirModule BuildListing2Module() {
  // volatile int flag;
  // signal_thread:        flag = 1;       // plain store
  // wait_until_signaled:  while(!flag);   // plain load
  MirBuilder builder("listing2_condvar");
  const int32_t flag =
      builder.Object("flag", MirStorage::kGlobal, /*is_volatile=*/true);
  builder.Function("signal_thread");
  const int32_t store_ptr = builder.Reg();
  builder.AddrOf(store_ptr, flag, "listing2.c:3");
  builder.Store(store_ptr, "listing2.c:4");
  builder.Function("wait_until_signaled");
  const int32_t load_ptr = builder.Reg();
  builder.AddrOf(load_ptr, flag, "listing2.c:7");
  builder.Load(load_ptr, "listing2.c:8");
  return builder.Build();
}

MirModule BuildAsmViolationModule() {
  MirBuilder builder("asm_violation");
  const int32_t var = builder.Object("qualified_lock", MirStorage::kGlobal,
                                     /*is_volatile=*/false, /*atomic_qualified=*/true);
  builder.Function("bad_asm");
  const int32_t pointer = builder.Reg();
  builder.AddrOf(pointer, var, "asm.c:5");
  builder.AsmBlock(pointer, "asm.c:6");
  return builder.Build();
}

InterprocCorpus BuildInterprocModule(const InterprocSpec& spec, uint64_t seed) {
  InterprocCorpus corpus;
  MirBuilder builder(spec.module_name);
  Rng rng(seed ^ FnvHashBytes(spec.module_name, std::string(spec.module_name).size()));

  // Shared sync-variable pool.
  std::vector<int32_t> pool;
  pool.reserve(spec.pool_size);
  for (size_t i = 0; i < spec.pool_size; ++i) {
    pool.push_back(builder.Object("pool_" + std::to_string(i), MirStorage::kGlobal));
  }

  // Declare the whole ring up front (two pointer params each: the ring value
  // and the escape channel), then fill bodies via Select — worker_k's call
  // target worker_{k+1} must exist before the call is emitted.
  std::vector<int32_t> functions(spec.workers);
  std::vector<int32_t> ring_params(spec.workers);
  std::vector<int32_t> escape_params(spec.workers);
  for (size_t k = 0; k < spec.workers; ++k) {
    functions[k] = builder.Function("worker_" + std::to_string(k));
    ring_params[k] = builder.Param();
    escape_params[k] = builder.Param();
  }

  for (size_t k = 0; k < spec.workers; ++k) {
    builder.Select(functions[k]);
    const std::string tag = std::to_string(k);

    // Seed the ring with pool addresses and RMW them: pool objects become
    // sync variables, and the Mov into the param injects them into the
    // ring-wide copy cycle.
    for (size_t s = 0; s < spec.sites_per_worker; ++s) {
      const int32_t object = pool[rng.NextBelow(pool.size())];
      const int32_t pointer = builder.Reg();
      builder.AddrOf(pointer, object, "seed.c:" + tag);
      builder.Mov(ring_params[k], pointer);
      builder.LockRmw(pointer, "lock.c:" + tag + "_" + std::to_string(s));
    }

    // Aliasing sites: copies of the ring param with plain memops — type
    // (iii) against whatever the ring carries by the time the fixpoint ends.
    for (size_t a = 0; a < spec.alias_regs_per_worker; ++a) {
      const int32_t alias = builder.Reg();
      builder.Mov(alias, ring_params[k]);
      for (size_t m = 0; m < spec.memops_per_alias; ++m) {
        if (rng.NextBool(0.5)) {
          builder.Store(alias, "ring.c:" + tag);
        } else {
          builder.Load(alias, "ring.c:" + tag);
        }
      }
    }

    // The escape channel: store through whatever the previous worker passed.
    builder.Store(escape_params[k], "escape.c:" + tag);

    // Escaping stack local: RMW'd here, address passed to the next worker.
    int32_t escape_arg = builder.Reg();  // Empty pts when nothing escapes.
    if (k < spec.escaping_locals) {
      const int32_t local = builder.Object("escaping_local_" + tag, MirStorage::kStack);
      const int32_t local_ptr = builder.Reg();
      builder.AddrOf(local_ptr, local, "local.c:" + tag);
      builder.LockRmw(local_ptr, "local.c:" + tag + "_rmw");
      corpus.escaping_objects.push_back(local);
      escape_arg = local_ptr;
    }

    // Private noise: must stay unmarked. "noise:" source lines are the
    // ground truth the precision metric counts against.
    for (size_t n = 0; n < spec.noise_per_worker; ++n) {
      const bool on_heap = rng.NextBool(0.5);
      const int32_t object =
          builder.Object("noise_" + tag + "_" + std::to_string(n),
                         on_heap ? MirStorage::kHeap : MirStorage::kStack);
      const int32_t pointer = builder.Reg();
      if (on_heap) {
        builder.Alloc(pointer, object);
      } else {
        builder.AddrOf(pointer, object);
      }
      if (rng.NextBool(0.5)) {
        builder.Load(pointer, "noise:" + tag);
      } else {
        builder.Store(pointer, "noise:" + tag);
      }
      ++corpus.noise_memops;
    }

    // Conflated noise: one register holds both the ring's sync addresses and
    // the noise object's address. Subset-based analyses keep pts(probe) =
    // {noise}; unification merges the noise object into the ring's sync
    // class and marks the probe access — a spurious type (iii) mark.
    if (k < spec.conflated_noise) {
      const int32_t object = builder.Object("conflated_noise_" + tag, MirStorage::kStack);
      const int32_t both = builder.Reg();
      builder.Mov(both, ring_params[k]);
      builder.AddrOf(both, object);
      const int32_t probe = builder.Reg();
      builder.AddrOf(probe, object);
      builder.Load(probe, "noise:conflated_" + tag);
      ++corpus.noise_memops;
    }

    // Close the ring.
    const size_t next = (k + 1) % spec.workers;
    builder.Call(-1, builder.FunctionObject(functions[next]),
                 {ring_params[k], escape_arg}, "call.c:" + tag);
  }

  // Dispatcher: indirect calls through fptrs holding several worker
  // addresses — callees resolve only inside the points-to fixpoint.
  builder.Function("dispatch");
  for (size_t site = 0; site < spec.fp_sites; ++site) {
    const int32_t fptr = builder.Reg();
    for (size_t f = 0; f < spec.fp_fanout; ++f) {
      const int32_t target = functions[rng.NextBelow(spec.workers)];
      builder.AddrOf(fptr, builder.FunctionObject(target),
                     "dispatch.c:" + std::to_string(site));
    }
    const int32_t arg = builder.Reg();
    builder.AddrOf(arg, pool[rng.NextBelow(pool.size())]);
    const int32_t no_escape = builder.Reg();
    builder.CallIndirect(-1, fptr, {arg, no_escape},
                         "dispatch.c:" + std::to_string(site));
  }

  corpus.module = builder.Build();
  return corpus;
}

std::vector<InterprocSpec> ScaledInterprocSpecs() {
  std::vector<InterprocSpec> specs(3);
  specs[0] = {"interproc-10k", 32, 128, 64, 16, 2, 16, 4, 4, 3, 4};
  specs[1] = {"interproc-40k", 64, 256, 128, 24, 4, 24, 8, 8, 3, 8};
  specs[2] = {"interproc-120k", 128, 256, 192, 32, 6, 48, 8, 8, 3, 8};
  return specs;
}

RefcountHeapCorpus BuildRefcountHeapModule(size_t nodes, size_t payload_fields,
                                           size_t accesses_per_field) {
  // struct node { atomic<int> refcount; /* field 0 */
  //               T data[payload];      /* fields 1..payload */ };
  // node* n = new node;
  // __atomic_add_fetch(&n->refcount, 1);   // LOCK XADD, field 0
  // n->data[k] = ...; ... = n->data[k];    // plain member accesses
  RefcountHeapCorpus corpus;
  MirBuilder builder("stl_refcount_heap");
  builder.Function("shared_container_ops");
  for (size_t node = 0; node < nodes; ++node) {
    const int32_t object =
        builder.Object("node" + std::to_string(node), MirStorage::kHeap);
    const int32_t base = builder.Reg();
    builder.Alloc(base, object, "stl.h:100");

    // Refcount manipulation: member select of field 0, then LOCK XADD, plus
    // one plain reload of the counter (a genuine type (iii) access).
    const int32_t refcount_ptr = builder.Reg();
    builder.GepField(refcount_ptr, base, 0, "stl.h:110");
    builder.LockRmw(refcount_ptr, "stl.h:111");
    builder.Load(refcount_ptr, "stl.h:112");
    ++corpus.real_type_iii;

    // Payload traffic: member selects of fields 1..payload, plain accesses.
    for (size_t field = 1; field <= payload_fields; ++field) {
      const int32_t field_ptr = builder.Reg();
      builder.GepField(field_ptr, base, static_cast<int32_t>(field), "stl.h:120");
      for (size_t access = 0; access < accesses_per_field; ++access) {
        if (access % 2 == 0) {
          builder.Store(field_ptr, "stl.h:121");
        } else {
          builder.Load(field_ptr, "stl.h:122");
        }
        ++corpus.payload_memops;
      }
    }
  }
  corpus.module = builder.Build();
  return corpus;
}

}  // namespace mvee
