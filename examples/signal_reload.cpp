// Deterministic signal delivery: a SIGHUP-style config reload under the MVEE.
//
//   $ ./signal_reload
//
// A server-ish program serves requests from worker threads while the
// operator sends it an asynchronous "reload configuration" signal. Under a
// naive MVEE this is a divergence time bomb: the kernel would deliver the
// signal to each variant at a different point, the variants would reload
// config between different requests, and their responses would differ. Here
// the monitor defers delivery to the lockstep rendezvous, so every variant
// reloads between the *same* two requests — the run stays divergence-free
// and the served responses are identical across variants by construction
// (the MVEE's output comparison proves it).

#include <cstdio>
#include <memory>
#include <string>

#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/log.h"

using namespace mvee;

namespace {

constexpr int32_t kSigReload = 1;  // "SIGHUP"
constexpr int kRequests = 40;

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);

  MveeOptions options;
  options.num_variants = 3;
  options.agent = AgentKind::kWallOfClocks;

  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    struct Server {
      Mutex lock;
      int config_version = 1;
      std::string responses;  // "v1 v1 v2 v2 ..." — the served versions.
      InstrumentedAtomic<int32_t> served{0};
    };
    auto server = std::make_shared<Server>();

    // The reload handler: bumps the config version. Delivered at the same
    // request boundary in every variant.
    env.Sigaction(kSigReload, [server](VariantEnv&) {
      LockGuard<Mutex> guard(server->lock);
      ++server->config_version;
    });

    // Two workers serve "requests"; each response records which config
    // version it was served under.
    auto worker = [server](VariantEnv& wenv) {
      while (true) {
        const int32_t index = server->served.FetchAdd(1);
        if (index >= kRequests) {
          break;
        }
        {
          LockGuard<Mutex> guard(server->lock);
          server->responses += "v" + std::to_string(server->config_version) + " ";
        }
        wenv.Gettid();  // The request's syscall — and a delivery point.
        if (index == kRequests / 2) {
          // Mid-run, the "operator" (here: the program itself, so the demo
          // is self-contained) sends the reload signal to the main thread.
          wenv.Kill(/*tid=*/0, kSigReload);
        }
      }
    };
    ThreadHandle worker_a = env.Spawn(worker);
    ThreadHandle worker_b = env.Spawn(worker);

    // Main thread pumps syscalls (its rendezvous are the delivery points)
    // until the reload landed and all requests are served.
    int spins = 0;
    while (spins++ < 1000) {
      env.Gettid();
      LockGuard<Mutex> guard(server->lock);
      if (server->config_version > 1 && server->served.Load() >= kRequests) {
        break;
      }
    }
    env.Join(worker_a);
    env.Join(worker_b);

    // Publish the full response log: the lockstep write comparison fails if
    // any variant reloaded at a different request boundary.
    const int64_t fd = env.Open("result/responses",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, server->responses);
    env.Close(fd);
  });

  if (!status.ok()) {
    std::printf("divergence: %s\n", status.ToString().c_str());
    return 1;
  }
  auto file = mvee.kernel().vfs().Open("result/responses", false);
  const auto bytes = file->Contents();
  const std::string responses(bytes.begin(), bytes.end());
  std::printf("3 variants served %d requests with a mid-run reload, no divergence.\n"
              "responses (identical in every variant): %s\n",
              kRequests, responses.c_str());
  const bool saw_v2 = responses.find("v2") != std::string::npos;
  std::printf("reload %s\n", saw_v2 ? "took effect mid-stream" : "not observed (!)");
  return saw_v2 ? 0 : 1;
}
