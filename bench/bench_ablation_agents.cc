// Ablations over the design choices docs/DESIGN.md §5 calls out:
//   1. wall-of-clocks wall size: clock_count 1 -> TO-like full serialization,
//      large walls -> fewer hash collisions, less spurious serialization
//      (§4.5's m-to-1 collision discussion);
//   2. sync-buffer capacity: producer backpressure when the master runs far
//      ahead of the slaves;
//   3. partial-order lookahead window: scan cost vs stall avoidance.

#include <cstdio>

#include "bench/common.h"

namespace {

using namespace mvee;
using namespace mvee::bench;

double RunWithConfig(const WorkloadConfig& config, double scale, AgentKind agent,
                     size_t clock_count, size_t buffer_capacity,
                     size_t po_window = 1 << 12, uint64_t* replay_stalls = nullptr,
                     bool sharded_recording = DefaultShardedRecording()) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = agent;
  options.enable_aslr = false;
  options.rendezvous_timeout = std::chrono::milliseconds(120000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
  options.agent_config.clock_count = clock_count;
  options.agent_config.buffer_capacity = buffer_capacity;
  options.agent_config.po_window = po_window;
  options.agent_config.sharded_recording = sharded_recording;
  Mvee mvee(options);
  const bool ok = mvee.Run(MakeWorkloadProgram(config, scale)).ok();
  if (replay_stalls != nullptr) {
    *replay_stalls = mvee.report().replay_stalls;
  }
  return ok ? mvee.report().wall_seconds : -1.0;
}

}  // namespace

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  const double scale = BenchScale(2.0);
  const WorkloadConfig* contended = FindWorkload("fluidanimate");
  const WorkloadConfig* queued = FindWorkload("radiosity");

  PrintHeader("Ablation 1: wall-of-clocks wall size (fluidanimate stand-in)");
  const NativeRun native = RunNative(*contended, scale);
  std::printf("native: %.3fs\n", native.seconds);
  for (size_t clocks : {1UL, 16UL, 256UL, 4096UL, 65536UL}) {
    const double seconds =
        RunWithConfig(*contended, scale, AgentKind::kWallOfClocks, clocks, 1 << 16);
    std::printf("clock_count=%-6zu  %.3fs  (%.2fx native)%s\n", clocks, seconds,
                native.seconds > 0 ? seconds / native.seconds : 0,
                clocks == 1 ? "   <- degenerates toward total-order" : "");
    std::fflush(stdout);
  }

  PrintHeader("Ablation 2: sync buffer capacity (radiosity stand-in, WoC)");
  const NativeRun native_q = RunNative(*queued, scale);
  std::printf("native: %.3fs\n", native_q.seconds);
  for (size_t capacity : {1UL << 6, 1UL << 10, 1UL << 14, 1UL << 16}) {
    const double seconds =
        RunWithConfig(*queued, scale, AgentKind::kWallOfClocks, 4096, capacity);
    std::printf("buffer_capacity=%-6zu  %.3fs  (%.2fx native)\n", capacity, seconds,
                native_q.seconds > 0 ? seconds / native_q.seconds : 0);
    std::fflush(stdout);
  }

  PrintHeader("Ablation 3: agent comparison on the same kernels");
  for (const auto* config : {contended, queued}) {
    const NativeRun base = RunNative(*config, scale);
    std::printf("%-14s native=%.3fs", config->name, base.seconds);
    for (AgentKind agent : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                            AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
      const double seconds = RunWithConfig(*config, scale, agent, 4096, 1 << 16);
      std::printf("  %s=%.2fx", AgentKindName(agent),
                  base.seconds > 0 ? seconds / base.seconds : 0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  PrintHeader("Ablation 4: WoC hash collisions vs per-variable private clocks");
  // Per-variable-order is WoC's collision-free limit (one preallocated clock
  // per sync variable). The gap between the two at a given wall size is the
  // cost of the paper's m-to-1 hash collisions (§4.5, last paragraph).
  for (const auto* config : {contended, queued}) {
    const NativeRun base = RunNative(*config, scale);
    std::printf("%-14s native=%.3fs\n", config->name, base.seconds);
    for (size_t clocks : {16UL, 256UL, 4096UL}) {
      const double woc = RunWithConfig(*config, scale, AgentKind::kWallOfClocks, clocks, 1 << 16);
      const double pvo =
          RunWithConfig(*config, scale, AgentKind::kPerVariableOrder, clocks, 1 << 16);
      std::printf("  clock_count=%-6zu  woc=%.2fx  per-variable=%.2fx  collision-cost=%+.1f%%\n",
                  clocks, base.seconds > 0 ? woc / base.seconds : 0,
                  base.seconds > 0 ? pvo / base.seconds : 0,
                  pvo > 0 ? (woc / pvo - 1.0) * 100.0 : 0.0);
      std::fflush(stdout);
    }
  }

  PrintHeader("Ablation 5: partial-order lookahead window (streamcluster stand-in)");
  // The paper: "the agents in the slave threads have to scan a window ... in
  // the buffer to look ahead" (§4.5). Window 1 degenerates to total-order
  // replay; large windows buy stall-freedom with scan cost and staleness.
  // (A moderate-sync-rate kernel: on the heaviest stand-ins, window <= 4
  // serializes ~1M ops through spin handoffs and trips the replay deadline
  // on this host — the PO scalability pathology in its purest form.)
  // Pinned to the sharded recording path: the master-side window gate
  // (GateOnReplayWindow, docs/DESIGN.md §8) bounds record run-ahead against
  // the slaves' min replayed prefix, so po_window is enforced — and this
  // sweep is meaningful — even without the global record lock's natural
  // backpressure.
  {
    const WorkloadConfig* moderate = FindWorkload("streamcluster");
    const NativeRun base = RunNative(*moderate, scale);
    std::printf("native: %.3fs\n", base.seconds);
    for (size_t window : {1UL, 4UL, 64UL, 1024UL, 4096UL}) {
      uint64_t stalls = 0;
      const double seconds = RunWithConfig(*moderate, scale, AgentKind::kPartialOrder,
                                           4096, 1 << 16, window, &stalls,
                                           /*sharded_recording=*/true);
      if (seconds < 0) {
        std::printf("po_window=%-6zu  TIMEOUT (replay deadline; TO-like serialization "
                    "too slow at this op rate)\n", window);
      } else {
        std::printf("po_window=%-6zu  %.3fs  (%.2fx native)  replay_stalls=%llu%s\n", window,
                    seconds, base.seconds > 0 ? seconds / base.seconds : 0,
                    static_cast<unsigned long long>(stalls),
                    window == 1 ? "   <- degenerates toward total-order" : "");
      }
      std::fflush(stdout);
    }
  }

  PrintHeader("Ablation 6: synchronization model — lockstep vs loose (VARAN-style, §2)");
  for (const char* name : {"ferret", "streamcluster"}) {
    const WorkloadConfig* config = FindWorkload(name);
    const NativeRun base = RunNative(*config, scale);
    std::printf("%-14s native=%.3fs", config->name, base.seconds);
    for (SyncModel model : {SyncModel::kLockstep, SyncModel::kLoose}) {
      MveeOptions options;
      options.num_variants = 2;
      options.agent = AgentKind::kWallOfClocks;
      options.sync_model = model;
      options.enable_aslr = false;
      options.rendezvous_timeout = std::chrono::milliseconds(120000);
      options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
      Mvee mvee(options);
      const bool ok = mvee.Run(MakeWorkloadProgram(*config, scale)).ok();
      std::printf("  %s=%.2fx%s", model == SyncModel::kLockstep ? "lockstep" : "loose",
                  ok && base.seconds > 0 ? mvee.report().wall_seconds / base.seconds : 0.0,
                  ok ? "" : "(FAIL)");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  PrintHeader("Ablation 7: TO/PO recording path — ticketed per-thread rings vs global lock");
  // AgentConfig::sharded_recording (docs/DESIGN.md §8): the same workloads
  // replicated through both recording paths in one run. The baseline's
  // single master lock serializes every recorded op; the sharded path's
  // only global touch is one fetch_add per op, and the PO slave's window
  // scan collapses to an O(1) recorded-edge check.
  for (const auto* config : {contended, queued}) {
    const NativeRun base = RunNative(*config, scale);
    std::printf("%-14s native=%.3fs", config->name, base.seconds);
    for (AgentKind agent : {AgentKind::kTotalOrder, AgentKind::kPartialOrder}) {
      for (bool sharded : {false, true}) {
        const double seconds = RunWithConfig(*config, scale, agent, 4096, 1 << 16,
                                             1 << 12, nullptr, sharded);
        std::printf("  %s/%s=%.2fx", AgentKindName(agent), sharded ? "sharded" : "locked",
                    base.seconds > 0 && seconds > 0 ? seconds / base.seconds : 0);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  return 0;
}
