// Wave-propagation Andersen solver (Hardekopf & Lin, "The Ant and the
// Grasshopper", adapted).
//
// The textbook solver (andersen.cc's baseline engine) pops one register at a
// time and re-inserts its whole points-to set into every successor — on
// copy cycles (mutually recursive parameter passing, function-pointer rings)
// it re-propagates the same elements around the cycle once per element, and
// every insert is a std::set tree walk. This engine removes all three costs:
//
//   * sparse bitmaps (sparse_bitmap.h): word-parallel set union, ~64x less
//     memory per element than std::set nodes;
//   * difference propagation: each node remembers the frontier it already
//     pushed (prev_pts); a wave only moves pts - prev_pts along edges, so an
//     unchanged set costs one merge scan, not |set| inserts;
//   * online cycle detection: before every wave, Tarjan SCCs over the
//     current copy graph collapse cycles into single nodes (union-find), so
//     a K-node parameter ring propagates once instead of K times per
//     element; the condensation is then processed in topological order, so
//     one wave reaches the fixpoint for a fixed graph.
//
// Indirect calls are the one graph-growing constraint (MIR has no
// load/store-deref pointer flow): after every wave, new function objects in
// pts(fptr) resolve to new parameter/return copy edges, and the loop
// repeats — the classic on-the-fly call-graph / points-to fixpoint. The
// solution is bit-identical to the baseline engine's (the differential
// tests in tests/analysis_test.cc prove it per register).

#ifndef MVEE_ANALYSIS_WAVE_SOLVER_H_
#define MVEE_ANALYSIS_WAVE_SOLVER_H_

#include <cstdint>
#include <vector>

#include "mvee/analysis/constraints.h"
#include "mvee/analysis/sparse_bitmap.h"
#include "mvee/analysis/stats.h"

namespace mvee {

struct WaveSolution {
  // rep[r] is the constraint node register r was collapsed into; the node's
  // points-to set is pts[rep[r]]. Cycle members share one bitmap — part of
  // the memory win.
  std::vector<int32_t> rep;
  std::vector<SparseBitmap> pts;
  AnalysisStats stats;
};

WaveSolution SolveWave(const MirModule& module, const ConstraintProgram& program);

}  // namespace mvee

#endif  // MVEE_ANALYSIS_WAVE_SOLVER_H_
