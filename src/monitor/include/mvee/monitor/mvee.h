// Mvee: the multi-variant execution environment.
//
// Runs N diversified copies (variants) of a program in lockstep, monitoring
// them at the system-call level, replicating I/O results from the master to
// the slaves, ordering shared-resource calls with a logical clock, and
// replaying the master's synchronization-operation order in the slaves
// through an injected agent (paper §§2-4).
//
// Usage:
//   MveeOptions options;
//   options.num_variants = 3;
//   options.agent = AgentKind::kWallOfClocks;
//   Mvee mvee(options);
//   Status status = mvee.Run([](VariantEnv& env) {
//     // variant program: runs once per variant, lockstepped
//   });
//   // status.ok() => no divergence; mvee.report() has the counters.

#ifndef MVEE_MONITOR_MVEE_H_
#define MVEE_MONITOR_MVEE_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mvee/agents/agent_fleet.h"
#include "mvee/monitor/options.h"
#include "mvee/monitor/reporter.h"
#include "mvee/monitor/thread_set.h"
#include "mvee/util/status.h"
#include "mvee/variant/env.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {

// Final run report (Table 2's rate counters come from here).
struct MveeReport {
  Status status;
  SyscallCounters syscalls;
  uint64_t sync_ops_recorded = 0;
  uint64_t sync_ops_replayed = 0;
  uint64_t replay_stalls = 0;
  uint64_t record_stalls = 0;
  // Spins the master burned acquiring its record lock (the global TO/PO
  // master lock, or a per-variable shard lock under sharded_recording —
  // docs/DESIGN.md §8). The sharded path should keep this near the
  // program's own contention; the global lock accumulates it on every
  // cross-thread sync-op overlap.
  uint64_t record_lock_spins = 0;
  // Sharded syscall-ordering domain lifecycle (docs/syscall_ordering.md):
  // per-fd domains created on first stamp, retired at close, reclaimed at
  // end-of-run quiescence. All zero under the global-clock baseline.
  uint64_t order_domains_created = 0;
  uint64_t order_domains_retired = 0;
  uint64_t order_domains_reclaimed = 0;
  // Virtual-kernel readiness subsystem (docs/DESIGN.md §7): parked waits and
  // event-driven wakeups of poll/accept/futex callers. Nonzero wakeups under
  // load are the observable proof that blocking calls ride wait-queue
  // notifications instead of spin-polling. All zero under the sharded_vkernel
  // = false baseline (its poll re-scans on a sleep quantum).
  uint64_t vkernel_waitq_waits = 0;
  uint64_t vkernel_waitq_wakeups = 0;
  // Failure-model outcomes (docs/DESIGN.md §9). A run that excised variants
  // and still reports status OK is the graceful-degradation contract: the
  // survivors produced verdict-equivalent output without the dead variant.
  std::vector<ExcisionRecord> excised_variants;
  // Worst excise-to-next-round-open latency observed (bench_recovery's
  // headline number); zero when nothing was excised.
  uint64_t excision_latency_ns = 0;
  // Blocked-call watchdog escalations: state dumps (stage 1) and
  // non-destructive nudges (stage 2). Stage-3 excisions/shutdowns land in
  // excised_variants / status.
  uint64_t watchdog_dumps = 0;
  uint64_t watchdog_nudges = 0;
  // Adaptive per-variable agents (docs/DESIGN.md §11): variables routed to
  // their own agent entry, and route migrations the controller (or
  // ForceMigrate) completed/aborted during the run. All zero under
  // MVEE_ADAPTIVE_AGENTS=0 or when the program binds nothing.
  uint64_t adaptive_bound_variables = 0;
  uint64_t agent_migrations = 0;
  uint64_t agent_migrations_aborted = 0;
  double wall_seconds = 0.0;
  std::string divergence_detail;
};

class Mvee : public TrapInterface {
 public:
  // `external_kernel` lets several runs (or out-of-MVEE load generators)
  // share one virtual machine; pass nullptr to own a private kernel.
  explicit Mvee(const MveeOptions& options, VirtualKernel* external_kernel = nullptr);
  ~Mvee() override;

  Mvee(const Mvee&) = delete;
  Mvee& operator=(const Mvee&) = delete;

  // Runs `program` to completion in every variant. Returns OK if all
  // variants exited cleanly, kDivergence/kTimeout if the MVEE shut them
  // down. Not reentrant.
  Status Run(Program program);

  const MveeReport& report() const { return report_; }
  VirtualKernel& kernel() { return *kernel_; }
  DivergenceReporter& reporter() { return reporter_; }

  // Snapshot of every thread-set monitor's state plus kernel wait counts;
  // intended for watchdogs diagnosing stuck runs.
  std::string DumpState();

  // Queues an asynchronous signal for logical thread `tid` from outside the
  // variants (the MVEE-level analogue of a signal arriving from the kernel).
  // Delivered to every variant's handler at that thread's next rendezvous.
  void RaiseSignal(uint32_t tid, int32_t sig);

  // TrapInterface:
  int64_t Trap(uint32_t variant, uint32_t tid, SyscallRequest& request) override;
  void StartThread(uint32_t variant, uint32_t child_tid, ThreadFn fn) override;
  void JoinThread(uint32_t variant, uint32_t tid) override;
  void SetSignalHandler(uint32_t variant, int32_t sig, SignalHandler handler) override;

 private:
  struct VariantState {
    std::unique_ptr<ProcessState> process;
    std::unique_ptr<DiversityMap> diversity;
    std::unique_ptr<SyncAgent> agent;
    std::mutex threads_mutex;
    std::map<uint32_t, std::thread> threads;
    // POSIX-style process-wide handler table (per variant).
    std::mutex handlers_mutex;
    std::map<int32_t, SignalHandler> signal_handlers;
  };

  ThreadSetMonitor* GetThreadSet(uint32_t tid);
  void RunVariantThread(uint32_t variant, uint32_t tid, const ThreadFn& fn);

  // Blocked-call watchdog (docs/DESIGN.md §9): a monitor-side sweep thread
  // that generalizes rendezvous_timeout to calls blocked inside the virtual
  // kernel (futex wait, accept, poll park), where no rendezvous deadline is
  // ticking. Escalation ladder per stuck (thread set, variant) heartbeat:
  // 1x blocked_call_timeout => log + DumpState; 1.5x => non-destructive
  // nudge (spurious futex/waitq wakes, abandoned-lease release); 2x =>
  // excise the laggard (policy permitting, never the combined-master
  // executor) or shut the MVEE down.
  void WatchdogLoop();

  MveeOptions options_;
  std::unique_ptr<VirtualKernel> owned_kernel_;
  VirtualKernel* kernel_;
  DivergenceReporter reporter_;
  std::unique_ptr<AgentFleet> fleet_;
  std::unique_ptr<OrderDomainTable> order_domains_;
  MonitorShared shared_;
  std::vector<std::unique_ptr<VariantState>> variants_;
  std::mutex sets_mutex_;
  std::map<uint32_t, std::unique_ptr<ThreadSetMonitor>> thread_sets_;
  // Lock-free fast path for GetThreadSet: tids are small sequential ints, and
  // the seed's map-under-global-mutex lookup sat on EVERY trap of EVERY
  // thread. Entries are published with release stores after construction;
  // tids beyond the array fall back to the locked map.
  static constexpr uint32_t kTidCacheSize = 512;
  std::array<std::atomic<ThreadSetMonitor*>, kTidCacheSize> set_cache_{};
  // Watchdog sweep thread state (started/joined by Run).
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::atomic<uint64_t> watchdog_dumps_{0};
  std::atomic<uint64_t> watchdog_nudges_{0};
  bool armed_faults_ = false;
  MveeReport report_;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_MVEE_H_
