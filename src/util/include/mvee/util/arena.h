// Pooled payload storage for replicated syscall results.
//
// Replicated syscalls produce output bytes the monitor must hand to every
// slave variant (paper §4.1: the master executes, the slaves get the
// results). The seed carried those bytes in a std::vector<uint8_t> inside
// SyscallResult, which put one heap allocation per call — plus one full
// vector clone per slave — on the hottest path of the system. PayloadBuffer
// is the pooled replacement: a grow-only byte arena owned by the structure
// whose lifetime already bounds the payload's (the lockstep round slab, the
// loose-mode ring record, the mutex-baseline monitor), recycled round after
// round. In steady state the replicated-read path performs zero heap
// allocations: the kernel writes into the pool, the result carries a span,
// and slaves copy straight from the pooled bytes into their own out buffers.

#ifndef MVEE_UTIL_ARENA_H_
#define MVEE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace mvee {

class PayloadBuffer {
 public:
  PayloadBuffer() = default;
  PayloadBuffer(PayloadBuffer&&) = default;
  PayloadBuffer& operator=(PayloadBuffer&&) = default;
  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

  // Grows storage to at least `size` bytes (capacity never shrinks), sets the
  // logical size, and returns the writable bytes. Previous contents are NOT
  // preserved across a grow: the buffer holds one round's payload at a time.
  uint8_t* Reserve(size_t size) {
    if (size > capacity_) {
      size_t grown = capacity_ == 0 ? kMinCapacity : capacity_;
      while (grown < size) {
        grown *= 2;
      }
      storage_ = std::make_unique<uint8_t[]>(grown);
      capacity_ = grown;
    }
    size_ = size;
    return storage_.get();
  }

  // Copies `size` bytes into the buffer (growing if needed).
  void Assign(const void* data, size_t size) {
    if (size != 0) {
      std::memcpy(Reserve(size), data, size);
    } else {
      size_ = 0;
    }
  }

  // Drops the logical contents but keeps the storage for the next round.
  void Clear() { size_ = 0; }

  std::span<const uint8_t> view() const { return {storage_.get(), size_}; }
  uint8_t* data() { return storage_.get(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

 private:
  // Covers small reads/revents/getrandom fills without a first-round grow;
  // larger payloads grow geometrically and then stay.
  static constexpr size_t kMinCapacity = 256;

  std::unique_ptr<uint8_t[]> storage_;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace mvee

#endif  // MVEE_UTIL_ARENA_H_
