// wrk-style load generator and attack client (paper §5.5).
//
// Clients are *outside* the MVEE — they model the separate client machine of
// the paper's evaluation — so they talk to the virtual network directly
// rather than through a monitored variant.

#ifndef MVEE_SERVER_WRK_H_
#define MVEE_SERVER_WRK_H_

#include <cstdint>
#include <string>

#include "mvee/vkernel/vkernel.h"

namespace mvee {

struct WrkOptions {
  uint16_t port = 8080;
  uint32_t connections = 10;        // Parallel client threads (paper: 10).
  uint32_t requests_per_conn = 10;  // Sequential requests per thread.
  std::string path = "/index.html";
};

struct WrkResult {
  uint64_t requests_attempted = 0;
  uint64_t responses_ok = 0;
  uint64_t bytes_received = 0;
  double seconds = 0.0;

  double RequestsPerSecond() const {
    return seconds > 0 ? static_cast<double>(responses_ok) / seconds : 0.0;
  }
};

// Generates load against the server listening on `options.port` inside
// `kernel`'s virtual network. Blocks until all requests completed or failed.
WrkResult RunWrk(VirtualKernel& kernel, const WrkOptions& options);

struct AttackResult {
  bool connected = false;
  bool secret_leaked = false;   // The hijack produced the secret.
  std::string response_body;
};

// Sends one CVE-2013-2028-style exploit tailored to a victim with mapping
// base `victim_map_base` (an attacker who leaked the master's layout).
AttackResult RunAttack(VirtualKernel& kernel, uint16_t port, uint64_t victim_map_base);

}  // namespace mvee

#endif  // MVEE_SERVER_WRK_H_
