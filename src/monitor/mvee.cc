#include "mvee/monitor/mvee.h"

#include <chrono>
#include <map>
#include <utility>

#include "mvee/util/fault_injection.h"
#include "mvee/util/log.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

// Routes the sync primitives' futex needs through the monitor as sys_futex
// traps (replicated class).
class EnvFutexHook final : public FutexHook {
 public:
  explicit EnvFutexHook(VariantEnv* env) : env_(env) {}

  int64_t FutexWait(const std::atomic<int32_t>* word, int32_t expected) override {
    return env_->FutexWait(word, expected);
  }
  int64_t FutexWake(const std::atomic<int32_t>* word, int32_t count) override {
    return env_->FutexWake(word, count);
  }

 private:
  VariantEnv* const env_;
};

}  // namespace

Mvee::Mvee(const MveeOptions& options, VirtualKernel* external_kernel) : options_(options) {
  if (external_kernel != nullptr) {
    kernel_ = external_kernel;
  } else {
    owned_kernel_ = std::make_unique<VirtualKernel>(options_.seed, options_.sharded_vkernel);
    kernel_ = owned_kernel_.get();
  }

  // Agent runtime shared by all variants (the sync buffers of §4.5). The
  // agent runtimes clamp their config (ValidatedAgentConfig); the variant
  // loop below must agree with the clamped count, or CreateAgent would
  // index past the runtime's per-slave state.
  AgentConfig agent_config = options_.agent_config;
  agent_config.num_variants = options_.num_variants;
  agent_config = ValidatedAgentConfig(agent_config);
  options_.num_variants = agent_config.num_variants;

  // Failure policy must be installed before any variant thread exists: the
  // live mask is consulted on every rendezvous (docs/DESIGN.md §9).
  reporter_.ConfigurePolicy(options_.on_variant_failure, options_.min_survivors,
                            options_.num_variants);

  AgentControl control;
  control.abort_flag = reporter_.abort_flag();
  control.live_mask = reporter_.live_mask_ptr();
  control.on_stall = [this](const std::string& detail) {
    reporter_.Report(StatusCode::kTimeout, "sync-op replay stall: " + detail);
  };
  fleet_ = std::make_unique<AgentFleet>(options_.agent, agent_config, control,
                                        &options_.agent_plan);

  // Variant states: kernel process + simulated diversity + injected agent.
  for (uint32_t v = 0; v < options_.num_variants; ++v) {
    auto state = std::make_unique<VariantState>();
    state->diversity = std::make_unique<DiversityMap>(v, options_.seed, options_.enable_aslr,
                                                      options_.enable_dcl);
    state->process = std::make_unique<ProcessState>(
        /*pid=*/1000, state->diversity->heap_base(), state->diversity->map_base(),
        options_.sharded_vkernel);
    state->process->set_variant_index(v);
    state->agent = fleet_->CreateAgent(v);
    variants_.push_back(std::move(state));
  }

  shared_.options = &options_;
  shared_.kernel = kernel_;
  shared_.reporter = &reporter_;
  for (auto& variant : variants_) {
    shared_.processes.push_back(variant->process.get());
  }
  // Ordering domains carry all syscall-ordering state; the global-clock
  // baseline runs through the single kFdNamespace domain (thread_set.h).
  order_domains_ = std::make_unique<OrderDomainTable>(options_.num_variants);
  shared_.order_domains = order_domains_.get();

  // Shutdown fan-out: wake anything blocked in the kernel.
  reporter_.AddShutdownHook([this] { kernel_->ShutdownBlockedCalls(); });

  // Excision fan-out (docs/DESIGN.md §9): everything keyed on the dead
  // variant must stop waiting for it. Runs on the excising thread, outside
  // the reporter lock.
  reporter_.AddExcisionHook([this](uint32_t variant) {
    {
      // Every thread set re-evaluates round completeness against the
      // shrunken live mask (and the loose leader's backpressure detaches the
      // dead follower's cursor).
      std::lock_guard<std::mutex> lock(sets_mutex_);
      for (auto& [tid, monitor] : thread_sets_) {
        monitor->OnVariantExcised(variant);
      }
    }
    // Agent replay: survivors' ring merges skip the dead variant's records;
    // its own replay threads unwind at their next should_unwind check.
    fleet_->DetachVariant(variant);
    // Syscall-ordering replay clocks: survivors' end-of-run reclamation must
    // not wait for clocks the dead variant will never advance.
    order_domains_->DetachVariant(variant);
    // Kernel side: spurious-wake every futex waiter (legal per futex
    // semantics) so any of the dead variant's threads parked in sys_futex
    // re-check, observe the excision and unwind — and repair any reader
    // leases its threads abandoned mid-call.
    kernel_->NudgeBlockedCalls();
    if (variant < variants_.size()) {
      variants_[variant]->process->fds().ReleaseAbandonedLeases();
    }
  });
}

Mvee::~Mvee() {
  // Defensive: make sure no watchdog or variant thread is left running, and
  // never leak an armed fault plan into the next run in this process.
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
  if (armed_faults_) {
    FaultInjector::Global().Disarm();
  }
  for (auto& variant : variants_) {
    std::lock_guard<std::mutex> lock(variant->threads_mutex);
    for (auto& [tid, thread] : variant->threads) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
}

std::string Mvee::DumpState() {
  std::ostringstream out;
  out << "kernel futex waiters: " << kernel_->futexes().WaiterCount() << " [" << kernel_->futexes().DebugString() << "]\n";
  std::lock_guard<std::mutex> lock(sets_mutex_);
  for (auto& [tid, monitor] : thread_sets_) {
    out << "  " << monitor->DebugString() << "\n";
  }
  return out.str();
}

ThreadSetMonitor* Mvee::GetThreadSet(uint32_t tid) {
  if (tid < kTidCacheSize) {
    ThreadSetMonitor* cached = set_cache_[tid].load(std::memory_order_acquire);
    if (cached != nullptr) [[likely]] {
      return cached;
    }
  }
  std::lock_guard<std::mutex> lock(sets_mutex_);
  auto it = thread_sets_.find(tid);
  if (it != thread_sets_.end()) {
    return it->second.get();
  }
  auto monitor = std::make_unique<ThreadSetMonitor>(tid, &shared_);
  ThreadSetMonitor* raw = monitor.get();
  reporter_.AddShutdownHook([raw] { raw->NotifyShutdown(); });
  thread_sets_[tid] = std::move(monitor);
  if (tid < kTidCacheSize) {
    set_cache_[tid].store(raw, std::memory_order_release);
  }
  return raw;
}

int64_t Mvee::Trap(uint32_t variant, uint32_t tid, SyscallRequest& request) {
  if (reporter_.tripped()) {
    if (AlreadyUnwinding()) {
      return -EINTR;  // Destructor-driven trap during teardown: no rendezvous.
    }
    throw VariantKilled{};
  }
  std::vector<int32_t> signals;
  const int64_t retval = GetThreadSet(tid)->RunSyscall(variant, request, &signals);

  // Deferred signal delivery (GHUMVEE-style): the rendezvous that just
  // completed is the deterministic delivery point — every variant's copy of
  // this thread runs the handler here, after the same syscall. Handlers may
  // themselves make syscalls; those rendezvous normally (all variants run
  // the same handler code).
  for (int32_t sig : signals) {
    SignalHandler handler;
    {
      VariantState& state = *variants_[variant];
      std::lock_guard<std::mutex> lock(state.handlers_mutex);
      auto entry = state.signal_handlers.find(sig);
      if (entry != state.signal_handlers.end()) {
        handler = entry->second;
      }
    }
    if (handler) {
      VariantEnv env(this, variant, tid, variants_[variant]->diversity.get());
      handler(env);
    }
    // No handler: default disposition is ignore (the virtual kernel has no
    // process to terminate with SIGKILL semantics).
  }
  return retval;
}

void Mvee::RaiseSignal(uint32_t tid, int32_t sig) {
  std::lock_guard<std::mutex> lock(shared_.signal_mutex);
  if (shared_.exited_tids.count(tid) != 0) {
    return;  // Target's thread set already ran its exit round: undeliverable.
  }
  shared_.pending_signals[tid].push_back(sig);
  shared_.pending_signal_count.fetch_add(1, std::memory_order_release);
}

void Mvee::SetSignalHandler(uint32_t variant, int32_t sig, SignalHandler handler) {
  VariantState& state = *variants_[variant];
  std::lock_guard<std::mutex> lock(state.handlers_mutex);
  state.signal_handlers[sig] = std::move(handler);
}

void Mvee::RunVariantThread(uint32_t variant, uint32_t tid, const ThreadFn& fn) {
  VariantState& state = *variants_[variant];
  VariantEnv env(this, variant, tid, state.diversity.get());
  EnvFutexHook futex_hook(&env);
  SyncContext context{state.agent.get(), &futex_hook, tid};
  ScopedSyncContext scoped(&context);
  try {
    fn(env);
    // Implicit sys_exit on return: the last rendezvous of this thread set.
    SyscallRequest exit_request;
    exit_request.sysno = Sysno::kExit;
    env.Syscall(exit_request);
  } catch (const VariantKilled&) {
    // MVEE shutdown: unwind quietly; Run() reports the recorded status.
  }
}

void Mvee::StartThread(uint32_t variant, uint32_t child_tid, ThreadFn fn) {
  VariantState& state = *variants_[variant];
  std::thread thread([this, variant, child_tid, fn = std::move(fn)] {
    RunVariantThread(variant, child_tid, fn);
  });
  std::lock_guard<std::mutex> lock(state.threads_mutex);
  state.threads[child_tid] = std::move(thread);
}

void Mvee::JoinThread(uint32_t variant, uint32_t tid) {
  VariantState& state = *variants_[variant];
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(state.threads_mutex);
    auto it = state.threads.find(tid);
    if (it == state.threads.end()) {
      return;
    }
    to_join = std::move(it->second);
    state.threads.erase(it);
  }
  if (to_join.joinable()) {
    to_join.join();
  }
}

void Mvee::WatchdogLoop() {
  const auto budget = options_.blocked_call_timeout;
  // Sweep granularity: fine enough that stage boundaries are hit within
  // ~12% of their nominal time, coarse enough that the sweep itself is
  // invisible (a handful of relaxed loads per thread set per tick).
  const auto tick = std::max(budget / 8, std::chrono::milliseconds(1));

  struct Watch {
    uint64_t seq = 0;
    std::chrono::steady_clock::time_point since;
    int stage = 0;  // escalation stages already taken for this heartbeat
  };
  std::map<std::pair<uint32_t, uint32_t>, Watch> watches;  // (tid, variant)
  std::vector<ThreadSetMonitor*> monitors;

  while (!watchdog_stop_.load(std::memory_order_acquire) && !reporter_.tripped()) {
    // Interruptible sleep: Run() flips the stop flag before joining.
    for (auto slept = std::chrono::milliseconds(0); slept < tick;
         slept += std::chrono::milliseconds(1)) {
      if (watchdog_stop_.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    monitors.clear();
    {
      std::lock_guard<std::mutex> lock(sets_mutex_);
      for (auto& [tid, monitor] : thread_sets_) {
        monitors.push_back(monitor.get());
      }
    }
    const auto now = std::chrono::steady_clock::now();
    for (ThreadSetMonitor* monitor : monitors) {
      for (uint32_t v = 0; v < options_.num_variants; ++v) {
        const auto key = std::make_pair(monitor->tid(), v);
        if (reporter_.VariantDead(v)) {
          watches.erase(key);
          continue;
        }
        const ThreadSetMonitor::CallProgress progress = monitor->Progress(v);
        if (!progress.in_call) {
          watches.erase(key);
          continue;
        }
        Watch& watch = watches[key];
        if (watch.seq != progress.seq || watch.since.time_since_epoch().count() == 0) {
          watch = Watch{progress.seq, now, 0};
          continue;
        }
        const auto stuck = now - watch.since;
        // Stage 1 (1x): visibility. A blocked call this old is either a
        // legitimately slow peer (the dump says which) or the start of a
        // hang; either way the operator gets the round state now, not after
        // the kill.
        if (watch.stage < 1 && stuck >= budget) {
          watch.stage = 1;
          watchdog_dumps_.fetch_add(1, std::memory_order_relaxed);
          MVEE_LOG(kWarn) << "watchdog: variant " << v << " blocked in "
                          << SysnoName(progress.sysno) << " on thread set "
                          << monitor->tid() << " past "
                          << std::chrono::duration_cast<std::chrono::milliseconds>(stuck)
                                 .count()
                          << "ms\n"
                          << DumpState();
        }
        // Stage 2 (1.5x): non-destructive remedies. A lost futex/wait-queue
        // wakeup leaves waiters queued with nothing wrong but the missed
        // edge — a spurious wake (legal per futex semantics) repairs it; an
        // abandoned fd lease is released the same way.
        if (watch.stage < 2 && stuck >= budget + budget / 2) {
          watch.stage = 2;
          watchdog_nudges_.fetch_add(1, std::memory_order_relaxed);
          kernel_->NudgeBlockedCalls();
          for (auto& variant : variants_) {
            variant->process->fds().ReleaseAbandonedLeases();
          }
        }
        // Stage 3 (2x): the call survived a nudge — treat the variant as
        // failed. The combined-master executor is never excisable (every
        // survivor needs its result), nor is variant 0; those escalate to
        // shutdown directly.
        if (watch.stage < 3 && stuck >= 2 * budget) {
          watch.stage = 3;
          std::ostringstream detail;
          detail << "watchdog: variant " << v << " blocked in "
                 << SysnoName(progress.sysno) << " on thread set " << monitor->tid()
                 << " past "
                 << std::chrono::duration_cast<std::chrono::milliseconds>(stuck).count()
                 << "ms (2x blocked_call_timeout)";
          if (progress.in_master || v == 0) {
            reporter_.Report(StatusCode::kTimeout, detail.str());
          } else {
            reporter_.ReportVariantFailure(v, StatusCode::kTimeout, detail.str());
          }
        }
      }
    }
  }
}

Status Mvee::Run(Program program) {
  const auto start = std::chrono::steady_clock::now();
  MVEE_LOG(kInfo) << "MVEE starting " << options_.num_variants << " variants, agent="
                  << AgentKindName(options_.agent);

  // Arm the deterministic fault plan (docs/fault_injection.md) before any
  // variant thread can reach a site. A malformed plan is a configuration
  // error: surface it as a fatal report rather than silently running
  // fault-free under a chaos test that expects faults.
  if (!options_.fault_plan.empty()) {
    FaultPlan plan;
    std::string error;
    if (!FaultPlan::Parse(options_.fault_plan, &plan, &error) ||
        !FaultInjector::Global().Arm(plan, options_.num_variants, options_.seed)) {
      reporter_.Report(StatusCode::kInvalidArgument,
                       "bad fault plan '" + options_.fault_plan + "': " +
                           (error.empty() ? "too many entries" : error));
      report_.status = reporter_.status();
      return report_.status;
    }
    armed_faults_ = true;
  }

  // Blocked-call watchdog (docs/DESIGN.md §9); zero timeout disables it.
  watchdog_stop_.store(false, std::memory_order_release);
  if (options_.blocked_call_timeout.count() > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }

  // Bootstrap: start logical thread 0 in every variant (the paper's
  // bootstrap process hands control to the monitors once variants are
  // initialized, §4).
  for (uint32_t v = 0; v < options_.num_variants; ++v) {
    StartThread(v, /*child_tid=*/0, program);
  }

  // Wait for the main thread of every variant, then for any stragglers the
  // program spawned but did not join.
  for (uint32_t v = 0; v < options_.num_variants; ++v) {
    JoinThread(v, 0);
  }
  for (auto& variant : variants_) {
    for (;;) {
      std::thread to_join;
      {
        std::lock_guard<std::mutex> lock(variant->threads_mutex);
        if (variant->threads.empty()) {
          break;
        }
        auto it = variant->threads.begin();
        to_join = std::move(it->second);
        variant->threads.erase(it);
      }
      if (to_join.joinable()) {
        to_join.join();
      }
    }
  }

  const auto end = std::chrono::steady_clock::now();

  // Every variant thread is joined: quiesce the robustness machinery before
  // reading its counters.
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
  if (armed_faults_) {
    FaultInjector::Global().Disarm();
    armed_faults_ = false;
  }

  report_.status = reporter_.tripped()
                       ? reporter_.status()
                       : Status::Ok();
  report_.divergence_detail = reporter_.status().message();
  report_.excised_variants = reporter_.excisions();
  report_.excision_latency_ns = reporter_.max_excision_latency_ns();
  report_.watchdog_dumps = watchdog_dumps_.load(std::memory_order_relaxed);
  report_.watchdog_nudges = watchdog_nudges_.load(std::memory_order_relaxed);
  {
    // Counters are sharded per thread set (relaxed atomics); with every
    // variant thread joined the shards are quiescent and the sum is exact.
    std::lock_guard<std::mutex> lock(sets_mutex_);
    report_.syscalls = SyscallCounters{};
    for (auto& [tid, monitor] : thread_sets_) {
      monitor->AccumulateCounters(&report_.syscalls);
    }
  }
  {
    const AgentStatsSnapshot snapshot = fleet_->StatsSnapshot();
    report_.sync_ops_recorded = snapshot.ops_recorded;
    report_.sync_ops_replayed = snapshot.ops_replayed;
    report_.replay_stalls = snapshot.replay_stalls;
    report_.record_stalls = snapshot.record_stalls;
    report_.record_lock_spins = snapshot.record_lock_spins;
    report_.adaptive_bound_variables = fleet_->BoundVariables();
    report_.agent_migrations = fleet_->MigrationsCompleted();
    report_.agent_migrations_aborted = fleet_->MigrationsAborted();
  }
  {
    // Kernel readiness counters (cumulative for shared external kernels; the
    // usual owned-kernel case starts from zero).
    const VKernelStatsSnapshot kernel_stats = kernel_->stats();
    report_.vkernel_waitq_waits = kernel_stats.waitq_waits;
    report_.vkernel_waitq_wakeups = kernel_stats.waitq_wakeups;
  }
  // All variant threads are joined: the domain table is quiescent, so
  // retired per-fd domains whose replays completed can be reclaimed.
  order_domains_->Reclaim();
  {
    const OrderDomainStats domain_stats = order_domains_->stats();
    report_.order_domains_created = domain_stats.created;
    report_.order_domains_retired = domain_stats.retired;
    report_.order_domains_reclaimed = domain_stats.reclaimed;
  }
  report_.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  MVEE_LOG(kInfo) << "MVEE finished: " << report_.status.ToString() << " in "
                  << report_.wall_seconds << "s";
  return report_.status;
}

}  // namespace mvee
