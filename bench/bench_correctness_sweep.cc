// Regenerates the paper's §5.1 "Correctness" experiment: every benchmark,
// ASLR enabled, multiple monitoring policies, 2 variants — the MVEE must
// detect no divergence anywhere and the result digests must match a native
// run ("Our monitor is configured to detect divergence under each of these
// configurations. No divergence was detected in any of the benchmarks").

#include <cstdio>
#include <string>

#include "bench/common.h"

namespace {

using namespace mvee;

std::string ResultOf(VirtualKernel& kernel, const std::string& name) {
  auto file = kernel.vfs().Open("result/" + name, false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  const double scale = BenchScale(0.05);
  PrintHeader("§5.1 correctness sweep: ASLR on, all benchmarks, both policies");
  std::printf("scale=%.3f, agent=wall-of-clocks, 2 variants\n\n", scale);

  int passed = 0;
  int failed = 0;
  for (const auto& config : AllWorkloads()) {
    // Native reference digest.
    NativeRunner native;
    native.Run(MakeWorkloadProgram(config, scale));
    const std::string reference = ResultOf(native.kernel(), config.name);

    for (MonitorPolicy policy :
         {MonitorPolicy::kLockstepAll, MonitorPolicy::kLockstepSensitive}) {
      MveeOptions options;
      options.num_variants = 2;
      options.agent = AgentKind::kWallOfClocks;
      options.enable_aslr = true;  // Diversity on, unlike the perf runs.
      options.policy = policy;
      options.rendezvous_timeout = std::chrono::milliseconds(120000);
      options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
      Mvee mvee(options);
      const Status status = mvee.Run(MakeWorkloadProgram(config, scale));
      const bool digest_ok = ResultOf(mvee.kernel(), config.name) == reference;
      const bool ok = status.ok() && digest_ok;
      ok ? ++passed : ++failed;
      if (!ok) {
        std::printf("FAIL  %-15s policy=%d status=%s digest_ok=%d\n", config.name,
                    static_cast<int>(policy), status.ToString().c_str(), digest_ok);
      }
    }
  }
  std::printf("correctness sweep: %d configurations passed, %d failed "
              "(paper: \"No divergence was detected in any of the benchmarks\")\n",
              passed, failed);
  return failed == 0 ? 0 : 1;
}
