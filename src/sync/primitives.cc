#include "mvee/sync/primitives.h"

#include <thread>

#include "mvee/util/spin.h"

namespace mvee {

namespace {

// Sleeps through the context's futex hook if present, else yields. `word`
// is the raw atomic behind an InstrumentedAtomic (the kernel recheck is not
// a variant sync op).
void FutexSleep(const std::atomic<int32_t>* word, int32_t expected) {
  SyncContext* ctx = SyncContext::Current();
  if (ctx->futex != nullptr) {
    ctx->futex->FutexWait(word, expected);
  } else {
    std::this_thread::yield();
  }
}

void FutexNotify(const std::atomic<int32_t>* word, int32_t count) {
  SyncContext* ctx = SyncContext::Current();
  if (ctx->futex != nullptr) {
    ctx->futex->FutexWake(word, count);
  }
}

}  // namespace

void SpinLock::Lock() {
  for (;;) {
    int32_t expected = 0;
    if (state_.CompareExchange(expected, 1)) {
      return;
    }
    std::this_thread::yield();  // Listing 1's sched_yield().
  }
}

bool SpinLock::TryLock() {
  int32_t expected = 0;
  return state_.CompareExchange(expected, 1);
}

void SpinLock::Unlock() {
  state_.Store(0);  // Listing 1's plain store — a type (iii) sync op.
}

void TicketLock::Lock() {
  const int32_t ticket = next_ticket_.FetchAdd(1);
  SpinWait waiter;
  while (now_serving_.Load() != ticket) {
    waiter.Pause();
  }
}

void TicketLock::Unlock() { now_serving_.FetchAdd(1); }

void Mutex::Lock() {
  int32_t expected = 0;
  if (state_.CompareExchange(expected, 1)) {
    return;  // Uncontended fast path: no syscall, like glibc.
  }
  // Contended: advertise a waiter and sleep.
  for (;;) {
    const int32_t current = state_.Exchange(2);
    if (current == 0) {
      return;  // Acquired (and conservatively marked contended).
    }
    FutexSleep(state_.raw(), 2);
  }
}

bool Mutex::TryLock() {
  int32_t expected = 0;
  return state_.CompareExchange(expected, 1);
}

void Mutex::Unlock() {
  const int32_t previous = state_.Exchange(0);
  if (previous == 2) {
    FutexNotify(state_.raw(), 1);
  }
}

void CondVar::Wait(Mutex& mutex) {
  const int32_t observed_seq = seq_.Load();
  mutex.Unlock();
  FutexSleep(seq_.raw(), observed_seq);
  mutex.Lock();
}

void CondVar::Signal() {
  seq_.FetchAdd(1);
  FutexNotify(seq_.raw(), 1);
}

void CondVar::Broadcast() {
  seq_.FetchAdd(1);
  FutexNotify(seq_.raw(), 1 << 30);
}

bool Barrier::Arrive() {
  const int32_t my_phase = phase_.Load();
  const int32_t position = arrived_.FetchAdd(1);
  if (position + 1 == participants_) {
    // Last arriver: reset and release the phase.
    arrived_.Store(0);
    phase_.FetchAdd(1);
    FutexNotify(phase_.raw(), 1 << 30);
    return true;
  }
  SpinWait waiter;
  while (phase_.Load() == my_phase) {
    FutexSleep(phase_.raw(), my_phase);
    waiter.Pause();
  }
  return false;
}

void Semaphore::Acquire() {
  for (;;) {
    int32_t current = count_.Load();
    while (current > 0) {
      if (count_.CompareExchange(current, current - 1)) {
        return;
      }
      // CompareExchange updated `current`; retry if still positive.
    }
    FutexSleep(count_.raw(), 0);
  }
}

bool Semaphore::TryAcquire() {
  int32_t current = count_.Load();
  while (current > 0) {
    if (count_.CompareExchange(current, current - 1)) {
      return true;
    }
  }
  return false;
}

void Semaphore::Release() {
  count_.FetchAdd(1);
  FutexNotify(count_.raw(), 1);
}

void RwLock::ReadLock() {
  SpinWait waiter;
  for (;;) {
    if (writers_waiting_.Load() == 0) {
      const int32_t current = state_.FetchAdd(1);
      if (current >= 0) {
        return;
      }
      state_.FetchSub(1);  // Writer holds it; back off.
    }
    waiter.Pause();
  }
}

void RwLock::ReadUnlock() { state_.FetchSub(1); }

void RwLock::WriteLock() {
  writers_waiting_.FetchAdd(1);
  SpinWait waiter;
  for (;;) {
    int32_t expected = 0;
    if (state_.CompareExchange(expected, -1)) {
      writers_waiting_.FetchSub(1);
      return;
    }
    waiter.Pause();
  }
}

void RwLock::WriteUnlock() { state_.Store(0); }

bool OnceFlag::Begin() {
  int32_t expected = 0;
  if (state_.CompareExchange(expected, 1)) {
    return true;
  }
  SpinWait waiter;
  while (state_.Load() != 2) {
    waiter.Pause();
  }
  return false;
}

void OnceFlag::Done() {
  state_.Store(2);
  FutexNotify(state_.raw(), 1 << 30);
}

void WaitGroup::Done() {
  if (outstanding_.FetchSub(1) == 1) {
    FutexNotify(outstanding_.raw(), 1 << 30);
  }
}

void WaitGroup::Wait() {
  SpinWait waiter;
  for (;;) {
    const int32_t current = outstanding_.Load();
    if (current == 0) {
      return;
    }
    FutexSleep(outstanding_.raw(), current);
    waiter.Pause();
  }
}

}  // namespace mvee
