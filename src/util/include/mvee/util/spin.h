// Spin-wait helper with progressive backoff.
//
// Replay agents and the monitor's syscall-ordering clock wait "in a tight
// loop" (paper §4.1). On the test machines used here (few cores) a pure
// PAUSE loop would livelock threads that hold the resource being waited for,
// so SpinWait escalates: PAUSE -> yield -> short sleep.

#ifndef MVEE_UTIL_SPIN_H_
#define MVEE_UTIL_SPIN_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace mvee {

class SpinWait {
 public:
  // Issues one wait step and escalates the backoff level.
  void Pause() {
    ++spins_;
    if (spins_ < kSpinLimit) {
      CpuRelax();
    } else if (spins_ < kYieldLimit) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

  uint64_t spins() const { return spins_; }

 private:
  static constexpr uint64_t kSpinLimit = 64;
  static constexpr uint64_t kYieldLimit = 4096;

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  uint64_t spins_ = 0;
};

}  // namespace mvee

#endif  // MVEE_UTIL_SPIN_H_
