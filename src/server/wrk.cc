#include "mvee/server/wrk.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "mvee/server/http_server.h"

namespace mvee {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDecimal(std::string_view digits, uint64_t* out) {
  if (digits.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

HttpParseStatus TryParseHttpResponse(std::string_view buffer, HttpResponse* out) {
  const size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    // A status line longer than any sane header block is garbage, but with
    // no terminator yet we cannot distinguish it from a slow sender; callers
    // treat a closed stream with kNeedMore as truncated.
    return HttpParseStatus::kNeedMore;
  }

  const size_t line_end = buffer.find("\r\n");
  const std::string_view line = buffer.substr(0, line_end);
  if (line.rfind("HTTP/1.", 0) != 0) {
    return HttpParseStatus::kMalformed;
  }
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > line.size()) {
    return HttpParseStatus::kMalformed;
  }
  uint64_t status = 0;
  if (!ParseDecimal(line.substr(sp + 1, 3), &status) || status < 100 || status > 599) {
    return HttpParseStatus::kMalformed;
  }

  uint64_t content_length = 0;
  uint64_t request_id = 0;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = std::min(buffer.find("\r\n", pos), head_end);
    const std::string_view header = buffer.substr(pos, eol - pos);
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return HttpParseStatus::kMalformed;
    }
    const std::string_view key = TrimSpaces(header.substr(0, colon));
    const std::string_view value = TrimSpaces(header.substr(colon + 1));
    if (EqualsIgnoreCase(key, "content-length")) {
      if (!ParseDecimal(value, &content_length)) {
        return HttpParseStatus::kMalformed;
      }
    } else if (EqualsIgnoreCase(key, "x-request-id")) {
      if (!ParseDecimal(value, &request_id)) {
        return HttpParseStatus::kMalformed;
      }
    }
    pos = eol + 2;
  }

  const size_t body_start = head_end + 4;
  if (buffer.size() < body_start + content_length) {
    return HttpParseStatus::kNeedMore;
  }
  out->status = static_cast<int>(status);
  out->request_id = request_id;
  out->content_length = static_cast<size_t>(content_length);
  out->total_bytes = body_start + static_cast<size_t>(content_length);
  out->body.assign(buffer.substr(body_start, content_length));
  return HttpParseStatus::kComplete;
}

namespace {

// One HTTP exchange over a fresh connection, reading until the stream
// closes. Used by the attack client, which wants the raw bytes.
std::string DoRequest(VirtualKernel& kernel, uint16_t port, const std::string& request) {
  auto conn = kernel.network().Connect(port);
  if (conn == nullptr) {
    return "";
  }
  if (conn->ClientWrite(reinterpret_cast<const uint8_t*>(request.data()), request.size()) < 0) {
    conn->CloseClientSide();
    return "";
  }
  std::string response;
  uint8_t buffer[1024];
  for (;;) {
    const int64_t n = conn->ClientRead(buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    response.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
  }
  conn->CloseClientSide();
  return response;
}

enum class ExchangeOutcome { kOk, kNon2xx, kTruncated };

// One request over a fresh connection, reading until one full response has
// been *parsed* (not until close — keep-alive servers may legitimately hold
// the connection open).
ExchangeOutcome DoParsedRequest(VirtualKernel& kernel, uint16_t port,
                                const std::string& request, uint64_t* bytes) {
  auto conn = kernel.network().Connect(port);
  if (conn == nullptr) {
    return ExchangeOutcome::kTruncated;
  }
  if (conn->ClientWrite(reinterpret_cast<const uint8_t*>(request.data()), request.size()) < 0) {
    conn->CloseClientSide();
    return ExchangeOutcome::kTruncated;
  }
  std::string in;
  ExchangeOutcome outcome = ExchangeOutcome::kTruncated;
  uint8_t buffer[1024];
  for (;;) {
    HttpResponse response;
    const HttpParseStatus status = TryParseHttpResponse(in, &response);
    if (status == HttpParseStatus::kComplete) {
      *bytes += response.total_bytes;
      outcome = response.ok() ? ExchangeOutcome::kOk : ExchangeOutcome::kNon2xx;
      break;
    }
    if (status == HttpParseStatus::kMalformed) {
      break;
    }
    const int64_t n = conn->ClientRead(buffer, sizeof(buffer));
    if (n <= 0) {
      break;  // Closed before a full response: truncated.
    }
    in.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
  }
  conn->CloseClientSide();
  return outcome;
}

}  // namespace

WrkResult RunWrk(VirtualKernel& kernel, const WrkOptions& options) {
  WrkResult result;
  result.requests_attempted =
      static_cast<uint64_t>(options.connections) * options.requests_per_conn;

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> non2xx{0};
  std::atomic<uint64_t> truncated{0};
  std::atomic<uint64_t> bytes{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < options.connections; ++c) {
    clients.emplace_back([&] {
      const std::string request = "GET " + options.path + " HTTP/1.0\r\n\r\n";
      for (uint32_t r = 0; r < options.requests_per_conn; ++r) {
        uint64_t exchanged = 0;
        switch (DoParsedRequest(kernel, options.port, request, &exchanged)) {
          case ExchangeOutcome::kOk:
            ok.fetch_add(1, std::memory_order_relaxed);
            break;
          case ExchangeOutcome::kNon2xx:
            non2xx.fetch_add(1, std::memory_order_relaxed);
            break;
          case ExchangeOutcome::kTruncated:
            truncated.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        bytes.fetch_add(exchanged, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }

  const auto end = std::chrono::steady_clock::now();
  result.responses_ok = ok.load();
  result.responses_non2xx = non2xx.load();
  result.responses_truncated = truncated.load();
  result.bytes_received = bytes.load();
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  return result;
}

namespace {

struct OpenConn {
  VRef<VConnection> conn;
  std::string in;
  std::deque<uint64_t> pending_sent_ns;  // Intended send time per in-flight request.
  uint64_t scheduled_ns = 0;
  uint32_t sent = 0;
  uint32_t done = 0;
  bool finished = false;
};

struct OpenLoopShard {
  LogHistogram latency;
  uint64_t opened = 0;
  uint64_t retries = 0;
  uint64_t attempted = 0;
  uint64_t ok = 0;
  uint64_t non2xx = 0;
  uint64_t truncated = 0;
  uint64_t bytes = 0;
  std::vector<uint64_t> ids;
};

}  // namespace

OpenLoopResult RunWrkOpenLoop(VirtualKernel& kernel, const OpenLoopOptions& options) {
  const uint32_t threads = std::max(1u, options.client_threads);
  const uint32_t requests_per_conn = std::max(1u, options.requests_per_conn);
  const uint32_t window = std::max(1u, options.pipeline_depth);
  const double interval_ns =
      options.arrival_rate > 0 ? 1e9 / options.arrival_rate : 0.0;
  const std::string request =
      "GET " + options.path + " HTTP/1.1\r\nHost: mvee\r\n\r\n";
  const auto* request_data = reinterpret_cast<const uint8_t*>(request.data());

  std::vector<OpenLoopShard> shards(threads);
  const auto start = std::chrono::steady_clock::now();
  const auto now_ns = [start] {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
  };

  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      OpenLoopShard& shard = shards[t];
      std::vector<OpenConn> conns;
      uint64_t next_arrival = t;  // This thread drives arrivals t, t+T, t+2T, ...

      const auto send_one = [&](OpenConn& c, uint64_t intended_ns) {
        if (c.conn->ClientWrite(request_data, request.size()) < 0) {
          return false;  // Server side gone; the read path will see EOF.
        }
        c.pending_sent_ns.push_back(intended_ns);
        ++c.sent;
        ++shard.attempted;
        return true;
      };

      const auto abandon = [&](OpenConn& c) {
        shard.truncated += c.pending_sent_ns.size();
        c.pending_sent_ns.clear();
        c.finished = true;
        c.conn->CloseClientSide();
      };

      for (;;) {
        bool progress = false;

        // Admit every arrival whose scheduled time has passed. A refused
        // connect (listener backlog full) retries on the next sweep with the
        // schedule unmoved, so backlog queueing shows up in the percentiles
        // rather than silently thinning the offered load.
        while (next_arrival < options.connections &&
               static_cast<double>(now_ns()) >=
                   interval_ns * static_cast<double>(next_arrival)) {
          auto vconn = kernel.network().Connect(options.port);
          if (vconn == nullptr) {
            ++shard.retries;
            break;
          }
          OpenConn c;
          c.conn = std::move(vconn);
          c.scheduled_ns =
              static_cast<uint64_t>(interval_ns * static_cast<double>(next_arrival));
          conns.push_back(std::move(c));
          ++shard.opened;
          next_arrival += threads;
          progress = true;
        }

        for (OpenConn& c : conns) {
          if (c.finished) {
            continue;
          }
          // Fill the pipeline window. The first request of a connection is
          // timed from its scheduled arrival (open-loop: the client "wanted"
          // to send it then); later requests from their actual send time.
          while (c.sent < requests_per_conn && c.sent - c.done < window) {
            const uint64_t intended = c.sent == 0 ? c.scheduled_ns : now_ns();
            if (!send_one(c, intended)) {
              break;
            }
            progress = true;
          }

          while (!c.finished && c.conn->ClientReadable()) {
            uint8_t buffer[4096];
            const int64_t n = c.conn->ClientRead(buffer, sizeof(buffer));
            progress = true;
            if (n <= 0) {
              abandon(c);  // Server closed with requests still outstanding.
              break;
            }
            c.in.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));

            for (;;) {
              HttpResponse response;
              const HttpParseStatus status = TryParseHttpResponse(c.in, &response);
              if (status == HttpParseStatus::kNeedMore) {
                break;
              }
              if (status == HttpParseStatus::kMalformed) {
                abandon(c);
                break;
              }
              c.in.erase(0, response.total_bytes);
              shard.bytes += response.total_bytes;
              const uint64_t finished_at = now_ns();
              uint64_t sent_at = finished_at;
              if (!c.pending_sent_ns.empty()) {
                sent_at = c.pending_sent_ns.front();
                c.pending_sent_ns.pop_front();
              }
              shard.latency.Record(finished_at > sent_at ? finished_at - sent_at : 0);
              ++c.done;
              if (response.ok()) {
                ++shard.ok;
                if (options.collect_request_ids) {
                  shard.ids.push_back(response.request_id);
                }
              } else {
                ++shard.non2xx;
              }
              if (c.done >= requests_per_conn) {
                c.finished = true;
                c.conn->CloseClientSide();
                break;
              }
              if (c.sent < requests_per_conn && c.sent - c.done < window) {
                send_one(c, now_ns());
              }
            }
          }
        }

        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const OpenConn& c) { return c.finished; }),
                    conns.end());
        if (next_arrival >= options.connections && conns.empty()) {
          break;
        }
        if (!progress) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }

  OpenLoopResult result;
  const auto end = std::chrono::steady_clock::now();
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  for (OpenLoopShard& shard : shards) {
    result.connections_opened += shard.opened;
    result.connect_retries += shard.retries;
    result.requests_attempted += shard.attempted;
    result.responses_ok += shard.ok;
    result.responses_non2xx += shard.non2xx;
    result.responses_truncated += shard.truncated;
    result.bytes_received += shard.bytes;
    result.latency_ns.Merge(shard.latency);
    result.request_ids.insert(result.request_ids.end(), shard.ids.begin(), shard.ids.end());
  }
  return result;
}

AttackResult RunAttack(VirtualKernel& kernel, uint16_t port, uint64_t victim_map_base) {
  AttackResult result;
  // Exploit layout: 64 filler bytes overflowing into the 8-byte selector.
  std::string payload(64, 'A');
  const uint64_t token = LayoutToken(victim_map_base);
  payload.append(reinterpret_cast<const char*>(&token), sizeof(token));

  std::string request = "GET /vuln HTTP/1.0\r\nContent-Length: " +
                        std::to_string(payload.size()) + "\r\n\r\n" + payload;
  const std::string response = DoRequest(kernel, port, request);
  result.connected = !response.empty();
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.response_body = response.substr(body_start + 4);
  }
  result.secret_leaked = result.response_body.find(ServerSecret()) != std::string::npos;
  return result;
}

}  // namespace mvee
