// Proof-of-concept covert channels from paper §5.4.
//
// Both channels abuse result replication: the master's timing decides an
// observable outcome (a clock delta / a trylock result), the monitor
// replicates that outcome to every variant, and since the sender's
// data-dependent behaviour is pure computation (identical syscall and
// sync-op *sequences* in all variants), no divergence is ever detected.
// Every variant therefore decodes the MASTER's variant-private secret —
// cross-variant information flow that MVEEs assume impossible.
//
//   channel 1 (rdtsc):   delta between two replicated rdtsc reads encodes
//                        one bit via a data-dependent spin.
//   channel 2 (trylock): whether a fixed-cadence trylock succeeds depends on
//                        how long the sender held the lock.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.h"
#include "mvee/sync/primitives.h"

namespace {

using namespace mvee;

constexpr int kBits = 16;

// Pure-computation delay: identical code path in every variant, so it leaves
// no trace in the syscall or sync-op streams.
void SpinFor(std::chrono::microseconds duration) {
  const auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
  }
}

// The variant-private value the channel exfiltrates: derived from the
// variant's randomized layout, standing in for a leaked pointer.
uint64_t VariantSecret(VariantEnv& env) {
  return SplitMix64(env.diversity().map_base()) & 0xffff;
}

// --- Channel 1: replicated rdtsc deltas --------------------------------

Program RdtscChannelProgram() {
  return [](VariantEnv& env) {
    const uint64_t secret = VariantSecret(env);
    uint64_t decoded = 0;
    for (int bit = 0; bit < kBits; ++bit) {
      const int64_t t0 = env.Rdtsc();
      SpinFor(std::chrono::microseconds((secret >> bit) & 1 ? 30000 : 100));
      const int64_t t1 = env.Rdtsc();
      // t0/t1 are the MASTER's timestamps in every variant. The margin is
      // generous so scheduler noise on a loaded host cannot flip a bit.
      if (t1 - t0 > 10000000) {  // 10ms threshold in ns-granular virtual TSC.
        decoded |= 1ULL << bit;
      }
    }
    // Each variant reports what it decoded; lockstep comparison doubles as
    // the proof that all variants decoded the same (master) value.
    char text[64];
    std::snprintf(text, sizeof(text), "decoded=%04llx own=%04llx\n",
                  (unsigned long long)decoded, (unsigned long long)secret);
    const int64_t fd = env.Open("result/rdtsc_channel",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    // Compare only the decoded half across variants: write them separately.
    env.Write(fd, std::string("decoded=") + std::to_string(decoded) + "\n");
    env.Close(fd);
    (void)text;
  };
}

// --- Channel 2: replicated trylock outcomes -----------------------------

Program TrylockChannelProgram() {
  return [](VariantEnv& env) {
    struct ChannelState {
      Mutex lock;
      InstrumentedAtomic<int32_t> round{-1};
      InstrumentedAtomic<int32_t> ack{-1};
      InstrumentedAtomic<int32_t> decoded_bits[kBits];
    };
    auto state = std::make_shared<ChannelState>();
    const uint64_t secret = VariantSecret(env);

    // Sender: holds the lock for a data-dependent duration each round. The
    // op sequence (lock, store, unlock) is bit-independent.
    auto sender = [state, secret](VariantEnv& wenv) {
      for (int bit = 0; bit < kBits; ++bit) {
        state->lock.Lock();
        state->round.Store(bit);
        SpinFor(std::chrono::microseconds((secret >> bit) & 1 ? 40000 : 0));
        state->lock.Unlock();
        while (state->ack.Load() < bit) {
          std::this_thread::yield();
        }
      }
      wenv.Gettid();
    };

    // Receiver: probes at a fixed cadence; the outcome is decided by the
    // master's timing and replicated through the agent's replay.
    auto receiver = [state](VariantEnv& wenv) {
      for (int bit = 0; bit < kBits; ++bit) {
        while (state->round.Load() < bit) {
          std::this_thread::yield();
        }
        SpinFor(std::chrono::microseconds(8000));
        const bool busy = !state->lock.TryLock();
        if (!busy) {
          state->lock.Unlock();
        }
        state->decoded_bits[bit].Store(busy ? 1 : 0);
        state->ack.Store(bit);
      }
      wenv.Gettid();
    };

    ThreadHandle s = env.Spawn(sender);
    ThreadHandle r = env.Spawn(receiver);
    env.Join(s);
    env.Join(r);

    uint64_t decoded = 0;
    for (int bit = 0; bit < kBits; ++bit) {
      if (state->decoded_bits[bit].Load() != 0) {
        decoded |= 1ULL << bit;
      }
    }
    const int64_t fd = env.Open("result/trylock_channel",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::string("decoded=") + std::to_string(decoded) + "\n");
    env.Close(fd);
  };
}

std::string FileText(VirtualKernel& kernel, const std::string& path) {
  auto file = kernel.vfs().Open(path, false);
  if (file == nullptr) {
    return "<missing>";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

void RunChannel(const char* name, Program program, const char* result_path,
                uint64_t expected_master_secret) {
  MveeOptions options;
  options.num_variants = 2;
  options.enable_aslr = true;  // Secrets must differ across variants.
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  const auto start = std::chrono::steady_clock::now();
  const Status status = mvee.Run(std::move(program));
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();

  const std::string decoded_line = FileText(mvee.kernel(), result_path);
  const uint64_t decoded =
      decoded_line.rfind("decoded=", 0) == 0 ? std::stoull(decoded_line.substr(8)) : 0;
  std::printf("%-18s status=%s decoded=0x%04llx master-secret=0x%04llx %s  "
              "(%.0f bit/s, %d bits in %.2fs)\n",
              name, status.ToString().c_str(), (unsigned long long)decoded,
              (unsigned long long)expected_master_secret,
              decoded == expected_master_secret ? "LEAKED" : "mismatch",
              kBits / (seconds > 0 ? seconds : 1), kBits, seconds);
}

}  // namespace

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("§5.4 covert channel PoCs (replication-based cross-variant leaks)");
  std::printf("Both channels finish without divergence — the monitor sees identical\n"
              "syscall/sync-op sequences — yet every variant decodes the master's secret.\n\n");

  MveeOptions reference;  // Same defaults RunChannel uses: seed 0x5eed.
  const uint64_t master_secret =
      SplitMix64(DiversityMap(0, reference.seed, true).map_base()) & 0xffff;

  RunChannel("rdtsc channel:", RdtscChannelProgram(), "result/rdtsc_channel", master_secret);
  RunChannel("trylock channel:", TrylockChannelProgram(), "result/trylock_channel",
             master_secret);
  return 0;
}
