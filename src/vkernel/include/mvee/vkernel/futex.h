// Kernel-side futex table.
//
// sys_futex is the one blocking non-I/O syscall; the paper treats it like an
// I/O operation: only the master executes it, slaves receive the replicated
// result (§4.1, footnote 5). Waiters are keyed by the *logical* (diversity-
// normalized) address of the futex word so that a wake issued by one master
// thread finds waiters registered by other master threads even though their
// diversified virtual addresses differ.

#ifndef MVEE_VKERNEL_FUTEX_H_
#define MVEE_VKERNEL_FUTEX_H_

#include <atomic>
#include <condition_variable>
#include <string>
#include <cstdint>
#include <map>
#include <mutex>

namespace mvee {

class FutexTable {
 public:
  // Blocks the caller while *word == expected (with the usual futex race
  // semantics: returns -EAGAIN immediately if *word != expected at entry).
  // Returns 0 when woken.
  int64_t Wait(uint64_t logical_addr, const std::atomic<int32_t>* word, int32_t expected);

  // Wakes up to `count` waiters on the address; returns the number woken.
  int64_t Wake(uint64_t logical_addr, int32_t count);

  // Wakes every waiter on every address (MVEE shutdown path).
  void WakeAll();

  // Number of threads currently blocked (all addresses). Test helper.
  size_t WaiterCount() const;

  // "addr=0x... waiters=2 pending=0; ..." — hang diagnostics.
  std::string DebugString() const;

 private:
  // FIFO-targeted wakeups, like the real futex queue: each waiter takes a
  // ticket; a wake releases the oldest `count` waiters *registered at wake
  // time*. A later registrant can never consume a wake issued before it
  // joined (that un-targeted-credit behaviour loses wakeups: the waiter the
  // wake was meant for sleeps forever once its expected value is stale).
  struct Bucket {
    std::condition_variable cv;
    uint64_t next_ticket = 0;  // Ticket for the next waiter to register.
    uint64_t wake_upto = 0;    // Tickets below this are released.
    int32_t waiters = 0;
  };

  mutable std::mutex mutex_;
  std::map<uint64_t, Bucket> buckets_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_FUTEX_H_
