// Deterministic debugging with the offline record/replay facility
// (RecPlay-style offline R+R, paper §6).
//
//   $ ./record_replay_debug
//
// A classic heisenbug hunt: a 4-thread program has an order-dependent
// outcome (which thread performs the final update of a shared value). Under
// the native scheduler the outcome flips between runs. We record one
// execution's sync-op schedule into a serializable trace — the same
// WoC-encoded (clock, time) events the online agents broadcast — and then
// re-run the program through the trace as many times as we like: the outcome
// is now pinned, so the "bug" reproduces on demand.

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "mvee/agents/offline_trace.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/rng.h"

using namespace mvee;

namespace {

// The order-dependent program: workers race to stamp `last_writer` under a
// lock, with seeded think-time jitter standing in for real nondeterminism.
// Returns the racing outcome observed in this run.
uint32_t RunRacyProgram(SyncAgent* agent) {
  constexpr uint32_t kThreads = 4;
  constexpr int kRounds = 50;
  Mutex lock;
  uint32_t last_writer = 0;

  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      SyncContext context{agent, nullptr, t};
      ScopedSyncContext scoped(&context);
      Rng rng(t + 1);
      for (int round = 0; round < kRounds; ++round) {
        for (volatile uint64_t spin = rng.NextBelow(2000); spin > 0; --spin) {
        }
        LockGuard<Mutex> guard(lock);
        last_writer = t;
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return last_writer;
}

}  // namespace

int main() {
  // Step 1: the flaky behaviour — native runs disagree about the outcome.
  std::printf("== native runs (NullAgent, OS scheduling) ==\n");
  for (int run = 0; run < 4; ++run) {
    std::printf("run %d: last writer = thread %u\n", run,
                RunRacyProgram(NullAgent::Instance()));
  }

  // Step 2: record one execution's schedule.
  OfflineRecorderAgent recorder(/*max_threads=*/4, /*clock_count=*/256);
  const uint32_t recorded_outcome = RunRacyProgram(&recorder);
  std::unique_ptr<SyncTrace> trace = recorder.TakeTrace();
  std::printf("\n== recorded run ==\nlast writer = thread %u, %zu sync events captured\n",
              recorded_outcome, trace->TotalEvents());

  // Step 3: serialize + restore, as a debugger session saving a repro file.
  const std::vector<uint8_t> bytes = trace->Serialize();
  std::unique_ptr<SyncTrace> restored = SyncTrace::Deserialize(bytes);
  std::printf("trace serialized to %zu bytes and restored\n", bytes.size());

  // Step 4: every replayed run reproduces the recorded outcome exactly.
  std::printf("\n== replayed runs (schedule enforced from the trace) ==\n");
  bool all_match = true;
  for (int run = 0; run < 4; ++run) {
    OfflineReplayAgent replayer(restored.get());
    const uint32_t outcome = RunRacyProgram(&replayer);
    const bool match = outcome == recorded_outcome;
    all_match = all_match && match;
    std::printf("replay %d: last writer = thread %u  [%s]\n", run, outcome,
                match ? "matches recording" : "MISMATCH");
  }
  std::printf("\n%s\n", all_match ? "outcome pinned: the heisenbug reproduces on demand"
                                  : "replay failed to pin the schedule");
  return all_match ? 0 : 1;
}
