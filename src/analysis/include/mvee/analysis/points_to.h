// Steensgaard-style unification-based points-to analysis over MIR.
//
// The paper's first automation attempt used LLVM DSA, "a Steensgaard-style,
// unification-based points-to analysis" (§4.3.1). This implementation is the
// textbook algorithm: a union-find over abstract nodes where each node has
// at most one points-to successor; assignments unify the successors. It is
// flow- and field-insensitive (kGep is treated as a copy), which makes it
// sound but over-approximate — exactly the precision profile the paper
// reports for DSA.
//
// Interprocedural flow is unification too: call-site arguments unify with
// callee parameters and returns with call destinations; indirect-call
// targets are the function objects in the fptr's pointee class, iterated to
// a fixpoint (new callees can grow the class, which can reveal new callees).
//
// Queries run off a class-membership index built once after solving — the
// seed implementation rescanned every object per PointsTo call, making each
// query O(#objects) and the stage-2 pipeline quadratic on large modules.

#ifndef MVEE_ANALYSIS_POINTS_TO_H_
#define MVEE_ANALYSIS_POINTS_TO_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "mvee/analysis/mir.h"
#include "mvee/analysis/stats.h"

namespace mvee {

class PointsToAnalysis {
 public:
  // Runs the analysis on `module`.
  explicit PointsToAnalysis(const MirModule& module);

  // The set of object indices pointer register `reg` may point to.
  std::set<int32_t> PointsTo(int32_t reg) const;

  // True if the two registers may point to a common object.
  bool MayAlias(int32_t reg_a, int32_t reg_b) const;

  // True if `reg` may point to any object in `objects`. Walks the indexed
  // member list of reg's pointee class — no set is materialized.
  bool MayPointInto(int32_t reg, const std::set<int32_t>& objects) const;

  const AnalysisStats& stats() const { return stats_; }

 private:
  // Union-find node ids: [0, reg_count) are registers,
  // [reg_count, reg_count + object_count) are objects.
  int32_t Find(int32_t node) const;
  void Union(int32_t a, int32_t b);
  // Returns (creating if needed) the points-to successor of node's class.
  int32_t SuccessorOf(int32_t node);
  // Unifies the successors of two classes (Steensgaard's join).
  void UnifySuccessors(int32_t a, int32_t b);
  // The root of reg's pointee class, or -1 if reg points at nothing.
  int32_t PointeeClassOf(int32_t reg) const;
  // Builds class_members_ after the constraint fixpoint.
  void BuildMemberIndex(const MirModule& module);

  int32_t reg_count_ = 0;
  int32_t object_count_ = 0;
  mutable std::vector<int32_t> parent_;
  std::vector<int32_t> successor_;  // Per class representative; -1 = none.
  // Class root -> sorted object members. Built once post-solve; every query
  // is O(members) instead of O(#objects).
  std::unordered_map<int32_t, std::vector<int32_t>> class_members_;
  AnalysisStats stats_;
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_POINTS_TO_H_
