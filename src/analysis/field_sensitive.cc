#include "mvee/analysis/field_sensitive.h"

#include <deque>

namespace mvee {

bool LocsMayAlias(const FieldLoc& a, const FieldLoc& b) {
  if (a.object != b.object) {
    return false;
  }
  return a.field == FieldLoc::kAnyField || b.field == FieldLoc::kAnyField ||
         a.field == b.field;
}

FieldSensitiveAnalysis::FieldSensitiveAnalysis(const MirModule& module) {
  points_to_.resize(module.register_count);
  copy_targets_.resize(module.register_count);
  gep_targets_.resize(module.register_count);

  std::deque<int32_t> worklist;
  auto enqueue = [&](int32_t reg) { worklist.push_back(reg); };

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc:
          // &object and fresh allocations point at the object's base field.
          if (points_to_[inst.dst].insert({inst.object, 0}).second) {
            enqueue(inst.dst);
          }
          break;
        case MirOp::kMov:
          copy_targets_[inst.src].push_back(inst.dst);
          enqueue(inst.src);
          break;
        case MirOp::kGep:
          gep_targets_[inst.src].push_back({inst.dst, inst.field});
          enqueue(inst.src);
          break;
        default:
          break;
      }
    }
  }

  // Worklist fixpoint over copy and field-select edges.
  while (!worklist.empty()) {
    ++solver_iterations_;
    const int32_t reg = worklist.front();
    worklist.pop_front();

    for (int32_t target : copy_targets_[reg]) {
      bool changed = false;
      for (const FieldLoc& loc : points_to_[reg]) {
        changed |= points_to_[target].insert(loc).second;
      }
      if (changed) {
        worklist.push_back(target);
      }
    }

    for (const GepEdge& edge : gep_targets_[reg]) {
      bool changed = false;
      for (const FieldLoc& loc : points_to_[reg]) {
        FieldLoc derived = loc;
        if (edge.field == FieldLoc::kAnyField || loc.field == FieldLoc::kAnyField) {
          // Opaque arithmetic, or arithmetic on an already-smeared pointer:
          // the result may address any field (the SVF conservatism §4.3.1
          // complains about).
          derived.field = FieldLoc::kAnyField;
        } else if (loc.field == 0) {
          derived.field = edge.field;  // Member select off the object base.
        } else {
          // Field-of-field (nested aggregates are not modelled): smear.
          derived.field = FieldLoc::kAnyField;
        }
        changed |= points_to_[edge.target].insert(derived).second;
      }
      if (changed) {
        worklist.push_back(edge.target);
      }
    }
  }
}

const std::set<FieldLoc>& FieldSensitiveAnalysis::PointsTo(int32_t reg) const {
  if (reg < 0 || static_cast<size_t>(reg) >= points_to_.size()) {
    return empty_;
  }
  return points_to_[reg];
}

bool FieldSensitiveAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  for (const FieldLoc& a : PointsTo(reg_a)) {
    for (const FieldLoc& b : PointsTo(reg_b)) {
      if (LocsMayAlias(a, b)) {
        return true;
      }
    }
  }
  return false;
}

bool FieldSensitiveAnalysis::MayPointInto(int32_t reg,
                                          const std::set<FieldLoc>& locs) const {
  for (const FieldLoc& mine : PointsTo(reg)) {
    for (const FieldLoc& other : locs) {
      if (LocsMayAlias(mine, other)) {
        return true;
      }
    }
  }
  return false;
}

SyncOpReport IdentifySyncOpsFieldSensitive(const MirModule& module,
                                           const SyncOpAnalysisOptions& options) {
  SyncOpReport report;
  report.module_name = module.name;

  FieldSensitiveAnalysis points_to(module);
  std::set<FieldLoc> sync_locs;

  // Stage 1: type (i)/(ii) instructions seed the sync-variable locations at
  // field granularity.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLockRmw && inst.op != MirOp::kXchg) {
        continue;
      }
      auto& bucket = inst.op == MirOp::kLockRmw ? report.type_i : report.type_ii;
      bucket.push_back({function.name, i, inst.source_line, inst.op});
      for (const FieldLoc& loc : points_to.PointsTo(inst.ptr)) {
        sync_locs.insert(loc);
        report.sync_objects.insert(loc.object);
      }
    }
  }

  // Volatile extension: a volatile qualifier covers the whole object.
  if (options.treat_volatile_as_sync) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        sync_locs.insert({static_cast<int32_t>(obj), FieldLoc::kAnyField});
        report.sync_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  // Stage 2 at field granularity: a load/store of a *different field* of an
  // object whose refcount field is locked stays unmarked.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLoad && inst.op != MirOp::kStore) {
        continue;
      }
      if (points_to.MayPointInto(inst.ptr, sync_locs)) {
        report.type_iii.push_back({function.name, i, inst.source_line, inst.op});
      } else {
        ++report.unmarked_memops;
      }
    }
  }
  return report;
}

}  // namespace mvee
