// Tests for the sync-op identification pipeline (paper §4.3): the MIR
// builder, Steensgaard points-to, the two-stage analysis (incl. the Listing
// 1 / Listing 2 behaviours the paper discusses), the volatile extension, the
// _Atomic qualifier checker, and the Table 3 corpus regeneration.

#include <gtest/gtest.h>

#include <algorithm>

#include "mvee/analysis/andersen.h"
#include "mvee/analysis/assignment_plan.h"
#include "mvee/analysis/atomic_check.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/field_sensitive.h"
#include "mvee/analysis/points_to.h"
#include "mvee/analysis/sparse_bitmap.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/util/rng.h"

namespace mvee {
namespace {

TEST(PointsToTest, AddrOfEstablishesPointsTo) {
  MirBuilder builder("m");
  const int32_t obj = builder.Object("x");
  const int32_t reg = builder.Reg();
  builder.AddrOf(reg, obj);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_EQ(analysis.PointsTo(reg), std::set<int32_t>{obj});
}

TEST(PointsToTest, CopyPropagates) {
  MirBuilder builder("m");
  const int32_t obj = builder.Object("x");
  const int32_t a = builder.Reg();
  const int32_t b = builder.Reg();
  const int32_t c = builder.Reg();
  builder.AddrOf(a, obj).Mov(b, a).Gep(c, b);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_TRUE(analysis.MayAlias(a, b));
  EXPECT_TRUE(analysis.MayAlias(a, c));
  EXPECT_EQ(analysis.PointsTo(c), std::set<int32_t>{obj});
}

TEST(PointsToTest, DisjointPointersDoNotAlias) {
  MirBuilder builder("m");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, x).AddrOf(q, y);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_FALSE(analysis.MayAlias(p, q));
}

TEST(PointsToTest, UnificationMergesOnDoubleAssignment) {
  // Steensgaard is unification-based: p = &x; p = &y makes {x,y} one class,
  // so q = &x aliases p even through y. This is the over-approximation the
  // paper observed with DSA.
  MirBuilder builder("m");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, x).AddrOf(p, y).AddrOf(q, y);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_TRUE(analysis.MayAlias(p, q));
  EXPECT_EQ(analysis.PointsTo(p).size(), 2u);
}

TEST(PointsToTest, HeapObjectsTracked) {
  MirBuilder builder("m");
  const int32_t heap = builder.Object("h", MirStorage::kHeap);
  const int32_t p = builder.Reg();
  builder.Alloc(p, heap);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_EQ(analysis.PointsTo(p), std::set<int32_t>{heap});
}

TEST(SyncOpAnalysisTest, Listing1SpinlockFindsUnlockStore) {
  // The paper's worked example: the LOCK CMPXCHG in spinlock_lock is a
  // stage-1 sync op; the plain store in spinlock_unlock aliases the same
  // variable and must be marked in stage 2.
  const SyncOpReport report = IdentifySyncOps(BuildListing1Module());
  EXPECT_EQ(report.type_i.size(), 1u);
  EXPECT_EQ(report.type_ii.size(), 0u);
  ASSERT_EQ(report.type_iii.size(), 1u);
  EXPECT_EQ(report.type_iii[0].function, "spinlock_unlock");
  EXPECT_EQ(report.type_iii[0].source_line, "listing1.c:9");
  // The bystander store stays unmarked.
  EXPECT_EQ(report.unmarked_memops, 1u);
}

TEST(SyncOpAnalysisTest, Listing2CondvarMissedWithoutVolatile) {
  // The documented limitation (§4.3): load/store-only primitives are
  // invisible to the base analysis.
  const SyncOpReport report = IdentifySyncOps(BuildListing2Module());
  EXPECT_EQ(report.TotalSyncOps(), 0u);
  EXPECT_EQ(report.unmarked_memops, 2u);
}

TEST(SyncOpAnalysisTest, Listing2CondvarFoundWithVolatileExtension) {
  SyncOpAnalysisOptions options;
  options.treat_volatile_as_sync = true;
  const SyncOpReport report = IdentifySyncOps(BuildListing2Module(), options);
  EXPECT_EQ(report.type_iii.size(), 2u);  // The flag's store and load.
  EXPECT_EQ(report.unmarked_memops, 0u);
}

TEST(SyncOpAnalysisTest, NoisePrecision) {
  // A module with only private memory traffic: nothing may be marked.
  MirBuilder builder("quiet");
  for (int i = 0; i < 50; ++i) {
    const int32_t obj = builder.Object("v" + std::to_string(i), MirStorage::kStack);
    const int32_t reg = builder.Reg();
    builder.AddrOf(reg, obj).Load(reg).Store(reg);
  }
  const SyncOpReport report = IdentifySyncOps(builder.Build());
  EXPECT_EQ(report.TotalSyncOps(), 0u);
  EXPECT_EQ(report.unmarked_memops, 100u);
}

class Table3Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Table3Test, CorpusRowMatchesPaperCounts) {
  const auto specs = Table3Specs();
  const CorpusSpec& spec = specs[GetParam()];
  const SyncOpReport report = IdentifySyncOps(BuildSyntheticModule(spec));
  EXPECT_EQ(report.type_i.size(), spec.type_i) << spec.module_name;
  EXPECT_EQ(report.type_ii.size(), spec.type_ii) << spec.module_name;
  EXPECT_EQ(report.type_iii.size(), spec.type_iii) << spec.module_name;
  // Precision: every noise memop stays unmarked.
  EXPECT_EQ(report.unmarked_memops, spec.noise_memops) << spec.module_name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3Test, ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string name = Table3Specs()[info.param].module_name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Table3FormatTest, RendersAllRows) {
  std::vector<SyncOpReport> reports;
  for (const auto& module : BuildTable3Corpus()) {
    reports.push_back(IdentifySyncOps(module));
  }
  const std::string table = FormatTable3(reports);
  EXPECT_NE(table.find("libc-2.19.so"), std::string::npos);
  EXPECT_NE(table.find("319"), std::string::npos);  // libc type (i) count.
  EXPECT_NE(table.find("409"), std::string::npos);  // libc type (ii) count.
}

TEST(AtomicCheckTest, CleanModuleHasNoDiagnostics) {
  MirBuilder builder("clean");
  const int32_t obj = builder.Object("lock", MirStorage::kGlobal, false,
                                     /*atomic_qualified=*/true);
  const int32_t p = builder.Reg();
  builder.AddrOf(p, obj).LockRmw(p);
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {p});
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(AtomicCheckTest, DiscardingQualifierIsError) {
  MirBuilder builder("discard");
  const int32_t obj = builder.Object("lock", MirStorage::kGlobal, false, true);
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, obj).Mov(q, p, "cast.c:7");
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {p});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].kind, AtomicDiagnostic::Kind::kErrorCastFromAtomic);
  EXPECT_EQ(result.diagnostics[0].source_line, "cast.c:7");
  EXPECT_TRUE(result.HasErrors());
}

TEST(AtomicCheckTest, AddingQualifierIsWarning) {
  MirBuilder builder("add");
  const int32_t obj = builder.Object("plain");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, obj).Mov(q, p, "cast.c:9");
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {q});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].kind, AtomicDiagnostic::Kind::kWarningCastToAtomic);
  EXPECT_FALSE(result.HasErrors());
}

TEST(AtomicCheckTest, AsmUseIsHardError) {
  const MirModule module = BuildAsmViolationModule();
  PropagationResult result = PropagateQualifiers(module, {0});
  ASSERT_EQ(result.hard_errors.size(), 1u);
  EXPECT_EQ(result.hard_errors[0].kind, AtomicDiagnostic::Kind::kErrorAtomicInAsm);
}

TEST(AtomicCheckTest, PropagationReachesFixpoint) {
  // A chain lock -> p0 -> p1 -> p2 plus an upstream source feeding p1: the
  // fixpoint must qualify every register in the def-use web.
  MirBuilder builder("chain");
  const int32_t lock = builder.Object("lock");
  const int32_t p0 = builder.Reg();
  const int32_t p1 = builder.Reg();
  const int32_t p2 = builder.Reg();
  const int32_t upstream = builder.Reg();
  builder.AddrOf(p0, lock).Mov(p1, p0).Mov(p2, p1).Mov(p1, upstream);
  const PropagationResult result = PropagateQualifiers(builder.Build(), {lock});
  EXPECT_EQ(result.qualified_regs.size(), 4u);  // p0, p1, p2, upstream.
  EXPECT_GE(result.iterations, 2);              // Needed more than one "compile".
  EXPECT_TRUE(result.hard_errors.empty());
}

TEST(AtomicCheckTest, UnrelatedPointersStayUnqualified) {
  MirBuilder builder("unrelated");
  const int32_t lock = builder.Object("lock");
  const int32_t other = builder.Object("other");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, lock).AddrOf(q, other);
  const PropagationResult result = PropagateQualifiers(builder.Build(), {lock});
  EXPECT_EQ(result.qualified_regs.count(p), 1u);
  EXPECT_EQ(result.qualified_regs.count(q), 0u);
}

TEST(MirTest, BuilderProducesWellFormedModule) {
  MirBuilder builder("wf");
  const int32_t obj = builder.Object("x");
  const int32_t reg = builder.Reg();
  builder.Function("f");
  builder.AddrOf(reg, obj).LockRmw(reg).Compute();
  const MirModule module = builder.Build();
  EXPECT_EQ(module.name, "wf");
  EXPECT_EQ(module.functions.size(), 1u);
  EXPECT_EQ(module.InstructionCount(), 3u);
  EXPECT_EQ(module.register_count, 1);
}

// --- Field-sensitive analysis (§4.3.1's missing piece) ---

TEST(FieldSensitiveTest, DistinctFieldsDoNotAlias) {
  MirBuilder builder("m");
  const int32_t node = builder.Object("node", MirStorage::kHeap);
  const int32_t base = builder.Reg();
  const int32_t refcount = builder.Reg();
  const int32_t payload = builder.Reg();
  builder.Function("f");
  builder.Alloc(base, node)
      .GepField(refcount, base, 0)
      .GepField(payload, base, 1);
  FieldSensitiveAnalysis analysis(builder.Build());
  EXPECT_FALSE(analysis.MayAlias(refcount, payload));
  EXPECT_TRUE(analysis.MayAlias(base, refcount)) << "base covers field 0";
}

TEST(FieldSensitiveTest, OpaqueArithmeticSmearToAnyField) {
  MirBuilder builder("m");
  const int32_t node = builder.Object("node", MirStorage::kHeap);
  const int32_t base = builder.Reg();
  const int32_t anywhere = builder.Reg();
  const int32_t payload = builder.Reg();
  builder.Function("f");
  builder.Alloc(base, node)
      .Gep(anywhere, base)  // Opaque pointer arithmetic: field unknown.
      .GepField(payload, base, 3);
  FieldSensitiveAnalysis analysis(builder.Build());
  // The SVF conservatism the paper observed: arithmetic forfeits precision.
  EXPECT_TRUE(analysis.MayAlias(anywhere, payload));
}

TEST(FieldSensitiveTest, LocsMayAliasSemantics) {
  EXPECT_TRUE(LocsMayAlias({1, 0}, {1, 0}));
  EXPECT_FALSE(LocsMayAlias({1, 0}, {1, 1}));
  EXPECT_FALSE(LocsMayAlias({1, 0}, {2, 0}));
  EXPECT_TRUE(LocsMayAlias({1, FieldLoc::kAnyField}, {1, 7}));
  EXPECT_TRUE(LocsMayAlias({1, 7}, {1, FieldLoc::kAnyField}));
}

TEST(FieldSensitiveTest, RefcountPatternKeepsPayloadUnmarked) {
  const RefcountHeapCorpus corpus = BuildRefcountHeapModule();

  // Field-insensitive (Andersen / SVF-as-queryable, §4.3.1): every payload
  // access aliases the locked object => spurious type (iii) marks.
  const SyncOpReport flat = IdentifySyncOpsAndersen(corpus.module);
  EXPECT_EQ(flat.type_iii.size(), corpus.real_type_iii + corpus.payload_memops)
      << "field-insensitive analysis must over-mark the heap payload";

  // Field-sensitive: only the genuine refcount reloads are marked.
  const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(corpus.module);
  EXPECT_EQ(sensitive.type_iii.size(), corpus.real_type_iii);
  EXPECT_EQ(sensitive.unmarked_memops, corpus.payload_memops);
  EXPECT_EQ(sensitive.type_i.size(), flat.type_i.size()) << "stage 1 is unchanged";
}

TEST(FieldSensitiveTest, AgreesWithAndersenOnFieldFreeModules) {
  // On Listing 1 (no aggregates) field sensitivity must change nothing.
  const MirModule module = BuildListing1Module();
  const SyncOpReport flat = IdentifySyncOpsAndersen(module);
  const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(module);
  EXPECT_EQ(sensitive.type_i.size(), flat.type_i.size());
  EXPECT_EQ(sensitive.type_ii.size(), flat.type_ii.size());
  EXPECT_EQ(sensitive.type_iii.size(), flat.type_iii.size());
  EXPECT_EQ(sensitive.unmarked_memops, flat.unmarked_memops);
}

TEST(FieldSensitiveTest, VolatileExtensionCoversWholeObject) {
  const MirModule module = BuildListing2Module();
  SyncOpAnalysisOptions options;
  options.treat_volatile_as_sync = true;
  const SyncOpReport report = IdentifySyncOpsFieldSensitive(module, options);
  // Both the store and the load on the volatile flag are found.
  EXPECT_EQ(report.type_iii.size(), 2u);
}

// --- §4.3.1 checker improvements ---

TEST(AtomicCheckImprovementsTest, AutoVolatileQualifiesListing2) {
  const MirModule module = BuildListing2Module();
  // Without improvement 1 there is nothing to seed from: stage 1 finds no
  // atomics in Listing 2, so propagation qualifies nothing.
  const PropagationResult plain = PropagateQualifiers(module, {});
  EXPECT_TRUE(plain.qualified_objects.empty());
  EXPECT_TRUE(plain.qualified_regs.empty());

  AtomicCheckOptions options;
  options.auto_qualify_volatile = true;
  const PropagationResult improved = PropagateQualifiers(module, {}, options);
  EXPECT_EQ(improved.qualified_objects.size(), 1u) << "the volatile flag";
  EXPECT_EQ(improved.qualified_regs.size(), 2u) << "both pointers to it";
  EXPECT_TRUE(improved.hard_errors.empty());
}

TEST(AtomicCheckImprovementsTest, AnalyzableAsmIsPermitted) {
  MirBuilder builder("analyzable_asm");
  const int32_t var = builder.Object("lock", MirStorage::kGlobal);
  builder.Function("f");
  const int32_t pointer = builder.Reg();
  builder.AddrOf(pointer, var, "a.c:1");
  builder.AsmBlockAnalyzable(pointer, "a.c:2");
  const MirModule module = builder.Build();

  // Improvement 3 off: the qualified pointer in asm is a hard error.
  const PropagationResult strict = PropagateQualifiers(module, {var});
  ASSERT_EQ(strict.hard_errors.size(), 1u);
  EXPECT_EQ(strict.hard_errors[0].kind, AtomicDiagnostic::Kind::kErrorAtomicInAsm);

  // Improvement 3 on: the easy-to-analyze block is accepted.
  AtomicCheckOptions options;
  options.permit_analyzable_asm = true;
  const PropagationResult relaxed = PropagateQualifiers(module, {var}, options);
  EXPECT_TRUE(relaxed.hard_errors.empty());
}

TEST(AtomicCheckImprovementsTest, OpaqueAsmStillRejected) {
  // BuildAsmViolationModule uses a plain AsmBlock: improvement 3 must not
  // exempt it.
  const MirModule module = BuildAsmViolationModule();
  AtomicCheckOptions options;
  options.permit_analyzable_asm = true;
  const PropagationResult result = PropagateQualifiers(module, {0}, options);
  EXPECT_EQ(result.hard_errors.size(), 1u);
}

// --- Sparse bitmap (the wave solver's set representation) -------------------

TEST(SparseBitmapTest, InsertTestCount) {
  SparseBitmap bitmap;
  EXPECT_TRUE(bitmap.Empty());
  EXPECT_TRUE(bitmap.Insert(7));
  EXPECT_FALSE(bitmap.Insert(7));  // Already set.
  EXPECT_TRUE(bitmap.Insert(1000000));  // Far chunk.
  EXPECT_TRUE(bitmap.Test(7));
  EXPECT_TRUE(bitmap.Test(1000000));
  EXPECT_FALSE(bitmap.Test(8));
  EXPECT_EQ(bitmap.Count(), 2u);
}

TEST(SparseBitmapTest, ForEachAscending) {
  SparseBitmap bitmap;
  const std::vector<uint32_t> bits = {513, 2, 255, 256, 70000, 0};
  for (uint32_t bit : bits) {
    bitmap.Insert(bit);
  }
  std::vector<uint32_t> seen;
  bitmap.ForEach([&](uint32_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 2, 255, 256, 513, 70000}));
}

TEST(SparseBitmapTest, UnionWithDeltaReportsOnlyNewBits) {
  SparseBitmap a;
  SparseBitmap b;
  a.Insert(1);
  a.Insert(300);
  b.Insert(300);  // Already present in a.
  b.Insert(301);
  b.Insert(9000);
  SparseBitmap delta;
  EXPECT_TRUE(a.UnionWithDelta(b, &delta));
  std::vector<uint32_t> fresh;
  delta.ForEach([&](uint32_t bit) { fresh.push_back(bit); });
  EXPECT_EQ(fresh, (std::vector<uint32_t>{301, 9000}));
  // Second union is a no-op.
  SparseBitmap empty_delta;
  EXPECT_FALSE(a.UnionWithDelta(b, &empty_delta));
  EXPECT_TRUE(empty_delta.Empty());
  EXPECT_TRUE(a.Intersects(b));
}

// --- Interprocedural MIR: direct calls, returns, indirect-call fixpoint -----

TEST(InterprocTest, DirectCallBindsArgsAndReturn) {
  // callee(p) { return p; }  caller: r = callee(&x)  =>  pts(r) = {x}.
  MirBuilder builder("direct");
  const int32_t callee = builder.Function("callee");
  const int32_t param = builder.Param();
  builder.Return(param);
  builder.Function("caller");
  const int32_t x = builder.Object("x");
  const int32_t arg = builder.Reg();
  const int32_t ret = builder.Reg();
  builder.AddrOf(arg, x);
  builder.Call(ret, builder.FunctionObject(callee), {arg});
  const MirModule module = builder.Build();

  for (const bool fast : {false, true}) {
    AnalysisOptions options;
    options.fast_solver = fast;
    const AndersenAnalysis andersen(module, options);
    EXPECT_EQ(andersen.PointsTo(param), std::set<int32_t>{x}) << "fast=" << fast;
    EXPECT_EQ(andersen.PointsTo(ret), std::set<int32_t>{x}) << "fast=" << fast;
  }
  const PointsToAnalysis steensgaard(module);
  EXPECT_EQ(steensgaard.PointsTo(param), std::set<int32_t>{x});
  EXPECT_EQ(steensgaard.PointsTo(ret), std::set<int32_t>{x});
}

TEST(InterprocTest, IndirectCallResolvedThroughPointsTo) {
  // fp receives &f and &g; the indirect call must bind BOTH callees' params.
  MirBuilder builder("indirect");
  const int32_t f = builder.Function("f");
  const int32_t f_param = builder.Param();
  const int32_t g = builder.Function("g");
  const int32_t g_param = builder.Param();
  builder.Function("caller");
  const int32_t x = builder.Object("x");
  const int32_t arg = builder.Reg();
  const int32_t fptr = builder.Reg();
  builder.AddrOf(arg, x);
  builder.AddrOf(fptr, builder.FunctionObject(f));
  builder.AddrOf(fptr, builder.FunctionObject(g));
  builder.CallIndirect(-1, fptr, {arg});
  const MirModule module = builder.Build();

  for (const bool fast : {false, true}) {
    AnalysisOptions options;
    options.fast_solver = fast;
    const AndersenAnalysis andersen(module, options);
    EXPECT_EQ(andersen.PointsTo(f_param), std::set<int32_t>{x}) << "fast=" << fast;
    EXPECT_EQ(andersen.PointsTo(g_param), std::set<int32_t>{x}) << "fast=" << fast;
  }
  const PointsToAnalysis steensgaard(module);
  EXPECT_TRUE(steensgaard.PointsTo(f_param).count(x));
  EXPECT_TRUE(steensgaard.PointsTo(g_param).count(x));
}

TEST(InterprocTest, CallGraphPointsToFixpoint) {
  // The mutually-recursive case: the fptr's second target only becomes
  // visible through a copy chain fed by ANOTHER function's param — resolving
  // the first callee is what makes the second resolvable.
  MirBuilder builder("fixpoint");
  const int32_t leak = builder.Function("leak_fp");
  const int32_t leak_param = builder.Param();  // Receives &g via the call below.
  const int32_t leaked = builder.Reg();
  builder.Mov(leaked, leak_param);
  builder.Return(leaked);
  const int32_t g = builder.Function("g");
  const int32_t g_param = builder.Param();
  (void)g_param;
  builder.Function("caller");
  const int32_t x = builder.Object("x");
  const int32_t g_addr = builder.Reg();
  builder.AddrOf(g_addr, builder.FunctionObject(g));
  const int32_t fptr = builder.Reg();
  builder.Call(fptr, builder.FunctionObject(leak), {g_addr});
  const int32_t arg = builder.Reg();
  builder.AddrOf(arg, x);
  builder.CallIndirect(-1, fptr, {arg});  // Callee (g) known only post-solve.
  const MirModule module = builder.Build();

  for (const bool fast : {false, true}) {
    AnalysisOptions options;
    options.fast_solver = fast;
    const AndersenAnalysis andersen(module, options);
    EXPECT_EQ(andersen.PointsTo(g_param), std::set<int32_t>{x}) << "fast=" << fast;
  }
  const PointsToAnalysis steensgaard(module);
  EXPECT_TRUE(steensgaard.PointsTo(g_param).count(x));
}

TEST(InterprocTest, SyncOpsFlowAcrossCalls) {
  // A lock address passed into a callee: the callee's plain store must be
  // marked type (iii) — invisible to an intraprocedural stage 2.
  MirBuilder builder("cross");
  const int32_t unlock = builder.Function("unlock");
  const int32_t unlock_param = builder.Param();
  builder.Store(unlock_param, "cross.c:9");
  builder.Function("lock");
  const int32_t lock_var = builder.Object("lock_var", MirStorage::kGlobal);
  const int32_t pointer = builder.Reg();
  builder.AddrOf(pointer, lock_var);
  builder.LockRmw(pointer, "cross.c:4");
  builder.Call(-1, builder.FunctionObject(unlock), {pointer});
  const MirModule module = builder.Build();

  const SyncOpReport steensgaard = IdentifySyncOps(module);
  const SyncOpReport andersen = IdentifySyncOpsAndersen(module);
  for (const SyncOpReport* report : {&steensgaard, &andersen}) {
    ASSERT_EQ(report->type_iii.size(), 1u);
    EXPECT_EQ(report->type_iii[0].function, "unlock");
    EXPECT_EQ(report->type_iii[0].source_line, "cross.c:9");
  }
}

TEST(InterprocTest, EscapingLocalLosesThreadLocalVerdict) {
  // A stack object RMW'd in its creating function would be kThreadLocal /
  // kNull; once its address escapes into a callee that stores through it,
  // the interprocedural analysis sees two touching functions and the plan
  // must route it to a recording agent.
  MirBuilder builder("escape");
  const int32_t consumer = builder.Function("consumer");
  const int32_t consumer_param = builder.Param();
  builder.Store(consumer_param, "escape.c:20");
  builder.Function("producer");
  const int32_t local = builder.Object("local_latch", MirStorage::kStack);
  const int32_t local_ptr = builder.Reg();
  builder.AddrOf(local_ptr, local);
  builder.LockRmw(local_ptr, "escape.c:10");
  builder.Call(-1, builder.FunctionObject(consumer), {local_ptr});
  const MirModule module = builder.Build();

  const SyncOpReport report = IdentifySyncOpsAndersen(module);
  ASSERT_TRUE(report.sync_objects.count(local));
  const AssignmentPlanReport plan = DeriveAssignmentPlan(module, report);
  ASSERT_EQ(plan.variables.size(), 1u);
  EXPECT_EQ(plan.variables[0].object, local);
  EXPECT_NE(plan.variables[0].verdict, AssignmentVerdict::kThreadLocal);
  EXPECT_NE(plan.variables[0].kind, AgentKind::kNull);
  EXPECT_EQ(plan.variables[0].touching_functions, 2u);
}

TEST(InterprocTest, QualifierPropagatesThroughCalls) {
  // _Atomic propagation must treat arg/param bindings as def-use edges: the
  // callee's param (and its copies) get qualified from the caller's seed.
  MirBuilder builder("qualcall");
  const int32_t callee = builder.Function("callee");
  const int32_t param = builder.Param();
  const int32_t inner = builder.Reg();
  builder.Mov(inner, param);
  builder.Function("caller");
  const int32_t var = builder.Object("flag", MirStorage::kGlobal);
  const int32_t pointer = builder.Reg();
  builder.AddrOf(pointer, var);
  builder.Call(-1, builder.FunctionObject(callee), {pointer});
  const PropagationResult result = PropagateQualifiers(builder.Build(), {var});
  EXPECT_TRUE(result.qualified_regs.count(param));
  EXPECT_TRUE(result.qualified_regs.count(inner));
}

// --- Interprocedural corpus ------------------------------------------------

TEST(InterprocCorpusTest, DeterministicAndScales) {
  const InterprocSpec spec;  // Defaults: small.
  const InterprocCorpus a = BuildInterprocModule(spec);
  const InterprocCorpus b = BuildInterprocModule(spec);
  EXPECT_EQ(a.module.InstructionCount(), b.module.InstructionCount());
  EXPECT_EQ(a.module.register_count, b.module.register_count);
  EXPECT_EQ(a.noise_memops, b.noise_memops);
  EXPECT_FALSE(a.escaping_objects.empty());

  const auto scaled = ScaledInterprocSpecs();
  ASSERT_FALSE(scaled.empty());
  // The acceptance row: the largest spec emits a 100k+-instruction module.
  const InterprocCorpus largest = BuildInterprocModule(scaled.back());
  EXPECT_GE(largest.module.InstructionCount(), 100000u);
}

TEST(InterprocCorpusTest, EscapingLocalsRoutedToRecordingAgents) {
  InterprocSpec spec;
  spec.workers = 6;
  spec.escaping_locals = 3;
  const InterprocCorpus corpus = BuildInterprocModule(spec);
  const SyncOpReport report = IdentifySyncOpsAndersen(corpus.module);
  const AssignmentPlanReport plan = DeriveAssignmentPlan(corpus.module, report);
  size_t escaping_seen = 0;
  for (const auto& variable : plan.variables) {
    for (int32_t escaping : corpus.escaping_objects) {
      if (variable.object != escaping) {
        continue;
      }
      ++escaping_seen;
      EXPECT_NE(variable.verdict, AssignmentVerdict::kThreadLocal) << variable.name;
      EXPECT_NE(variable.kind, AgentKind::kNull) << variable.name;
    }
  }
  EXPECT_EQ(escaping_seen, corpus.escaping_objects.size());
}

TEST(InterprocCorpusTest, AndersenKeepsConflatedNoiseUnmarked) {
  // The corpus plants noise objects whose address shares a register with a
  // pool address: Steensgaard's unification marks their probe access
  // (spurious), Andersen does not.
  InterprocSpec spec;
  spec.workers = 4;
  spec.conflated_noise = 4;
  const InterprocCorpus corpus = BuildInterprocModule(spec);
  auto spurious = [](const SyncOpReport& report) {
    size_t count = 0;
    for (const auto& site : report.type_iii) {
      if (site.source_line.rfind("noise:", 0) == 0) {
        ++count;
      }
    }
    return count;
  };
  EXPECT_EQ(spurious(IdentifySyncOpsAndersen(corpus.module)), 0u);
  EXPECT_GE(spurious(IdentifySyncOps(corpus.module)), spec.conflated_noise);
}

// --- Differential property tests: fast == baseline, Andersen <= Steensgaard

// Randomized module with pointer chains, direct/indirect calls, params and
// returns. Deterministic per seed; failures below print the seed.
MirModule BuildRandomModule(uint64_t seed) {
  Rng rng(seed);
  MirBuilder builder("random_" + std::to_string(seed));
  const size_t function_count = 2 + rng.NextBelow(4);
  const size_t object_count = 3 + rng.NextBelow(8);

  std::vector<int32_t> objects;
  for (size_t i = 0; i < object_count; ++i) {
    objects.push_back(builder.Object("o" + std::to_string(i),
                                     rng.NextBool(0.5) ? MirStorage::kGlobal
                                                       : MirStorage::kStack));
  }

  std::vector<int32_t> functions(function_count);
  std::vector<std::vector<int32_t>> params(function_count);
  std::vector<std::vector<int32_t>> regs(function_count);
  for (size_t f = 0; f < function_count; ++f) {
    functions[f] = builder.Function("fn" + std::to_string(f));
    const size_t param_count = rng.NextBelow(3);
    for (size_t i = 0; i < param_count; ++i) {
      const int32_t param = builder.Param();
      params[f].push_back(param);
      regs[f].push_back(param);
    }
  }

  for (size_t f = 0; f < function_count; ++f) {
    builder.Select(functions[f]);
    auto any_reg = [&]() -> int32_t {
      if (regs[f].empty() || rng.NextBool(0.3)) {
        const int32_t reg = builder.Reg();
        regs[f].push_back(reg);
        return reg;
      }
      return regs[f][rng.NextBelow(regs[f].size())];
    };
    const size_t inst_count = 5 + rng.NextBelow(20);
    for (size_t i = 0; i < inst_count; ++i) {
      switch (rng.NextBelow(8)) {
        case 0:
          builder.AddrOf(any_reg(), objects[rng.NextBelow(objects.size())]);
          break;
        case 1:
          builder.Mov(any_reg(), any_reg());
          break;
        case 2:
          builder.Gep(any_reg(), any_reg());
          break;
        case 3:
          builder.LockRmw(any_reg(), "rmw:" + std::to_string(i));
          break;
        case 4:
          if (rng.NextBool(0.5)) {
            builder.Load(any_reg(), "mem:" + std::to_string(i));
          } else {
            builder.Store(any_reg(), "mem:" + std::to_string(i));
          }
          break;
        case 5: {  // Direct call with positional args.
          const size_t target = rng.NextBelow(function_count);
          std::vector<int32_t> args;
          for (size_t p = 0; p < params[target].size(); ++p) {
            args.push_back(any_reg());
          }
          builder.Call(rng.NextBool(0.5) ? any_reg() : -1,
                       builder.FunctionObject(functions[target]), std::move(args));
          break;
        }
        case 6: {  // Indirect call: fptr gets 1-2 function addresses first.
          const int32_t fptr = any_reg();
          const size_t fanout = 1 + rng.NextBelow(2);
          size_t max_params = 0;
          for (size_t t = 0; t < fanout; ++t) {
            const size_t target = rng.NextBelow(function_count);
            builder.AddrOf(fptr, builder.FunctionObject(functions[target]));
            max_params = std::max(max_params, params[target].size());
          }
          std::vector<int32_t> args;
          for (size_t p = 0; p < max_params; ++p) {
            args.push_back(any_reg());
          }
          builder.CallIndirect(-1, fptr, std::move(args));
          break;
        }
        default:
          builder.Alloc(any_reg(), objects[rng.NextBelow(objects.size())]);
          break;
      }
    }
    if (rng.NextBool(0.5) && !regs[f].empty()) {
      builder.Return(regs[f][rng.NextBelow(regs[f].size())]);
    }
  }
  return builder.Build();
}

TEST(DifferentialTest, FastAndersenMatchesBaselineExactly) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const MirModule module = BuildRandomModule(seed);
    AnalysisOptions baseline_options;
    baseline_options.fast_solver = false;
    AnalysisOptions fast_options;
    fast_options.fast_solver = true;
    const AndersenAnalysis baseline(module, baseline_options);
    const AndersenAnalysis fast(module, fast_options);
    for (int32_t reg = 0; reg < module.register_count; ++reg) {
      ASSERT_EQ(fast.PointsToSorted(reg), baseline.PointsToSorted(reg))
          << "solutions diverge at r" << reg << "; reproduce with seed=" << seed;
    }
  }
}

TEST(DifferentialTest, AndersenIsSubsetOfSteensgaard) {
  // Unification only ever merges classes: per register, Steensgaard's
  // points-to set must contain Andersen's.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const MirModule module = BuildRandomModule(seed);
    const AndersenAnalysis andersen(module);
    const PointsToAnalysis steensgaard(module);
    for (int32_t reg = 0; reg < module.register_count; ++reg) {
      const std::set<int32_t> coarse = steensgaard.PointsTo(reg);
      andersen.ForEachPointee(reg, [&](int32_t object) {
        ASSERT_TRUE(coarse.count(object))
            << "r" << reg << " -> o" << object
            << " found by Andersen but not Steensgaard; reproduce with seed=" << seed;
      });
    }
  }
}

TEST(DifferentialTest, PipelinesAgreeAcrossSolversOnReports) {
  // End-to-end: the full two-stage report is identical under both Andersen
  // engines (site lists, sync objects, unmarked counts).
  for (uint64_t seed = 100; seed <= 110; ++seed) {
    const MirModule module = BuildRandomModule(seed);
    SyncOpAnalysisOptions baseline_options;
    baseline_options.analysis.fast_solver = false;
    SyncOpAnalysisOptions fast_options;
    fast_options.analysis.fast_solver = true;
    const SyncOpReport baseline = IdentifySyncOpsAndersen(module, baseline_options);
    const SyncOpReport fast = IdentifySyncOpsAndersen(module, fast_options);
    ASSERT_EQ(fast.sync_objects, baseline.sync_objects) << "seed=" << seed;
    ASSERT_EQ(fast.type_iii.size(), baseline.type_iii.size()) << "seed=" << seed;
    ASSERT_EQ(fast.unmarked_memops, baseline.unmarked_memops) << "seed=" << seed;
    for (size_t i = 0; i < fast.type_iii.size(); ++i) {
      ASSERT_EQ(fast.type_iii[i].instruction_index, baseline.type_iii[i].instruction_index)
          << "seed=" << seed;
    }
  }
}

TEST(StatsTest, ReportsCarrySolverStats) {
  const MirModule module = BuildListing1Module();
  const SyncOpReport steensgaard = IdentifySyncOps(module);
  EXPECT_EQ(steensgaard.stats.solver, "steensgaard");
  EXPECT_GT(steensgaard.stats.constraints, 0u);
  // Pin both Andersen engines explicitly — the default follows
  // MVEE_ANALYSIS_FAST_SOLVER, which the CI sweep flips.
  SyncOpAnalysisOptions wave_options;
  wave_options.analysis.fast_solver = true;
  const SyncOpReport wave = IdentifySyncOpsAndersen(module, wave_options);
  EXPECT_EQ(wave.stats.solver, "andersen-wave");
  SyncOpAnalysisOptions baseline_options;
  baseline_options.analysis.fast_solver = false;
  const SyncOpReport baseline = IdentifySyncOpsAndersen(module, baseline_options);
  EXPECT_EQ(baseline.stats.solver, "andersen-baseline");
  EXPECT_GT(baseline.stats.points_to_bytes, 0u);
  const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(module);
  EXPECT_EQ(sensitive.stats.solver, "field-sensitive");
}

}  // namespace
}  // namespace mvee
