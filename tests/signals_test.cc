// Deterministic signal delivery tests.
//
// Asynchronous signals are a classic source of benign divergence in MVEEs:
// if the kernel delivers a signal to variant A between syscalls 17 and 18
// but to variant B between 23 and 24, the handlers' effects interleave
// differently and the variants diverge. GHUMVEE-style monitors solve this by
// deferring delivery to a synchronization point; here that point is the
// lockstep rendezvous — every variant's copy of the target thread runs the
// handler after the same syscall. These tests pin that contract.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/sync/primitives.h"

namespace mvee {
namespace {

constexpr int32_t kSigUsr1 = 10;
constexpr int32_t kSigUsr2 = 12;

MveeOptions TestOptions(uint32_t variants = 2) {
  MveeOptions options;
  options.num_variants = variants;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  return options;
}

std::string ResultOf(VirtualKernel& kernel, const std::string& name) {
  auto file = kernel.vfs().Open(name, false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

TEST(SignalTest, SelfKillDeliversHandlerOnce) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    auto hits = std::make_shared<int>(0);
    env.Sigaction(kSigUsr1, [hits](VariantEnv&) { ++*hits; });
    env.Kill(/*tid=*/0, kSigUsr1);
    // The kill rendezvous itself is the delivery point for a self-signal.
    const int64_t fd = env.Open("result/selfkill",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::to_string(*hits));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/selfkill"), "1");
}

TEST(SignalTest, UnhandledSignalIsIgnored) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    env.Kill(0, kSigUsr2);  // Nobody registered a handler.
    env.Gettid();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(SignalTest, CrossThreadKillDeliversToTargetThread) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    struct State {
      InstrumentedAtomic<int32_t> handled{0};
      InstrumentedAtomic<int32_t> handler_tid{-1};
    };
    auto state = std::make_shared<State>();
    env.Sigaction(kSigUsr1, [state](VariantEnv& senv) {
      state->handler_tid.Store(static_cast<int32_t>(senv.tid()));
      state->handled.Store(1);
    });

    ThreadHandle worker = env.Spawn([state](VariantEnv& wenv) {
      wenv.Kill(/*tid=*/0, kSigUsr1);  // Target the main thread.
    });
    env.Join(worker);

    // Delivery happens at the main thread's next rendezvous; pump syscalls
    // until the handler ran (bounded).
    int spins = 0;
    while (state->handled.Load() == 0 && spins++ < 100) {
      env.Gettid();
    }
    const int64_t fd = env.Open("result/crosskill",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::to_string(state->handler_tid.Load()));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The handler ran on logical thread 0 — the kill's target — in every
  // variant (the lockstep write comparison proves cross-variant equality).
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/crosskill"), "0");
}

TEST(SignalTest, ExternallyRaisedSignalIsDeliveredToAllVariants) {
  Mvee mvee(TestOptions(3));
  mvee.RaiseSignal(/*tid=*/0, kSigUsr1);  // Async source: queued before Run.
  const Status status = mvee.Run([](VariantEnv& env) {
    auto hits = std::make_shared<int>(0);
    env.Sigaction(kSigUsr1, [hits](VariantEnv&) { ++*hits; });
    int spins = 0;
    while (*hits == 0 && spins++ < 100) {
      env.Gettid();
    }
    const int64_t fd = env.Open("result/external",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::to_string(*hits));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/external"), "1");
}

TEST(SignalTest, HandlerMayMakeSyscalls) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    env.Sigaction(kSigUsr1, [](VariantEnv& senv) {
      // The handler's own syscalls rendezvous like any other: every variant
      // runs the same handler at the same point.
      const int64_t fd = senv.Open("result/from_handler",
                                   VOpenFlags::kWrite | VOpenFlags::kCreate);
      senv.Write(fd, std::string("handled"));
      senv.Close(fd);
    });
    env.Kill(0, kSigUsr1);
    env.Gettid();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/from_handler"), "handled");
}

TEST(SignalTest, QueuedSignalsDeliverInOrder) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    auto log = std::make_shared<std::string>();
    env.Sigaction(kSigUsr1, [log](VariantEnv&) { *log += "1"; });
    env.Sigaction(kSigUsr2, [log](VariantEnv&) { *log += "2"; });
    env.Kill(0, kSigUsr1);
    env.Kill(0, kSigUsr2);
    env.Kill(0, kSigUsr1);
    int spins = 0;
    while (log->size() < 3 && spins++ < 100) {
      env.Gettid();
    }
    const int64_t fd = env.Open("result/order",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, *log);
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/order"), "121");
}

TEST(SignalTest, DivergentRegistrationIsDetected) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    // A compromised variant registering a different handler signature is
    // caught at the sigaction rendezvous (the call is security-sensitive).
    const int32_t sig = env.MveeSelfAware() == 0 ? kSigUsr1 : kSigUsr2;
    env.Sigaction(sig, [](VariantEnv&) {});
    env.Gettid();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
}

TEST(SignalTest, LooseModeDeliversAtSameRecordIndex) {
  MveeOptions options = TestOptions(2);
  options.sync_model = SyncModel::kLoose;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto hits = std::make_shared<int>(0);
    env.Sigaction(kSigUsr1, [hits](VariantEnv&) { ++*hits; });
    env.Kill(0, kSigUsr1);
    int spins = 0;
    while (*hits == 0 && spins++ < 100) {
      env.Gettid();
    }
    const int64_t fd = env.Open("result/loose_signal",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::to_string(*hits));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), "result/loose_signal"), "1");
}

TEST(SignalTest, DeliveryIsDeterministicAcrossManyVariants) {
  // The strongest property: with 4 variants and a worker thread pumping
  // syscalls concurrently, the handler still interleaves identically in all
  // variants — the lockstep comparison of the final digest would trip
  // otherwise.
  Mvee mvee(TestOptions(4));
  const Status status = mvee.Run([](VariantEnv& env) {
    struct State {
      Mutex lock;
      std::vector<int32_t> log;
      InstrumentedAtomic<int32_t> done{0};
    };
    auto state = std::make_shared<State>();
    env.Sigaction(kSigUsr1, [state](VariantEnv&) {
      LockGuard<Mutex> guard(state->lock);
      state->log.push_back(-1);  // Handler marker.
    });

    ThreadHandle worker = env.Spawn([state](VariantEnv& wenv) {
      for (int i = 0; i < 20; ++i) {
        {
          LockGuard<Mutex> guard(state->lock);
          state->log.push_back(i);
        }
        wenv.Gettid();
        if (i == 5) {
          wenv.Kill(/*tid=*/0, kSigUsr1);
        }
      }
      state->done.Store(1);
    });

    int spins = 0;
    bool handled = false;
    while ((!handled || state->done.Load() == 0) && spins++ < 500) {
      env.Gettid();
      LockGuard<Mutex> guard(state->lock);
      for (int32_t entry : state->log) {
        handled = handled || entry == -1;
      }
    }
    env.Join(worker);

    std::string digest;
    {
      LockGuard<Mutex> guard(state->lock);
      for (int32_t entry : state->log) {
        digest += std::to_string(entry) + ",";
      }
    }
    const int64_t fd = env.Open("result/det_signal",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, digest);
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string digest = ResultOf(mvee.kernel(), "result/det_signal");
  EXPECT_NE(digest.find("-1"), std::string::npos) << "handler marker present: " << digest;
}

TEST(SignalTest, NativeRunnerParity) {
  NativeRunner runner;
  int hits = 0;
  const Status status = runner.Run([&hits](VariantEnv& env) {
    env.Sigaction(kSigUsr1, [&hits](VariantEnv&) { ++hits; });
    env.Kill(0, kSigUsr1);
    env.Gettid();  // Delivery point.
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace mvee
