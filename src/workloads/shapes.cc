// The five concurrency-shape engines behind the synthetic benchmarks.
//
// Determinism contract: every decision a variant thread makes (which lock to
// take, which task to push, what data to hash) derives from variant-
// independent state — thread id, item index, replicated syscall results —
// never from raw pointers or timing. That is precisely the data-race-free
// discipline the paper's replication scheme requires (§3).

#include <deque>
#include <thread>
#include <memory>
#include <vector>

#include "mvee/sync/primitives.h"
#include "mvee/util/rng.h"
#include "mvee/vkernel/vfs.h"
#include "mvee/workloads/workload.h"

namespace mvee {

namespace {

// Compute kernel: `rounds` of SplitMix64 mixing. Returns a digest so the
// work cannot be optimized away and so variants can be compared on it.
uint64_t Mix(uint64_t seed, uint32_t rounds) {
  uint64_t x = seed | 1;
  for (uint32_t i = 0; i < rounds; ++i) {
    x = SplitMix64(x);
  }
  return x;
}

// Scaled item count, at least 1 per thread.
uint64_t ScaledItems(const WorkloadConfig& config, double scale) {
  const double scaled = static_cast<double>(config.items) * scale;
  const uint64_t items = static_cast<uint64_t>(scaled);
  return items < config.worker_threads ? config.worker_threads : items;
}

// Sprinkles the configured syscall / io traffic for one processed item.
void ItemTraffic(VariantEnv& env, const WorkloadConfig& config, int64_t scratch_fd,
                 uint64_t item, uint64_t digest) {
  if (config.syscall_every != 0 && item % config.syscall_every == 0) {
    env.ClockGettimeNanos();
  }
  if (config.io_every != 0 && item % config.io_every == 0 && scratch_fd >= 0) {
    char line[32];
    const int n = std::snprintf(line, sizeof(line), "%016llx\n",
                                static_cast<unsigned long long>(digest));
    env.Write(scratch_fd, std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(line), static_cast<size_t>(n)));
  }
}

// Shared per-variant state every shape uses.
struct CommonState {
  explicit CommonState(const WorkloadConfig& config)
      : counters(config.locks), counter_locks(config.locks) {}

  std::vector<uint64_t> counters;       // Guarded by matching counter_locks.
  std::vector<SpinLock> counter_locks;
  InstrumentedAtomic<int32_t> hot_atomic{0};
  Mutex digest_mutex;
  uint64_t digest = 0;

  // Commutative fold: the final digest must not depend on the order worker
  // threads finish (real PARSEC outputs are schedule-independent too).
  void FoldDigest(uint64_t value) {
    LockGuard<Mutex> guard(digest_mutex);
    digest ^= SplitMix64(value);
  }

  // Raw XOR fold for dynamically-partitioned work (task queues, pipelines):
  // each work item contributes SplitMix64(item digest) independently, so the
  // total is invariant under which thread processed which item.
  void FoldDigestRaw(uint64_t value) {
    LockGuard<Mutex> guard(digest_mutex);
    digest ^= value;
  }
};

// Opens the per-workload scratch file (one per variant run; writes are
// deduplicated by the monitor so the file is written once).
int64_t OpenScratch(VariantEnv& env, const WorkloadConfig& config) {
  if (config.io_every == 0) {
    return -1;
  }
  return env.Open(std::string("scratch/") + config.name,
                  VOpenFlags::kWrite | VOpenFlags::kCreate | VOpenFlags::kTruncate);
}

void WriteResult(VariantEnv& env, const WorkloadConfig& config, uint64_t digest) {
  char text[32];
  const int n = std::snprintf(text, sizeof(text), "%016llx\n",
                              static_cast<unsigned long long>(digest));
  const int64_t fd = env.Open(std::string("result/") + config.name,
                              VOpenFlags::kWrite | VOpenFlags::kCreate | VOpenFlags::kTruncate);
  env.Write(fd, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text),
                                         static_cast<size_t>(n)));
  env.Close(fd);
}

// --- Shape: data parallel -------------------------------------------------

void RunDataParallel(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t items = ScaledItems(config, scale);
  auto state = std::make_shared<CommonState>(config);
  const int64_t scratch_fd = OpenScratch(env, config);

  auto worker = [state, &config, items, scratch_fd](uint32_t tid) {
    return [state, &config, items, scratch_fd, tid](VariantEnv& wenv) {
      uint64_t local_digest = 0;
      const uint64_t per_thread = items / config.worker_threads;
      for (uint64_t i = 0; i < per_thread; ++i) {
        const uint64_t item = tid * per_thread + i;
        const uint64_t d = Mix(item, config.work_per_item);
        local_digest ^= d;
        for (uint32_t s = 0; s < config.sync_per_item; ++s) {
          const size_t lock_index = (item + s) % config.locks;
          LockGuard<SpinLock> guard(state->counter_locks[lock_index]);
          state->counters[lock_index] += d & 0xff;
        }
        ItemTraffic(wenv, config, scratch_fd, item, d);
      }
      state->FoldDigest(local_digest);
    };
  };

  std::vector<ThreadHandle> handles;
  for (uint32_t t = 0; t < config.worker_threads; ++t) {
    handles.push_back(env.Spawn(worker(t)));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  uint64_t total = 0;
  for (uint64_t c : state->counters) {
    total += c;
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, state->digest ^ total);
}

// --- Shape: atomic hammer (swaptions-style refcounting) --------------------

void RunAtomicHammer(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t items = ScaledItems(config, scale);
  auto state = std::make_shared<CommonState>(config);
  // Refcount pool: mostly thread-private counters (uncontended, like STL
  // container refcounts), occasionally a shared one.
  struct RefcountPool {
    explicit RefcountPool(size_t n) : counts(n) {}
    std::deque<InstrumentedAtomic<int32_t>> counts;
  };
  auto pool = std::make_shared<RefcountPool>(config.worker_threads + 1);
  const int64_t scratch_fd = OpenScratch(env, config);

  auto worker = [state, pool, &config, items, scratch_fd](uint32_t tid) {
    return [state, pool, &config, items, scratch_fd, tid](VariantEnv& wenv) {
      uint64_t local_digest = 0;
      const uint64_t per_thread = items / config.worker_threads;
      const size_t shared_index = pool->counts.size() - 1;
      for (uint64_t i = 0; i < per_thread; ++i) {
        const uint64_t item = tid * per_thread + i;
        const uint64_t d = Mix(item, config.work_per_item);
        local_digest ^= d;
        for (uint32_t s = 0; s < config.sync_per_item; ++s) {
          // "Copy + destroy" of a refcounted handle: one inc, one dec.
          const size_t index = (s % 8 == 7) ? shared_index : tid;
          pool->counts[index].FetchAdd(1);
          pool->counts[index].FetchSub(1);
        }
        ItemTraffic(wenv, config, scratch_fd, item, d);
      }
      state->FoldDigest(local_digest);
    };
  };

  std::vector<ThreadHandle> handles;
  for (uint32_t t = 0; t < config.worker_threads; ++t) {
    handles.push_back(env.Spawn(worker(t)));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, state->digest);
}

// --- Shape: pipeline (dedup / ferret / vips / x264) ------------------------

// Bounded queue of work items protected by an instrumented mutex + condvars.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  void Push(uint64_t value) {
    mutex_.Lock();
    while (queue_.size() >= capacity_) {
      not_full_.Wait(mutex_);
    }
    queue_.push_back(value);
    not_empty_.Signal();
    mutex_.Unlock();
  }

  // Returns false when the queue is drained and closed.
  bool Pop(uint64_t* out) {
    mutex_.Lock();
    while (queue_.empty() && !closed_) {
      not_empty_.Wait(mutex_);
    }
    if (queue_.empty()) {
      mutex_.Unlock();
      return false;
    }
    *out = queue_.front();
    queue_.pop_front();
    not_full_.Signal();
    mutex_.Unlock();
    return true;
  }

  void Close() {
    mutex_.Lock();
    closed_ = true;
    not_empty_.Broadcast();
    mutex_.Unlock();
  }

 private:
  const size_t capacity_;
  Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<uint64_t> queue_;
  bool closed_ = false;
};

void RunPipeline(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t items = ScaledItems(config, scale);
  const uint32_t stages = config.stages < 2 ? 2 : config.stages;
  const uint32_t threads = config.worker_threads;
  auto state = std::make_shared<CommonState>(config);

  // Per-stage plumbing: threads are dealt round-robin over the stages
  // (dedup-style n-threads-per-stage pipelines); a stage's output queue is
  // closed only when the *last* thread of that stage finishes.
  struct PipelineState {
    PipelineState(uint32_t stage_count, const uint32_t* stage_threads) {
      for (uint32_t s = 0; s + 1 < stage_count; ++s) {
        queues.push_back(std::make_unique<BoundedQueue>(64));
      }
      for (uint32_t s = 0; s < stage_count; ++s) {
        remaining.push_back(
            std::make_unique<InstrumentedAtomic<int32_t>>(static_cast<int32_t>(stage_threads[s])));
      }
    }
    std::vector<std::unique_ptr<BoundedQueue>> queues;
    std::vector<std::unique_ptr<InstrumentedAtomic<int32_t>>> remaining;
  };

  uint32_t stage_threads[16] = {};
  for (uint32_t t = 0; t < threads; ++t) {
    ++stage_threads[t % stages];
  }
  auto pipe = std::make_shared<PipelineState>(stages, stage_threads);
  const int64_t scratch_fd = OpenScratch(env, config);

  // Producers split the item range; transforms and consumers drain their
  // input queue until it closes.
  auto stage_fn = [state, pipe, &config, items, stages, scratch_fd](uint32_t stage,
                                                                    uint32_t ordinal,
                                                                    uint32_t stage_count) {
    return [state, pipe, &config, items, stages, scratch_fd, stage, ordinal,
            stage_count](VariantEnv& wenv) {
      uint64_t local_digest = 0;
      if (stage == 0) {
        const uint64_t begin = items * ordinal / stage_count;
        const uint64_t end = items * (ordinal + 1) / stage_count;
        for (uint64_t item = begin; item < end; ++item) {
          const uint64_t chunk = Mix(item, config.work_per_item / 2 + 1);
          pipe->queues[0]->Push(chunk);
          ItemTraffic(wenv, config, scratch_fd, item, chunk);
        }
      } else if (stage + 1 < stages) {
        uint64_t value = 0;
        while (pipe->queues[stage - 1]->Pop(&value)) {
          pipe->queues[stage]->Push(Mix(value, config.work_per_item));
        }
      } else {
        uint64_t value = 0;
        uint64_t item = 0;
        while (pipe->queues[stage - 1]->Pop(&value)) {
          const uint64_t d = Mix(value, config.work_per_item / 2 + 1);
          local_digest ^= SplitMix64(d);  // Partition-invariant XOR term.
          ItemTraffic(wenv, config, scratch_fd, item++, d);
        }
      }
      // Last thread out closes the downstream queue.
      if (pipe->remaining[stage]->FetchSub(1) == 1 && stage + 1 < stages) {
        pipe->queues[stage]->Close();
      }
      state->FoldDigestRaw(local_digest);
    };
  };

  std::vector<ThreadHandle> handles;
  uint32_t ordinal_by_stage[16] = {};
  for (uint32_t t = 0; t < threads; ++t) {
    const uint32_t stage = t % stages;
    handles.push_back(
        env.Spawn(stage_fn(stage, ordinal_by_stage[stage]++, stage_threads[stage])));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, state->digest);
}

// --- Shape: task queue (radiosity / raytrace / volrend / barnes / fmm) -----

void RunTaskQueue(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t items = ScaledItems(config, scale);
  auto state = std::make_shared<CommonState>(config);

  // Blocking task queue: empty-handed workers sleep on the condition
  // variable instead of polling (polling loops amplify quadratically under
  // an MVEE: a thread parked in a lockstep rendezvous leaves its siblings
  // spinning, and every spin is a sync op the slaves must replay).
  struct TaskState {
    Mutex mutex;
    CondVar available;
    std::deque<uint64_t> tasks;   // Guarded by mutex.
    int64_t outstanding = 0;      // Unfinished tasks; guarded by mutex.
  };
  auto tasks = std::make_shared<TaskState>();
  for (uint64_t i = 0; i < items; ++i) {
    tasks->tasks.push_back(i);  // Pre-MVEE-visible setup is main-thread only.
  }
  tasks->outstanding = static_cast<int64_t>(items);
  const int64_t scratch_fd = OpenScratch(env, config);

  auto worker = [state, tasks, &config, scratch_fd](VariantEnv& wenv) {
    uint64_t local_digest = 0;
    uint64_t processed = 0;
    for (;;) {
      uint64_t task = 0;
      tasks->mutex.Lock();
      while (tasks->tasks.empty() && tasks->outstanding > 0) {
        tasks->available.Wait(tasks->mutex);
      }
      if (tasks->tasks.empty()) {
        tasks->mutex.Unlock();
        break;  // All tasks finished.
      }
      task = tasks->tasks.front();
      tasks->tasks.pop_front();
      tasks->mutex.Unlock();

      const uint64_t d = Mix(task, config.work_per_item);
      local_digest ^= SplitMix64(d);  // Per-task term: partition-invariant XOR.
      // Refinement tasks: a task occasionally spawns a child (bounded by
      // tagging children with a high bit so they do not recurse).
      if (config.sync_per_item > 1 && (task & (1ULL << 63)) == 0 && task % 7 == 0) {
        LockGuard<Mutex> guard(tasks->mutex);
        tasks->tasks.push_back(task | (1ULL << 63));
        ++tasks->outstanding;
        tasks->available.Signal();
      }
      for (uint32_t s = 1; s < config.sync_per_item; ++s) {
        const size_t lock_index = (task + s) % config.locks;
        LockGuard<SpinLock> guard(state->counter_locks[lock_index]);
        state->counters[lock_index] += d & 0xf;
      }
      ItemTraffic(wenv, config, scratch_fd, processed++, d);
      {
        LockGuard<Mutex> guard(tasks->mutex);
        --tasks->outstanding;
        if (tasks->outstanding == 0) {
          tasks->available.Broadcast();
        }
      }
    }
    state->FoldDigestRaw(local_digest);
  };

  std::vector<ThreadHandle> handles;
  for (uint32_t t = 0; t < config.worker_threads; ++t) {
    handles.push_back(env.Spawn(worker));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  uint64_t total = 0;
  for (uint64_t c : state->counters) {
    total += c;
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, state->digest ^ total);
}

// --- Shape: fine-grained grid (fluidanimate) --------------------------------

void RunFineGrainGrid(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t items = ScaledItems(config, scale);
  struct GridState {
    explicit GridState(size_t cells) : values(cells), locks(cells) {}
    std::vector<uint64_t> values;
    std::vector<SpinLock> locks;
    Mutex digest_mutex;
    uint64_t digest = 0;
  };
  auto grid = std::make_shared<GridState>(config.locks);
  const int64_t scratch_fd = OpenScratch(env, config);

  auto worker = [grid, &config, items, scratch_fd](uint32_t tid) {
    return [grid, &config, items, scratch_fd, tid](VariantEnv& wenv) {
      Rng rng(9000 + tid);  // Variant-independent per-thread schedule.
      const uint64_t per_thread = items / config.worker_threads;
      uint64_t local_digest = 0;
      const size_t cells = grid->values.size();
      for (uint64_t i = 0; i < per_thread; ++i) {
        // Pick a cell pair; lock in index order (fluidanimate's discipline)
        // so every variant's thread issues the same sync-op sequence.
        const size_t a = rng.NextBelow(cells);
        size_t b = (a + 1 + rng.NextBelow(cells - 1)) % cells;
        const size_t low = a < b ? a : b;
        const size_t high = a < b ? b : a;
        const uint64_t d = Mix(i ^ (a * cells + b), config.work_per_item);
        grid->locks[low].Lock();
        grid->locks[high].Lock();
        // Commutative cell updates: the grid total is schedule-independent,
        // like fluidanimate's density accumulation.
        grid->values[low] += d & 0xff;
        grid->values[high] += (d >> 8) & 0xff;
        grid->locks[high].Unlock();
        grid->locks[low].Unlock();
        local_digest ^= d;
        ItemTraffic(wenv, config, scratch_fd, i, d);
      }
      LockGuard<Mutex> guard(grid->digest_mutex);
      grid->digest ^= SplitMix64(local_digest);
    };
  };

  std::vector<ThreadHandle> handles;
  for (uint32_t t = 0; t < config.worker_threads; ++t) {
    handles.push_back(env.Spawn(worker(t)));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  uint64_t total = 0;
  for (uint64_t v : grid->values) {
    total += v;
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, grid->digest ^ total);
}

// --- Shape: barrier phases (ocean / streamcluster / water / fft) -----------

void RunBarrierPhase(VariantEnv& env, const WorkloadConfig& config, double scale) {
  const uint64_t phases = ScaledItems(config, scale);
  struct PhaseState {
    explicit PhaseState(uint32_t participants, size_t slots)
        : barrier(static_cast<int32_t>(participants)), partial(slots) {}
    Barrier barrier;
    std::vector<uint64_t> partial;  // One slot per thread: no locks needed.
    Mutex digest_mutex;
    uint64_t digest = 0;
  };
  auto state = std::make_shared<PhaseState>(config.worker_threads, config.worker_threads);
  const int64_t scratch_fd = OpenScratch(env, config);

  auto worker = [state, &config, phases, scratch_fd](uint32_t tid) {
    return [state, &config, phases, scratch_fd, tid](VariantEnv& wenv) {
      uint64_t local_digest = 0;
      for (uint64_t phase = 0; phase < phases; ++phase) {
        state->partial[tid] = Mix(phase * config.worker_threads + tid, config.work_per_item);
        const bool serial = state->barrier.Arrive();
        if (serial) {
          // The phase's serial section: reduce the partial results.
          uint64_t sum = 0;
          for (uint64_t p : state->partial) {
            sum += p;
          }
          LockGuard<Mutex> guard(state->digest_mutex);
          state->digest ^= SplitMix64(sum);
        }
        state->barrier.Arrive();  // Release barrier after the serial section.
        local_digest ^= state->partial[tid];
        ItemTraffic(wenv, config, scratch_fd, phase, local_digest);
      }
      LockGuard<Mutex> guard(state->digest_mutex);
      state->digest ^= SplitMix64(local_digest + tid);
    };
  };

  std::vector<ThreadHandle> handles;
  for (uint32_t t = 0; t < config.worker_threads; ++t) {
    handles.push_back(env.Spawn(worker(t)));
  }
  for (auto handle : handles) {
    env.Join(handle);
  }
  if (scratch_fd >= 0) {
    env.Close(scratch_fd);
  }
  WriteResult(env, config, state->digest);
}

}  // namespace

const char* WorkloadShapeName(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kDataParallel:
      return "data-parallel";
    case WorkloadShape::kAtomicHammer:
      return "atomic-hammer";
    case WorkloadShape::kPipeline:
      return "pipeline";
    case WorkloadShape::kTaskQueue:
      return "task-queue";
    case WorkloadShape::kFineGrainGrid:
      return "fine-grain-grid";
    case WorkloadShape::kBarrierPhase:
      return "barrier-phase";
  }
  return "unknown";
}

Program MakeWorkloadProgram(const WorkloadConfig& config, double scale) {
  return [&config, scale](VariantEnv& env) {
    switch (config.shape) {
      case WorkloadShape::kDataParallel:
        RunDataParallel(env, config, scale);
        break;
      case WorkloadShape::kAtomicHammer:
        RunAtomicHammer(env, config, scale);
        break;
      case WorkloadShape::kPipeline:
        RunPipeline(env, config, scale);
        break;
      case WorkloadShape::kTaskQueue:
        RunTaskQueue(env, config, scale);
        break;
      case WorkloadShape::kFineGrainGrid:
        RunFineGrainGrid(env, config, scale);
        break;
      case WorkloadShape::kBarrierPhase:
        RunBarrierPhase(env, config, scale);
        break;
    }
  };
}

}  // namespace mvee
