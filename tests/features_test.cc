// Tests for the extension features: the VARAN-style loose synchronization
// model, disjoint code layouts (DCL), the Andersen points-to alternative,
// the futex FIFO-wake regression, and the monitor's diagnostic dump.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mvee/analysis/andersen.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/points_to.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/vkernel/futex.h"
#include "mvee/workloads/workload.h"

namespace mvee {
namespace {

MveeOptions LooseOptions(uint32_t variants = 2) {
  MveeOptions options;
  options.num_variants = variants;
  options.sync_model = SyncModel::kLoose;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(30000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
  return options;
}

std::string FileText(VirtualKernel& kernel, const std::string& path) {
  auto file = kernel.vfs().Open(path, false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

TEST(LooseModeTest, BasicProgramRuns) {
  Mvee mvee(LooseOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t fd = env.Open("loose.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::string("loose mode"));
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(FileText(mvee.kernel(), "loose.txt"), "loose mode");
}

TEST(LooseModeTest, ReplicationStillWorks) {
  Mvee mvee(LooseOptions(3));
  mvee.kernel().vfs().PutFile("in", {'x', 'y', 'z'});
  std::atomic<int> consistent{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t fd = env.Open("in", VOpenFlags::kRead);
    std::vector<uint8_t> buffer(3);
    if (env.Read(fd, buffer) == 3 && std::string(buffer.begin(), buffer.end()) == "xyz") {
      consistent.fetch_add(1);
    }
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(consistent.load(), 3);
}

TEST(LooseModeTest, SelfAwareAndCloneWork) {
  Mvee mvee(LooseOptions(2));
  std::atomic<int> sum{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    sum.fetch_add(static_cast<int>(env.MveeSelfAware()));
    ThreadHandle worker = env.Spawn([](VariantEnv& wenv) { wenv.Gettid(); });
    env.Join(worker);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(sum.load(), 1);  // 0 + 1.
}

TEST(LooseModeTest, DivergenceStillDetectedAsynchronously) {
  Mvee mvee(LooseOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t fd = env.Open("o", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, which == 0 ? std::string("good") : std::string("evil"));
    env.Close(fd);
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
}

TEST(LooseModeTest, LeaderRunsAheadOfFollowers) {
  // With a deep ring, the leader should be able to retire many syscalls
  // before any follower consumes them; the run must still end consistent.
  MveeOptions options = LooseOptions(2);
  options.loose_buffer_depth = 1024;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    for (int i = 0; i < 200; ++i) {
      env.ClockGettimeNanos();
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(LooseModeTest, WorkloadUnderLooseModel) {
  const WorkloadConfig* config = FindWorkload("ferret");
  ASSERT_NE(config, nullptr);
  Mvee mvee(LooseOptions(2));
  const Status status = mvee.Run(MakeWorkloadProgram(*config, 0.01));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(DclTest, VariantBandsAreDisjoint) {
  const DiversityMap v0(0, 42, /*enable_aslr=*/true, /*enable_dcl=*/true);
  const DiversityMap v1(1, 42, true, true);
  const DiversityMap v2(2, 42, true, true);
  // Each band is 64 GiB; the ASLR slide is < 1 GiB, so bands cannot overlap.
  EXPECT_LT(v0.map_base(), v1.map_base());
  EXPECT_LT(v1.map_base(), v2.map_base());
  EXPECT_GT(v1.map_base() - v0.map_base(), (1ULL << 30));
  EXPECT_GT(v2.map_base() - v1.map_base(), (1ULL << 30));
}

TEST(DclTest, MveeRunsWithDclEnabled) {
  MveeOptions options;
  options.num_variants = 2;
  options.enable_aslr = true;
  options.enable_dcl = true;
  options.rendezvous_timeout = std::chrono::milliseconds(30000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
  Mvee mvee(options);
  std::vector<int64_t> addresses(2, 0);
  std::mutex mutex;
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t addr = env.Mmap(4096, VProt::kRead | VProt::kWrite);
    std::lock_guard<std::mutex> lock(mutex);
    addresses[which] = addr;
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Under DCL the two variants' mapping addresses live in disjoint bands.
  EXPECT_GT(std::llabs(addresses[0] - addresses[1]),
            static_cast<long long>(1ULL << 30));
}

// --- Andersen points-to ---

TEST(AndersenTest, SubsetSemanticsKeepPrecision) {
  // p = &x; p = &y; q = &y  — Andersen: pts(q) = {y} only (no alias with x),
  // Steensgaard unifies {x,y}. This is exactly the precision difference the
  // paper describes between SVF and DSA (§4.3.1).
  MirBuilder builder("precision");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, x).AddrOf(p, y).AddrOf(q, y);
  const MirModule module = builder.Build();

  AndersenAnalysis andersen(module);
  EXPECT_EQ(andersen.PointsTo(p).size(), 2u);
  EXPECT_EQ(andersen.PointsTo(q).size(), 1u);
  EXPECT_EQ(*andersen.PointsTo(q).begin(), y);

  PointsToAnalysis steensgaard(module);
  EXPECT_EQ(steensgaard.PointsTo(q).size(), 2u);  // Over-approximated.
}

TEST(AndersenTest, CopyChainsPropagate) {
  MirBuilder builder("chain");
  const int32_t x = builder.Object("x");
  const int32_t a = builder.Reg();
  const int32_t b = builder.Reg();
  const int32_t c = builder.Reg();
  builder.AddrOf(a, x).Mov(b, a).Gep(c, b);
  AndersenAnalysis analysis(builder.Build());
  EXPECT_TRUE(analysis.MayAlias(a, c));
  EXPECT_EQ(analysis.PointsTo(c), std::set<int32_t>{x});
}

TEST(AndersenTest, DirectionalityNotSymmetric) {
  // p = q flows q's targets into p, not vice versa.
  MirBuilder builder("dir");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(q, x).Mov(p, q).AddrOf(p, y);
  AndersenAnalysis analysis(builder.Build());
  EXPECT_EQ(analysis.PointsTo(p).size(), 2u);
  EXPECT_EQ(analysis.PointsTo(q).size(), 1u);  // y did NOT flow back into q.
}

TEST(AndersenTest, SyncOpPipelineMatchesTable3) {
  // On the corpus (no unification-confusable structures) both analyses
  // produce the same Table 3 counts.
  for (const auto& spec : Table3Specs()) {
    const MirModule module = BuildSyntheticModule(spec);
    const SyncOpReport report = IdentifySyncOpsAndersen(module);
    EXPECT_EQ(report.type_i.size(), spec.type_i) << spec.module_name;
    EXPECT_EQ(report.type_iii.size(), spec.type_iii) << spec.module_name;
    EXPECT_EQ(report.unmarked_memops, spec.noise_memops) << spec.module_name;
  }
}

TEST(AndersenTest, MorePreciseThanSteensgaardOnUnificationTrap) {
  // A module where one pointer reuses slots for a sync var and a private
  // var: Steensgaard merges them and marks the private store spuriously;
  // Andersen keeps them separate.
  MirBuilder builder("trap");
  const int32_t lock = builder.Object("lock");
  const int32_t priv = builder.Object("private");
  const int32_t reused = builder.Reg();
  const int32_t lock_ptr = builder.Reg();
  const int32_t priv_ptr = builder.Reg();
  builder.AddrOf(lock_ptr, lock).LockRmw(lock_ptr);
  builder.AddrOf(reused, lock).AddrOf(reused, priv);  // Slot reuse.
  builder.AddrOf(priv_ptr, priv).Store(priv_ptr, "private.c:1");
  const MirModule module = builder.Build();

  const SyncOpReport steensgaard = IdentifySyncOps(module);
  const SyncOpReport andersen = IdentifySyncOpsAndersen(module);
  EXPECT_EQ(andersen.type_iii.size(), 0u);     // Private store not marked.
  EXPECT_GE(steensgaard.type_iii.size(), 1u);  // Unification marks it.
}

// --- Futex FIFO-wake regression ---

TEST(FutexFifoTest, LateRegistrantCannotStealEarlierWake) {
  // Regression for the lost-wakeup deadlock found via the streamcluster
  // stand-in: W registers, a wake is issued for it, then a second waiter
  // registers — the second waiter must NOT consume W's wake.
  FutexTable futexes;
  std::atomic<int32_t> word{1};
  std::atomic<bool> first_woke{false};
  std::atomic<bool> second_woke{false};

  std::thread first([&] {
    futexes.Wait(0x1, &word, 1);
    first_woke.store(true);
  });
  while (futexes.WaiterCount() < 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(futexes.Wake(0x1, 1), 1);  // Targeted at `first`.

  std::thread second([&] {
    futexes.Wait(0x1, &word, 1);
    second_woke.store(true);
  });
  first.join();  // Must complete: its wake cannot be stolen.
  EXPECT_TRUE(first_woke.load());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_woke.load());  // No credit left for the latecomer.
  futexes.Wake(0x1, 1);
  second.join();
  EXPECT_TRUE(second_woke.load());
}

TEST(FutexFifoTest, WakeOnEmptyQueueIsLost) {
  // Futex semantics: wakes do not accumulate for future waiters.
  FutexTable futexes;
  EXPECT_EQ(futexes.Wake(0x2, 5), 0);
  std::atomic<int32_t> word{3};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    futexes.Wait(0x2, &word, 3);
    woke.store(true);
  });
  while (futexes.WaiterCount() < 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(woke.load());  // The earlier wake did not linger.
  futexes.Wake(0x2, 1);
  waiter.join();
}

TEST(FutexFifoTest, BarrierStressNoLostWakeups) {
  // Direct stress of the pattern that deadlocked: repeated barrier phases
  // over one futex word.
  Barrier barrier(4);
  std::atomic<int> phases_done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 500; ++phase) {
        if (barrier.Arrive()) {
          phases_done.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(phases_done.load(), 500);
}

TEST(DiagnosticsTest, DumpStateListsThreadSets) {
  Mvee mvee(LooseOptions(2));
  mvee.Run([](VariantEnv& env) { env.Stat("nothing"); });
  const std::string dump = mvee.DumpState();
  EXPECT_NE(dump.find("kernel futex waiters"), std::string::npos);
  EXPECT_NE(dump.find("tid=0"), std::string::npos);
}

}  // namespace
}  // namespace mvee
