#include "mvee/agents/agent_fleet.h"

#include <chrono>

#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

// Non-owning shim so CreateAgent can return unique_ptr uniformly for kNull.
class NullAgentShim final : public SyncAgent {
 public:
  void BeforeSyncOp(uint32_t, const void*) override {}
  void AfterSyncOp(uint32_t, const void*) override {}
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "null"; }
};

}  // namespace

// The adaptive per-variant handle: resolves the op's route entry, passes the
// master/slave migration gate, and forwards to the routed runtime's own
// agent for this variant. A kNull route skips the forward entirely — the
// honest win for statically-proven thread-local variables — but still runs
// the gates, so the per-thread op counters stay exact and a later migration
// off kNull remains sound (the new agent starts from a drained, counted
// state; there is no recorded backlog to replay because kNull records
// nothing and slaves never waited on it).
class DispatchAgent final : public SyncAgent {
 public:
  DispatchAgent(AgentFleet* fleet, uint32_t variant)
      : fleet_(fleet),
        variant_(variant),
        role_(variant == 0 ? AgentRole::kMaster : AgentRole::kSlave),
        pending_(fleet->config_.max_threads) {}

  void BeforeSyncOp(uint32_t tid, const void* addr) override {
    if (fleet_->control_.aborted() && AlreadyUnwinding()) {
      return;  // Teardown: no second throw from destructor-driven sync ops.
    }
    CheckTidBound(tid, fleet_->config_.max_threads, fleet_->control_, name());
    VariableAgentMap* map = fleet_->map_.get();
    VariableAgentMap::Entry* entry = map->Find(variant_, addr);
    const AgentKind kind = role_ == AgentRole::kMaster
                               ? map->MasterEnter(entry, tid)
                               : map->SlaveEnter(entry, variant_, tid);
    pending_[tid] = Pending{entry, kind};
    if (SyncAgent* sub = fleet_->SubAgent(variant_, kind)) {
      try {
        sub->BeforeSyncOp(tid, addr);
      } catch (...) {
        if (role_ == AgentRole::kMaster) {
          map->MasterCancel(entry, tid);
        }
        throw;
      }
    }
  }

  void AfterSyncOp(uint32_t tid, const void* addr) override {
    if (fleet_->control_.aborted() && AlreadyUnwinding()) {
      return;
    }
    VariableAgentMap* map = fleet_->map_.get();
    const Pending pending = pending_[tid];
    if (SyncAgent* sub = fleet_->SubAgent(variant_, pending.kind)) {
      try {
        sub->AfterSyncOp(tid, addr);
      } catch (...) {
        if (role_ == AgentRole::kMaster) {
          map->MasterCancel(entry_of(pending), tid);
        }
        throw;
      }
    }
    if (role_ == AgentRole::kMaster) {
      map->MasterExit(pending.entry, tid);
    } else {
      map->SlaveExit(pending.entry, variant_, tid);
    }
  }

  void BindVariable(const char* name, const void* addr) override {
    fleet_->BindVariable(variant_, name, addr);
  }

  AgentRole role() const override { return role_; }
  const char* name() const override { return "adaptive-dispatch"; }

 private:
  struct Pending {
    VariableAgentMap::Entry* entry = nullptr;
    AgentKind kind = AgentKind::kNull;
  };
  static VariableAgentMap::Entry* entry_of(const Pending& pending) { return pending.entry; }

  AgentFleet* const fleet_;
  const uint32_t variant_;
  const AgentRole role_;
  // One pending op per thread, owned exclusively by that thread.
  std::vector<Pending> pending_;
};

AgentFleet::AgentFleet(AgentKind kind, const AgentConfig& config, AgentControl control,
                       const AgentAssignmentPlan* plan)
    : kind_(kind), config_(ValidatedAgentConfig(config)), control_(std::move(control)) {
  const bool adaptive = config_.adaptive_agents && kind_ != AgentKind::kNull;
  if (adaptive) {
    // All four runtimes stay alive so any route is instantly serviceable;
    // the lazy recording rings (record_shards.h) keep the idle ones nearly
    // free. Per-variable stats remain per-runtime and are summed on read.
    total_order_ = std::make_unique<TotalOrderRuntime>(config_, control_);
    partial_order_ = std::make_unique<PartialOrderRuntime>(config_, control_);
    wall_of_clocks_ = std::make_unique<WallOfClocksRuntime>(config_, control_);
    per_variable_ = std::make_unique<PerVariableRuntime>(config_, control_);
    map_ = std::make_unique<VariableAgentMap>(config_, kind_, control_);
    sub_agents_.resize(config_.num_variants);
    if (plan != nullptr) {
      for (const AgentAssignment& assignment : plan->assignments) {
        // Registration can fail closed past kMaxEntries; the variable then
        // simply rides the default route.
        map_->EntryFor(assignment.name, assignment.kind);
      }
    }
    if (config_.migrate_interval_ms > 0 && config_.num_variants > 1) {
      controller_ = std::thread([this] { ControllerLoop(); });
    }
    return;
  }
  switch (kind_) {
    case AgentKind::kNull:
      break;
    case AgentKind::kTotalOrder:
      total_order_ = std::make_unique<TotalOrderRuntime>(config_, control_);
      break;
    case AgentKind::kPartialOrder:
      partial_order_ = std::make_unique<PartialOrderRuntime>(config_, control_);
      break;
    case AgentKind::kWallOfClocks:
      wall_of_clocks_ = std::make_unique<WallOfClocksRuntime>(config_, control_);
      break;
    case AgentKind::kPerVariableOrder:
      per_variable_ = std::make_unique<PerVariableRuntime>(config_, control_);
      break;
  }
}

AgentFleet::~AgentFleet() {
  stop_controller_.store(true, std::memory_order_release);
  if (controller_.joinable()) {
    controller_.join();
  }
}

std::unique_ptr<SyncAgent> AgentFleet::CreateAgent(uint32_t variant_index) {
  if (map_ != nullptr) {
    // Bootstrap (one call per variant, from the monitor): materialize this
    // variant's handle in every runtime so the dispatch hot path is a plain
    // array index.
    auto& subs = sub_agents_[variant_index];
    subs[static_cast<size_t>(AgentKind::kTotalOrder)] = total_order_->CreateAgent(variant_index);
    subs[static_cast<size_t>(AgentKind::kPartialOrder)] =
        partial_order_->CreateAgent(variant_index);
    subs[static_cast<size_t>(AgentKind::kWallOfClocks)] =
        wall_of_clocks_->CreateAgent(variant_index);
    subs[static_cast<size_t>(AgentKind::kPerVariableOrder)] =
        per_variable_->CreateAgent(variant_index);
    return std::make_unique<DispatchAgent>(this, variant_index);
  }
  switch (kind_) {
    case AgentKind::kNull:
      return std::make_unique<NullAgentShim>();
    case AgentKind::kTotalOrder:
      return total_order_->CreateAgent(variant_index);
    case AgentKind::kPartialOrder:
      return partial_order_->CreateAgent(variant_index);
    case AgentKind::kWallOfClocks:
      return wall_of_clocks_->CreateAgent(variant_index);
    case AgentKind::kPerVariableOrder:
      return per_variable_->CreateAgent(variant_index);
  }
  return nullptr;
}

SyncAgent* AgentFleet::SubAgent(uint32_t variant, AgentKind kind) const {
  return sub_agents_[variant][static_cast<size_t>(kind)].get();
}

void AgentFleet::DetachVariant(uint32_t variant) {
  if (total_order_) total_order_->DetachVariant(variant);
  if (partial_order_) partial_order_->DetachVariant(variant);
  if (wall_of_clocks_) wall_of_clocks_->DetachVariant(variant);
  if (per_variable_) per_variable_->DetachVariant(variant);
  if (map_) map_->DetachVariant(variant);
}

AgentStatsSnapshot AgentFleet::StatsSnapshot() const {
  AgentStatsSnapshot total;
  auto add = [&total](const AgentStats& stats) {
    const AgentStatsSnapshot part = stats.Aggregate();
    total.ops_recorded += part.ops_recorded;
    total.ops_replayed += part.ops_replayed;
    total.record_stalls += part.record_stalls;
    total.replay_stalls += part.replay_stalls;
    total.record_lock_spins += part.record_lock_spins;
  };
  if (total_order_) add(total_order_->stats());
  if (partial_order_) add(partial_order_->stats());
  if (wall_of_clocks_) add(wall_of_clocks_->stats());
  if (per_variable_) add(per_variable_->stats());
  return total;
}

void AgentFleet::BindVariable(uint32_t variant, const char* name, const void* addr) {
  if (map_ == nullptr || name == nullptr) {
    return;
  }
  // Names absent from the plan default to the fleet's own kind — binding is
  // then pure identity registration, and only the runtime controller (or
  // ForceMigrate) moves the variable somewhere cheaper.
  VariableAgentMap::Entry* entry = map_->EntryFor(name, kind_);
  if (entry != nullptr) {
    map_->Bind(variant, addr, entry);
  }
}

AgentKind AgentFleet::RouteOf(const std::string& name) const {
  if (map_ == nullptr) {
    return kind_;
  }
  VariableAgentMap::Entry* entry =
      name.empty() ? const_cast<VariableAgentMap*>(map_.get())->DefaultEntry()
                   : map_->FindByName(name);
  if (entry == nullptr) {
    return kind_;
  }
  return VariableAgentMap::RouteKind(entry->route.load(std::memory_order_acquire));
}

bool AgentFleet::ForceMigrate(const std::string& name, AgentKind to) {
  if (map_ == nullptr) {
    return false;
  }
  VariableAgentMap::Entry* entry =
      name.empty() ? map_->DefaultEntry() : map_->FindByName(name);
  if (entry == nullptr) {
    return false;
  }
  return map_->Migrate(entry, to);
}

uint64_t AgentFleet::MigrationsCompleted() const {
  return map_ ? map_->MigrationsCompleted() : 0;
}

uint64_t AgentFleet::MigrationsAborted() const {
  return map_ ? map_->MigrationsAborted() : 0;
}

uint64_t AgentFleet::BoundVariables() const { return map_ ? map_->EntryCount() : 0; }

uint64_t AgentFleet::RecordingRingsCreated() const {
  uint64_t total = 0;
  if (total_order_) total += total_order_->RecordingRingsCreated();
  if (partial_order_) total += partial_order_->RecordingRingsCreated();
  if (wall_of_clocks_) total += wall_of_clocks_->RecordingRingsCreated();
  if (per_variable_) total += per_variable_->RecordingRingsCreated();
  return total;
}

void AgentFleet::ControllerLoop() {
  // Per-entry, per-tid snapshots of the recorded counters from the previous
  // sample, so each interval's delta and active-thread count are exact.
  std::vector<std::vector<uint64_t>> prev;
  const auto interval = std::chrono::milliseconds(config_.migrate_interval_ms);
  for (;;) {
    // Sleep in small slices so shutdown is prompt.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (std::chrono::steady_clock::now() < deadline) {
      if (stop_controller_.load(std::memory_order_acquire) || control_.aborted()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const size_t count = map_->EntryCount();
    if (prev.size() < count) {
      prev.resize(count);
    }
    for (size_t i = 0; i < count; ++i) {
      VariableAgentMap::Entry* entry = map_->EntryAt(i);
      auto& last = prev[i];
      if (last.size() < config_.max_threads) {
        last.resize(config_.max_threads, 0);
      }
      uint64_t delta = 0;
      uint32_t active_tids = 0;
      for (uint32_t t = 0; t < config_.max_threads; ++t) {
        const uint64_t now = entry->recorded[t].value.load(std::memory_order_relaxed);
        if (now > last[t]) {
          ++active_tids;
          delta += now - last[t];
        }
        last[t] = now;
      }
      if (delta < config_.migrate_min_ops) {
        continue;  // Cold: stay parked wherever the plan put it.
      }
      const AgentKind current =
          VariableAgentMap::RouteKind(entry->route.load(std::memory_order_acquire));
      if (current == AgentKind::kNull) {
        // kNull came from a static thread-locality proof (or an explicit
        // ForceMigrate); observed op counts say nothing against that proof,
        // so the sampling policy never second-guesses it.
        continue;
      }
      // Promotion: a variable multiple threads hammer within one interval is
      // the paper's TO-worthy case — per-variable clock ping-pong (WoC/PVO)
      // costs more than the strict order. Demotion: single-threaded traffic
      // on a strict-order route pays TO's cross-variable stalls for nothing;
      // a per-variable clock is the cheap sound choice.
      if (active_tids >= 2 && (current == AgentKind::kWallOfClocks ||
                               current == AgentKind::kPerVariableOrder)) {
        map_->Migrate(entry, AgentKind::kTotalOrder);
      } else if (active_tids <= 1 && (current == AgentKind::kTotalOrder ||
                                      current == AgentKind::kPartialOrder)) {
        map_->Migrate(entry, AgentKind::kPerVariableOrder);
      }
    }
  }
}

}  // namespace mvee
