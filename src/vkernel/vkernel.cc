#include "mvee/vkernel/vkernel.h"

#include <cerrno>
#include <cstring>
#include <chrono>
#include <thread>

namespace mvee {

namespace {

// Whence values for lseek.
constexpr int64_t kSeekSet = 0;
constexpr int64_t kSeekCur = 1;
constexpr int64_t kSeekEnd = 2;

SyscallResult Err(int64_t negative_errno) {
  SyscallResult result;
  result.retval = negative_errno;
  return result;
}

SyscallResult Ret(int64_t value) {
  SyscallResult result;
  result.retval = value;
  return result;
}

// Publishes the first `size` bytes of the caller's out buffer as the
// result's replication payload. With a pooled buffer (the monitor's round
// slab / loose record) the bytes are copied once into the recycled pool and
// the result carries a span into it — no per-call heap allocation. Without a
// pool (native runner, direct kernel calls) there is nobody to replicate to,
// so the result carries no payload.
void PublishPayload(const SyscallRequest& request, SyscallResult* result, size_t size) {
  if (request.payload_pool == nullptr || size == 0) {
    return;
  }
  request.payload_pool->Assign(request.out_data.data(), size);
  result->out_payload = request.payload_pool->view();
}

}  // namespace

SyscallResult VirtualKernel::Execute(ProcessState& process, const SyscallRequest& request) {
  switch (request.sysno) {
    case Sysno::kOpen:
    case Sysno::kClose:
    case Sysno::kRead:
    case Sysno::kWrite:
    case Sysno::kPread:
    case Sysno::kPwrite:
    case Sysno::kLseek:
    case Sysno::kStat:
    case Sysno::kUnlink:
    case Sysno::kDup:
    case Sysno::kFcntl:
    case Sysno::kPipe:
      return ExecuteFile(process, request);

    case Sysno::kBrk:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
      return ExecuteMemory(process, request);

    case Sysno::kSocket:
    case Sysno::kBind:
    case Sysno::kListen:
    case Sysno::kAccept:
    case Sysno::kConnect:
    case Sysno::kSend:
    case Sysno::kRecv:
    case Sysno::kShutdown:
      return ExecuteNet(process, request);

    case Sysno::kPoll:
      return ExecutePoll(process, request);

    case Sysno::kGettimeofday:
    case Sysno::kClockGettime:
    case Sysno::kRdtsc:
    case Sysno::kNanosleep:
      return ExecuteTime(request);

    case Sysno::kFutex: {
      // Futex words are keyed by the master variant's own address
      // (local_addr): waits and wakes both come from master threads, so the
      // key never needs to be comparable across variants.
      if (request.arg0 == FutexOp::kWait) {
        return Ret(futexes_.Wait(request.local_addr, request.futex_word,
                                 static_cast<int32_t>(request.arg1)));
      }
      if (request.arg0 == FutexOp::kWake) {
        return Ret(futexes_.Wake(request.local_addr, static_cast<int32_t>(request.arg1)));
      }
      return Err(-EINVAL);
    }

    case Sysno::kGetrandom: {
      SyscallResult result;
      std::lock_guard<std::mutex> lock(rng_mutex_);
      for (auto& byte : request.out_data) {
        byte = static_cast<uint8_t>(rng_.Next());
      }
      PublishPayload(request, &result, request.out_data.size());
      result.retval = static_cast<int64_t>(request.out_data.size());
      return result;
    }

    case Sysno::kSchedYield:
      std::this_thread::yield();
      return Ret(0);

    case Sysno::kGetpid:
      return Ret(process.pid());

    case Sysno::kGettid:
      // The runtime passes the logical thread id; identical across variants.
      return Ret(request.arg0);

    case Sysno::kClone:
      return Ret(process.NextTid());

    case Sysno::kExit:
    case Sysno::kExitGroup:
      return Ret(0);

    case Sysno::kMveeSelfAware:
    case Sysno::kMveeCheckpoint:
      // Non-existing kernel syscalls: the real kernel would return -ENOSYS;
      // the monitor intercepts them before they get here (paper §4.5).
      return Err(-ENOSYS);

    case Sysno::kCount:
      break;
  }
  return Err(-ENOSYS);
}

SyscallResult VirtualKernel::ExecuteFile(ProcessState& process, const SyscallRequest& request) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kOpen: {
      const bool create = (request.arg0 & VOpenFlags::kCreate) != 0;
      auto file = vfs_.Open(request.path, create);
      if (file == nullptr) {
        return Err(-ENOENT);
      }
      if ((request.arg0 & VOpenFlags::kTruncate) != 0) {
        file->Truncate();
      }
      FdEntry entry;
      entry.kind = FdKind::kFile;
      entry.file = file;
      entry.flags = request.arg0;
      entry.path = request.path;
      entry.offset = (request.arg0 & VOpenFlags::kAppend) != 0 ? file->Size() : 0;
      return Ret(fds.Allocate(std::move(entry)));
    }

    case Sysno::kClose:
      return Ret(fds.Close(static_cast<int32_t>(request.arg0)));

    case Sysno::kRead: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      SyscallResult result;
      if (entry->kind == FdKind::kFile) {
        result.retval =
            entry->file->ReadAt(entry->offset, request.out_data.data(), request.out_data.size());
        if (result.retval > 0) {
          entry->offset += static_cast<uint64_t>(result.retval);
        }
      } else if (entry->kind == FdKind::kPipeRead) {
        result.retval = entry->pipe->Read(request.out_data.data(), request.out_data.size());
      } else if (entry->kind == FdKind::kConnServer) {
        result.retval = entry->conn->ServerRead(request.out_data.data(), request.out_data.size());
      } else if (entry->kind == FdKind::kConnClient) {
        result.retval = entry->conn->ClientRead(request.out_data.data(), request.out_data.size());
      } else {
        return Err(-EBADF);
      }
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kWrite: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      if (entry->kind == FdKind::kFile) {
        const int64_t n = entry->file->WriteAt(entry->offset, request.in_data.data(),
                                               request.in_data.size());
        if (n > 0) {
          entry->offset += static_cast<uint64_t>(n);
        }
        return Ret(n);
      }
      if (entry->kind == FdKind::kPipeWrite) {
        return Ret(entry->pipe->Write(request.in_data.data(), request.in_data.size()));
      }
      if (entry->kind == FdKind::kConnServer) {
        return Ret(entry->conn->ServerWrite(request.in_data.data(), request.in_data.size()));
      }
      if (entry->kind == FdKind::kConnClient) {
        return Ret(entry->conn->ClientWrite(request.in_data.data(), request.in_data.size()));
      }
      return Err(-EBADF);
    }

    case Sysno::kPread: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->kind != FdKind::kFile) {
        return Err(-EBADF);
      }
      SyscallResult result;
      result.retval = entry->file->ReadAt(static_cast<uint64_t>(request.arg1),
                                          request.out_data.data(), request.out_data.size());
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kPwrite: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->kind != FdKind::kFile) {
        return Err(-EBADF);
      }
      return Ret(entry->file->WriteAt(static_cast<uint64_t>(request.arg1),
                                      request.in_data.data(), request.in_data.size()));
    }

    case Sysno::kLseek: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->kind != FdKind::kFile) {
        return Err(-EBADF);
      }
      int64_t base = 0;
      switch (request.arg2) {
        case kSeekSet:
          base = 0;
          break;
        case kSeekCur:
          base = static_cast<int64_t>(entry->offset);
          break;
        case kSeekEnd:
          base = static_cast<int64_t>(entry->file->Size());
          break;
        default:
          return Err(-EINVAL);
      }
      const int64_t target = base + request.arg1;
      if (target < 0) {
        return Err(-EINVAL);
      }
      entry->offset = static_cast<uint64_t>(target);
      return Ret(target);
    }

    case Sysno::kStat: {
      VStat st;
      const int64_t rc = vfs_.Stat(request.path, &st);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(st.size));
    }

    case Sysno::kUnlink:
      return Ret(vfs_.Unlink(request.path));

    case Sysno::kDup:
      return Ret(fds.Dup(static_cast<int32_t>(request.arg0)));

    case Sysno::kFcntl: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      return Ret(entry->flags);
    }

    case Sysno::kPipe: {
      auto pipe = std::make_shared<VPipe>();
      {
        std::lock_guard<std::mutex> lock(pipes_mutex_);
        pipes_.push_back(pipe);
      }
      FdEntry read_end;
      read_end.kind = FdKind::kPipeRead;
      read_end.pipe = pipe;
      FdEntry write_end;
      write_end.kind = FdKind::kPipeWrite;
      write_end.pipe = pipe;
      const int32_t rfd = fds.Allocate(std::move(read_end));
      const int32_t wfd = fds.Allocate(std::move(write_end));
      return Ret(static_cast<int64_t>(rfd) | (static_cast<int64_t>(wfd) << 32));
    }

    default:
      return Err(-ENOSYS);
  }
}

SyscallResult VirtualKernel::ExecuteMemory(ProcessState& process, const SyscallRequest& request) {
  AddressSpace& mem = process.memory();
  switch (request.sysno) {
    case Sysno::kBrk: {
      uint64_t new_break = 0;
      const int64_t rc = mem.Brk(request.arg0, &new_break);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(new_break));
    }
    case Sysno::kMmap: {
      uint64_t addr = 0;
      const int64_t rc = mem.Mmap(static_cast<uint64_t>(request.arg0), request.arg1, &addr);
      if (rc != 0) {
        return Err(rc);
      }
      return Ret(static_cast<int64_t>(addr));
    }
    case Sysno::kMunmap:
      return Ret(mem.Munmap(request.local_addr, static_cast<uint64_t>(request.arg1)));
    case Sysno::kMprotect:
      return Ret(mem.Mprotect(request.local_addr, static_cast<uint64_t>(request.arg1),
                              request.arg2));
    default:
      return Err(-ENOSYS);
  }
}

SyscallResult VirtualKernel::ExecuteNet(ProcessState& process, const SyscallRequest& request) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kSocket: {
      FdEntry entry;
      entry.kind = FdKind::kListener;  // Becomes a real listener at listen().
      return Ret(fds.Allocate(std::move(entry)));
    }

    case Sysno::kBind: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      entry->port = static_cast<uint16_t>(request.arg1);
      return Ret(0);
    }

    case Sysno::kListen: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      std::shared_ptr<VListener> listener;
      const int64_t rc =
          network_.Listen(entry->port, static_cast<int>(request.arg1), &listener);
      if (rc != 0) {
        return Err(rc);
      }
      entry->listener = listener;
      return Ret(0);
    }

    case Sysno::kAccept: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->listener == nullptr) {
        return Err(-EBADF);
      }
      auto conn = entry->listener->Accept();
      if (conn == nullptr) {
        return Err(-ECONNABORTED);
      }
      FdEntry conn_entry;
      conn_entry.kind = FdKind::kConnServer;
      conn_entry.conn = conn;
      return Ret(fds.Allocate(std::move(conn_entry)));
    }

    case Sysno::kConnect: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      auto conn = network_.Connect(static_cast<uint16_t>(request.arg1));
      if (conn == nullptr) {
        return Err(-ECONNREFUSED);
      }
      entry->kind = FdKind::kConnClient;
      entry->conn = conn;
      return Ret(0);
    }

    case Sysno::kSend: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->conn == nullptr) {
        return Err(-EBADF);
      }
      if (entry->kind == FdKind::kConnServer) {
        return Ret(entry->conn->ServerWrite(request.in_data.data(), request.in_data.size()));
      }
      return Ret(entry->conn->ClientWrite(request.in_data.data(), request.in_data.size()));
    }

    case Sysno::kRecv: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr || entry->conn == nullptr) {
        return Err(-EBADF);
      }
      SyscallResult result;
      if (entry->kind == FdKind::kConnServer) {
        result.retval = entry->conn->ServerRead(request.out_data.data(), request.out_data.size());
      } else {
        result.retval = entry->conn->ClientRead(request.out_data.data(), request.out_data.size());
      }
      if (result.retval > 0) {
        PublishPayload(request, &result, static_cast<size_t>(result.retval));
      }
      return result;
    }

    case Sysno::kShutdown: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry == nullptr) {
        return Err(-EBADF);
      }
      if (entry->conn != nullptr) {
        entry->conn->CloseBoth();
      }
      if (entry->listener != nullptr) {
        network_.CloseListener(entry->port);
      }
      return Ret(0);
    }

    default:
      return Err(-ENOSYS);
  }
}

// sys_poll over the virtual fd space. Request payload: nfds records of
// (int32 fd little-endian, uint8 events); arg0 = nfds, arg1 = timeout in
// milliseconds (<0 = wait indefinitely). Returns the number of fds with a
// non-zero revents byte in the replicated revents payload (one byte per
// fd, out_payload), 0 on timeout.
// Readiness is polled (the virtual kernel has no wait-queue multiplexer);
// the sleep quantum is far below the monitor's rendezvous granularity.
SyscallResult VirtualKernel::ExecutePoll(ProcessState& process,
                                         const SyscallRequest& request) {
  FdTable& fds = process.fds();
  const auto nfds = static_cast<size_t>(request.arg0);
  if (request.in_data.size() < nfds * 5) {
    return Err(-EINVAL);
  }
  const int64_t timeout_ms = request.arg1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);

  SyscallResult result;
  // Revents scratch: one byte per fd. The monitor's pooled buffer when
  // provided (the payload slaves replicate), a local fallback otherwise.
  std::vector<uint8_t> local_revents;
  uint8_t* revents_buf;
  if (request.payload_pool != nullptr) {
    revents_buf = request.payload_pool->Reserve(nfds);
  } else {
    local_revents.resize(nfds);
    revents_buf = local_revents.data();
  }
  for (;;) {
    int64_t ready = 0;
    for (size_t i = 0; i < nfds; ++i) {
      int32_t fd = 0;
      std::memcpy(&fd, request.in_data.data() + i * 5, sizeof(fd));
      const uint8_t events = request.in_data[i * 5 + 4];
      uint8_t revents = 0;
      FdEntry* entry = fds.Get(fd);
      if (entry == nullptr) {
        revents = PollEvents::kHup;  // Invalid fd reported as hangup.
      } else {
        switch (entry->kind) {
          case FdKind::kFile:
            revents = static_cast<uint8_t>(events & (PollEvents::kIn | PollEvents::kOut));
            break;
          case FdKind::kPipeRead:
            if ((events & PollEvents::kIn) != 0 && entry->pipe != nullptr &&
                (entry->pipe->BytesBuffered() > 0 || entry->pipe->write_closed())) {
              revents |= PollEvents::kIn;
            }
            break;
          case FdKind::kPipeWrite:
            if ((events & PollEvents::kOut) != 0) {
              revents |= PollEvents::kOut;  // Bounded pipe: treat as writable.
            }
            break;
          case FdKind::kListener:
            if ((events & PollEvents::kIn) != 0 && entry->listener != nullptr &&
                entry->listener->HasPending()) {
              revents |= PollEvents::kIn;
            }
            break;
          case FdKind::kConnServer:
            if (entry->conn != nullptr) {
              if ((events & PollEvents::kIn) != 0 && entry->conn->ServerReadable()) {
                revents |= PollEvents::kIn;
              }
              if ((events & PollEvents::kOut) != 0 && entry->conn->ServerWritable()) {
                revents |= PollEvents::kOut;
              }
            }
            break;
          case FdKind::kConnClient:
            if (entry->conn != nullptr) {
              if ((events & PollEvents::kIn) != 0 && entry->conn->ClientReadable()) {
                revents |= PollEvents::kIn;
              }
              if ((events & PollEvents::kOut) != 0 && entry->conn->ClientWritable()) {
                revents |= PollEvents::kOut;
              }
            }
            break;
          case FdKind::kFree:
            revents = PollEvents::kHup;
            break;
        }
      }
      revents_buf[i] = revents;
      ready += revents != 0 ? 1 : 0;
    }
    const bool timed_out =
        timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline;
    if (ready > 0 || timeout_ms == 0 || timed_out) {
      // Master-side delivery: revents go straight into the caller's buffer;
      // the monitor replicates result.out_payload to the slaves.
      if (!request.out_data.empty()) {
        const size_t count = std::min(nfds, request.out_data.size());
        std::copy(revents_buf, revents_buf + count, request.out_data.begin());
      }
      if (request.payload_pool != nullptr) {
        result.out_payload = request.payload_pool->view();
      }
      result.retval = timed_out && ready == 0 ? 0 : ready;
      return result;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

SyscallResult VirtualKernel::ExecuteTime(const SyscallRequest& request) {
  switch (request.sysno) {
    case Sysno::kGettimeofday:
      return Ret(static_cast<int64_t>(clock_.NowMicros()));
    case Sysno::kClockGettime:
      return Ret(static_cast<int64_t>(clock_.NowNanos()));
    case Sysno::kRdtsc:
      return Ret(static_cast<int64_t>(clock_.Rdtsc()));
    case Sysno::kNanosleep:
      std::this_thread::sleep_for(std::chrono::nanoseconds(request.arg0));
      return Ret(0);
    default:
      return Err(-ENOSYS);
  }
}

uint32_t VirtualKernel::OrderDomainOf(ProcessState& process, const SyscallRequest& request) {
  switch (request.sysno) {
    // Descriptor-scoped ops: conflict only with ops on the same descriptor.
    // An invalid fd falls back to the namespace domain, which totally orders
    // the close/reopen traffic that decides *why* the fd was invalid — so
    // the -EBADF replays at the equivalent point in every variant.
    case Sysno::kLseek:
    case Sysno::kFcntl: {
      const uint32_t domain = process.fds().OrderDomainOf(static_cast<int32_t>(request.arg0));
      return domain == OrderDomainIds::kNone ? OrderDomainIds::kFdNamespace : domain;
    }

    // Address-space ops share one allocator; allocation order decides the
    // addresses every variant must agree on.
    case Sysno::kBrk:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
      return OrderDomainIds::kMemory;

    // Tid allocation.
    case Sysno::kClone:
      return OrderDomainIds::kProcess;

    // open/close/dup/pipe mutate the fd namespace; stat scans the shared
    // VFS, so it must order against open-with-create. socket/accept (the
    // replicated fd-allocating calls) are stamped here too by the monitor.
    default:
      return OrderDomainIds::kFdNamespace;
  }
}

std::shared_ptr<VConnection> VirtualKernel::AcceptBlocking(ProcessState& process,
                                                           int32_t listen_fd, int64_t* error) {
  FdEntry* entry = process.fds().Get(listen_fd);
  if (entry == nullptr || entry->listener == nullptr) {
    *error = -EBADF;
    return nullptr;
  }
  auto conn = entry->listener->Accept();
  if (conn == nullptr) {
    *error = -ECONNABORTED;
    return nullptr;
  }
  *error = 0;
  return conn;
}

int64_t VirtualKernel::FinishAccept(ProcessState& process, std::shared_ptr<VConnection> conn) {
  FdEntry conn_entry;
  conn_entry.kind = FdKind::kConnServer;
  conn_entry.conn = std::move(conn);
  return process.fds().Allocate(std::move(conn_entry));
}

void VirtualKernel::ShutdownBlockedCalls() {
  futexes_.WakeAll();
  network_.CloseAll();
  std::vector<std::weak_ptr<VPipe>> pipes;
  {
    std::lock_guard<std::mutex> lock(pipes_mutex_);
    pipes = pipes_;
  }
  for (auto& weak : pipes) {
    if (auto pipe = weak.lock()) {
      pipe->CloseWriteEnd();
      pipe->CloseReadEnd();
    }
  }
}

int64_t VirtualKernel::ApplyReplicatedEffect(ProcessState& process,
                                             const SyscallRequest& request,
                                             const SyscallResult& master_result) {
  FdTable& fds = process.fds();
  switch (request.sysno) {
    case Sysno::kRead: {
      // Advance the slave's file offset to keep later lseek(SEEK_CUR) and
      // sequential reads consistent. Pipes/sockets have no offset.
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry != nullptr && entry->kind == FdKind::kFile && master_result.retval > 0) {
        entry->offset += static_cast<uint64_t>(master_result.retval);
      }
      return 0;
    }
    case Sysno::kWrite: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry != nullptr && entry->kind == FdKind::kFile && master_result.retval > 0) {
        entry->offset += static_cast<uint64_t>(master_result.retval);
      }
      return 0;
    }
    case Sysno::kAccept: {
      // Install a shadow descriptor so the slave's fd numbering stays in sync
      // with the master's. The shadow has no connection: the slave never
      // performs real network I/O.
      if (master_result.retval < 0) {
        return 0;
      }
      FdEntry shadow;
      shadow.kind = FdKind::kConnServer;
      return fds.Allocate(std::move(shadow));
    }
    case Sysno::kSocket: {
      // Shadow socket descriptor; never backed by a real listener (the port
      // namespace is machine-shared, master-only).
      if (master_result.retval < 0) {
        return 0;
      }
      FdEntry shadow;
      shadow.kind = FdKind::kListener;
      return fds.Allocate(std::move(shadow));
    }
    case Sysno::kBind: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry != nullptr && master_result.retval == 0) {
        entry->port = static_cast<uint16_t>(request.arg1);
      }
      return 0;
    }
    case Sysno::kListen:
    case Sysno::kShutdown:
      return 0;  // Shadow descriptors carry no kernel object to act on.
    case Sysno::kConnect: {
      FdEntry* entry = fds.Get(static_cast<int32_t>(request.arg0));
      if (entry != nullptr && master_result.retval == 0) {
        entry->kind = FdKind::kConnClient;
      }
      return 0;
    }
    default:
      return 0;
  }
}

}  // namespace mvee
