// The virtual kernel: executes SyscallRequests against shared machine state
// and per-process state.
//
// This is the substitution for the real Linux kernel underneath the MVEE
// (see docs/DESIGN.md §2). The monitor is the only component that calls Execute;
// variant code always traps through the monitor first, which is what gives
// the MVEE its interposition point (paper Figure 1).

#ifndef MVEE_VKERNEL_VKERNEL_H_
#define MVEE_VKERNEL_VKERNEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mvee/syscall/record.h"
#include "mvee/util/rng.h"
#include "mvee/vkernel/clock.h"
#include "mvee/vkernel/futex.h"
#include "mvee/vkernel/net.h"
#include "mvee/vkernel/process.h"
#include "mvee/vkernel/vfs.h"

namespace mvee {

// Calling conventions per sysno (args in SyscallRequest):
//   open(path, arg0=flags) -> fd
//   close(arg0=fd) -> 0
//   read(arg0=fd, out_data) -> n           write(arg0=fd, in_data) -> n
//   pread/pwrite(arg0=fd, arg1=off, ...) -> n
//   lseek(arg0=fd, arg1=off, arg2=whence{0,1,2}) -> new offset
//   stat(path) -> size                      unlink(path) -> 0
//   dup(arg0=fd) -> fd                      fcntl(arg0=fd, arg1=cmd) -> flags
//   pipe() -> read_fd | (write_fd << 32)
//   brk(arg0=increment) -> new break        mmap(arg0=len, arg1=prot) -> addr
//   munmap(local_addr, arg1=len) -> 0       mprotect(local_addr, arg1=len, arg2=prot) -> 0
//   futex(arg0=op, arg1=val, logical_addr, futex_word) -> 0 / -EAGAIN / woken count
//   socket() -> fd    bind(arg0=fd, arg1=port)    listen(arg0=fd, arg1=backlog)
//   accept(arg0=fd) -> fd   connect(arg0=fd, arg1=port) -> 0
//   send(arg0=fd, in_data) -> n   recv(arg0=fd, out_data) -> n   shutdown(arg0=fd)
//   gettimeofday() -> usec   clock_gettime() -> nsec   rdtsc -> tsc
//   nanosleep(arg0=nsec) -> 0               getrandom(out_data) -> n
//   getpid() -> logical pid                 gettid(arg0=logical tid) -> arg0
//   clone() -> new kernel tid               sched_yield() -> 0
class VirtualKernel {
 public:
  explicit VirtualKernel(uint64_t rng_seed = 42) : rng_(rng_seed) {}

  // Executes one syscall for `process`. Thread-safe.
  SyscallResult Execute(ProcessState& process, const SyscallRequest& request);

  // Two-phase accept for the monitor: sys_accept both blocks *and* allocates
  // a descriptor. The blocking half must run outside the syscall-ordering
  // critical section (§4.1 forbids ordering blocking calls) while the fd
  // allocation must run inside it, or slave fd tables drift relative to
  // ordered close/open traffic. AcceptBlocking performs only the wait;
  // FinishAccept installs the descriptor (fast, order-section safe).
  std::shared_ptr<VConnection> AcceptBlocking(ProcessState& process, int32_t listen_fd,
                                              int64_t* error);
  int64_t FinishAccept(ProcessState& process, std::shared_ptr<VConnection> conn);

  // Applies the side effects of a master-executed (replicated) syscall to a
  // slave process: advances file offsets, installs shadow descriptors for
  // accept/connect. Returns the slave-local result that must match the
  // master's (e.g. the shadow fd number) or 0 when there is nothing to check.
  int64_t ApplyReplicatedEffect(ProcessState& process, const SyscallRequest& request,
                                const SyscallResult& master_result);

  // The syscall-ordering domain `request` conflicts on, resolved against
  // `process`'s descriptor table (docs/syscall_ordering.md): per-fd domain
  // for descriptor-scoped ops (lseek/fcntl), kMemory for address-space ops,
  // kProcess for clone, kFdNamespace for everything that mutates or scans
  // the fd/path namespace. Called by the master monitor only; slaves take
  // the domain id from the master's stamped result.
  uint32_t OrderDomainOf(ProcessState& process, const SyscallRequest& request);

  // Wakes/closes everything a variant thread could be blocked on; used by the
  // monitor when tearing the variants down after a divergence.
  void ShutdownBlockedCalls();

  Vfs& vfs() { return vfs_; }
  VirtualNetwork& network() { return network_; }
  VirtualClock& clock() { return clock_; }
  FutexTable& futexes() { return futexes_; }

 private:
  SyscallResult ExecuteFile(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteMemory(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteNet(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecutePoll(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteTime(const SyscallRequest& request);

  Vfs vfs_;
  VirtualNetwork network_;
  VirtualClock clock_;
  FutexTable futexes_;
  std::mutex rng_mutex_;
  Rng rng_;
  std::mutex pipes_mutex_;
  std::vector<std::weak_ptr<VPipe>> pipes_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_VKERNEL_H_
