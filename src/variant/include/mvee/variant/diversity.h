// Simulated address-space layout diversity.
//
// Each variant gets randomized heap and mapping bases (the moral equivalent
// of ASLR + disjoint code layouts in the paper's evaluation, §5.1
// "Correctness"). Memory syscalls return addresses in the variant's own
// layout; the variant runtime normalizes them back to logical (base-
// relative) form for cross-variant comparison. The replication agents never
// rely on addresses matching across variants (§4.5.1).

#ifndef MVEE_VARIANT_DIVERSITY_H_
#define MVEE_VARIANT_DIVERSITY_H_

#include <cstdint>

#include "mvee/util/rng.h"

namespace mvee {

class DiversityMap {
 public:
  static constexpr uint64_t kHeapRegion = 0x1000'0000'0000ULL;
  static constexpr uint64_t kMapRegion = 0x2000'0000'0000ULL;
  static constexpr uint64_t kPage = 4096;
  // DCL stride: with disjoint code layouts enabled, variant i's regions live
  // in their own 64 GiB band, so no address is valid in two variants
  // simultaneously (the paper's DCL defeats brute-force ROP, §5.1 / [44]).
  static constexpr uint64_t kDclStride = 0x10'0000'0000ULL;

  // `enable_aslr` off gives every variant identical bases (the paper
  // disables diversity for its performance runs to isolate replication
  // costs, §5.1). `enable_dcl` additionally makes the variants' address
  // bands mutually disjoint.
  DiversityMap(uint32_t variant_index, uint64_t seed, bool enable_aslr,
               bool enable_dcl = false) {
    uint64_t slide = 0;
    if (enable_aslr) {
      Rng rng(SplitMix64(seed ^ (0x9e37ULL + variant_index * 0x79b9ULL)));
      // 21 bits of page-aligned entropy (8 GiB range): comfortably inside a
      // 64 GiB DCL band, so the slide never escapes the variant's band.
      slide = (rng.Next() & ((1ULL << 21) - 1)) * kPage;
    }
    const uint64_t band = enable_dcl ? variant_index * kDclStride : 0;
    heap_base_ = kHeapRegion + band + slide;
    map_base_ = kMapRegion + band + slide;
  }

  uint64_t heap_base() const { return heap_base_; }
  uint64_t map_base() const { return map_base_; }

  // Normalizes a variant-space address from the mapping area to its logical
  // (layout-independent) form.
  uint64_t LogicalMapAddr(uint64_t addr) const { return addr - map_base_; }
  uint64_t LogicalHeapAddr(uint64_t addr) const { return addr - heap_base_; }

 private:
  uint64_t heap_base_;
  uint64_t map_base_;
};

}  // namespace mvee

#endif  // MVEE_VARIANT_DIVERSITY_H_
