// CoreDet/DMP-style serial token scheduling with instruction-count quanta
// (Bergan et al. [9], Devietti et al. [15]).
//
// A token rotates round-robin over the threads. The holder executes up to
// `quantum` simulated instructions; synchronization and syscalls execute
// (serially, in token order) within the turn. A thread blocked on a held
// lock or an unset flag yields the token immediately. The schedule is a
// deterministic function of where quantum boundaries fall in each thread's
// instruction stream — so perturbing compute costs (diversity) shifts the
// boundaries and changes lock interleavings (paper §2.1: quanta "cannot be
// based on time ... DMT systems allocate quanta based on logical thread
// progress").
//
// The makespan model is DMP-Serial: the token serializes execution, so
// virtual time advances with every instruction the holder retires. This
// deliberately reflects the high cost of serial-mode DMT.

#include <string>

#include "mvee/dmt/scheduler.h"
#include "src/dmt/observer.h"

namespace mvee::dmt {

namespace {

constexpr uint32_t kNoHolder = UINT32_MAX;

}  // namespace

Schedule QuantumScheduler::Run(const Program& program) {
  Schedule schedule;
  RunState state(program, &schedule);
  const uint32_t threads = program.thread_count();

  std::vector<size_t> cursor(threads, 0);
  std::vector<uint64_t> compute_done(threads, 0);  // Progress into current compute op.
  std::vector<uint32_t> holder(program.lock_count, kNoHolder);
  uint64_t virtual_time = 0;
  uint32_t finished = 0;
  for (uint32_t t = 0; t < threads; ++t) {
    if (program.threads[t].empty()) {
      ++finished;
    }
  }

  uint32_t token = 0;
  uint32_t idle_rotations = 0;  // Consecutive turns with zero progress.

  while (finished < threads) {
    if (idle_rotations > threads + 1) {
      schedule.completed = false;
      schedule.failure = "quantum: no thread can make progress (deadlock)";
      return schedule;
    }
    const uint32_t turn = token;
    token = (token + 1) % threads;
    if (cursor[turn] >= program.threads[turn].size()) {
      ++idle_rotations;
      continue;
    }

    uint64_t budget = config_.quantum;
    bool progressed = false;
    while (budget > 0 && cursor[turn] < program.threads[turn].size()) {
      const Op& op = program.threads[turn][cursor[turn]];
      if (op.kind == OpKind::kCompute) {
        const uint64_t remaining = op.cost - compute_done[turn];
        const uint64_t chunk = std::min(budget, remaining);
        compute_done[turn] += chunk;
        virtual_time += chunk;
        budget -= chunk;
        progressed = progressed || chunk > 0;
        if (compute_done[turn] >= op.cost) {
          compute_done[turn] = 0;
          ++cursor[turn];
        }
        continue;
      }
      if (op.kind == OpKind::kLock && holder[op.var] != kNoHolder) {
        break;  // Blocked: yield the token.
      }
      if (op.kind == OpKind::kWaitFlag && !state.FlagSet(op.var)) {
        break;  // Spinning: yield the token (the spin burns no quantum here).
      }
      switch (op.kind) {
        case OpKind::kLock:
          holder[op.var] = turn;
          state.RecordLock(turn, op.var);
          break;
        case OpKind::kUnlock:
          holder[op.var] = kNoHolder;
          state.RecordUnlock(turn, op.var);
          break;
        case OpKind::kSyscall:
          state.RecordSyscall(turn);
          break;
        case OpKind::kSetFlag:
          state.RecordSetFlag(turn, op.var);
          break;
        case OpKind::kWaitFlag:
          state.RecordWaitFlag(turn, op.var);
          break;
        case OpKind::kCompute:
          break;  // Handled above.
      }
      const uint64_t cost =
          op.kind == OpKind::kSyscall ? config_.costs.syscall : config_.costs.sync;
      virtual_time += cost;
      budget -= std::min(budget, cost);
      progressed = true;
      ++cursor[turn];
    }

    if (cursor[turn] >= program.threads[turn].size()) {
      ++finished;
    }
    idle_rotations = progressed ? 0 : idle_rotations + 1;
  }

  schedule.makespan = virtual_time;
  return schedule;
}

}  // namespace mvee::dmt
