// Adaptive per-variable agent ablation (docs/DESIGN.md §11).
//
// One mixed-contention kernel, run seven ways:
//   - four fixed fleets (TO / PO / WoC / PVO — every variable on one agent),
//   - the adaptive fleet seeded by the analysis-derived oracle plan
//     (controller off: pure static routing),
//   - the adaptive fleet deliberately misseeded (everything on total-order,
//     controller off): the cost of a wrong static answer,
//   - the misseeded fleet with the runtime controller on: promotion/demotion
//     walking the routes back to sanity mid-run.
//
// The workload is built so no single fixed agent is right everywhere: a hot
// lock two-plus threads hammer (TO territory), an uncontended shared counter
// (per-variable territory), and per-thread scratch variables a static proof
// can route to the null agent. The headline number — and the CI gate
// (MVEE_BENCH_AGENTS_MIN_ADAPTIVE_SPEEDUP) — is oracle-adaptive throughput
// over the best fixed fleet.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mvee/analysis/assignment_plan.h"
#include "mvee/analysis/mir.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/sync/instrumented.h"
#include "mvee/sync/primitives.h"

namespace {

using namespace mvee;
using namespace mvee::bench;

constexpr uint32_t kThreads = 4;

// The MIR model of the kernel below, for the analysis pipeline to derive the
// oracle plan from. Object names match the program's Bind names — that is
// the contract that carries a static verdict to a runtime route.
MirModule BuildKernelModule() {
  MirBuilder builder("adaptive_kernel");
  const int32_t hot = builder.Object("hot");
  const int32_t cold = builder.Object("cold");
  std::vector<int32_t> locals;
  for (uint32_t t = 0; t < kThreads; ++t) {
    locals.push_back(builder.Object("local" + std::to_string(t), MirStorage::kStack));
  }

  // Two functions RMW the hot lock word -> shared-hot -> total-order.
  builder.Function("worker");
  const int32_t r_hot = builder.Reg();
  builder.AddrOf(r_hot, hot).LockRmw(r_hot, "worker:1");
  // One store site on the shared counter -> uncontended-shared -> PVO.
  const int32_t r_cold = builder.Reg();
  builder.AddrOf(r_cold, cold).Store(r_cold, "worker:2");
  // Stack scratch, all sites in one function -> thread-local -> null route.
  for (uint32_t t = 0; t < kThreads; ++t) {
    const int32_t r_local = builder.Reg();
    builder.AddrOf(r_local, locals[t])
        .LockRmw(r_local, ("worker:l" + std::to_string(t)).c_str());
  }

  builder.Function("helper");
  const int32_t h_hot = builder.Reg();
  builder.AddrOf(h_hot, hot).LockRmw(h_hot, "helper:1");

  return builder.Build();
}

AgentAssignmentPlan DeriveOraclePlan() {
  const MirModule module = BuildKernelModule();
  SyncOpReport report;
  report.module_name = module.name;
  for (size_t i = 0; i < module.objects.size(); ++i) {
    report.sync_objects.insert(static_cast<int32_t>(i));
  }
  const AssignmentPlanReport derived = DeriveAssignmentPlan(module, report);
  std::printf("oracle plan (analysis-derived):\n%s", FormatAssignmentPlan(derived).c_str());
  return derived.plan;
}

AgentAssignmentPlan MisseededPlan() {
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"hot", AgentKind::kTotalOrder, "misseeded"});
  plan.assignments.push_back({"cold", AgentKind::kTotalOrder, "misseeded"});
  for (uint32_t t = 0; t < kThreads; ++t) {
    plan.assignments.push_back(
        {"local" + std::to_string(t), AgentKind::kTotalOrder, "misseeded"});
  }
  return plan;
}

// The mixed-contention kernel. Per iteration and thread: one hot-lock
// critical section (contended RMW + store), sixteen scratch RMWs on the
// thread's own variable (the dominant, statically-thread-local traffic the
// null route exists for — the paper's Table 1 point that most sync ops in
// real programs never need cross-variant ordering), and a shared-counter
// RMW every fourth pass (uncontended shared).
Program MakeKernel(int iters) {
  return [iters](VariantEnv& env) {
    auto hot = std::make_shared<SpinLock>();
    auto counter = std::make_shared<int64_t>(0);
    auto cold = std::make_shared<InstrumentedAtomic<int64_t>>();
    hot->Bind("hot");
    cold->Bind("cold");
    std::vector<ThreadHandle> workers;
    for (uint32_t t = 0; t < kThreads; ++t) {
      workers.push_back(env.Spawn([hot, counter, cold, t, iters](VariantEnv&) {
        InstrumentedAtomic<int64_t> scratch;
        scratch.Bind(("local" + std::to_string(t)).c_str());
        for (int i = 0; i < iters; ++i) {
          {
            LockGuard<SpinLock> guard(*hot);
            ++*counter;
          }
          for (int s = 0; s < 16; ++s) {
            scratch.FetchAdd(1);
          }
          if (i % 4 == 0) {
            cold->FetchAdd(1);
          }
        }
      }));
    }
    for (ThreadHandle& worker : workers) {
      env.Join(worker);
    }
  };
}

struct LegResult {
  std::string label;
  double seconds = -1.0;
  uint64_t sync_ops = 0;
  uint64_t migrations = 0;
  uint64_t record_stalls = 0;
  uint64_t replay_stalls = 0;
  bool ok = false;
};

LegResult RunLegOnce(const std::string& label, int iters, AgentKind agent, bool adaptive,
                     const AgentAssignmentPlan* plan, uint32_t controller_interval_ms) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = agent;
  options.enable_aslr = false;
  options.rendezvous_timeout = std::chrono::milliseconds(120000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
  options.agent_config.buffer_capacity = 1 << 16;
  options.agent_config.adaptive_agents = adaptive;
  options.agent_config.migrate_interval_ms = controller_interval_ms;
  // Low enough that a sampling interval on a small host still clears it;
  // the default (1 << 16) is sized for production op rates.
  options.agent_config.migrate_min_ops = 1024;
  if (plan != nullptr) {
    options.agent_plan = *plan;
  }
  Mvee mvee(options);
  LegResult result;
  result.label = label;
  result.ok = mvee.Run(MakeKernel(iters)).ok();
  if (result.ok) {
    result.seconds = mvee.report().wall_seconds;
    result.sync_ops = mvee.report().sync_ops_recorded;
    result.migrations = mvee.report().agent_migrations;
    result.record_stalls = mvee.report().record_stalls;
    result.replay_stalls = mvee.report().replay_stalls;
  }
  return result;
}

// Min-of-N wall time per leg (MVEE_BENCH_ADAPTIVE_REPS, default 2): the
// shared host's scheduling noise at these sub-second leg times is larger
// than the effect under measurement.
LegResult RunLeg(const std::string& label, int iters, AgentKind agent, bool adaptive,
                 const AgentAssignmentPlan* plan, uint32_t controller_interval_ms) {
  const int reps = static_cast<int>(EnvInt("MVEE_BENCH_ADAPTIVE_REPS", 2));
  LegResult best;
  for (int rep = 0; rep < reps; ++rep) {
    LegResult result = RunLegOnce(label, iters, agent, adaptive, plan, controller_interval_ms);
    if (result.ok && (!best.ok || result.seconds < best.seconds)) {
      best = result;
    }
    if (!best.ok) {
      best = result;
    }
  }
  return best;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kError);
  PrintHeader("Adaptive per-variable agents: static fleets vs seeded vs controller");

  const int iters =
      static_cast<int>(EnvInt("MVEE_BENCH_ADAPTIVE_ITERS",
                              static_cast<int64_t>(25000 * BenchScale(2.0))));
  std::printf("threads=%u iters/thread=%d variants=2\n\n", kThreads, iters);

  const AgentAssignmentPlan oracle = DeriveOraclePlan();
  const AgentAssignmentPlan misseeded = MisseededPlan();

  std::vector<LegResult> legs;
  for (AgentKind kind : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                         AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    legs.push_back(RunLeg(std::string("fixed-") + AgentKindName(kind), iters, kind,
                          /*adaptive=*/false, nullptr, /*controller_interval_ms=*/0));
  }
  legs.push_back(RunLeg("adaptive-oracle", iters, AgentKind::kWallOfClocks,
                        /*adaptive=*/true, &oracle, /*controller_interval_ms=*/0));
  legs.push_back(RunLeg("adaptive-misseeded", iters, AgentKind::kWallOfClocks,
                        /*adaptive=*/true, &misseeded, /*controller_interval_ms=*/0));
  legs.push_back(RunLeg("adaptive-controller", iters, AgentKind::kWallOfClocks,
                        /*adaptive=*/true, &misseeded, /*controller_interval_ms=*/10));

  // One canonical op count for every leg's rate: the kernel executes the
  // same instrumented ops regardless of routing, but null routes record
  // nothing, so a leg's own sync_ops_recorded undercounts its work. Use the
  // largest fixed leg's count (all ops recorded) as the denominator.
  uint64_t canonical_ops = 0;
  for (const LegResult& leg : legs) {
    if (leg.ok && leg.sync_ops > canonical_ops) {
      canonical_ops = leg.sync_ops;
    }
  }

  std::printf("\n%-20s %10s %14s %10s %10s %12s\n", "leg", "seconds", "ops/sec", "rec-stall",
              "rep-stall", "migrations");
  std::vector<AgentBenchResult> json;
  double best_fixed = -1.0;
  double oracle_seconds = -1.0;
  for (const LegResult& leg : legs) {
    if (!leg.ok) {
      std::printf("%-20s %10s\n", leg.label.c_str(), "FAIL");
      continue;
    }
    const double rate = leg.seconds > 0 ? static_cast<double>(canonical_ops) / leg.seconds : 0;
    std::printf("%-20s %10.3f %14.0f %10llu %10llu %12llu\n", leg.label.c_str(), leg.seconds,
                rate, static_cast<unsigned long long>(leg.record_stalls),
                static_cast<unsigned long long>(leg.replay_stalls),
                static_cast<unsigned long long>(leg.migrations));
    json.push_back({leg.label, "mixed-contention", rate, leg.record_stalls, leg.replay_stalls});
    if (leg.label.rfind("fixed-", 0) == 0 && (best_fixed < 0 || leg.seconds < best_fixed)) {
      best_fixed = leg.seconds;
    }
    if (leg.label == "adaptive-oracle") {
      oracle_seconds = leg.seconds;
    }
  }
  AppendAgentsJson(json);

  if (best_fixed > 0 && oracle_seconds > 0) {
    const double speedup = best_fixed / oracle_seconds;
    std::printf("\nadaptive-oracle vs best fixed fleet: %.2fx\n", speedup);
    // CI gate: report-only unless the env sets a floor.
    const char* env = std::getenv("MVEE_BENCH_AGENTS_MIN_ADAPTIVE_SPEEDUP");
    const double floor = env != nullptr ? std::atof(env) : 0.0;
    if (floor > 0 && speedup < floor) {
      std::fprintf(stderr,
                   "FAIL: adaptive speedup %.2fx below MVEE_BENCH_AGENTS_MIN_ADAPTIVE_SPEEDUP"
                   " %.2fx\n", speedup, floor);
      return 1;
    }
  } else {
    std::fprintf(stderr, "FAIL: gate legs missing (best_fixed=%.3f oracle=%.3f)\n", best_fixed,
                 oracle_seconds);
    return 1;
  }
  return 0;
}
