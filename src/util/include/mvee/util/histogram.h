// Log-bucketed latency histogram (HdrHistogram-style).
//
// The open-loop load harness (src/server/wrk.cc) records one latency sample
// per completed request; a run sustains tens of thousands of samples, and the
// artifact wants exact-ish tail quantiles (p50/p99/p999) without storing the
// samples. The classic answer is a log-linear histogram: values are bucketed
// by octave (power of two) with a fixed number of linear sub-buckets per
// octave, so relative error is bounded by the sub-bucket width everywhere on
// the axis. With 128 sub-buckets per octave the bucket midpoint is within
// 1/256 (~0.39%) of any value in the bucket — comfortably inside the <= 1%
// relative-error budget tests/util_test.cc enforces at p99.
//
// Recording is NOT thread-safe: each load-generator thread owns a histogram
// and the harness merges them at the end (Merge is exact: counts add, so
// merging is associative and commutative).

#ifndef MVEE_UTIL_HISTOGRAM_H_
#define MVEE_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mvee {

class LogHistogram {
 public:
  // 128 linear sub-buckets per octave: max relative error of the bucket
  // midpoint is 2^-(kSubBucketBits+1) = 1/256.
  static constexpr uint32_t kSubBucketBits = 7;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
  // Largest distinguishable value (~2.4 hours in nanoseconds); anything
  // larger is clamped into the top bucket.
  static constexpr uint32_t kMaxShift = 36;
  static constexpr uint64_t kMaxTrackable = (2 * kSubBuckets << kMaxShift) - 1;
  static constexpr size_t kBucketCount =
      kSubBuckets + (static_cast<size_t>(kMaxShift) + 1) * kSubBuckets;

  LogHistogram() : counts_(kBucketCount, 0) {}

  void Record(uint64_t value) {
    value = std::min(value, kMaxTrackable);
    ++counts_[IndexOf(value)];
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  // Exact: bucket counts add, so (a+b)+c == a+(b+c) bucket-for-bucket.
  void Merge(const LogHistogram& other) {
    for (size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t Count() const { return count_; }
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }

  // Value at quantile q in [0, 1]: the midpoint of the bucket holding the
  // ceil(q * count)-th smallest sample, clamped to the exact observed
  // [min, max] so p0/p100 are exact.
  uint64_t ValueAtQuantile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t target =
        std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.9999999));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBucketCount; ++i) {
      cumulative += counts_[i];
      if (cumulative >= target) {
        return std::clamp(MidpointOf(i), min_, max_);
      }
    }
    return max_;
  }

  bool operator==(const LogHistogram& other) const {
    return count_ == other.count_ && min_ == other.min_ && max_ == other.max_ &&
           counts_ == other.counts_;
  }

 private:
  static size_t IndexOf(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);  // Small values are exact.
    }
    const uint32_t exponent = 63 - static_cast<uint32_t>(std::countl_zero(value));
    const uint32_t shift = exponent - kSubBucketBits;  // value >> shift in [128, 256)
    const uint64_t sub = (value >> shift) - kSubBuckets;
    return static_cast<size_t>(kSubBuckets + static_cast<uint64_t>(shift) * kSubBuckets + sub);
  }

  static uint64_t MidpointOf(size_t index) {
    if (index < kSubBuckets) {
      return index;
    }
    const uint64_t shift = (index - kSubBuckets) / kSubBuckets;
    const uint64_t sub = (index - kSubBuckets) % kSubBuckets;
    const uint64_t lower = (kSubBuckets + sub) << shift;
    return lower + ((1ull << shift) >> 1);
  }

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t min_ = kMaxTrackable;
  uint64_t max_ = 0;
};

}  // namespace mvee

#endif  // MVEE_UTIL_HISTOGRAM_H_
