#include "mvee/dmt/program.h"

#include <algorithm>
#include <cstddef>

#include "mvee/util/rng.h"

namespace mvee::dmt {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCompute:
      return "compute";
    case OpKind::kLock:
      return "lock";
    case OpKind::kUnlock:
      return "unlock";
    case OpKind::kSyscall:
      return "syscall";
    case OpKind::kSetFlag:
      return "set-flag";
    case OpKind::kWaitFlag:
      return "wait-flag";
  }
  return "unknown";
}

uint64_t Program::TotalCost() const {
  uint64_t total = 0;
  for (const auto& ops : threads) {
    for (const auto& op : ops) {
      total += op.kind == OpKind::kCompute ? op.cost : 1;
    }
  }
  return total;
}

namespace {

// Cost jittered uniformly in [mean/2, 3*mean/2], at least 1.
uint64_t JitteredCost(Rng& rng, uint64_t mean) {
  if (mean == 0) {
    return 1;
  }
  const uint64_t lo = std::max<uint64_t>(1, mean / 2);
  return rng.NextInRange(lo, mean + mean / 2);
}

}  // namespace

Program GenerateProgram(const ProgramSpec& spec, uint64_t seed) {
  Rng rng(SplitMix64(seed));
  Program program;
  program.lock_count = spec.locks;
  program.flag_count = spec.flag_pairs;
  program.threads.resize(spec.threads);

  for (uint32_t t = 0; t < spec.threads; ++t) {
    auto& ops = program.threads[t];
    for (uint32_t s = 0; s < spec.sections_per_thread; ++s) {
      ops.push_back({OpKind::kCompute, 0, JitteredCost(rng, spec.compute_cost_mean)});
      const auto lock = static_cast<uint32_t>(rng.NextBelow(spec.locks));
      ops.push_back({OpKind::kLock, lock, 0});
      ops.push_back({OpKind::kCompute, 0, JitteredCost(rng, spec.critical_cost_mean)});
      ops.push_back({OpKind::kUnlock, lock, 0});
      if (rng.NextBool(spec.syscall_probability)) {
        ops.push_back({OpKind::kSyscall, 0, 0});
      }
    }
  }

  // Ad-hoc flag pairs (Listing 2-style): the waiter starts spinning on the
  // flag early in its execution; the setter stores it late — the "wait in an
  // infinite loop for an asynchronous event" pattern of §6. Ops are only
  // inserted at section boundaries (no lock held), so locks are always
  // eventually released; schedulers that tolerate sync-free spinning (Kendo,
  // quantum, the OS) complete these programs, while global-barrier DMT
  // deadlocks on them by design.
  auto insert_at_boundary = [](std::vector<Op>& ops, size_t target, const Op& op) {
    int64_t held = -1;
    size_t index = 0;
    for (; index < ops.size(); ++index) {
      if (index >= target && held == -1) {
        break;
      }
      if (ops[index].kind == OpKind::kLock) {
        held = ops[index].var;
      } else if (ops[index].kind == OpKind::kUnlock) {
        held = -1;
      }
    }
    ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(index), op);
  };
  for (uint32_t pair = 0; pair < spec.flag_pairs; ++pair) {
    const uint32_t setter = (2 * pair) % spec.threads;
    const uint32_t waiter = (2 * pair + 1) % spec.threads;
    if (setter == waiter) {
      continue;
    }
    auto& setter_ops = program.threads[setter];
    auto& waiter_ops = program.threads[waiter];
    insert_at_boundary(setter_ops, 3 * setter_ops.size() / 4, {OpKind::kSetFlag, pair, 0});
    insert_at_boundary(waiter_ops, waiter_ops.size() / 4, {OpKind::kWaitFlag, pair, 0});
  }
  return program;
}

Program PerturbCosts(const Program& program, double epsilon, uint64_t seed) {
  Program copy = program;
  if (epsilon <= 0.0) {
    return copy;
  }
  Rng rng(SplitMix64(seed ^ 0xd1ffe5ed));
  for (auto& ops : copy.threads) {
    for (auto& op : ops) {
      if (op.kind != OpKind::kCompute) {
        continue;
      }
      const double factor = 1.0 + epsilon * (2.0 * rng.NextDouble() - 1.0);
      const auto scaled = static_cast<uint64_t>(static_cast<double>(op.cost) * factor);
      op.cost = std::max<uint64_t>(1, scaled);
    }
  }
  return copy;
}

}  // namespace mvee::dmt
