// DThreads/Grace-style global-barrier determinism (Liu et al. [28],
// Berger et al. [11]).
//
// Execution alternates parallel and serial phases. In a parallel phase,
// every unfinished thread runs — conceptually concurrently — until it
// reaches its next synchronization point (lock, unlock, flag store, or
// syscall); instruction counts do not influence ordering, only timing. The
// serial phase then executes the pending sync ops in deterministic thread-id
// order behind a *global barrier that requires every unfinished thread to
// arrive*.
//
// Two properties the study measures:
//   - Diversity-insensitivity: the schedule depends only on each thread's
//     sync-op sequence, so cost perturbation changes nothing. Barrier DMT
//     does not suffer the Kendo/CoreDet divergence problem...
//   - ...but ad-hoc poll loops are fatal (paper §6): a thread spinning on a
//     flag with no sync op never arrives, the barrier never completes, and
//     the flag store it is waiting for — itself a serialized sync op — can
//     never execute. Detected and reported as a deadlock. This is why the
//     paper's MVEE cannot simply adopt DThreads-style scheduling.
//
// Makespan model: per round, the parallel phase costs the maximum compute
// any arriving thread performed; the serial phase adds its ops' costs.

#include <string>

#include "mvee/dmt/scheduler.h"
#include "src/dmt/observer.h"

namespace mvee::dmt {

namespace {

constexpr uint32_t kNoHolder = UINT32_MAX;

bool IsSyncPoint(OpKind kind) {
  return kind == OpKind::kLock || kind == OpKind::kUnlock || kind == OpKind::kSetFlag ||
         kind == OpKind::kSyscall;
}

}  // namespace

Schedule BarrierScheduler::Run(const Program& program) {
  Schedule schedule;
  RunState state(program, &schedule);
  const uint32_t threads = program.thread_count();

  std::vector<size_t> cursor(threads, 0);
  std::vector<uint32_t> holder(program.lock_count, kNoHolder);
  // Threads that attempted a lock in a previous serial phase and found it
  // held; they re-attempt without running a parallel leg.
  std::vector<bool> lock_pending(threads, false);
  uint32_t stalled_rounds = 0;

  auto unfinished = [&](uint32_t t) { return cursor[t] < program.threads[t].size(); };

  for (;;) {
    bool any_unfinished = false;
    for (uint32_t t = 0; t < threads; ++t) {
      any_unfinished = any_unfinished || unfinished(t);
    }
    if (!any_unfinished) {
      break;
    }

    // --- Parallel phase: run every unfinished thread to its next sync point.
    uint64_t round_parallel_cost = 0;
    bool all_arrived = true;
    for (uint32_t t = 0; t < threads; ++t) {
      if (!unfinished(t) || lock_pending[t]) {
        continue;  // Pending threads wait at the barrier already.
      }
      uint64_t run_cost = 0;
      while (unfinished(t)) {
        const Op& op = program.threads[t][cursor[t]];
        if (op.kind == OpKind::kCompute) {
          run_cost += op.cost;
          ++cursor[t];
          continue;
        }
        if (op.kind == OpKind::kWaitFlag) {
          if (state.FlagSet(op.var)) {
            state.RecordWaitFlag(t, op.var);
            ++cursor[t];
            continue;  // Satisfied flag read is a plain load; keep running.
          }
          all_arrived = false;  // Spinning with no sync op: never arrives.
          break;
        }
        break;  // At a sync point: stop and arrive at the barrier.
      }
      round_parallel_cost = std::max(round_parallel_cost, run_cost);
    }
    schedule.makespan += round_parallel_cost;

    if (!all_arrived) {
      // The barrier cannot complete, so no serial phase runs — and the flag
      // store the spinner waits for is a serialized sync op, so it can never
      // execute either. After a few fruitless rounds, report the deadlock.
      if (++stalled_rounds >= config_.stall_rounds_limit) {
        schedule.completed = false;
        schedule.failure =
            "barrier: poll loop never reaches the global barrier (ad-hoc "
            "synchronization, paper §6)";
        return schedule;
      }
      continue;
    }
    stalled_rounds = 0;

    // --- Serial phase: pending sync ops in deterministic tid order.
    bool progressed = false;
    for (uint32_t t = 0; t < threads; ++t) {
      if (!unfinished(t)) {
        continue;
      }
      const Op& op = program.threads[t][cursor[t]];
      if (!IsSyncPoint(op.kind)) {
        continue;  // Thread is mid-compute or spinning; nothing pending.
      }
      switch (op.kind) {
        case OpKind::kLock:
          if (holder[op.var] != kNoHolder) {
            lock_pending[t] = true;  // Retry next round.
            continue;
          }
          holder[op.var] = t;
          lock_pending[t] = false;
          state.RecordLock(t, op.var);
          break;
        case OpKind::kUnlock:
          holder[op.var] = kNoHolder;
          state.RecordUnlock(t, op.var);
          break;
        case OpKind::kSetFlag:
          state.RecordSetFlag(t, op.var);
          break;
        case OpKind::kSyscall:
          state.RecordSyscall(t);
          break;
        default:
          continue;
      }
      schedule.makespan +=
          op.kind == OpKind::kSyscall ? config_.costs.syscall : config_.costs.sync;
      ++cursor[t];
      progressed = true;
    }

    if (!progressed) {
      schedule.completed = false;
      schedule.failure = "barrier: serial phase made no progress (deadlock)";
      return schedule;
    }
  }
  return schedule;
}

}  // namespace mvee::dmt
