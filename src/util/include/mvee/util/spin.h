// Spin-wait helper with progressive backoff.
//
// Replay agents and the monitor's syscall-ordering clock wait "in a tight
// loop" (paper §4.1). On the test machines used here (few cores) a pure
// PAUSE loop would livelock threads that hold the resource being waited for,
// so SpinWait escalates: PAUSE -> yield -> short sleep.

#ifndef MVEE_UTIL_SPIN_H_
#define MVEE_UTIL_SPIN_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace mvee {

class SpinWait {
 public:
  // Issues one wait step and escalates the backoff level.
  void Pause() {
    ++spins_;
    if (spins_ < kSpinLimit) {
      CpuRelax();
    } else if (spins_ < kYieldLimit) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  void Reset() { spins_ = 0; }

  uint64_t spins() const { return spins_; }

 private:
  static constexpr uint64_t kSpinLimit = 64;
  static constexpr uint64_t kYieldLimit = 4096;

  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  uint64_t spins_ = 0;
};

// Amortized replay-deadline tracking for spin loops.
//
// Calling steady_clock::now() on every spin iteration puts a vDSO call (and
// on some kernels a real syscall) in the replay hot path; the deadline only
// exists to catch multi-second stalls from uninstrumented sync ops (§5.5), so
// millisecond precision is wasted there. Expired() consults the clock only
// every kCheckInterval pause steps of the accompanying SpinWait — the common
// wait that ends within the first interval never reads the clock at all —
// and arms the deadline lazily on the first check.
class DeadlineGate {
 public:
  static constexpr uint64_t kCheckInterval = 1024;  // power of two

  explicit DeadlineGate(std::chrono::milliseconds budget) : budget_(budget) {}

  // True once the budget has elapsed. Call with the SpinWait driving the
  // loop; a Reset() of that waiter re-syncs the check phase but keeps the
  // armed deadline.
  bool Expired(const SpinWait& waiter) {
    if ((waiter.spins() & (kCheckInterval - 1)) != 0) {
      return false;
    }
    return ExpiredNow();
  }

  // Unconditional check for callers that left the spin loop (e.g. parked
  // waiters, whose SpinWait no longer advances); arms lazily like Expired.
  bool ExpiredNow() {
    const auto now = std::chrono::steady_clock::now();
    if (!armed_) {
      armed_ = true;
      deadline_ = now + budget_;
      return false;
    }
    return now > deadline_;
  }

 private:
  const std::chrono::milliseconds budget_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace mvee

#endif  // MVEE_UTIL_SPIN_H_
