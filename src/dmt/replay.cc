// Record/Replay over abstract programs — see replay.h.

#include "mvee/dmt/replay.h"

#include <string>

#include "mvee/util/rng.h"
#include "src/dmt/observer.h"

namespace mvee::dmt {

namespace {

constexpr uint32_t kNoHolder = UINT32_MAX;

}  // namespace

Schedule RecordMaster(const Program& program, uint64_t seed, uint64_t slice) {
  OsConfig config;
  config.seed = seed;
  config.slice = slice;
  OsScheduler scheduler(config);
  return scheduler.Run(program);
}

ReplayScheduler::ReplayScheduler(const Schedule& recording, uint32_t lock_count,
                                 uint32_t flag_count, uint64_t scheduler_seed,
                                 const OpCosts& costs)
    : lock_order_(lock_count), flag_order_(flag_count), scheduler_seed_(scheduler_seed),
      costs_(costs) {
  for (const auto& event : recording.sync_order) {
    if (event.kind == OpKind::kLock && event.var < lock_count) {
      lock_order_[event.var].push_back(event.tid);
    } else if (event.kind == OpKind::kSetFlag && event.var < flag_count) {
      flag_order_[event.var].push_back(event.tid);
    }
  }
}

Schedule ReplayScheduler::Run(const Program& program) {
  Schedule schedule;
  RunState state(program, &schedule);
  const uint32_t threads = program.thread_count();
  Rng rng(SplitMix64(scheduler_seed_ ^ 0x5e7ae5ULL));

  std::vector<size_t> cursor(threads, 0);
  std::vector<uint64_t> compute_done(threads, 0);
  std::vector<uint64_t> local_time(threads, 0);
  std::vector<uint32_t> holder(program.lock_count, kNoHolder);
  std::vector<uint64_t> release_time(program.lock_count, 0);
  std::vector<size_t> lock_position(program.lock_count, 0);  // Next index in lock_order_.
  std::vector<size_t> flag_position(program.flag_count, 0);
  std::vector<uint64_t> flag_set_time(program.flag_count, 0);
  stalls_ = 0;

  auto unfinished = [&](uint32_t t) { return cursor[t] < program.threads[t].size(); };

  // A thread may acquire lock v only when it is the next recorded acquirer
  // — the agents' slave-side stall (§3.2) in abstract form.
  auto may_run = [&](uint32_t t) -> bool {
    const Op& op = program.threads[t][cursor[t]];
    switch (op.kind) {
      case OpKind::kLock: {
        if (holder[op.var] != kNoHolder) {
          return false;
        }
        const auto& order = lock_order_[op.var];
        return lock_position[op.var] < order.size() && order[lock_position[op.var]] == t;
      }
      case OpKind::kSetFlag: {
        const auto& order = flag_order_[op.var];
        return flag_position[op.var] < order.size() && order[flag_position[op.var]] == t;
      }
      case OpKind::kWaitFlag:
        return state.FlagSet(op.var);
      default:
        return true;
    }
  };

  for (;;) {
    uint32_t runnable[256];
    uint32_t runnable_count = 0;
    uint32_t unfinished_count = 0;
    uint32_t blocked_by_replay = 0;
    for (uint32_t t = 0; t < threads; ++t) {
      if (!unfinished(t)) {
        continue;
      }
      ++unfinished_count;
      if (may_run(t)) {
        runnable[runnable_count++] = t;
      } else {
        ++blocked_by_replay;
      }
    }
    if (unfinished_count == 0) {
      break;
    }
    if (runnable_count == 0) {
      schedule.completed = false;
      schedule.failure = "rr-replay: recorded order unsatisfiable (program/recording "
                         "mismatch — uninstrumented sync op or wrong program)";
      return schedule;
    }
    stalls_ += blocked_by_replay;

    const uint32_t turn = runnable[rng.NextBelow(runnable_count)];
    const Op& op = program.threads[turn][cursor[turn]];
    switch (op.kind) {
      case OpKind::kCompute: {
        const uint64_t remaining = op.cost - compute_done[turn];
        const uint64_t chunk = std::min<uint64_t>(128, remaining);
        compute_done[turn] += chunk;
        local_time[turn] += chunk;
        if (compute_done[turn] >= op.cost) {
          compute_done[turn] = 0;
          ++cursor[turn];
        }
        break;
      }
      case OpKind::kLock:
        holder[op.var] = turn;
        ++lock_position[op.var];
        local_time[turn] = std::max(local_time[turn], release_time[op.var]) + costs_.sync;
        state.RecordLock(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kUnlock:
        holder[op.var] = kNoHolder;
        local_time[turn] += costs_.sync;
        release_time[op.var] = local_time[turn];
        state.RecordUnlock(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kSyscall:
        local_time[turn] += costs_.syscall;
        state.RecordSyscall(turn);
        ++cursor[turn];
        break;
      case OpKind::kSetFlag:
        ++flag_position[op.var];
        local_time[turn] += costs_.sync;
        flag_set_time[op.var] = local_time[turn];
        state.RecordSetFlag(turn, op.var);
        ++cursor[turn];
        break;
      case OpKind::kWaitFlag:
        local_time[turn] = std::max(local_time[turn], flag_set_time[op.var]) + costs_.sync;
        state.RecordWaitFlag(turn, op.var);
        ++cursor[turn];
        break;
    }
  }

  for (uint32_t t = 0; t < threads; ++t) {
    schedule.makespan = std::max(schedule.makespan, local_time[t]);
  }
  return schedule;
}

}  // namespace mvee::dmt
