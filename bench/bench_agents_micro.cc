// Micro-benchmarks (google-benchmark) of the hot paths underneath every
// table/figure: per-sync-op record and replay costs of the three agents, the
// broadcast ring, the comparable-argument digest, and the instrumented
// primitives' uncontended fast paths.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "mvee/agents/agent_fleet.h"
#include "mvee/agents/context.h"
#include "mvee/sync/primitives.h"
#include "mvee/syscall/record.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {
namespace {

// --- Agent record path (master side, single thread, no consumers) ---

void BM_AgentRecord(benchmark::State& state, AgentKind kind) {
  AgentConfig config;
  config.num_variants = 1;  // Recording only.
  config.max_threads = 1;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(kind, config, control);
  auto agent = fleet.CreateAgent(0);
  int sync_var = 0;
  for (auto _ : state) {
    agent->BeforeSyncOp(0, &sync_var);
    benchmark::DoNotOptimize(sync_var);
    agent->AfterSyncOp(0, &sync_var);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_AgentRecord, null, AgentKind::kNull);
BENCHMARK_CAPTURE(BM_AgentRecord, total_order, AgentKind::kTotalOrder);
BENCHMARK_CAPTURE(BM_AgentRecord, partial_order, AgentKind::kPartialOrder);
BENCHMARK_CAPTURE(BM_AgentRecord, wall_of_clocks, AgentKind::kWallOfClocks);
BENCHMARK_CAPTURE(BM_AgentRecord, per_variable_order, AgentKind::kPerVariableOrder);

// --- Record + concurrent replay (one slave) ---

void BM_AgentRecordReplay(benchmark::State& state, AgentKind kind) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 1;
  config.buffer_capacity = 1 << 12;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(kind, config, control);
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> produced{0};
  std::atomic<uint64_t> consumed{0};
  int sync_var = 0;

  std::thread replayer([&] {
    int slave_var = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (consumed.load(std::memory_order_relaxed) <
          produced.load(std::memory_order_acquire)) {
        slave->BeforeSyncOp(0, &slave_var);
        slave->AfterSyncOp(0, &slave_var);
        consumed.fetch_add(1, std::memory_order_release);
      }
    }
  });

  for (auto _ : state) {
    master->BeforeSyncOp(0, &sync_var);
    master->AfterSyncOp(0, &sync_var);
    produced.fetch_add(1, std::memory_order_release);
  }
  stop.store(true);
  replayer.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_AgentRecordReplay, total_order, AgentKind::kTotalOrder);
BENCHMARK_CAPTURE(BM_AgentRecordReplay, partial_order, AgentKind::kPartialOrder);
BENCHMARK_CAPTURE(BM_AgentRecordReplay, wall_of_clocks, AgentKind::kWallOfClocks);
BENCHMARK_CAPTURE(BM_AgentRecordReplay, per_variable_order, AgentKind::kPerVariableOrder);

// --- Broadcast ring ---

void BM_RingPushPop(benchmark::State& state) {
  BroadcastRing<uint64_t> ring(1 << 12);
  const size_t consumer = ring.RegisterConsumer();
  uint64_t value = 0;
  for (auto _ : state) {
    ring.Push(++value);
    benchmark::DoNotOptimize(ring.Pop(consumer));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop);

// --- Syscall argument digest ---

void BM_ComparableDigest(benchmark::State& state) {
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0xAB);
  SyscallRequest request;
  request.sysno = Sysno::kWrite;
  request.arg0 = 5;
  request.arg1 = static_cast<int64_t>(payload.size());
  request.in_data = payload;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.ComparableDigest());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComparableDigest)->Arg(64)->Arg(512)->Arg(4096);

// --- Instrumented primitives, uncontended fast paths (NullAgent) ---

void BM_MutexUncontended(benchmark::State& state) {
  Mutex mutex;
  for (auto _ : state) {
    mutex.Lock();
    mutex.Unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexUncontended);

void BM_SpinLockUncontended(benchmark::State& state) {
  SpinLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpinLockUncontended);

void BM_InstrumentedFetchAdd(benchmark::State& state) {
  InstrumentedAtomic<int64_t> counter{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.FetchAdd(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstrumentedFetchAdd);

void BM_RawFetchAddBaseline(benchmark::State& state) {
  std::atomic<int64_t> counter{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawFetchAddBaseline);

}  // namespace
}  // namespace mvee

BENCHMARK_MAIN();
