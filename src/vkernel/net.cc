#include "mvee/vkernel/net.h"

#include <algorithm>
#include <cerrno>

namespace mvee {

int64_t ByteStream::Read(uint8_t* out, uint64_t size) {
  uint64_t n = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    readable_.wait(lock, [&] { return !buffer_.empty() || closed_; });
    if (buffer_.empty()) {
      return 0;
    }
    n = std::min<uint64_t>(size, buffer_.size());
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = buffer_.front();
      buffer_.pop_front();
    }
    writable_.notify_all();
  }
  NotifySink();  // Space freed: peers polling for kOut.
  return static_cast<int64_t>(n);
}

int64_t ByteStream::Write(const uint8_t* data, uint64_t size) {
  uint64_t written = 0;
  while (written < size) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      writable_.wait(lock, [&] { return buffer_.size() < capacity_ || closed_; });
      if (closed_) {
        return -ECONNRESET;
      }
      const uint64_t room = capacity_ - buffer_.size();
      const uint64_t n = std::min(room, size - written);
      buffer_.insert(buffer_.end(), data + written, data + written + n);
      written += n;
      readable_.notify_all();
    }
    NotifySink();  // Data available: peers parked in poll.
  }
  return static_cast<int64_t>(written);
}

void ByteStream::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    readable_.notify_all();
    writable_.notify_all();
  }
  NotifySink();
}

bool ByteStream::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool ByteStream::Readable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Data available, or EOF readable immediately (Read returns 0).
  return !buffer_.empty() || closed_;
}

bool ByteStream::Writable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Space available, or the write fails immediately (-ECONNRESET): either
  // way a Write would not block — POSIX poll reports closed sockets as
  // writable so callers discover the error.
  return buffer_.size() < capacity_ || closed_;
}

int64_t VListener::PushConnection(VRef<VConnection> conn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || pending_.size() >= static_cast<size_t>(backlog_)) {
      return -ECONNREFUSED;
    }
    pending_.push_back(std::move(conn));
    pending_cv_.notify_one();
  }
  waitq_.Notify();  // Accepters parked on the listener's queue.
  return 0;
}

VRef<VConnection> VListener::Accept() {
  VRef<VConnection> conn;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
    if (pending_.empty()) {
      return nullptr;
    }
    conn = std::move(pending_.front());
    pending_.pop_front();
  }
  waitq_.Notify();  // Backlog slot freed: clients polling for kOut-ish space.
  return conn;
}

VRef<VConnection> VListener::TryAccept(bool* closed) {
  VRef<VConnection> conn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    *closed = closed_;
    if (pending_.empty()) {
      return nullptr;
    }
    conn = std::move(pending_.front());
    pending_.pop_front();
  }
  waitq_.Notify();
  return conn;
}

bool VListener::HasPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !pending_.empty() || closed_;
}

void VListener::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    pending_cv_.notify_all();
  }
  waitq_.Notify();
}

int64_t VirtualNetwork::Listen(uint16_t port, int backlog, VRef<VListener>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listeners_.count(port) != 0) {
    return -EADDRINUSE;
  }
  auto listener = MakeVRef<VListener>(backlog, registry_);
  *out = listener;
  listeners_[port] = std::move(listener);
  return 0;
}

VRef<VConnection> VirtualNetwork::Connect(uint16_t port) {
  VRef<VListener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
      return nullptr;
    }
    listener = it->second;
  }
  auto conn = MakeVRef<VConnection>(registry_);
  if (listener->PushConnection(conn) != 0) {
    return nullptr;
  }
  return conn;
}

void VirtualNetwork::CloseAll() {
  std::map<uint16_t, VRef<VListener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listeners.swap(listeners_);
  }
  for (auto& [port, listener] : listeners) {
    listener->Close();
  }
}

void VirtualNetwork::CloseListener(uint16_t port) {
  VRef<VListener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
      return;
    }
    listener = std::move(it->second);
    listeners_.erase(it);
  }
  listener->Close();
}

}  // namespace mvee
