// Internal: per-thread observation tracking shared by the DMT simulators.
//
// Every scheduler must attribute identical "observations" to identical
// interleavings so that schedules from different schedulers are comparable.
// A thread observes synchronization when it acquires a lock (it sees the
// state left by the previous holder — modelled as the acquisition index on
// that lock) and when a flag wait completes (it sees the flag version).
// Syscalls snapshot the digest as their "arguments".

#ifndef MVEE_DMT_OBSERVER_H_
#define MVEE_DMT_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "mvee/dmt/program.h"
#include "mvee/dmt/schedule.h"
#include "mvee/util/hash.h"

namespace mvee::dmt {

class ThreadObserver {
 public:
  void ObserveLockAcquire(uint32_t var, uint64_t acquisition_index) {
    digest_.UpdateValue(var);
    digest_.UpdateValue(acquisition_index);
  }

  void ObserveFlag(uint32_t var, uint64_t version) {
    digest_.UpdateValue(~static_cast<uint64_t>(var));
    digest_.UpdateValue(version);
  }

  uint64_t Snapshot() const { return digest_.Finish(); }

 private:
  FnvDigest digest_;
};

// Common bookkeeping for one simulated run: per-lock acquisition counters,
// flag versions, per-thread observers, and event recording into a Schedule.
class RunState {
 public:
  RunState(const Program& program, Schedule* out)
      : out_(out),
        acquisitions_(program.lock_count, 0),
        flag_versions_(program.flag_count, 0),
        observers_(program.thread_count()) {}

  bool FlagSet(uint32_t var) const { return flag_versions_[var] != 0; }

  void RecordLock(uint32_t tid, uint32_t var) {
    observers_[tid].ObserveLockAcquire(var, acquisitions_[var]);
    ++acquisitions_[var];
    out_->sync_order.push_back({tid, var, OpKind::kLock});
  }

  void RecordUnlock(uint32_t tid, uint32_t var) {
    out_->sync_order.push_back({tid, var, OpKind::kUnlock});
  }

  void RecordSetFlag(uint32_t tid, uint32_t var) {
    ++flag_versions_[var];
    out_->sync_order.push_back({tid, var, OpKind::kSetFlag});
  }

  void RecordWaitFlag(uint32_t tid, uint32_t var) {
    observers_[tid].ObserveFlag(var, flag_versions_[var]);
    out_->sync_order.push_back({tid, var, OpKind::kWaitFlag});
  }

  void RecordSyscall(uint32_t tid) {
    out_->syscall_order.push_back({tid, observers_[tid].Snapshot()});
  }

 private:
  Schedule* out_;
  std::vector<uint64_t> acquisitions_;
  std::vector<uint64_t> flag_versions_;
  std::vector<ThreadObserver> observers_;
};

}  // namespace mvee::dmt

#endif  // MVEE_DMT_OBSERVER_H_
