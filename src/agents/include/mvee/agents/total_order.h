// Total-order (TO) replication agent (paper §4.5, Figure 4a).
//
// The master records every sync op into a single global order; slaves replay
// ops strictly in that order, so even unrelated critical sections are
// serialized in the slaves — the "unnecessary stalls" the paper illustrates
// with the red bar in Figure 4(a).
//
// Two recording paths (AgentConfig::sharded_recording):
//  - Sharded (default, docs/DESIGN.md §8): each master thread records into
//    its own BroadcastRing; every entry is stamped with a global sequence
//    drawn from one fetch_add ticket counter. A per-sync-variable shard lock
//    held across (op + ticket + push) makes the sequence order a linear
//    extension of the conflict order, which is all replay needs — the global
//    master lock disappears from the hot path. Slaves merge the per-thread
//    rings on the recorded sequences: thread t's next op is always its own
//    ring's front, and a per-variant next_seq ratchet admits exactly the
//    entry whose sequence is next.
//  - Global-lock baseline (sharded_recording = false): the seed's single
//    global buffer under one instrumentation lock held across each op — the
//    read-write-shared cache line §4.5 blames for the simple agents' poor
//    scaling. Kept selectable so bench_table3_syncops / bench_ablation_agents
//    can sweep both in one run.

#ifndef MVEE_AGENTS_TOTAL_ORDER_H_
#define MVEE_AGENTS_TOTAL_ORDER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mvee/agents/record_shards.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {

class TotalOrderRuntime {
 public:
  TotalOrderRuntime(const AgentConfig& config, AgentControl control);

  // Creates the agent handle for variant `variant_index` (0 = master).
  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): stop `variant`'s stalled ring cursors from
  // gating the master's recording, so survivors keep producing after the
  // variant left. Safe concurrently with running agents.
  void DetachVariant(uint32_t variant);

  const AgentStats& stats() const { return stats_; }
  uint64_t OpsRecorded() const { return stats_.Aggregate().ops_recorded; }
  // Tickets drawn so far (sharded mode; 0 under the global-lock baseline).
  uint64_t SequencesIssued() const { return record_shards_.TicketsIssued(); }
  bool sharded_recording() const { return config_.sharded_recording; }
  // Per-thread recording rings materialized so far (lazy allocation).
  uint64_t RecordingRingsCreated() const { return thread_rings_.CreatedCount(); }

 private:
  friend class TotalOrderAgent;

  struct Entry {
    uint32_t tid = 0;
    uint64_t seq = 0;  // global ticket (sharded mode only)
  };

  // TO needs no per-shard payload beyond the lock itself.
  struct NoShardState {};
  using RecordShards = TicketedRecordShards<NoShardState>;

  // Per-slave-variant replay ratchet: sequence of the next entry to replay.
  struct alignas(64) ReplayFront {
    std::atomic<uint64_t> next_seq{0};
  };

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  // Global-lock baseline state.
  BroadcastRing<Entry> ring_;
  std::atomic_flag master_lock_ = ATOMIC_FLAG_INIT;
  std::vector<size_t> consumer_ids_;  // consumer id per slave variant (index-1)
  // Sharded recording state (docs/DESIGN.md §8, shared with PO through
  // record_shards.h).
  RecordShards record_shards_;
  LazyRingSet<Entry> thread_rings_;  // [tid], created on first touch
  std::vector<ReplayFront> replay_fronts_;  // [variant - 1]
};

class TotalOrderAgent final : public SyncAgent {
 public:
  TotalOrderAgent(TotalOrderRuntime* runtime, AgentRole role, size_t consumer_id);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "total-order"; }

 private:
  TotalOrderRuntime* const runtime_;
  const AgentRole role_;
  const size_t consumer_id_;
  // Stats shard key: 0 for the master, consumer id + 1 for slaves.
  const uint32_t stats_variant_;
  // Sharded replay: sequence matched in BeforeSyncOp, ratcheted past in
  // AfterSyncOp. One pending op per thread; sized from config.max_threads
  // (a fixed 256-slot array here used to overrun silently).
  std::vector<uint64_t> pending_seq_;
  // Sharded recording: shard locked in BeforeSyncOp, released (after the
  // ticket + push) in AfterSyncOp — cached so After does not re-hash.
  std::vector<TotalOrderRuntime::RecordShards::Shard*> held_shard_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_TOTAL_ORDER_H_
