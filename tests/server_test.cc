// Tests for the nginx-style use case (paper §5.5): native serving, MVEE
// serving with instrumented custom sync ops, divergence with uninstrumented
// custom sync ops under load, and attack detection.

#include <gtest/gtest.h>

#include <thread>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"

namespace mvee {
namespace {

// Runs the server program in `runner_fn` while generating `wrk` load from a
// client thread; returns the wrk result.
template <typename RunFn>
WrkResult ServeAndMeasure(VirtualKernel& kernel, const WrkOptions& wrk_options, RunFn serve) {
  WrkResult result;
  std::thread client([&] {
    // Wait for the listener to appear; the successful probe consumes one
    // accept slot (callers budget for it) and is closed so the worker that
    // receives it sees EOF and serves an empty request.
    VRef<VConnection> probe;
    while ((probe = kernel.network().Connect(wrk_options.port)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    result = RunWrk(kernel, wrk_options);
  });
  serve();
  client.join();
  return result;
}

ServerConfig SmallServer(uint16_t port, bool instrument, bool vuln = false) {
  ServerConfig config;
  config.port = port;
  config.pool_threads = 4;
  config.page_bytes = 512;
  config.instrument_custom_sync = instrument;
  config.enable_vulnerability = vuln;
  return config;
}

TEST(HttpServerTest, NativeServesRequests) {
  NativeRunner runner;
  ServerConfig config = SmallServer(8080, /*instrument=*/true);
  config.connection_budget = 21;  // 20 wrk requests + 1 probe.

  WrkOptions wrk;
  wrk.port = 8080;
  wrk.connections = 4;
  wrk.requests_per_conn = 5;
  wrk.path = "/index.html";

  const WrkResult result = ServeAndMeasure(runner.kernel(), wrk, [&] {
    ASSERT_TRUE(runner.Run(MakeServerProgram(config)).ok());
  });
  EXPECT_EQ(result.responses_ok, 20u);
  EXPECT_GT(result.bytes_received, 20u * 512u);
}

TEST(HttpServerTest, MveeInstrumentedServesWithoutDivergence) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8081, /*instrument=*/true);
  config.connection_budget = 21;

  WrkOptions wrk;
  wrk.port = 8081;
  wrk.connections = 4;
  wrk.requests_per_conn = 5;

  Status status;
  const WrkResult result = ServeAndMeasure(mvee.kernel(), wrk, [&] {
    status = mvee.Run(MakeServerProgram(config));
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(result.responses_ok, 20u);
}

TEST(HttpServerTest, UninstrumentedCustomSyncDivergesUnderLoad) {
  // §5.5: "if we do not instrument these custom synchronization primitives,
  // nginx does not function correctly when running multiple variants. The
  // server does start up normally, but quickly triggers a divergence when
  // network traffic starts flowing in." Racing request-id updates through
  // the raw spinlock produce mismatching response headers.
  int divergences = 0;
  for (int round = 0; round < 10 && divergences == 0; ++round) {
    MveeOptions options;
    options.num_variants = 2;
    options.agent = AgentKind::kWallOfClocks;
    options.rendezvous_timeout = std::chrono::milliseconds(15000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(15000);
    options.seed = 77 + round;
    // This demonstration needs scheduler-driven wakeup nondeterminism to
    // expose the race. The wait-free rendezvous's spin-yield handoff resumes
    // variant threads in an identical order every round on small hosts,
    // which (deliberately) suppresses exactly the benign-divergence noise
    // this test fishes for — so run it on the mutex baseline. The same
    // uninstrumented-sync divergence property under the wait-free protocol
    // is covered by MveeSyncTest.UninstrumentedRacyOrderEventuallyDiverges.
    options.waitfree_rendezvous = false;
    Mvee mvee(options);

    ServerConfig config = SmallServer(static_cast<uint16_t>(8090 + round),
                                      /*instrument=*/false);
    config.connection_budget = 41;

    WrkOptions wrk;
    wrk.port = config.port;
    wrk.connections = 8;
    wrk.requests_per_conn = 5;

    Status status;
    ServeAndMeasure(mvee.kernel(), wrk, [&] { status = mvee.Run(MakeServerProgram(config)); });
    if (!status.ok()) {
      ++divergences;
    }
  }
  EXPECT_GT(divergences, 0);
}

TEST(HttpServerTest, AttackSucceedsNatively) {
  // Against a single (unprotected) server instance, the tailored exploit
  // leaks the secret — the baseline the paper establishes before showing
  // the MVEE stops it.
  NativeRunner runner;
  ServerConfig config = SmallServer(8100, /*instrument=*/true, /*vuln=*/true);
  config.connection_budget = 2;  // probe + attack

  AttackResult attack;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = runner.kernel().network().Connect(8100)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    // The native runner's diversity map is the victim layout the attacker
    // "leaked".
    const uint64_t victim_base = DiversityMap(0, 0x5eedULL, true).map_base();
    attack = RunAttack(runner.kernel(), 8100, victim_base);
  });
  ASSERT_TRUE(runner.Run(MakeServerProgram(config)).ok());
  client.join();
  EXPECT_TRUE(attack.connected);
  EXPECT_TRUE(attack.secret_leaked);
}

TEST(HttpServerTest, MveeDetectsAttackBeforeLeak) {
  // With >= 2 diversified variants, the exploit only matches one variant's
  // layout; the variants' responses differ and the MVEE kills them before
  // the secret is sent (§5.5: "our MVEE detected divergence and shut down
  // all variants before the system could be compromised").
  MveeOptions options;
  options.num_variants = 2;
  options.enable_aslr = true;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(15000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(15000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8101, /*instrument=*/true, /*vuln=*/true);
  config.connection_budget = 2;

  AttackResult attack;
  Status status;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = mvee.kernel().network().Connect(8101)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    // Attacker tailored the payload to the master variant's layout.
    const uint64_t master_base = DiversityMap(0, options.seed, true).map_base();
    attack = RunAttack(mvee.kernel(), 8101, master_base);
  });
  status = mvee.Run(MakeServerProgram(config));
  client.join();

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
  EXPECT_FALSE(attack.secret_leaked);
}

TEST(NgxSpinlockTest, BothModesMutualExclusion) {
  for (bool instrumented : {true, false}) {
    NgxSpinlock lock(instrumented);
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) {
          lock.Lock();
          ++counter;
          lock.Unlock();
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(counter, 4000);
  }
}

TEST(LayoutTokenTest, DistinctBasesDistinctTokens) {
  EXPECT_NE(LayoutToken(0x1000), LayoutToken(0x2000));
  EXPECT_EQ(LayoutToken(0x1000), LayoutToken(0x1000));
}

}  // namespace
}  // namespace mvee
