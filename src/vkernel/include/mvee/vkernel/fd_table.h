// Per-process file descriptor table.
//
// Descriptors are allocated lowest-available-first, exactly like Linux. This
// is the property the paper's motivating example in §3.1 relies on: if two
// threads open files and the MVEE does not order the sys_open calls, the
// variants can hand different fd numbers to equivalent threads and diverge
// when the fds are printed or used.

#ifndef MVEE_VKERNEL_FD_TABLE_H_
#define MVEE_VKERNEL_FD_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/vkernel/net.h"
#include "mvee/vkernel/pipe.h"
#include "mvee/vkernel/vfs.h"

namespace mvee {

enum class FdKind : uint8_t {
  kFree = 0,
  kFile,
  kPipeRead,
  kPipeWrite,
  kListener,
  kConnServer,  // accepted side
  kConnClient,  // connecting side
};

struct FdEntry {
  FdKind kind = FdKind::kFree;
  std::shared_ptr<VFile> file;
  std::shared_ptr<VPipe> pipe;
  std::shared_ptr<VListener> listener;
  std::shared_ptr<VConnection> conn;
  uint64_t offset = 0;
  int64_t flags = 0;
  std::string path;
  uint16_t port = 0;
  // Syscall-ordering domain for ops scoped to this descriptor (lseek/fcntl).
  // Assigned by the table at allocation, never reused: a reopened fd number
  // gets a fresh domain so replay clocks of the torn-down descriptor cannot
  // leak into the new one (docs/syscall_ordering.md).
  uint32_t order_domain = 0;
};

// Thread-safe fd table. fds 0..2 are reserved at construction for
// stdin/stdout/stderr (backed by VFiles so output can be inspected).
class FdTable {
 public:
  FdTable();

  // Allocates the lowest free descriptor and installs `entry`.
  int32_t Allocate(FdEntry entry);
  // Duplicates `fd` into the lowest free slot; -EBADF if invalid.
  int32_t Dup(int32_t fd);
  // Returns nullptr if `fd` is invalid or free. The returned pointer is valid
  // until Close(fd); callers must not cache it across syscalls.
  FdEntry* Get(int32_t fd);
  // Releases the descriptor; returns 0 or -EBADF. Closing the last pipe /
  // connection descriptor closes the underlying endpoint.
  int64_t Close(int32_t fd);
  // Number of live descriptors (including stdio).
  size_t LiveCount() const;

  // The ordering domain of `fd`, or OrderDomainIds::kNone if the descriptor
  // is invalid/free. Returned by value (not via Get()) so the monitor can
  // read it without holding a pointer into the table across the call.
  uint32_t OrderDomainOf(int32_t fd) const;

  // The VFile behind stdout (fd 1); convenient for output assertions.
  std::shared_ptr<VFile> StdoutFile() const { return stdout_file_; }

 private:
  mutable std::mutex mutex_;
  std::vector<FdEntry> entries_;
  std::shared_ptr<VFile> stdout_file_;
  // Next per-fd ordering domain id. Monotonic (no reuse); every variant's
  // table hands out the same sequence because fd-namespace calls are totally
  // ordered by the monitor, so only the master's ids ever reach the wire.
  uint32_t next_order_domain_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_FD_TABLE_H_
