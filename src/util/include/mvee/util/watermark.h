// PrefixWatermark: a shared min-replayed-sequence watermark over a dense
// ticket space (docs/DESIGN.md §8/§11).
//
// The sharded TO/PO recording path stamps every recorded op with a global
// ticket sequence (record_shards.h). Several consumers — the partial-order
// master's po_window gate, and diagnostic "how far has variant v replayed"
// probes — need the answer to one question about the replay side: "every
// sequence below X has been replayed". Individual per-thread counters cannot
// answer it (thread t's counter says nothing about thread u's backlog), so
// replaying threads mark each finished sequence in a slot array and the
// watermark is the length of the contiguous marked prefix.
//
// The marking scheme is the one partial_order.cc's baseline retire loop
// proved out: marks[seq & mask] == seq + 1 means `seq` is done. The mark is
// the sequence itself rather than a 0/1 flag so slot reuse across laps needs
// no clearing step — a stale mark from the previous lap never equals the
// current lap's seq + 1.
//
// Division of labor, deliberately asymmetric: Mark() is a single release
// store on a striped slot (the replay hot path adds no shared-line CAS), and
// the *waiting* side calls TryAdvance() + Prefix() — it is already stalled,
// so it donates the CAS work of collapsing the marked prefix into the base
// counter. Any thread may call TryAdvance concurrently; each slot has
// exactly one CAS winner (same argument as RetireConsumedPrefix).
//
// Capacity contract: a mark at `seq` is only safe while seq - Prefix() <
// capacity. Callers enforce it by gating producers on the watermark (the
// po_window gate admits at most window + max_threads outstanding sequences,
// and sizes the watermark accordingly).

#ifndef MVEE_UTIL_WATERMARK_H_
#define MVEE_UTIL_WATERMARK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mvee {

class PrefixWatermark {
 public:
  // `min_capacity` is rounded up to a power of two >= 2.
  explicit PrefixWatermark(size_t min_capacity) {
    size_t capacity = 2;
    while (capacity < min_capacity) {
      capacity <<= 1;
    }
    mask_ = capacity - 1;
    marks_ = std::vector<std::atomic<uint64_t>>(capacity);
  }

  size_t capacity() const { return mask_ + 1; }

  // Marks `seq` replayed. Owner-agnostic, wait-free: one release store.
  void Mark(uint64_t seq) {
    marks_[seq & mask_].store(seq + 1, std::memory_order_release);
  }

  // Every sequence below the returned value has been marked (and its mark
  // has been folded into the base by some TryAdvance call).
  uint64_t Prefix() const { return base_.load(std::memory_order_acquire); }

  // Folds the contiguous marked prefix into the base. Lock-free, callable
  // from any thread; returns the (possibly advanced) prefix.
  uint64_t TryAdvance() {
    uint64_t base = base_.load(std::memory_order_acquire);
    while (marks_[base & mask_].load(std::memory_order_acquire) == base + 1) {
      if (base_.compare_exchange_weak(base, base + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        ++base;
      }
    }
    return base;
  }

 private:
  uint64_t mask_ = 1;
  std::vector<std::atomic<uint64_t>> marks_;
  alignas(64) std::atomic<uint64_t> base_{0};
};

}  // namespace mvee

#endif  // MVEE_UTIL_WATERMARK_H_
