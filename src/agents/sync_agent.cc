#include "mvee/agents/sync_agent.h"

namespace mvee {

NullAgent* NullAgent::Instance() {
  static NullAgent instance;
  return &instance;
}

const char* AgentKindName(AgentKind kind) {
  switch (kind) {
    case AgentKind::kNull:
      return "null";
    case AgentKind::kTotalOrder:
      return "total-order";
    case AgentKind::kPartialOrder:
      return "partial-order";
    case AgentKind::kWallOfClocks:
      return "wall-of-clocks";
    case AgentKind::kPerVariableOrder:
      return "per-variable-order";
  }
  return "unknown";
}

}  // namespace mvee
