// Single-producer / single-consumer lock-free ring buffer.
//
// This is the data structure behind the wall-of-clocks agent's per-thread
// sync buffers (paper §4.5: "there is one sync buffer per master thread, such
// that each buffer has only one producer"). The producer is a master-variant
// thread; each consumer is the corresponding thread of one slave variant.
//
// To support N slave variants reading the same stream, the buffer keeps an
// independent read cursor per consumer; an element is logically retired only
// when all consumers have passed it, which bounds producer progress to
// capacity ahead of the slowest consumer.

#ifndef MVEE_UTIL_SPSC_RING_H_
#define MVEE_UTIL_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mvee/util/spin.h"

namespace mvee {

// Fixed-capacity broadcast ring. One producer, up to `kMaxConsumers`
// registered consumers, each with a private cursor. All memory is allocated
// up front (agents must not allocate dynamically, paper §3.3).
template <typename T>
class BroadcastRing {
 public:
  static constexpr size_t kMaxConsumers = 15;

  // `capacity` must be a power of two.
  explicit BroadcastRing(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (auto& cursor : read_cursors_) {
      cursor.value.store(0, std::memory_order_relaxed);
    }
  }

  BroadcastRing(const BroadcastRing&) = delete;
  BroadcastRing& operator=(const BroadcastRing&) = delete;

  size_t capacity() const { return capacity_; }

  // Registers a consumer and returns its id. Must happen before production
  // starts. Not thread-safe (bootstrap-time only).
  size_t RegisterConsumer() {
    assert(consumer_count_ < kMaxConsumers);
    return consumer_count_++;
  }

  size_t consumer_count() const { return consumer_count_; }

  // Producer side: blocks (spin-waits) until a slot is free, then publishes.
  // Returns the sequence number of the published element.
  uint64_t Push(const T& value) {
    const uint64_t seq = write_cursor_.load(std::memory_order_relaxed);
    SpinWait waiter;
    while (seq - MinReadCursor() >= capacity_) {
      waiter.Pause();
    }
    slots_[seq & mask_] = value;
    write_cursor_.store(seq + 1, std::memory_order_release);
    return seq;
  }

  // Producer side, non-blocking. Returns false if the ring is full.
  bool TryPush(const T& value) {
    const uint64_t seq = write_cursor_.load(std::memory_order_relaxed);
    if (seq - MinReadCursor() >= capacity_) {
      return false;
    }
    slots_[seq & mask_] = value;
    write_cursor_.store(seq + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: true if an element is available for `consumer`.
  bool CanPop(size_t consumer) const {
    const uint64_t read = read_cursors_[consumer].value.load(std::memory_order_relaxed);
    return read < write_cursor_.load(std::memory_order_acquire);
  }

  // Consumer side: spin-waits for the next element and returns a copy.
  T Pop(size_t consumer) {
    auto& cursor = read_cursors_[consumer].value;
    const uint64_t read = cursor.load(std::memory_order_relaxed);
    SpinWait waiter;
    while (read >= write_cursor_.load(std::memory_order_acquire)) {
      waiter.Pause();
    }
    T value = slots_[read & mask_];
    cursor.store(read + 1, std::memory_order_release);
    return value;
  }

  // Consumer side: peeks at the element `offset` ahead of the cursor without
  // consuming. Returns false if not yet produced. Used by the partial-order
  // agent's lookahead window.
  bool Peek(size_t consumer, uint64_t offset, T* out) const {
    const uint64_t read = read_cursors_[consumer].value.load(std::memory_order_relaxed);
    const uint64_t want = read + offset;
    if (want >= write_cursor_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = slots_[want & mask_];
    return true;
  }

  // Consumer side: advances the cursor by one (after a successful Peek(0)).
  void Advance(size_t consumer) {
    auto& cursor = read_cursors_[consumer].value;
    cursor.store(cursor.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  // Reads the element at absolute sequence `seq` if it has been produced.
  // The caller must guarantee `seq` has not been retired (i.e. seq >= the
  // minimum consumer cursor); within that window slots are stable.
  bool TryRead(uint64_t seq, T* out) const {
    if (seq >= write_cursor_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = slots_[seq & mask_];
    return true;
  }

  // Sequence of the next element `consumer` would pop.
  uint64_t ReadCursor(size_t consumer) const {
    return read_cursors_[consumer].value.load(std::memory_order_relaxed);
  }

  // Sequence of the next element the producer will publish.
  uint64_t WriteCursor() const { return write_cursor_.load(std::memory_order_acquire); }

 private:
  struct alignas(64) PaddedCursor {
    std::atomic<uint64_t> value{0};
  };

  uint64_t MinReadCursor() const {
    if (consumer_count_ == 0) {
      // No consumers registered: recording-only mode (e.g. benchmarking the
      // producer path); retire immediately.
      return write_cursor_.load(std::memory_order_relaxed);
    }
    uint64_t min = UINT64_MAX;
    for (size_t i = 0; i < consumer_count_; ++i) {
      const uint64_t cursor = read_cursors_[i].value.load(std::memory_order_acquire);
      if (cursor < min) {
        min = cursor;
      }
    }
    return min;
  }

  const size_t capacity_;
  const uint64_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<uint64_t> write_cursor_{0};
  PaddedCursor read_cursors_[kMaxConsumers];
  size_t consumer_count_ = 0;
};

}  // namespace mvee

#endif  // MVEE_UTIL_SPSC_RING_H_
