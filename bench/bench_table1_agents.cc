// Regenerates paper Table 1: aggregated average slowdowns for the three
// synchronization agents with 2, 3 and 4 variants.
//
//                      2 variants   3 variants   4 variants
//   total-order agent     2.76x        2.83x        2.87x
//   partial-order agent   2.83x        2.83x        3.00x
//   wall-of-clocks agent  1.14x        1.27x        1.38x
//
// The claim to reproduce is the *ordering*: WoC dramatically cheaper than TO
// and PO at every variant count, costs growing with variant count. The sweep
// uses a representative subset of benchmarks by default (set
// MVEE_BENCH_FULL=1 for all 25).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mvee/util/stats.h"

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  const double scale = BenchScale(2.0);
  const bool full = std::getenv("MVEE_BENCH_FULL") != nullptr;

  // Representative subset spanning the rate regimes of Table 2.
  const std::vector<std::string> subset = {
      "blackscholes",   // quiet
      "dedup",          // syscall-heavy pipeline
      "fluidanimate",   // sync-heavy fine-grained locks
      "streamcluster",  // barrier-heavy
      "swaptions",      // atomic-hammer
      "radiosity",      // extreme sync + syscall task queue
      "ocean_cp",       // moderate barrier phases
      "volrend",        // task queue
  };

  std::vector<const WorkloadConfig*> workloads;
  if (full) {
    for (const auto& config : AllWorkloads()) {
      workloads.push_back(&config);
    }
  } else {
    for (const auto& name : subset) {
      workloads.push_back(FindWorkload(name));
    }
  }

  constexpr AgentKind kAgents[] = {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                                   AgentKind::kWallOfClocks};
  constexpr double kPaper[3][3] = {{2.76, 2.83, 2.87},   // TO
                                   {2.83, 2.83, 3.00},   // PO
                                   {1.14, 1.27, 1.38}};  // WoC

  PrintHeader("Table 1: aggregated average slowdowns per agent (paper values in parens)");
  std::printf("scale=%.3f, %zu benchmarks%s\n\n", scale, workloads.size(),
              full ? " (full suite)" : " (representative subset)");

  // Native baselines first.
  std::vector<double> native_seconds;
  for (const auto* config : workloads) {
    native_seconds.push_back(RunNative(*config, scale).seconds);
  }

  std::printf("%-22s %16s %16s %16s\n", "", "2 variants", "3 variants", "4 variants");
  for (size_t a = 0; a < 3; ++a) {
    std::printf("%-22s", std::string(AgentKindName(kAgents[a])).append(" agent").c_str());
    for (uint32_t variants = 2; variants <= 4; ++variants) {
      SampleStats slowdowns;
      for (size_t w = 0; w < workloads.size(); ++w) {
        const MveeRun run = RunUnderMvee(*workloads[w], scale, variants, kAgents[a]);
        if (run.ok && native_seconds[w] > 0) {
          slowdowns.Add(run.seconds / native_seconds[w]);
        }
      }
      std::printf("  %6.2fx (%4.2fx)", slowdowns.Mean(), kPaper[a][variants - 2]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
