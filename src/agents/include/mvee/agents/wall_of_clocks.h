// Wall-of-clocks (WoC) replication agent (paper §4.5, Figure 4c).
//
// Sync variables are hashed onto a fixed, statically allocated pool of
// logical clocks (agents may not allocate dynamically, §3.3; collisions are
// tolerated and merely over-serialize, §4.5 last paragraph — including the
// deliberate bucketing of adjacent 32-bit variables in one 64-bit line).
//
// Recording: the master thread acquires the per-clock lock, executes the op,
// logs (clock id, clock time) into *its own* SPSC sync buffer, increments the
// clock, releases. One buffer per master thread means each buffer has a
// single producer and the agent introduces no cross-thread sharing beyond
// what the program's own lock contention already implies.
//
// Replay: slave thread t pops the next (clock, time) entry from buffer t and
// waits until its variant's local copy of that clock reaches `time`; after
// executing the op it increments the local clock. Slaves never see the
// master's clocks or other buffers — the buffer contents alone are enough to
// reproduce the clock increments (§4.5), which also makes the agent fully
// address-space-layout agnostic (§4.5.1).

#ifndef MVEE_AGENTS_WALL_OF_CLOCKS_H_
#define MVEE_AGENTS_WALL_OF_CLOCKS_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mvee/agents/record_shards.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/util/hash.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {

class WallOfClocksRuntime {
 public:
  WallOfClocksRuntime(const AgentConfig& config, AgentControl control);

  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): stop `variant`'s stalled ring cursors from
  // gating the master's recording, so survivors keep producing after the
  // variant left. Safe concurrently with running agents.
  void DetachVariant(uint32_t variant);

  const AgentStats& stats() const { return stats_; }
  size_t clock_count() const { return config_.clock_count; }
  // Per-thread recording rings materialized so far (lazy allocation).
  uint64_t RecordingRingsCreated() const { return rings_.CreatedCount(); }

  // Maps a sync-variable address to its clock id (exposed for tests and the
  // collision ablation bench).
  uint32_t ClockOf(const void* addr) const {
    return static_cast<uint32_t>(ClockAddressHash(reinterpret_cast<uint64_t>(addr)) %
                                 config_.clock_count);
  }

 private:
  friend class WallOfClocksAgent;

  struct Entry {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };

  // Master-side clock: spinlock + time, one cache line each to avoid false
  // sharing across clocks.
  struct alignas(64) MasterClock {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    uint64_t time = 0;
  };

  // Slave-side local clock copy.
  struct alignas(64) SlaveClock {
    std::atomic<uint64_t> time{0};
  };

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  std::vector<MasterClock> master_clocks_;
  // One ring per master thread, created on first touch; slaves of variant v
  // consume with id v-1.
  LazyRingSet<Entry> rings_;
  // local_clocks_[v-1][c] for slave variant v.
  std::vector<std::vector<SlaveClock>> slave_clocks_;
};

class WallOfClocksAgent final : public SyncAgent {
 public:
  WallOfClocksAgent(WallOfClocksRuntime* runtime, AgentRole role, uint32_t variant_index);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "wall-of-clocks"; }

 private:
  WallOfClocksRuntime* const runtime_;
  const AgentRole role_;
  const uint32_t variant_index_;
  // Per-thread scratch carrying state from Before to After (one pending op
  // per thread; owned exclusively by that thread). Sized from
  // config.max_threads — a fixed 256-slot array here used to overrun
  // silently whenever the config allowed more threads.
  struct Pending {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };
  std::vector<Pending> pending_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_WALL_OF_CLOCKS_H_
