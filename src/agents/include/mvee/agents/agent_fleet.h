// AgentFleet: owns the shared runtime(s) of the replication strategy and
// hands out the per-variant agent handles. The MVEE creates one fleet per run
// and "injects" an agent into each variant (the paper's LD_PRELOAD injection,
// §4.5, collapses here to wiring the agent into the variant's thread-local
// sync context).
//
// Two shapes (AgentConfig::adaptive_agents, docs/DESIGN.md §11):
//  - Single-agent (adaptive_agents=false, or kind=kNull): one runtime of
//    `kind`, exactly the seed behavior. The MVEE_ADAPTIVE_AGENTS=0 baseline.
//  - Adaptive (default): all four runtimes are alive at once (lazy recording
//    rings keep that affordable) and every variant gets a dispatch agent
//    that routes each sync op through the VariableAgentMap to the runtime
//    its variable is assigned to. Routes are seeded from an
//    AgentAssignmentPlan (the analysis layer's verdicts), re-pointed at
//    runtime by a sampling controller thread (promotion on contention,
//    demotion on confinement) or explicitly via ForceMigrate. Unbound
//    variables ride the default route (= `kind`), so a program that binds
//    nothing behaves like the single-agent fleet modulo the dispatch gate.

#ifndef MVEE_AGENTS_AGENT_FLEET_H_
#define MVEE_AGENTS_AGENT_FLEET_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mvee/agents/partial_order.h"
#include "mvee/agents/per_variable.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/agents/total_order.h"
#include "mvee/agents/variable_map.h"
#include "mvee/agents/wall_of_clocks.h"

namespace mvee {

class AgentFleet {
 public:
  // `plan` (optional) seeds per-variable routes when adaptive; ignored (with
  // a nullptr default) for the single-agent shape. The plan is copied.
  AgentFleet(AgentKind kind, const AgentConfig& config, AgentControl control,
             const AgentAssignmentPlan* plan = nullptr);
  ~AgentFleet();

  AgentFleet(const AgentFleet&) = delete;
  AgentFleet& operator=(const AgentFleet&) = delete;

  // Creates the agent for `variant_index` (0 = master). For kNull the
  // process-wide NullAgent is returned via a non-owning wrapper.
  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): detach `variant`'s replay cursors from
  // every live runtime's recording rings, and drop it from migration drains.
  // No-op for kNull and for the master itself.
  void DetachVariant(uint32_t variant);

  AgentKind kind() const { return kind_; }
  bool adaptive() const { return map_ != nullptr; }

  // Aggregated recorder/replayer statistics summed over every live runtime
  // (zeros for kNull).
  AgentStatsSnapshot StatsSnapshot() const;

  // ---- Adaptive API (inert when !adaptive()) ----

  // Current route of `name`; the default route's kind for "" or names that
  // were never registered.
  AgentKind RouteOf(const std::string& name) const;

  // Moves `name`'s route ("" = the default route shared by all unbound
  // variables) to `to` through the epoch handshake. Returns true iff the
  // flip completed (false: unknown name, already there, timeout-abort, or
  // non-adaptive fleet).
  bool ForceMigrate(const std::string& name, AgentKind to);

  uint64_t MigrationsCompleted() const;
  uint64_t MigrationsAborted() const;
  // Distinct variables with their own (non-default) route entry.
  uint64_t BoundVariables() const;

  // Exposed for the no-allocation/lazy-rings tests.
  const VariableAgentMap* map() const { return map_.get(); }
  uint64_t RecordingRingsCreated() const;

 private:
  friend class DispatchAgent;

  // Registers (or finds) the route entry for `name` and binds `addr` to it
  // in `variant`'s address table. Called from DispatchAgent::BindVariable.
  void BindVariable(uint32_t variant, const char* name, const void* addr);

  SyncAgent* SubAgent(uint32_t variant, AgentKind kind) const;
  void ControllerLoop();

  const AgentKind kind_;
  AgentConfig config_;
  AgentControl control_;
  std::unique_ptr<TotalOrderRuntime> total_order_;
  std::unique_ptr<PartialOrderRuntime> partial_order_;
  std::unique_ptr<WallOfClocksRuntime> wall_of_clocks_;
  std::unique_ptr<PerVariableRuntime> per_variable_;
  // Adaptive state (null/empty for the single-agent shape).
  std::unique_ptr<VariableAgentMap> map_;
  // sub_agents_[variant][kind]: the per-variant handle of each runtime the
  // dispatch agent can route to (kNull slot stays empty — a kNull route
  // skips the sub-agent call entirely). Created once in CreateAgent.
  std::vector<std::array<std::unique_ptr<SyncAgent>, 5>> sub_agents_;
  std::thread controller_;
  std::atomic<bool> stop_controller_{false};
};

}  // namespace mvee

#endif  // MVEE_AGENTS_AGENT_FLEET_H_
