#include "mvee/agents/agent_fleet.h"

namespace mvee {

namespace {

// Non-owning shim so CreateAgent can return unique_ptr uniformly for kNull.
class NullAgentShim final : public SyncAgent {
 public:
  void BeforeSyncOp(uint32_t, const void*) override {}
  void AfterSyncOp(uint32_t, const void*) override {}
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "null"; }
};

}  // namespace

AgentFleet::AgentFleet(AgentKind kind, const AgentConfig& config, AgentControl control)
    : kind_(kind) {
  switch (kind_) {
    case AgentKind::kNull:
      break;
    case AgentKind::kTotalOrder:
      total_order_ = std::make_unique<TotalOrderRuntime>(config, control);
      break;
    case AgentKind::kPartialOrder:
      partial_order_ = std::make_unique<PartialOrderRuntime>(config, control);
      break;
    case AgentKind::kWallOfClocks:
      wall_of_clocks_ = std::make_unique<WallOfClocksRuntime>(config, control);
      break;
    case AgentKind::kPerVariableOrder:
      per_variable_ = std::make_unique<PerVariableRuntime>(config, control);
      break;
  }
}

std::unique_ptr<SyncAgent> AgentFleet::CreateAgent(uint32_t variant_index) {
  switch (kind_) {
    case AgentKind::kNull:
      return std::make_unique<NullAgentShim>();
    case AgentKind::kTotalOrder:
      return total_order_->CreateAgent(variant_index);
    case AgentKind::kPartialOrder:
      return partial_order_->CreateAgent(variant_index);
    case AgentKind::kWallOfClocks:
      return wall_of_clocks_->CreateAgent(variant_index);
    case AgentKind::kPerVariableOrder:
      return per_variable_->CreateAgent(variant_index);
  }
  return nullptr;
}

void AgentFleet::DetachVariant(uint32_t variant) {
  switch (kind_) {
    case AgentKind::kNull:
      break;
    case AgentKind::kTotalOrder:
      total_order_->DetachVariant(variant);
      break;
    case AgentKind::kPartialOrder:
      partial_order_->DetachVariant(variant);
      break;
    case AgentKind::kWallOfClocks:
      wall_of_clocks_->DetachVariant(variant);
      break;
    case AgentKind::kPerVariableOrder:
      per_variable_->DetachVariant(variant);
      break;
  }
}

const AgentStats* AgentFleet::stats() const {
  switch (kind_) {
    case AgentKind::kNull:
      return nullptr;
    case AgentKind::kTotalOrder:
      return &total_order_->stats();
    case AgentKind::kPartialOrder:
      return &partial_order_->stats();
    case AgentKind::kWallOfClocks:
      return &wall_of_clocks_->stats();
    case AgentKind::kPerVariableOrder:
      return &per_variable_->stats();
  }
  return nullptr;
}

}  // namespace mvee
