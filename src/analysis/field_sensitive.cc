#include "mvee/analysis/field_sensitive.h"

#include <deque>
#include <utility>

#include "mvee/analysis/constraints.h"

namespace mvee {

bool LocsMayAlias(const FieldLoc& a, const FieldLoc& b) {
  if (a.object != b.object) {
    return false;
  }
  return a.field == FieldLoc::kAnyField || b.field == FieldLoc::kAnyField ||
         a.field == b.field;
}

FieldSensitiveAnalysis::FieldSensitiveAnalysis(const MirModule& module) {
  stats_.solver = "field-sensitive";
  points_to_.resize(module.register_count);
  copy_targets_.resize(module.register_count);
  gep_targets_.resize(module.register_count);

  std::deque<int32_t> worklist;
  auto enqueue = [&](int32_t reg) { worklist.push_back(reg); };
  auto add_copy = [&](int32_t dst, int32_t src) {
    if (dst >= 0 && src >= 0 && dst != src &&
        static_cast<size_t>(dst) < points_to_.size() &&
        static_cast<size_t>(src) < points_to_.size()) {
      copy_targets_[src].push_back(dst);
      ++stats_.copy_edges;
      enqueue(src);
    }
  };

  // Indirect-call sites keyed by their function-pointer register; callees
  // bind on the fly as function objects show up in the fptr's solution
  // (same on-the-fly call graph as the Andersen engines, at field
  // granularity — the fptr points at the function object's base field).
  struct IndirectSite {
    const MirInst* inst;
    std::set<int32_t> resolved;  // Callee function indices already bound.
  };
  std::vector<IndirectSite> indirect_sites;
  std::vector<std::vector<size_t>> sites_on_reg(module.register_count);
  std::vector<std::pair<int32_t, int32_t>> call_copies;

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc:
          // &object and fresh allocations point at the object's base field.
          ++stats_.constraints;
          if (points_to_[inst.dst].insert({inst.object, 0}).second) {
            enqueue(inst.dst);
          }
          break;
        case MirOp::kMov:
          ++stats_.constraints;
          add_copy(inst.dst, inst.src);
          break;
        case MirOp::kGep:
          ++stats_.constraints;
          gep_targets_[inst.src].push_back({inst.dst, inst.field});
          enqueue(inst.src);
          break;
        case MirOp::kCall: {
          // Direct call: args/params and return/dst are plain copies.
          ++stats_.constraints;
          const int32_t callee = (inst.object >= 0 &&
                                  static_cast<size_t>(inst.object) < module.objects.size())
                                     ? module.objects[inst.object].function_index
                                     : -1;
          if (callee >= 0) {
            ++stats_.call_edges_resolved;
            call_copies.clear();
            AppendCallCopies(module, callee, inst.dst, inst.args, &call_copies);
            for (const auto& [dst, src] : call_copies) {
              add_copy(dst, src);
            }
          }
          break;
        }
        case MirOp::kIndirectCall:
          ++stats_.constraints;
          if (inst.ptr >= 0 && static_cast<size_t>(inst.ptr) < sites_on_reg.size()) {
            sites_on_reg[inst.ptr].push_back(indirect_sites.size());
            indirect_sites.push_back({&inst, {}});
            enqueue(inst.ptr);
          }
          break;
        default:
          break;
      }
    }
  }

  // Worklist fixpoint over copy, field-select, and call-resolution edges.
  while (!worklist.empty()) {
    ++stats_.solver_iterations;
    const int32_t reg = worklist.front();
    worklist.pop_front();

    for (int32_t target : copy_targets_[reg]) {
      bool changed = false;
      for (const FieldLoc& loc : points_to_[reg]) {
        changed |= points_to_[target].insert(loc).second;
      }
      if (changed) {
        worklist.push_back(target);
      }
    }

    for (size_t site_index : sites_on_reg[reg]) {
      IndirectSite& site = indirect_sites[site_index];
      for (const FieldLoc& loc : points_to_[reg]) {
        if (loc.object < 0 || static_cast<size_t>(loc.object) >= module.objects.size()) {
          continue;
        }
        const int32_t callee = module.objects[loc.object].function_index;
        if (callee < 0 || !site.resolved.insert(callee).second) {
          continue;
        }
        ++stats_.call_edges_resolved;
        call_copies.clear();
        AppendCallCopies(module, callee, site.inst->dst, site.inst->args, &call_copies);
        for (const auto& [dst, src] : call_copies) {
          add_copy(dst, src);
        }
      }
    }

    for (const GepEdge& edge : gep_targets_[reg]) {
      bool changed = false;
      for (const FieldLoc& loc : points_to_[reg]) {
        FieldLoc derived = loc;
        if (edge.field == FieldLoc::kAnyField || loc.field == FieldLoc::kAnyField) {
          // Opaque arithmetic, or arithmetic on an already-smeared pointer:
          // the result may address any field (the SVF conservatism §4.3.1
          // complains about).
          derived.field = FieldLoc::kAnyField;
        } else if (loc.field == 0) {
          derived.field = edge.field;  // Member select off the object base.
        } else {
          // Field-of-field (nested aggregates are not modelled): smear.
          derived.field = FieldLoc::kAnyField;
        }
        changed |= points_to_[edge.target].insert(derived).second;
      }
      if (changed) {
        worklist.push_back(edge.target);
      }
    }
  }

  for (const auto& set : points_to_) {
    stats_.points_to_bytes += sizeof(set) + set.size() * 64;
  }
}

const std::set<FieldLoc>& FieldSensitiveAnalysis::PointsTo(int32_t reg) const {
  if (reg < 0 || static_cast<size_t>(reg) >= points_to_.size()) {
    return empty_;
  }
  return points_to_[reg];
}

bool FieldSensitiveAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  for (const FieldLoc& a : PointsTo(reg_a)) {
    for (const FieldLoc& b : PointsTo(reg_b)) {
      if (LocsMayAlias(a, b)) {
        return true;
      }
    }
  }
  return false;
}

bool FieldSensitiveAnalysis::MayPointInto(int32_t reg,
                                          const std::set<FieldLoc>& locs) const {
  for (const FieldLoc& mine : PointsTo(reg)) {
    for (const FieldLoc& other : locs) {
      if (LocsMayAlias(mine, other)) {
        return true;
      }
    }
  }
  return false;
}

SyncOpReport IdentifySyncOpsFieldSensitive(const MirModule& module,
                                           const SyncOpAnalysisOptions& options) {
  SyncOpReport report;
  report.module_name = module.name;

  FieldSensitiveAnalysis points_to(module);
  report.stats = points_to.stats();
  std::set<FieldLoc> sync_locs;

  // Stage 1: type (i)/(ii) instructions seed the sync-variable locations at
  // field granularity.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLockRmw && inst.op != MirOp::kXchg) {
        continue;
      }
      auto& bucket = inst.op == MirOp::kLockRmw ? report.type_i : report.type_ii;
      bucket.push_back({function.name, i, inst.source_line, inst.op});
      for (const FieldLoc& loc : points_to.PointsTo(inst.ptr)) {
        sync_locs.insert(loc);
        report.sync_objects.insert(loc.object);
      }
    }
  }

  // Volatile extension: a volatile qualifier covers the whole object.
  if (options.treat_volatile_as_sync) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        sync_locs.insert({static_cast<int32_t>(obj), FieldLoc::kAnyField});
        report.sync_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  // Stage 2 at field granularity: a load/store of a *different field* of an
  // object whose refcount field is locked stays unmarked.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLoad && inst.op != MirOp::kStore) {
        continue;
      }
      if (points_to.MayPointInto(inst.ptr, sync_locs)) {
        report.type_iii.push_back({function.name, i, inst.source_line, inst.op});
      } else {
        ++report.unmarked_memops;
      }
    }
  }
  return report;
}

}  // namespace mvee
