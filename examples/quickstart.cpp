// Quickstart: run a small multi-threaded program as 2 lockstepped variants,
// then watch the MVEE catch a simulated memory-corruption divergence.
//
//   $ ./quickstart
//
// Walks through the core API: MveeOptions -> Mvee -> Run(program), the
// VariantEnv syscall surface, instrumented sync primitives, and the final
// MveeReport.

#include <cstdio>
#include <memory>
#include <string>

#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/log.h"

using namespace mvee;

int main() {
  SetLogLevel(LogLevel::kWarn);

  // --- Part 1: a benign multi-threaded program under the MVEE -------------
  std::printf("== part 1: 2 variants, wall-of-clocks agent, 4 worker threads ==\n");

  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;  // The paper's best agent.
  options.enable_aslr = true;                // Variants get distinct layouts.

  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    // Per-variant shared state: a counter guarded by an instrumented mutex.
    auto mutex = std::make_shared<Mutex>();
    auto counter = std::make_shared<int>(0);

    // Spawn four workers; each increments the shared counter 1000 times.
    std::vector<ThreadHandle> workers;
    for (int i = 0; i < 4; ++i) {
      workers.push_back(env.Spawn([mutex, counter](VariantEnv& worker_env) {
        for (int j = 0; j < 1000; ++j) {
          LockGuard<Mutex> guard(*mutex);
          ++*counter;
        }
        worker_env.Gettid();
      }));
    }
    for (auto handle : workers) {
      env.Join(handle);
    }

    // Every variant writes the result; the monitor compares the write
    // arguments in lockstep, so this doubles as a correctness check.
    const int64_t fd =
        env.Open("counter.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::to_string(*counter) + "\n");
    env.Close(fd);
  });

  std::printf("status: %s\n", status.ToString().c_str());
  std::printf("syscalls monitored: %lu, sync ops recorded: %lu (replayed: %lu)\n",
              (unsigned long)mvee.report().syscalls.total,
              (unsigned long)mvee.report().sync_ops_recorded,
              (unsigned long)mvee.report().sync_ops_replayed);

  // --- Part 2: divergence detection ----------------------------------------
  std::printf("\n== part 2: a 'compromised' variant diverges and is caught ==\n");

  Mvee attacked(options);
  const Status detect = attacked.Run([](VariantEnv& env) {
    // MveeSelfAware is the paper's self-awareness pseudo-syscall (§4.5).
    // A real exploit would succeed in only one diversified variant; here the
    // "payload" simply behaves differently in variant 0.
    const bool compromised = env.MveeSelfAware() == 0;
    const int64_t fd = env.Open("out", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, compromised ? std::string("malicious!") : std::string("benign data"));
    env.Close(fd);
  });
  std::printf("status: %s\n", detect.ToString().c_str());
  std::printf("(the MVEE killed all variants before the divergent write hit the kernel)\n");
  return detect.ok() ? 1 : 0;  // We EXPECT detection here.
}
