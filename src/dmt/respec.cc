// Respec-style epoch-speculative replay — see respec.h.

#include "mvee/dmt/respec.h"

#include <string>
#include <vector>

#include "mvee/util/hash.h"
#include "mvee/util/rng.h"

namespace mvee::dmt {

namespace {

constexpr int32_t kNoHolder = -1;

// Full simulator state, value-copyable so an epoch can be rolled back by
// restoring the pre-epoch snapshot.
struct SimState {
  std::vector<size_t> cursor;
  std::vector<uint64_t> local_time;
  std::vector<int32_t> holder;
  std::vector<size_t> lock_position;       // Next index into the per-var order.
  std::vector<uint64_t> flag_version;
  std::vector<size_t> flag_position;
  std::vector<std::vector<uint32_t>> acquirers;  // Per lock: tids so far.
  std::vector<FnvDigest> observers;              // Per thread.
  Schedule schedule;
  uint64_t ops_executed = 0;  // Sync ops (lock/unlock/flag) executed so far.

  explicit SimState(const Program& program)
      : cursor(program.thread_count(), 0),
        local_time(program.thread_count(), 0),
        holder(program.lock_count, kNoHolder),
        lock_position(program.lock_count, 0),
        flag_version(program.flag_count, 0),
        flag_position(program.flag_count, 0),
        acquirers(program.lock_count),
        observers(program.thread_count()) {}

  bool Finished(const Program& program) const {
    for (uint32_t t = 0; t < program.thread_count(); ++t) {
      if (cursor[t] < program.threads[t].size()) {
        return false;
      }
    }
    return true;
  }

  uint64_t TotalCycles() const {
    uint64_t max = 0;
    for (uint64_t time : local_time) {
      max = std::max(max, time);
    }
    return max;
  }

  // The end-of-epoch state digest. Logical: per-variable acquisition
  // sequences and flag versions — layout-independent. Concrete additionally
  // folds the variant's layout seed, as a register/memory-level comparison
  // of a diversified variant inevitably does.
  uint64_t Digest(EpochDigestModel model, uint64_t layout_seed) const {
    FnvDigest digest;
    for (const auto& order : acquirers) {
      for (uint32_t tid : order) {
        digest.UpdateValue(tid);
      }
      digest.UpdateValue(order.size());
    }
    for (uint64_t version : flag_version) {
      digest.UpdateValue(version);
    }
    if (model == EpochDigestModel::kConcrete) {
      digest.UpdateValue(SplitMix64(layout_seed));
    }
    return digest.Finish();
  }
};

// Executes one op of `tid` (must be eligible). Returns true if it was a
// sync op (counts toward the epoch budget).
bool ExecuteOp(const Program& program, SimState& state, uint32_t tid,
               const OpCosts& costs) {
  const Op& op = program.threads[tid][state.cursor[tid]];
  switch (op.kind) {
    case OpKind::kCompute:
      state.local_time[tid] += op.cost;
      ++state.cursor[tid];
      return false;
    case OpKind::kLock:
      state.holder[op.var] = static_cast<int32_t>(tid);
      ++state.lock_position[op.var];
      state.observers[tid].UpdateValue(op.var);
      state.observers[tid].UpdateValue(state.acquirers[op.var].size());
      state.acquirers[op.var].push_back(tid);
      state.local_time[tid] += costs.sync;
      state.schedule.sync_order.push_back({tid, op.var, OpKind::kLock});
      ++state.cursor[tid];
      ++state.ops_executed;
      return true;
    case OpKind::kUnlock:
      state.holder[op.var] = kNoHolder;
      state.local_time[tid] += costs.sync;
      state.schedule.sync_order.push_back({tid, op.var, OpKind::kUnlock});
      ++state.cursor[tid];
      ++state.ops_executed;
      return true;
    case OpKind::kSyscall:
      state.local_time[tid] += costs.syscall;
      state.schedule.syscall_order.push_back({tid, state.observers[tid].Finish()});
      ++state.cursor[tid];
      return false;
    case OpKind::kSetFlag:
      ++state.flag_version[op.var];
      ++state.flag_position[op.var];
      state.local_time[tid] += costs.sync;
      state.schedule.sync_order.push_back({tid, op.var, OpKind::kSetFlag});
      ++state.cursor[tid];
      ++state.ops_executed;
      return true;
    case OpKind::kWaitFlag:
      state.observers[tid].UpdateValue(~static_cast<uint64_t>(op.var));
      state.observers[tid].UpdateValue(state.flag_version[op.var]);
      state.local_time[tid] += costs.sync;
      state.schedule.sync_order.push_back({tid, op.var, OpKind::kWaitFlag});
      ++state.cursor[tid];
      ++state.ops_executed;
      return true;
  }
  return false;
}

// May `tid` run its next op under per-variable-order enforcement?
bool Eligible(const Program& program, const SimState& state,
              const std::vector<std::vector<uint32_t>>& lock_order,
              const std::vector<std::vector<uint32_t>>& flag_order, uint32_t tid) {
  if (state.cursor[tid] >= program.threads[tid].size()) {
    return false;
  }
  const Op& op = program.threads[tid][state.cursor[tid]];
  switch (op.kind) {
    case OpKind::kLock: {
      if (state.holder[op.var] != kNoHolder) {
        return false;
      }
      const auto& order = lock_order[op.var];
      const size_t position = state.lock_position[op.var];
      return position < order.size() && order[position] == tid;
    }
    case OpKind::kSetFlag: {
      const auto& order = flag_order[op.var];
      const size_t position = state.flag_position[op.var];
      return position < order.size() && order[position] == tid;
    }
    case OpKind::kWaitFlag:
      return state.flag_version[op.var] != 0;
    default:
      return true;
  }
}

}  // namespace

RespecReport RunRespecSlave(const Program& program, const Schedule& master,
                            uint64_t master_layout_seed, const RespecConfig& config) {
  RespecReport report;
  Rng rng(SplitMix64(config.scheduler_seed ^ 0x4e59ec0ULL));

  // Per-variable recorded orders (the enforcement skeleton) and the global
  // recorded sync order (the speculation hints + strict re-execution path).
  std::vector<std::vector<uint32_t>> lock_order(program.lock_count);
  std::vector<std::vector<uint32_t>> flag_order(program.flag_count);
  for (const auto& event : master.sync_order) {
    if (event.kind == OpKind::kLock) {
      lock_order[event.var].push_back(event.tid);
    } else if (event.kind == OpKind::kSetFlag) {
      flag_order[event.var].push_back(event.tid);
    }
  }

  // Master logical digests at each epoch boundary: replay the master's own
  // recorded order through a state machine.
  std::vector<uint64_t> master_digests;
  {
    SimState master_state(program);
    uint64_t boundary = config.epoch_ops;
    // Strict pass over the master's global order.
    for (const auto& event : master.sync_order) {
      // Run the owning thread up to and through this sync op.
      while (!ExecuteOp(program, master_state, event.tid, config.costs)) {
      }
      if (master_state.ops_executed >= boundary) {
        master_digests.push_back(
            master_state.Digest(config.digest_model, master_layout_seed));
        boundary += config.epoch_ops;
      }
    }
    // Final partial epoch.
    master_digests.push_back(master_state.Digest(config.digest_model, master_layout_seed));
  }

  SimState state(program);
  uint64_t master_cursor = 0;  // Position in master.sync_order for hints/strict mode.

  auto run_strict_epoch = [&](SimState& strict_state, uint64_t from, uint64_t budget) {
    uint64_t consumed = 0;
    for (uint64_t i = from; i < master.sync_order.size() && consumed < budget; ++i) {
      const SyncEvent& event = master.sync_order[i];
      while (!ExecuteOp(program, strict_state, event.tid, config.costs)) {
      }
      ++consumed;
    }
    // Drain trailing non-sync ops (compute/syscalls) of finished threads at
    // the end of the program.
    if (from + budget >= master.sync_order.size()) {
      for (uint32_t t = 0; t < program.thread_count(); ++t) {
        while (strict_state.cursor[t] < program.threads[t].size() &&
               program.threads[t][strict_state.cursor[t]].kind != OpKind::kLock &&
               program.threads[t][strict_state.cursor[t]].kind != OpKind::kUnlock &&
               program.threads[t][strict_state.cursor[t]].kind != OpKind::kSetFlag &&
               program.threads[t][strict_state.cursor[t]].kind != OpKind::kWaitFlag) {
          ExecuteOp(program, strict_state, t, config.costs);
        }
      }
    }
  };

  while (!state.Finished(program)) {
    const SimState snapshot = state;  // Rollback point.
    const uint64_t epoch_start_ops = state.ops_executed;
    const uint64_t epoch_budget =
        std::min<uint64_t>(config.epoch_ops,
                           master.sync_order.size() - std::min<uint64_t>(
                                                          master.sync_order.size(),
                                                          epoch_start_ops));

    // --- Speculative pass: per-variable enforcement + probabilistic hints.
    bool progressed = true;
    while (state.ops_executed - epoch_start_ops < std::max<uint64_t>(epoch_budget, 1) &&
           !state.Finished(program) && progressed) {
      // Prefer the master's next recorded thread with hint_fidelity.
      uint32_t pick = UINT32_MAX;
      const uint64_t next_master = epoch_start_ops + (state.ops_executed - epoch_start_ops);
      if (next_master < master.sync_order.size() && rng.NextBool(config.hint_fidelity)) {
        const uint32_t hinted = master.sync_order[next_master].tid;
        if (Eligible(program, state, lock_order, flag_order, hinted)) {
          pick = hinted;
        }
      }
      if (pick == UINT32_MAX) {
        uint32_t eligible[256];
        uint32_t count = 0;
        for (uint32_t t = 0; t < program.thread_count(); ++t) {
          if (Eligible(program, state, lock_order, flag_order, t)) {
            eligible[count++] = t;
          }
        }
        if (count == 0) {
          progressed = false;
          break;
        }
        pick = eligible[rng.NextBelow(count)];
      }
      // Run the picked thread through its next sync op (or to completion of
      // local ops if it finishes first).
      while (state.cursor[pick] < program.threads[pick].size()) {
        if (ExecuteOp(program, state, pick, config.costs)) {
          break;
        }
      }
    }

    // --- Epoch check.
    ++report.epochs;
    const size_t epoch_index =
        std::min<size_t>(report.epochs - 1, master_digests.size() - 1);
    const uint64_t expected = master_digests[epoch_index];
    const uint64_t actual = state.Digest(config.digest_model, config.layout_seed);
    if (actual == expected) {
      master_cursor = state.ops_executed;
      continue;  // Commit.
    }

    // --- Rollback + strict re-execution.
    ++report.rollbacks;
    report.wasted_cycles += state.TotalCycles() - snapshot.TotalCycles();
    bool repaired = false;
    for (uint32_t attempt = 0; attempt < config.max_retries && !repaired; ++attempt) {
      state = snapshot;
      run_strict_epoch(state, master_cursor, std::max<uint64_t>(epoch_budget, 1));
      repaired = state.Digest(config.digest_model, config.layout_seed) == expected;
    }
    if (!repaired) {
      // Strict replay reproduced the master's logical schedule exactly and
      // the digests STILL differ: the mismatch is diversity, not
      // divergence, and the epoch check cannot tell them apart (§6).
      state.schedule.completed = false;
      state.schedule.failure =
          "respec: epoch state check cannot distinguish divergence from "
          "diversity (register-level comparison of diversified variants, §6)";
      report.schedule = std::move(state.schedule);
      return report;
    }
    master_cursor = state.ops_executed;
  }

  report.schedule = std::move(state.schedule);
  report.schedule.makespan = state.TotalCycles();
  return report;
}

}  // namespace mvee::dmt
