// Per-process virtual address-space accounting.
//
// The MVEE runs variants with simulated address-space layout diversity: each
// variant's heap and mapping area start at a different randomized base. The
// address space tracks brk and mmap regions so sys_brk / sys_mmap /
// sys_mprotect / sys_munmap have faithful semantics (including failure modes
// the monitor must see identically across variants), while returned addresses
// deliberately differ per variant — exactly the situation the replication
// agents must tolerate (paper §4.5.1).

#ifndef MVEE_VKERNEL_MEMORY_H_
#define MVEE_VKERNEL_MEMORY_H_

#include <cstdint>
#include <map>
#include <mutex>

namespace mvee {

// Protection bits for mmap/mprotect.
struct VProt {
  static constexpr int64_t kNone = 0;
  static constexpr int64_t kRead = 1 << 0;
  static constexpr int64_t kWrite = 1 << 1;
  static constexpr int64_t kExec = 1 << 2;
};

class AddressSpace {
 public:
  static constexpr uint64_t kPageSize = 4096;

  // `heap_base` / `map_base` come from the variant's diversity layout.
  AddressSpace(uint64_t heap_base, uint64_t map_base);

  // sys_brk semantics: increment==0 queries the current break; otherwise the
  // break moves by `increment` (may be negative) and the *new* break is
  // returned. Returns -ENOMEM if the break would move below the heap base or
  // past the mapping area.
  int64_t Brk(int64_t increment, uint64_t* new_break);

  // Allocates a page-aligned region of `length` bytes; returns its address
  // via `addr` or -ENOMEM / -EINVAL.
  int64_t Mmap(uint64_t length, int64_t prot, uint64_t* addr);

  // Unmaps an exact region previously returned by Mmap. -EINVAL otherwise.
  int64_t Munmap(uint64_t addr, uint64_t length);

  // Changes protection of an exact mapped region. -ENOMEM if not mapped.
  int64_t Mprotect(uint64_t addr, uint64_t length, int64_t prot);

  // Introspection for tests.
  uint64_t current_break() const;
  size_t MappingCount() const;
  int64_t ProtOf(uint64_t addr) const;  // -1 if unmapped.
  uint64_t BytesMapped() const;

 private:
  static uint64_t PageAlignUp(uint64_t v) { return (v + kPageSize - 1) & ~(kPageSize - 1); }

  struct Region {
    uint64_t length = 0;
    int64_t prot = 0;
  };

  mutable std::mutex mutex_;
  const uint64_t heap_base_;
  const uint64_t map_base_;
  uint64_t brk_;
  uint64_t map_cursor_;
  std::map<uint64_t, Region> regions_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_MEMORY_H_
