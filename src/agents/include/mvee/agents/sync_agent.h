// Synchronization agents (paper §4.5).
//
// An agent implements the before_sync_op / after_sync_op pair that the
// compiler-side instrumentation inserts around every sync op (Listing 3).
// The *master* variant's agent records the order in which sync ops execute
// into shared sync buffers; each *slave* variant's agent replays that order,
// stalling slave threads whose next op would violate it (§3.2, Figure 2).
//
// Protocol contract for all agents:
//   BeforeSyncOp(tid, addr);
//   <the atomic instruction itself>
//   AfterSyncOp(tid, addr);
//
// Master agents make (record + execute) atomic per ordering domain by holding
// an instrumentation lock across the op: a per-clock lock for wall-of-clocks,
// and — with AgentConfig::sharded_recording on — a per-sync-variable shard
// lock plus a global ticket counter for the total-order and partial-order
// agents (docs/DESIGN.md §8). The sharded_recording=false baseline restores
// the seed's single global lock for TO/PO (the source of their
// cache-contention problems, §4.5) so both are measurable in one binary.
//
// Agents never allocate memory on the hot path (§3.3): all buffers and clock
// pools are preallocated when the shared runtime is created.

#ifndef MVEE_AGENTS_SYNC_AGENT_H_
#define MVEE_AGENTS_SYNC_AGENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

namespace mvee {

// Role assigned at attach time. The paper's agents learn this through the
// "self-awareness" pseudo-syscall; here the MVEE wires it directly and also
// exposes the pseudo-syscall to programs (§4.5).
enum class AgentRole : uint8_t {
  kMaster = 0,
  kSlave,
};

// Point-in-time aggregate of the hot-path counters.
struct AgentStatsSnapshot {
  uint64_t ops_recorded = 0;
  uint64_t ops_replayed = 0;
  uint64_t record_stalls = 0;     // producer blocked on full buffer
  uint64_t replay_stalls = 0;     // slave blocked waiting its turn
  uint64_t record_lock_spins = 0; // master spun on the record lock (global
                                  // master lock, or a shard lock when
                                  // sharded_recording is on)
};

// Hot-path statistics, sharded per (variant, thread). A single shared
// counter struct would put a read-write cache line under every sync op of
// every variant — the same ping-pong §4.5 blames for the simple agents'
// slowdowns — so each thread bumps a cache-line-padded shard selected by its
// variant index and tid, and readers sum the shards. The variant index is
// part of the key because thread t exists in *every* variant and the
// master's record bump races the slaves' replay bumps for the same tid by
// construction. Colliding (variant, tid) pairs mod kShards share a shard
// (hence the relaxed atomics); totals are approximate under concurrency,
// exact after quiescence.
class AgentStats {
 public:
  static constexpr size_t kShards = 64;  // power of two

  struct alignas(64) Shard {
    std::atomic<uint64_t> ops_recorded{0};
    std::atomic<uint64_t> ops_replayed{0};
    std::atomic<uint64_t> record_stalls{0};
    std::atomic<uint64_t> replay_stalls{0};
    std::atomic<uint64_t> record_lock_spins{0};
  };

  // Variants 0..3 with tids 0..15 map collision-free onto the 64 shards —
  // the common configurations of Table 1.
  Shard& shard(uint32_t variant, uint32_t tid) {
    return shards_[((tid << 2) | (variant & 3)) & (kShards - 1)];
  }

  AgentStatsSnapshot Aggregate() const {
    AgentStatsSnapshot total;
    for (const Shard& shard : shards_) {
      total.ops_recorded += shard.ops_recorded.load(std::memory_order_relaxed);
      total.ops_replayed += shard.ops_replayed.load(std::memory_order_relaxed);
      total.record_stalls += shard.record_stalls.load(std::memory_order_relaxed);
      total.replay_stalls += shard.replay_stalls.load(std::memory_order_relaxed);
      total.record_lock_spins += shard.record_lock_spins.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  Shard shards_[kShards];
};

// Default for AgentConfig::sharded_recording: on, unless the environment
// forces the global-lock baseline (MVEE_SHARDED_RECORDING=0). The override
// lets whole test suites sweep the baseline without edits, mirroring
// MVEE_SHARDED_VKERNEL / MVEE_WAITFREE_RENDEZVOUS; explicit assignments in
// code always win.
inline bool DefaultShardedRecording() {
  const char* env = std::getenv("MVEE_SHARDED_RECORDING");
  return env == nullptr || env[0] != '0';
}

// Default for AgentConfig::adaptive_agents: on, unless the environment forces
// the single-agent baseline (MVEE_ADAPTIVE_AGENTS=0). Same sweep contract as
// MVEE_SHARDED_RECORDING: whole test suites can run either mode without
// edits; explicit assignments in code always win.
inline bool DefaultAdaptiveAgents() {
  const char* env = std::getenv("MVEE_ADAPTIVE_AGENTS");
  return env == nullptr || env[0] != '0';
}

// Shared configuration for agent runtimes.
struct AgentConfig {
  uint32_t max_threads = 64;           // Max logical threads per variant.
  uint32_t num_variants = 2;           // Master + slaves.
  size_t buffer_capacity = 1 << 16;    // Entries per sync buffer (power of 2).
  size_t clock_count = 4096;           // Wall-of-clocks wall size.
  size_t po_window = 1 << 12;          // Partial-order lookahead window.
  // Disruptor-style cached gating cursors in the sync buffers. Off restores
  // the rescan-every-op ring for A/B measurement (bench_ring_throughput,
  // bench_table3_syncops); production runs leave it on.
  bool cached_ring_cursors = true;
  // TO/PO master recording path (docs/DESIGN.md §8): per-thread recording
  // rings whose entries carry a global sequence drawn from one fetch_add
  // ticket counter inside a per-sync-variable shard lock — no global lock on
  // the record path. Off restores the seed's single global master lock and
  // one shared ring so bench_table3_syncops / bench_ablation_agents can
  // sweep both in-run. Default on; MVEE_SHARDED_RECORDING=0 flips the
  // default for whole-suite baseline sweeps.
  bool sharded_recording = DefaultShardedRecording();
  // Replay stall deadline; exceeded => the runtime calls on_stall and the
  // waiting thread unwinds with VariantKilled. Detects uninstrumented sync
  // ops (the nginx scenario of §5.5).
  std::chrono::milliseconds replay_deadline{10000};
  // Number of per-sync-variable record shard locks for the TO/PO sharded
  // recording path (docs/DESIGN.md §8). 0 = auto: scale with max_threads
  // (8 shards per thread, floor 512 — the PR 5 constant — so the default
  // config is unchanged). Rounded up to a power of two, clamped to
  // [64, 65536]. Exposed for the shard-collision ablation.
  size_t record_shard_count = 0;
  // Contention-adaptive per-variable dispatch (docs/DESIGN.md §11): the
  // fleet instantiates every agent runtime, routes each *registered* sync
  // variable (SyncAgent::BindVariable) to its assigned runtime through the
  // VariableAgentMap, and migrates routes at runtime quiesce points.
  // Unregistered variables ride the default route (the fleet's configured
  // AgentKind), so a program that never binds anything behaves exactly like
  // the single-agent baseline modulo the dispatch gate. Off restores the
  // seed's one-runtime fleet; MVEE_ADAPTIVE_AGENTS=0 flips the default for
  // whole-suite baseline sweeps (PR 2-7 pattern).
  bool adaptive_agents = DefaultAdaptiveAgents();
  // Sample interval of the route controller that promotes/demotes bound
  // variables from their observed contention. 0 disables the controller;
  // plan seeding and AgentFleet::ForceMigrate still work.
  uint32_t migrate_interval_ms = 50;
  // Ops a bound variable must record within one controller interval before
  // a promotion/demotion is considered (keeps cold variables parked).
  uint64_t migrate_min_ops = 1 << 16;
  // Deadline for one migration attempt (master quiesce + slave drain).
  // Expiry aborts the attempt and restores the old route — always safe
  // before the flip, because nothing was recorded under the new agent.
  std::chrono::milliseconds migrate_timeout{1000};
};

// Clamps a config to the invariants the runtimes rely on, instead of letting
// a free 32-bit knob index fixed arrays out of bounds (max_threads used to
// silently overrun the agents' pending_[256] scratch). Every runtime
// constructor passes its config through here.
inline AgentConfig ValidatedAgentConfig(AgentConfig config) {
  if (config.max_threads == 0) {
    config.max_threads = 1;
  }
  if (config.num_variants == 0) {
    config.num_variants = 1;
  }
  // BroadcastRing supports kMaxConsumers = 15 slave cursors per ring.
  if (config.num_variants > 16) {
    config.num_variants = 16;
  }
  // Round buffer_capacity up to a power of two >= 2 (ring invariant).
  if (config.buffer_capacity < 2) {
    config.buffer_capacity = 2;
  }
  size_t pow2 = 2;
  while (pow2 < config.buffer_capacity && pow2 < (size_t{1} << 31)) {
    pow2 <<= 1;
  }
  config.buffer_capacity = pow2;
  if (config.clock_count == 0) {
    config.clock_count = 1;
  }
  if (config.po_window == 0) {
    config.po_window = 1;
  }
  // Record shard count: auto-scale from max_threads, then round to a power
  // of two in [64, 65536].
  if (config.record_shard_count == 0) {
    const size_t scaled = static_cast<size_t>(config.max_threads) * 8;
    config.record_shard_count = scaled < 512 ? 512 : scaled;
  }
  if (config.record_shard_count < 64) {
    config.record_shard_count = 64;
  }
  if (config.record_shard_count > (size_t{1} << 16)) {
    config.record_shard_count = size_t{1} << 16;
  }
  size_t shard_pow2 = 64;
  while (shard_pow2 < config.record_shard_count) {
    shard_pow2 <<= 1;
  }
  config.record_shard_count = shard_pow2;
  return config;
}

// Per-variant agent handle.
class SyncAgent {
 public:
  virtual ~SyncAgent() = default;

  // Called immediately before the sync op on `addr` executes in thread `tid`.
  virtual void BeforeSyncOp(uint32_t tid, const void* addr) = 0;
  // Called immediately after the sync op completed.
  virtual void AfterSyncOp(uint32_t tid, const void* addr) = 0;

  virtual AgentRole role() const = 0;
  virtual const char* name() const = 0;

  // Registers `addr` as sync variable `name` for this variant. Only the
  // adaptive dispatch agent (docs/DESIGN.md §11) overrides this: addresses
  // differ across variants under ASLR/DCL, so per-variable routing must be
  // keyed by a variant-invariant identity, and the program supplies it by
  // binding each routed variable — in every variant, before the variable's
  // first sync op — at the same program point (the paper's registration-at-
  // allocation idiom). Unbound variables take the fleet's default route, so
  // this is a no-op everywhere else.
  virtual void BindVariable(const char* name, const void* addr) {
    (void)name;
    (void)addr;
  }
};

// Abort/stall plumbing shared by the agent runtimes. The monitor installs
// the abort flag (tripped on divergence), the stall callback (reports a
// divergence itself), and the live-variant mask (excised variants' replay
// threads unwind instead of waiting on entries that will never come —
// docs/DESIGN.md §9).
struct AgentControl {
  const std::atomic<bool>* abort_flag = nullptr;
  const std::atomic<uint32_t>* live_mask = nullptr;
  std::function<void(const std::string&)> on_stall;

  bool aborted() const {
    return abort_flag != nullptr && abort_flag->load(std::memory_order_acquire);
  }

  bool variant_dead(uint32_t variant) const {
    return live_mask != nullptr &&
           (live_mask->load(std::memory_order_acquire) & (1u << variant)) == 0;
  }

  // Replay-loop exit predicate: global abort OR this variant excised.
  bool should_unwind(uint32_t variant) const {
    return aborted() || variant_dead(variant);
  }
};

// Guard for the agents' tid-indexed hot-path state (pending scratch,
// per-thread rings): logical tids are allocated by the monitor from an
// unbounded counter, so a program that spawns more threads than
// AgentConfig::max_threads would otherwise index past every per-thread
// vector. Reported through on_stall (the run ends as a configuration
// failure, not heap corruption). Returns normally iff tid is in range.
// Implemented in sync_agent.cc to keep VariantKilled out of this header.
void CheckTidBound(uint32_t tid, uint32_t max_threads, const AgentControl& control,
                   const char* agent_name);

// A no-op agent: used for native baselines and as the "weak symbol" fallback
// the paper describes in §4.4 (program calls the agent if present, no-ops
// otherwise).
class NullAgent final : public SyncAgent {
 public:
  void BeforeSyncOp(uint32_t, const void*) override {}
  void AfterSyncOp(uint32_t, const void*) override {}
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "null"; }

  // Process-wide instance for uninstrumented / native execution.
  static NullAgent* Instance();
};

// Which replication strategy an MVEE uses.
enum class AgentKind : uint8_t {
  kNull = 0,
  kTotalOrder,
  kPartialOrder,
  kWallOfClocks,
  // Ablation: WoC's collision-free limit — one private clock per sync
  // variable from a preallocated lock-free address table (§4.5 trade-off).
  kPerVariableOrder,
};

const char* AgentKindName(AgentKind kind);

}  // namespace mvee

#endif  // MVEE_AGENTS_SYNC_AGENT_H_
