// Unit tests for src/util: RNG determinism, hashing, the broadcast ring, and
// the statistics helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "mvee/util/hash.h"
#include "mvee/util/rng.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/util/stats.h"
#include "mvee/util/status.h"

namespace mvee {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HashTest, FnvMatchesKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(FnvHashBytes("", 0), 0xcbf29ce484222325ULL);
  // Different strings hash differently.
  EXPECT_NE(FnvHash("hello"), FnvHash("world"));
}

TEST(HashTest, DigestMatchesOneShot) {
  FnvDigest digest;
  digest.Update("he", 2);
  digest.Update("llo", 3);
  EXPECT_EQ(digest.Finish(), FnvHash("hello"));
}

TEST(HashTest, ClockAddressHashBucketsAdjacent32BitWords) {
  // Two 32-bit variables in the same 64-bit line map to the same clock
  // (paper §4.5: a single CMPXCHG8B could modify both).
  const uint64_t base = 0x7f0000001000ULL;
  EXPECT_EQ(ClockAddressHash(base), ClockAddressHash(base + 4));
  EXPECT_NE(ClockAddressHash(base), ClockAddressHash(base + 8));
}

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status(StatusCode::kDivergence, "write mismatch");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
  EXPECT_EQ(status.ToString(), "divergence: write mismatch");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status(StatusCode::kNotFound, "x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(BroadcastRingTest, SingleConsumerFifo) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  for (int i = 0; i < 5; ++i) {
    ring.Push(i);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.CanPop(consumer));
    EXPECT_EQ(ring.Pop(consumer), i);
  }
  EXPECT_FALSE(ring.CanPop(consumer));
}

TEST(BroadcastRingTest, TryPushFailsWhenFull) {
  BroadcastRing<int> ring(4);
  const size_t consumer = ring.RegisterConsumer();
  (void)consumer;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
}

TEST(BroadcastRingTest, EachConsumerSeesFullStream) {
  BroadcastRing<int> ring(16);
  const size_t c0 = ring.RegisterConsumer();
  const size_t c1 = ring.RegisterConsumer();
  for (int i = 0; i < 10; ++i) {
    ring.Push(i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.Pop(c0), i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.Pop(c1), i);
  }
}

TEST(BroadcastRingTest, ProducerBoundedBySlowestConsumer) {
  BroadcastRing<int> ring(4);
  const size_t fast = ring.RegisterConsumer();
  const size_t slow = ring.RegisterConsumer();
  for (int i = 0; i < 4; ++i) {
    ring.Push(i);
  }
  // Fast consumer drains; slow consumer has not moved: still full.
  for (int i = 0; i < 4; ++i) {
    ring.Pop(fast);
  }
  EXPECT_FALSE(ring.TryPush(100));
  ring.Pop(slow);
  EXPECT_TRUE(ring.TryPush(100));
}

TEST(BroadcastRingTest, PeekDoesNotConsume) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  ring.Push(7);
  ring.Push(8);
  int value = 0;
  EXPECT_TRUE(ring.Peek(consumer, 0, &value));
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(ring.Peek(consumer, 1, &value));
  EXPECT_EQ(value, 8);
  EXPECT_FALSE(ring.Peek(consumer, 2, &value));
  ring.Advance(consumer);
  EXPECT_TRUE(ring.Peek(consumer, 0, &value));
  EXPECT_EQ(value, 8);
}

TEST(BroadcastRingTest, TryReadAbsoluteSequence) {
  BroadcastRing<int> ring(8);
  ring.RegisterConsumer();
  ring.Push(10);
  ring.Push(11);
  int value = 0;
  EXPECT_TRUE(ring.TryRead(0, &value));
  EXPECT_EQ(value, 10);
  EXPECT_TRUE(ring.TryRead(1, &value));
  EXPECT_EQ(value, 11);
  EXPECT_FALSE(ring.TryRead(2, &value));
}

TEST(BroadcastRingTest, ConcurrentProducerConsumer) {
  BroadcastRing<uint64_t> ring(64);
  const size_t consumer = ring.RegisterConsumer();
  constexpr uint64_t kCount = 20000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      ring.Push(i);
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    const uint64_t got = ring.Pop(consumer);
    ASSERT_EQ(got, expected);
    ++expected;
  }
  producer.join();
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
  EXPECT_NEAR(stats.StdDev(), 1.2909944, 1e-6);
  EXPECT_NEAR(stats.GeoMean(), 2.2133638, 1e-6);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(stats.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(stats.Percentile(0), 1.0, 0.01);
  EXPECT_NEAR(stats.Percentile(100), 100.0, 0.01);
}

TEST(LatencyHistogramTest, RecordsAndApproximates) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.Record(1000);  // ~2^10
  }
  EXPECT_EQ(histogram.TotalCount(), 100u);
  const uint64_t p50 = histogram.ApproxPercentile(50);
  EXPECT_GE(p50, 512u);
  EXPECT_LE(p50, 2048u);
}

}  // namespace
}  // namespace mvee
