// Figure 4, executed: the paper's worked example of the three replication
// strategies distilled into deterministic tests.
//
// Master history (recorded before any slave thread runs):
//   m1: enter_sec(&A), leave_sec(&A)      (thread 0, lock A)
//   m2: enter_sec(&B), leave_sec(&B)      (thread 1, lock B)
// Slave schedule: s2 (thread 1) reaches its critical section on B first,
// while s1 (thread 0) has not executed anything yet.
//
//   Figure 4(a) total-order:   s2 MUST STALL — the global buffer's front
//                              entry names thread 0 (the red bar).
//   Figure 4(b) partial-order: s2 proceeds — its op depends on no earlier
//                              op touching B.
//   Figure 4(c) wall-of-clocks: s2 proceeds — clock cB is at its recorded
//                              time; buffers are per-thread anyway.
//
// The tests run the literal scenario: record the master history, then run
// only s2 and observe whether it completes or hits the replay deadline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mvee/agents/agent_fleet.h"
#include "mvee/agents/context.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/variant_killed.h"

namespace mvee {
namespace {

struct Figure4Harness {
  explicit Figure4Harness(AgentKind kind, std::chrono::milliseconds deadline,
                          size_t po_window = 1 << 12, bool sharded_recording = false) {
    config.num_variants = 2;
    config.max_threads = 2;
    config.replay_deadline = deadline;
    config.po_window = po_window;
    // Default-pin the paper's literal Figure 4 mechanics: the TO "front
    // names thread 0" stall and the po_window lookahead are semantics of the
    // global-buffer baseline. The sharded recording path replaces the
    // mechanism (per-thread fronts + a sequence ratchet; lookahead bounded
    // by ring capacity, not po_window — docs/DESIGN.md §8); the tests that
    // assert mechanism-independent outcomes also run with it on.
    config.sharded_recording = sharded_recording;
    control.abort_flag = &abort_flag;
    control.on_stall = [this](const std::string&) { stalled.store(true); };
    fleet = std::make_unique<AgentFleet>(kind, config, control);
    master = fleet->CreateAgent(0);
    slave = fleet->CreateAgent(1);
  }

  // Records the master history of Figure 4: thread 0 locks/unlocks A, then
  // thread 1 locks/unlocks B. (Each Lock/Unlock is one sync op on the lock
  // word — enter_sec/leave_sec in the figure.)
  void RecordMasterHistory() {
    SyncContext context0{master.get(), nullptr, 0};
    {
      ScopedSyncContext scoped(&context0);
      master_lock_a.Lock();
      master_lock_a.Unlock();
    }
    SyncContext context1{master.get(), nullptr, 1};
    {
      ScopedSyncContext scoped(&context1);
      master_lock_b.Lock();
      master_lock_b.Unlock();
    }
  }

  // Runs only slave thread s2 (logical thread 1) attempting its critical
  // section on B. Returns true if it completed, false if it was stalled
  // until the replay deadline.
  bool RunSlaveS2Alone() {
    std::atomic<bool> completed{false};
    std::thread s2([&] {
      SyncContext context{slave.get(), nullptr, 1};
      ScopedSyncContext scoped(&context);
      try {
        slave_lock_b.Lock();
        slave_lock_b.Unlock();
        completed.store(true);
      } catch (const VariantKilled&) {
      }
    });
    s2.join();
    return completed.load();
  }

  // Afterwards, s1 replays thread 0's history (needed to drain buffers for
  // the strategies where s2 already completed).
  void RunSlaveS1() {
    std::thread s1([&] {
      SyncContext context{slave.get(), nullptr, 0};
      ScopedSyncContext scoped(&context);
      try {
        slave_lock_a.Lock();
        slave_lock_a.Unlock();
      } catch (const VariantKilled&) {
      }
    });
    s1.join();
  }

  AgentConfig config;
  std::atomic<bool> abort_flag{false};
  std::atomic<bool> stalled{false};
  AgentControl control;
  std::unique_ptr<AgentFleet> fleet;
  std::unique_ptr<SyncAgent> master;
  std::unique_ptr<SyncAgent> slave;
  // Distinct lock objects per variant: the agents must not rely on shared
  // addresses (§4.5.1). Each lock gets its own cache line — two adjacent
  // 32-bit lock words share an 8-byte clock bucket by design (the CMPXCHG8B
  // rationale, §4.5), which would merge cA and cB and reintroduce the very
  // serialization this test asserts away.
  struct alignas(64) PaddedLock {
    SpinLock lock;
    void Lock() { lock.Lock(); }
    void Unlock() { lock.Unlock(); }
  };
  PaddedLock master_lock_a, master_lock_b;
  PaddedLock slave_lock_a, slave_lock_b;
};

TEST(Figure4Test, TotalOrderStallsUnrelatedSection) {
  // Short deadline: the expected outcome IS the stall (the figure's red bar);
  // waiting longer would only slow the test down.
  Figure4Harness harness(AgentKind::kTotalOrder, std::chrono::milliseconds(300));
  harness.RecordMasterHistory();
  EXPECT_FALSE(harness.RunSlaveS2Alone())
      << "TO replay must not let s2 run before s1 consumed thread 0's entries";
  EXPECT_TRUE(harness.stalled.load());
}

// Same red bar under sharded recording: the sequence ratchet only admits the
// globally next ticket, so s2 still may not run before s1 consumed thread
// 0's entries — TO's unnecessary stall is a property of the total order, not
// of the global buffer that used to record it.
TEST(Figure4Test, TotalOrderStallsUnrelatedSectionShardedRecording) {
  Figure4Harness harness(AgentKind::kTotalOrder, std::chrono::milliseconds(300),
                         /*po_window=*/1 << 12, /*sharded_recording=*/true);
  harness.RecordMasterHistory();
  EXPECT_FALSE(harness.RunSlaveS2Alone())
      << "sharded TO replay must not let s2 run before thread 0's sequences";
  EXPECT_TRUE(harness.stalled.load());
}

TEST(Figure4Test, PartialOrderLetsIndependentSectionProceed) {
  Figure4Harness harness(AgentKind::kPartialOrder, std::chrono::milliseconds(20000));
  harness.RecordMasterHistory();
  EXPECT_TRUE(harness.RunSlaveS2Alone())
      << "PO replay orders only dependent ops; s2's section on B is independent";
  EXPECT_FALSE(harness.stalled.load());
  harness.RunSlaveS1();
}

// Sharded recording preserves the same independence: s2's entries sit in its
// own per-thread ring, and its recorded dependence edge points at no entry
// of thread 0 — PROVIDED locks A and B hash to distinct record shards
// (a shard collision merges their dependence chains, which is correct but
// reintroduces exactly the serialization this test asserts away, the same
// caveat as WoC's clock collisions above). Lock addresses shift run to run,
// so harnesses are re-allocated (keeping the rejects alive so the addresses
// actually move) until the two locks provably land in distinct shards.
TEST(Figure4Test, PartialOrderLetsIndependentSectionProceedShardedRecording) {
  std::vector<std::unique_ptr<Figure4Harness>> tries;
  Figure4Harness* harness = nullptr;
  for (int attempt = 0; attempt < 16 && harness == nullptr; ++attempt) {
    tries.push_back(std::make_unique<Figure4Harness>(
        AgentKind::kPartialOrder, std::chrono::milliseconds(20000),
        /*po_window=*/1 << 12, /*sharded_recording=*/true));
    Figure4Harness& candidate = *tries.back();
    // The instrumented sync variable sits at offset 0 of the lock (the
    // InstrumentedAtomic's value is its first member), so the lock address
    // is the recorded address.
    if (PartialOrderRuntime::RecordShardIndex(&candidate.master_lock_a) !=
        PartialOrderRuntime::RecordShardIndex(&candidate.master_lock_b)) {
      harness = &candidate;
    }
  }
  ASSERT_NE(harness, nullptr) << "16 consecutive shard collisions (p ~ 512^-16)";
  harness->RecordMasterHistory();
  EXPECT_TRUE(harness->RunSlaveS2Alone())
      << "sharded PO replay orders only dependent ops";
  EXPECT_FALSE(harness->stalled.load());
  harness->RunSlaveS1();
}

// With a lookahead window of 1 the PO agent may not look past the oldest
// unconsumed entry — thread 0's — so it degenerates to total-order behaviour
// and stalls s2 exactly like Figure 4(a). (Baseline-only semantics: the
// sharded path's lookahead is bounded by ring capacity, not po_window.)
TEST(Figure4Test, PartialOrderWindowOneDegeneratesToTotalOrder) {
  Figure4Harness harness(AgentKind::kPartialOrder, std::chrono::milliseconds(300),
                         /*po_window=*/1);
  harness.RecordMasterHistory();
  EXPECT_FALSE(harness.RunSlaveS2Alone());
  EXPECT_TRUE(harness.stalled.load());
}

// A window of 4 is just wide enough to reach both of s2's entries (the lock
// CAS at index 2 and the unlock store at index 3), so the independent
// section proceeds again.
TEST(Figure4Test, PartialOrderWindowFourSuffices) {
  Figure4Harness harness(AgentKind::kPartialOrder, std::chrono::milliseconds(20000),
                         /*po_window=*/4);
  harness.RecordMasterHistory();
  EXPECT_TRUE(harness.RunSlaveS2Alone());
  harness.RunSlaveS1();
}

TEST(Figure4Test, WallOfClocksLetsIndependentSectionProceed) {
  Figure4Harness harness(AgentKind::kWallOfClocks, std::chrono::milliseconds(20000));
  harness.RecordMasterHistory();
  EXPECT_TRUE(harness.RunSlaveS2Alone())
      << "WoC: buffer 2 only holds clock-cB entries at their current times";
  EXPECT_FALSE(harness.stalled.load());
  harness.RunSlaveS1();
}

TEST(Figure4Test, PerVariableOrderLetsIndependentSectionProceed) {
  Figure4Harness harness(AgentKind::kPerVariableOrder, std::chrono::milliseconds(20000));
  harness.RecordMasterHistory();
  EXPECT_TRUE(harness.RunSlaveS2Alone());
  EXPECT_FALSE(harness.stalled.load());
  harness.RunSlaveS1();
}

// The second half of Figure 4(c): thread m1's third section is protected by
// lock B (clock cB, time 2). Slave thread s1 must wait until s2 has brought
// its local copy of cB to 2 — cross-thread clock waits work.
TEST(Figure4Test, WallOfClocksCrossThreadClockWait) {
  Figure4Harness harness(AgentKind::kWallOfClocks, std::chrono::milliseconds(20000));

  // Master: m1 A-section; m2 B-section; m1 B-section (the t4 event).
  {
    SyncContext context0{harness.master.get(), nullptr, 0};
    ScopedSyncContext scoped(&context0);
    harness.master_lock_a.Lock();
    harness.master_lock_a.Unlock();
  }
  {
    SyncContext context1{harness.master.get(), nullptr, 1};
    ScopedSyncContext scoped(&context1);
    harness.master_lock_b.Lock();
    harness.master_lock_b.Unlock();
  }
  {
    SyncContext context0{harness.master.get(), nullptr, 0};
    ScopedSyncContext scoped(&context0);
    harness.master_lock_b.Lock();
    harness.master_lock_b.Unlock();
  }

  // Slave: s1 runs its whole history (A-section then B-section). Its
  // B-section needs cB == 2, which only s2's replay can provide — so run s1
  // concurrently with a deliberately delayed s2 and require both to finish.
  std::atomic<bool> s1_done{false};
  std::atomic<bool> s2_done{false};
  std::thread s1([&] {
    SyncContext context{harness.slave.get(), nullptr, 0};
    ScopedSyncContext scoped(&context);
    try {
      harness.slave_lock_a.Lock();
      harness.slave_lock_a.Unlock();
      harness.slave_lock_b.Lock();  // Must wait for s2's increments.
      harness.slave_lock_b.Unlock();
      s1_done.store(true);
    } catch (const VariantKilled&) {
    }
  });
  std::thread s2([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));  // The figure's late s2.
    SyncContext context{harness.slave.get(), nullptr, 1};
    ScopedSyncContext scoped(&context);
    try {
      harness.slave_lock_b.Lock();
      harness.slave_lock_b.Unlock();
      s2_done.store(true);
    } catch (const VariantKilled&) {
    }
  });
  s1.join();
  s2.join();
  EXPECT_TRUE(s1_done.load());
  EXPECT_TRUE(s2_done.load());
}

}  // namespace
}  // namespace mvee
