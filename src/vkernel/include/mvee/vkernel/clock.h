// Virtual wall/TSC clock.
//
// gettimeofday / clock_gettime / rdtsc results come from the real host clock
// through the master variant and are replicated to the slaves — this is the
// replication the covert-channel PoC in paper §5.4 abuses (data-dependent
// deltas between two timing calls are visible to all variants).

#ifndef MVEE_VKERNEL_CLOCK_H_
#define MVEE_VKERNEL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mvee {

class VirtualClock {
 public:
  VirtualClock() : start_(std::chrono::steady_clock::now()) {}

  // Nanoseconds since kernel boot (construction).
  uint64_t NowNanos() const {
    const auto delta = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
  }

  // Microseconds since boot (sys_gettimeofday payload).
  uint64_t NowMicros() const { return NowNanos() / 1000; }

  // Virtual TSC: monotonically increasing, one tick per call plus a
  // time-derived component so deltas reflect real elapsed time.
  uint64_t Rdtsc() {
    return NowNanos() + tsc_fudge_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> tsc_fudge_{0};
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_CLOCK_H_
