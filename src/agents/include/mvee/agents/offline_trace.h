// Offline record/replay of sync-op schedules (RecPlay-style, paper §6).
//
// The online agents broadcast the master's sync-op order to concurrently
// running slaves. The offline pair here captures the same information —
// WoC-encoded (clock id, clock time) events per thread — into a serializable
// trace, so a *later* execution of the same program can be forced through
// the identical schedule ("capturing the order in a file to be replayed
// during a later execution", §6). Useful for deterministic debugging of
// variant programs and for testing the replay logic without an MVEE.

#ifndef MVEE_AGENTS_OFFLINE_TRACE_H_
#define MVEE_AGENTS_OFFLINE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mvee/agents/sync_agent.h"

namespace mvee {

// A recorded schedule: per-thread sequences of (clock, time) events, plus
// the clock-pool size they were recorded against.
class SyncTrace {
 public:
  struct Event {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };

  explicit SyncTrace(uint32_t max_threads = 64, size_t clock_count = 4096)
      : clock_count_(clock_count), per_thread_(max_threads) {}

  size_t clock_count() const { return clock_count_; }
  uint32_t max_threads() const { return static_cast<uint32_t>(per_thread_.size()); }
  const std::vector<Event>& ThreadEvents(uint32_t tid) const { return per_thread_[tid]; }
  size_t TotalEvents() const;

  void Append(uint32_t tid, Event event) { per_thread_[tid].push_back(event); }

  // Flat byte serialization (fixed little-endian layout) for storing traces
  // in the virtual filesystem.
  std::vector<uint8_t> Serialize() const;
  static std::unique_ptr<SyncTrace> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  size_t clock_count_;
  std::vector<std::vector<Event>> per_thread_;
};

// Master-role agent that records into a SyncTrace (offline, so dynamic
// allocation is acceptable — there are no concurrently replaying slaves to
// keep in lockstep).
class OfflineRecorderAgent final : public SyncAgent {
 public:
  explicit OfflineRecorderAgent(uint32_t max_threads = 64, size_t clock_count = 4096);
  ~OfflineRecorderAgent() override;

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "offline-recorder"; }

  // Takes the recorded trace (call after the program quiesced).
  std::unique_ptr<SyncTrace> TakeTrace();

 private:
  struct alignas(64) Clock {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    uint64_t time = 0;
  };

  uint32_t ClockOf(const void* addr) const;

  std::unique_ptr<SyncTrace> trace_;
  std::vector<Clock> clocks_;
  std::mutex append_mutex_;
  struct Pending {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };
  std::vector<Pending> pending_;
};

// Slave-role agent that replays a SyncTrace in a later run of the same
// program: thread t's k-th sync op waits until the local clock named by the
// trace's k-th event reaches the recorded time.
class OfflineReplayAgent final : public SyncAgent {
 public:
  explicit OfflineReplayAgent(const SyncTrace* trace, AgentControl control = {});

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return AgentRole::kSlave; }
  const char* name() const override { return "offline-replayer"; }

  // Events consumed so far (== trace total after a complete run).
  uint64_t EventsReplayed() const { return replayed_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) LocalClock {
    std::atomic<uint64_t> time{0};
  };

  const SyncTrace* const trace_;
  AgentControl control_;
  std::vector<LocalClock> clocks_;
  std::vector<std::atomic<uint64_t>> next_event_;  // Per thread.
  std::vector<SyncTrace::Event> pending_;          // Per thread.
  std::atomic<uint64_t> replayed_{0};
};

}  // namespace mvee

#endif  // MVEE_AGENTS_OFFLINE_TRACE_H_
