// Regenerates paper Table 2: native run times, system-call rates and sync-op
// rates for all 25 PARSEC/SPLASH stand-ins with four worker threads.
//
// Absolute numbers differ from the paper (synthetic kernels, scaled inputs,
// different machine); what must hold is the *regime structure*: which
// benchmarks are syscall-heavy, which are sync-op-heavy, which are quiet.

#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  const double scale = BenchScale(2.0);
  PrintHeader("Table 2: native run times, syscall and sync-op rates (4 worker threads)");
  std::printf("scale=%.3f  (paper values in parentheses)\n\n", scale);
  std::printf("%-7s %-15s %10s %18s %18s\n", "suite", "benchmark", "runtime(s)",
              "syscalls(K/s)", "syncops(K/s)");

  for (const auto& config : AllWorkloads()) {
    const NativeRun run = RunNative(config, scale);
    const double syscall_rate = run.seconds > 0 ? run.syscalls / run.seconds / 1000.0 : 0;
    const double sync_rate = run.seconds > 0 ? run.sync_ops / run.seconds / 1000.0 : 0;
    std::printf("%-7s %-15s %6.2f (%6.2f) %8.2f (%7.2f) %9.2f (%9.2f)\n", config.suite,
                config.name, run.seconds, config.paper_runtime_sec, syscall_rate,
                config.paper_syscall_rate_k, sync_rate, config.paper_sync_rate_k);
    std::fflush(stdout);
  }
  return 0;
}
