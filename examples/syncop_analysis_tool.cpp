// Command-line front end for the sync-op identification pipeline (§4.3):
// prints the two-stage analysis report for the built-in corpus — the
// equivalent of running analysis.rb + the manual points-to pass — and runs
// the _Atomic qualifier propagation workflow (§4.3.1, Figure 3).
//
//   $ ./syncop_analysis_tool            # Table 3 over the whole corpus
//   $ ./syncop_analysis_tool listing1   # the worked spinlock example
//   $ ./syncop_analysis_tool listing2   # the volatile condvar limitation

#include <cstdio>
#include <cstring>
#include <string>

#include "mvee/analysis/atomic_check.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/syncop_analysis.h"

using namespace mvee;

namespace {

void PrintReport(const SyncOpReport& report) {
  std::printf("module %s:\n", report.module_name.c_str());
  std::printf("  type (i)   LOCK-prefixed: %zu\n", report.type_i.size());
  std::printf("  type (ii)  XCHG:          %zu\n", report.type_ii.size());
  std::printf("  type (iii) aligned ld/st: %zu\n", report.type_iii.size());
  std::printf("  sync variables:           %zu\n", report.sync_objects.size());
  std::printf("  unmarked memops:          %zu\n", report.unmarked_memops);
  for (const auto& site : report.type_iii) {
    std::printf("    stage-2 hit: %s @ %s\n", site.function.c_str(),
                site.source_line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "table3";

  if (mode == "listing1") {
    PrintReport(IdentifySyncOps(BuildListing1Module()));
    return 0;
  }
  if (mode == "listing2") {
    std::printf("-- base analysis (documented limitation: finds nothing) --\n");
    PrintReport(IdentifySyncOps(BuildListing2Module()));
    std::printf("-- with the volatile extension --\n");
    SyncOpAnalysisOptions options;
    options.treat_volatile_as_sync = true;
    PrintReport(IdentifySyncOps(BuildListing2Module(), options));
    return 0;
  }

  // Default: the Table 3 corpus + qualifier propagation.
  std::vector<SyncOpReport> reports;
  for (const auto& module : BuildTable3Corpus()) {
    reports.push_back(IdentifySyncOps(module));
  }
  std::printf("%s\n", FormatTable3(reports).c_str());

  std::printf("_Atomic qualifier propagation (Figure 3 fixpoint loop):\n");
  for (const auto& module : BuildTable3Corpus()) {
    const SyncOpReport report = IdentifySyncOps(module);
    const PropagationResult result = PropagateQualifiers(module, report.sync_objects);
    std::printf("  %-22s %4zu pointers qualified in %d compiles\n", module.name.c_str(),
                result.qualified_regs.size(), result.iterations);
  }
  return 0;
}
