// Recovery benchmark (docs/DESIGN.md §9): what does surviving a failing
// variant cost?
//
// Two headline numbers, written to BENCH_recovery.json:
//
//  1. Excision latency: worst excise-to-next-round-open time, from the
//     reporter's probe. This is the survivors' actual service interruption
//     once a failure is DETECTED (detection itself is bounded separately by
//     rendezvous_timeout — the deliberately induced stall window is not a
//     property of the recovery machinery and is excluded).
//  2. Degraded-mode throughput: steady-state syscall throughput at N=4, 3
//     and 2 variants, plus one faulted run that degrades 4 -> 3 -> 2 live
//     variants via two seeded crashes and must still complete OK.
//
// Gates (exit 1): the faulted run must complete with status OK and exactly
// two excisions; worst excision latency must stay under
// MVEE_BENCH_RECOVERY_MAX_MS (default 2000).
//
// Knobs:
//   MVEE_BENCH_RECOVERY_SYSCALLS  syscalls per variant thread  (default 3000)
//   MVEE_BENCH_RECOVERY_REPS      repetitions, best-of kept    (default 3)
//   MVEE_BENCH_RECOVERY_MAX_MS    latency gate in ms           (default 2000)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

namespace {

using namespace mvee;
using namespace mvee::bench;

// Syscall storm: the round rate is the denominator of both measurements.
Program StormProgram(int64_t syscalls) {
  return [syscalls](VariantEnv& env) {
    const int64_t fd = env.Open("storm.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    std::vector<uint8_t> buffer(32);
    for (int64_t i = 0; i < syscalls; ++i) {
      if (i % 16 == 0) {
        env.Write(fd, std::string("x"));
      } else {
        env.Gettid();
      }
    }
    env.Close(fd);
  };
}

MveeOptions RecoveryOptions(uint32_t variants) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.enable_aslr = false;
  options.on_variant_failure = VariantFailurePolicy::kExcise;
  options.min_survivors = 2;
  // Short detection window: the benchmark's wall time includes one stall of
  // this length per induced crash, and it is excluded from the latency
  // number (see header comment).
  options.rendezvous_timeout = std::chrono::milliseconds(300);
  options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
  return options;
}

struct SteadyRun {
  uint32_t variants = 0;
  double seconds = 0;
  double rounds_per_sec = 0;
};

SteadyRun RunSteady(uint32_t variants, int64_t syscalls) {
  MveeOptions options = RecoveryOptions(variants);
  Mvee mvee(options);
  const Status status = mvee.Run(StormProgram(syscalls));
  SteadyRun run;
  run.variants = variants;
  if (!status.ok()) {
    std::fprintf(stderr, "steady run (N=%u) failed: %s\n", variants,
                 status.ToString().c_str());
    return run;
  }
  run.seconds = mvee.report().wall_seconds;
  run.rounds_per_sec =
      run.seconds > 0 ? static_cast<double>(mvee.report().syscalls.total) / run.seconds : 0;
  return run;
}

struct FaultedRun {
  bool ok = false;
  size_t excisions = 0;
  double seconds = 0;
  uint64_t excision_latency_ns = 0;
  std::string first_victim;
};

FaultedRun RunFaulted(int64_t syscalls) {
  MveeOptions options = RecoveryOptions(4);
  // Two crashes, far enough apart that the run reaches a steady state at
  // each degraded level: 4 live -> (crash of variant 2) -> 3 live ->
  // (crash of variant 3) -> 2 live -> completion.
  options.fault_plan = "crash@2:" + std::to_string(syscalls / 4) +
                       ";crash@3:" + std::to_string(syscalls / 2);
  Mvee mvee(options);
  const Status status = mvee.Run(StormProgram(syscalls));
  FaultedRun run;
  run.ok = status.ok();
  if (!run.ok) {
    std::fprintf(stderr, "faulted run failed: %s\n", status.ToString().c_str());
  }
  const MveeReport& report = mvee.report();
  run.excisions = report.excised_variants.size();
  run.seconds = report.wall_seconds;
  run.excision_latency_ns = report.excision_latency_ns;
  if (!report.excised_variants.empty()) {
    run.first_victim = "variant " + std::to_string(report.excised_variants[0].variant);
  }
  return run;
}

void WriteRecoveryJson(const std::vector<SteadyRun>& steady, const FaultedRun& faulted) {
  const std::string path = ResolveBenchJsonPath("BENCH_recovery.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"steady_state\": [\n");
  for (size_t i = 0; i < steady.size(); ++i) {
    std::fprintf(file,
                 "    {\"variants\": %u, \"seconds\": %.4f, \"rounds_per_sec\": %.1f}%s\n",
                 steady[i].variants, steady[i].seconds, steady[i].rounds_per_sec,
                 i + 1 < steady.size() ? "," : "");
  }
  std::fprintf(file,
               "  ],\n  \"faulted\": {\"ok\": %s, \"excisions\": %zu, "
               "\"seconds\": %.4f, \"excision_latency_ns\": %llu}\n}\n",
               faulted.ok ? "true" : "false", faulted.excisions, faulted.seconds,
               static_cast<unsigned long long>(faulted.excision_latency_ns));
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  const int64_t syscalls = EnvInt("MVEE_BENCH_RECOVERY_SYSCALLS", 3000);
  const int64_t reps = EnvInt("MVEE_BENCH_RECOVERY_REPS", 3);
  const double max_ms =
      static_cast<double>(EnvInt("MVEE_BENCH_RECOVERY_MAX_MS", 2000));

  PrintHeader("Variant-failure recovery: excision latency and degraded-mode throughput (" +
              std::to_string(syscalls) + " syscalls/thread)");

  // Warm-up kept out of the measurements.
  RunSteady(2, 200);

  std::vector<SteadyRun> steady;
  for (const uint32_t n : {4u, 3u, 2u}) {
    SteadyRun best;
    for (int64_t rep = 0; rep < reps; ++rep) {
      SteadyRun attempt = RunSteady(n, syscalls);
      if (rep == 0 || attempt.rounds_per_sec > best.rounds_per_sec) {
        best = attempt;
      }
    }
    std::printf("  steady N=%u  %8.3fs  %10.0f rounds/s\n", best.variants, best.seconds,
                best.rounds_per_sec);
    steady.push_back(best);
  }

  // Faulted runs: keep the rep with the WORST excision latency that still
  // completed — the gate bounds the worst case, not the luckiest.
  FaultedRun faulted;
  for (int64_t rep = 0; rep < reps; ++rep) {
    FaultedRun attempt = RunFaulted(syscalls);
    if (rep == 0 || !attempt.ok ||
        (faulted.ok && attempt.excision_latency_ns > faulted.excision_latency_ns)) {
      faulted = attempt;
    }
    if (!faulted.ok) {
      break;
    }
  }
  std::printf("  faulted 4->3->2: %s, %zu excisions (first: %s), %.3fs, "
              "worst excision latency %.3f ms\n",
              faulted.ok ? "OK" : "FAILED", faulted.excisions,
              faulted.first_victim.empty() ? "none" : faulted.first_victim.c_str(),
              faulted.seconds,
              static_cast<double>(faulted.excision_latency_ns) / 1e6);

  WriteRecoveryJson(steady, faulted);

  if (!faulted.ok || faulted.excisions != 2) {
    std::fprintf(stderr, "FAIL: faulted run did not degrade gracefully (ok=%d excisions=%zu)\n",
                 faulted.ok ? 1 : 0, faulted.excisions);
    return 1;
  }
  if (faulted.excision_latency_ns == 0 ||
      static_cast<double>(faulted.excision_latency_ns) / 1e6 > max_ms) {
    std::fprintf(stderr, "FAIL: excision latency %.3f ms outside (0, %.0f ms]\n",
                 static_cast<double>(faulted.excision_latency_ns) / 1e6, max_ms);
    return 1;
  }
  return 0;
}
