// Sharded syscall-ordering domains (docs/syscall_ordering.md).
//
// The paper's §4.1 ordering mechanism records, per variant, the cross-thread
// order of shared-resource syscalls so slaves reproduce it exactly. The seed
// implementation kept ONE clock for the whole variant: every ordered call in
// the master ran inside one global critical section, and every slave thread
// replayed the resulting total order through a single per-variant counter —
// exactly the kind of serialization the paper argues relaxed monitors must
// shed. But the §4.1 invariant only needs *conflicting* calls ordered: two
// lseeks on different descriptors commute; only calls touching the same
// resource must replay in master order.
//
// An OrderDomain is the unit of that relaxation: one resource (the fd
// namespace, the address space, one open descriptor), one master-side
// timestamp counter guarded by its own mutex, and one private replay clock
// per slave variant. The master stamps (domain, ts) into each ordered
// result; a slave spins only on that domain's clock, so replays of disjoint
// resources proceed in parallel.
//
// Lifecycle: the three fixed process-wide domains exist for the run; per-fd
// domains are created lazily on first stamp, retired when the descriptor
// closes, and reclaimed at quiescence (end of run) once every slave clock
// has caught up to the master counter. Reclamation is deliberately NOT done
// mid-run: a slave may still hold a pointer to a domain it is about to
// replay, and the memory cost of a retired domain is ~100 bytes — bounded by
// the run's total fd allocations, which is the right trade for a monitor
// whose failure mode is a false variant kill.

#ifndef MVEE_MONITOR_ORDER_DOMAIN_H_
#define MVEE_MONITOR_ORDER_DOMAIN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "mvee/syscall/record.h"

namespace mvee {

// One ordering domain: a resource's timestamp counter plus per-variant
// replay clocks. Master side: lock `mutex`, execute, stamp `next_ts++`.
// Slave side: spin on SlaveClock(variant) until it equals the stamped
// timestamp, execute, store timestamp+1.
struct OrderDomain {
  OrderDomain(uint32_t domain_id, uint32_t num_variants)
      : id(domain_id), slave_clocks(num_variants) {}

  const uint32_t id;

  // Master-side critical section; also guards next_ts.
  std::mutex mutex;
  uint64_t next_ts = 0;

  // Each slave clock gets its own cache line: clocks are spun on by one
  // variant thread and stored by another, and sharing a line across domains
  // would put the cross-domain independence back on the coherence bus.
  struct alignas(64) Clock {
    std::atomic<uint64_t> value{0};
  };
  std::vector<Clock> slave_clocks;  // [num_variants]; index 0 (master) unused

  // Set once the owning descriptor closed; the domain stays valid (late
  // replays may still be in flight) but becomes reclaimable at quiescence.
  std::atomic<bool> retired{false};

  std::atomic<uint64_t>& SlaveClock(uint32_t variant) {
    return slave_clocks[variant].value;
  }
};

// Lifecycle counters for the dynamic (per-fd) domains; the fixed
// process-wide domains always exist and are not counted.
struct OrderDomainStats {
  uint64_t created = 0;
  uint64_t retired = 0;
  uint64_t reclaimed = 0;
  uint64_t live = 0;
};

// Registry of live domains, shared by every ThreadSetMonitor. The fixed
// process-wide domains (ids < OrderDomainIds::kFirstFd) are constructed
// eagerly and resolved lock-free; per-fd domains live in a map whose lookups
// take a shared lock (the common case: the domain exists) — only the first
// stamp against a new per-fd domain takes the exclusive lock to insert.
class OrderDomainTable {
 public:
  explicit OrderDomainTable(uint32_t num_variants);

  // Returns the domain for `id`, creating it on first use. The pointer is
  // stable until Reclaim() — which only runs at quiescence — so callers may
  // hold it across the whole stamp/replay sequence (and the master stamps
  // it into SyscallResult::order_domain_hint for the slaves).
  OrderDomain* FindOrCreate(uint32_t id);

  // Marks a per-fd domain reclaimable (descriptor closed). Process-wide
  // domain ids are ignored.
  void Retire(uint32_t id);

  // Excision (docs/DESIGN.md §9): marks `variant` dead so Reclaim() stops
  // waiting for its replay clocks — an excised variant's clocks are frozen
  // wherever its threads abandoned them and would otherwise pin every
  // retired domain forever. Safe concurrently with running threads.
  void DetachVariant(uint32_t variant);

  // Frees retired domains whose every slave clock has reached the master
  // counter. MUST only be called when no variant threads are running (end of
  // Mvee::Run, or tests at rest); returns the number of domains freed.
  size_t Reclaim();

  OrderDomainStats stats() const;

 private:
  const uint32_t num_variants_;
  // Bit v set => variant v excised; Reclaim() skips its clocks.
  std::atomic<uint32_t> dead_mask_{0};
  // Fixed process-wide domains, indexed by id; no lock needed.
  std::array<std::unique_ptr<OrderDomain>, OrderDomainIds::kFirstFd> static_domains_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<uint32_t, std::unique_ptr<OrderDomain>> domains_;  // per-fd only
  uint64_t created_ = 0;               // guarded by exclusive mutex_
  std::atomic<uint64_t> retired_{0};   // incremented under shared mutex_
  uint64_t reclaimed_ = 0;             // guarded by exclusive mutex_
};

}  // namespace mvee

#endif  // MVEE_MONITOR_ORDER_DOMAIN_H_
