// Tests for the offline record/replay facility (RecPlay-style, §6): record a
// multi-threaded schedule once, replay a later execution through the same
// schedule, round-trip the trace through serialization.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "mvee/agents/offline_trace.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/rng.h"
#include "mvee/util/variant_killed.h"

namespace mvee {
namespace {

// Runs `threads` workers with the given agent; thread t executes a seeded
// pseudo-random sequence of critical sections and logs acquisition orders.
std::vector<std::vector<uint32_t>> RunScheduledProgram(SyncAgent* agent, uint32_t threads,
                                                       size_t lock_count, int ops) {
  std::vector<SpinLock> locks(lock_count);
  std::vector<std::vector<uint32_t>> logs(lock_count);
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      SyncContext context{agent, nullptr, t};
      ScopedSyncContext scoped(&context);
      Rng rng(4000 + t);
      try {
        for (int i = 0; i < ops; ++i) {
          const size_t lock_index = rng.NextBelow(lock_count);
          locks[lock_index].Lock();
          logs[lock_index].push_back(t);
          locks[lock_index].Unlock();
        }
      } catch (const VariantKilled&) {
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return logs;
}

TEST(OfflineTraceTest, RecordThenReplayReproducesSchedule) {
  OfflineRecorderAgent recorder(/*max_threads=*/4, /*clock_count=*/256);
  const auto recorded_logs = RunScheduledProgram(&recorder, 4, 6, 120);
  auto trace = recorder.TakeTrace();
  ASSERT_GT(trace->TotalEvents(), 0u);

  OfflineReplayAgent replayer(trace.get());
  const auto replayed_logs = RunScheduledProgram(&replayer, 4, 6, 120);
  EXPECT_EQ(recorded_logs, replayed_logs);
  EXPECT_EQ(replayer.EventsReplayed(), trace->TotalEvents());
}

TEST(OfflineTraceTest, SerializationRoundTrip) {
  OfflineRecorderAgent recorder(4, 128);
  RunScheduledProgram(&recorder, 3, 4, 50);
  auto trace = recorder.TakeTrace();

  const std::vector<uint8_t> bytes = trace->Serialize();
  auto restored = SyncTrace::Deserialize(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->clock_count(), trace->clock_count());
  EXPECT_EQ(restored->TotalEvents(), trace->TotalEvents());
  for (uint32_t t = 0; t < trace->max_threads(); ++t) {
    ASSERT_EQ(restored->ThreadEvents(t).size(), trace->ThreadEvents(t).size());
    for (size_t i = 0; i < trace->ThreadEvents(t).size(); ++i) {
      EXPECT_EQ(restored->ThreadEvents(t)[i].clock_id, trace->ThreadEvents(t)[i].clock_id);
      EXPECT_EQ(restored->ThreadEvents(t)[i].time, trace->ThreadEvents(t)[i].time);
    }
  }
}

TEST(OfflineTraceTest, ReplayFromDeserializedTrace) {
  OfflineRecorderAgent recorder(4, 256);
  const auto recorded_logs = RunScheduledProgram(&recorder, 4, 3, 80);
  const std::vector<uint8_t> bytes = recorder.TakeTrace()->Serialize();

  auto restored = SyncTrace::Deserialize(bytes);
  ASSERT_NE(restored, nullptr);
  OfflineReplayAgent replayer(restored.get());
  const auto replayed_logs = RunScheduledProgram(&replayer, 4, 3, 80);
  EXPECT_EQ(recorded_logs, replayed_logs);
}

TEST(OfflineTraceTest, DeserializeRejectsGarbage) {
  EXPECT_EQ(SyncTrace::Deserialize({}), nullptr);
  EXPECT_EQ(SyncTrace::Deserialize({1, 2, 3, 4}), nullptr);
  std::vector<uint8_t> truncated = [] {
    OfflineRecorderAgent recorder(2, 64);
    RunScheduledProgram(&recorder, 2, 2, 10);
    auto bytes = recorder.TakeTrace()->Serialize();
    bytes.resize(bytes.size() / 2);
    return bytes;
  }();
  EXPECT_EQ(SyncTrace::Deserialize(truncated), nullptr);
}

TEST(OfflineTraceTest, ExhaustedTraceKillsExtraOps) {
  OfflineRecorderAgent recorder(1, 64);
  RunScheduledProgram(&recorder, 1, 1, 5);
  auto trace = recorder.TakeTrace();

  bool stalled = false;
  AgentControl control;
  std::atomic<bool> abort{false};
  control.abort_flag = &abort;
  control.on_stall = [&](const std::string&) { stalled = true; };
  OfflineReplayAgent replayer(trace.get(), control);

  SyncContext context{&replayer, nullptr, 0};
  ScopedSyncContext scoped(&context);
  SpinLock lock;
  // 5 recorded critical sections = 10 events (uncontended CAS + unlock
  // store); replay them, then one extra op must throw.
  for (int i = 0; i < 5; ++i) {
    lock.Lock();
    lock.Unlock();
  }
  EXPECT_THROW(lock.Lock(), VariantKilled);
  EXPECT_TRUE(stalled);
}

TEST(OfflineTraceTest, EmptyTraceSerializationIsStable) {
  SyncTrace trace(8, 32);
  const auto bytes = trace.Serialize();
  auto restored = SyncTrace::Deserialize(bytes);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->TotalEvents(), 0u);
  EXPECT_EQ(restored->max_threads(), 8u);
}

}  // namespace
}  // namespace mvee
