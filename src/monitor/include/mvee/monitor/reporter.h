// Divergence detection, variant excision, and MVEE shutdown fan-out.
//
// Two failure outcomes exist (docs/DESIGN.md §9):
//
//  * FATAL — the classic paper behavior ("MVEEs terminate execution upon
//    detection of divergence", §1): the first Report() wins, trips the global
//    abort flag, wakes every parked variant thread (monitor rendezvous,
//    kernel futexes, listeners, pipes) and records the detail for the final
//    report.
//
//  * EXCISION — the reliability-mode response (§2's VARAN contrast): when
//    MveeOptions::on_variant_failure == kExcise and enough survivors remain,
//    ReportVariantFailure() removes ONE variant from the live mask instead of
//    shutting down. Rendezvous membership, agent replay, order-domain
//    reclamation and kernel leases all key off that mask; the excision hooks
//    wake anything the dead variant might be blocked in so its threads
//    unwind. The run then continues with the survivors.
//
// The live mask is the excision protocol's linearization point: the store
// that clears a variant's bit is seq_cst, and the dead-variant checks at
// syscall entry load it seq_cst, which gives the Dekker-style ordering the
// abandoned-round reaping in thread_set.cc relies on (docs/DESIGN.md §9).

#ifndef MVEE_MONITOR_REPORTER_H_
#define MVEE_MONITOR_REPORTER_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/util/status.h"

namespace mvee {

// What to do when a single variant fails (crash, stall, divergence from the
// majority). kShutdown is the paper's security posture and the default;
// kExcise trades one variant's diversity for availability, but never drops
// below DivergenceReporter's min_survivors floor.
enum class VariantFailurePolicy : uint8_t { kShutdown = 0, kExcise };

// One excised variant, for MveeReport::excised_variants.
struct ExcisionRecord {
  uint32_t variant = 0;
  StatusCode code = StatusCode::kOk;
  std::string detail;  // failure site description
  uint64_t round = 0;  // rendezvous round at which the variant left
};

class DivergenceReporter {
 public:
  // Installs the failure policy. Must run before variant threads start; the
  // default (never configured) is all-variants-live with kShutdown, which
  // preserves the seed's behavior for standalone monitors in tests.
  void ConfigurePolicy(VariantFailurePolicy policy, uint32_t min_survivors,
                       uint32_t num_variants);

  // Registers a wakeup hook to run when the reporter trips (thread-set
  // monitors broadcast their CVs; the kernel wakes futexes and closes
  // listeners). Hooks run once, on the reporting thread.
  void AddShutdownHook(std::function<void()> hook);

  // Registers a hook to run each time a variant is excised (on the reporting
  // thread, outside the reporter lock): detach agent ring cursors, release
  // kernel leases, wake rendezvous waiters.
  void AddExcisionHook(std::function<void(uint32_t variant)> hook);

  // Reports a FATAL divergence/timeout. Only the first report is recorded;
  // all reports trip the abort flag.
  void Report(StatusCode code, const std::string& detail);

  // Reports the failure of one variant. Policy permitting (kExcise, variant
  // is not the master, survivors stay >= min_survivors), the variant is
  // excised and true is returned: the caller may keep running without it.
  // Otherwise the failure is escalated to a fatal Report and false is
  // returned: the caller must unwind. Idempotent per variant — a concurrent
  // second report of an already-dead variant returns true without effect.
  bool ReportVariantFailure(uint32_t variant, StatusCode code,
                            const std::string& detail, uint64_t round = 0);

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  const std::atomic<bool>* abort_flag() const { return &tripped_; }

  // Live-variant mask (bit v = variant v still participates). The seq_cst
  // load pairs with the excision store for the reaping protocol; on x86 it
  // costs the same as an acquire load, so every caller uses it.
  uint32_t live_mask() const { return live_mask_.load(std::memory_order_seq_cst); }
  bool VariantDead(uint32_t variant) const {
    return (live_mask() & (1u << variant)) == 0;
  }
  uint32_t LiveCount() const { return static_cast<uint32_t>(std::popcount(live_mask())); }
  const std::atomic<uint32_t>* live_mask_ptr() const { return &live_mask_; }

  uint64_t excision_count() const {
    return excision_count_.load(std::memory_order_relaxed);
  }
  std::vector<ExcisionRecord> excisions() const;

  // --- Excision latency probe (bench_recovery) -----------------------------
  // An excision stamps a monotonic-clock mark; the next completed rendezvous
  // round clears it and records excise-to-round latency. The disarmed check
  // is one relaxed load per round open.
  bool excision_probe_armed() const {
    return excision_probe_ns_.load(std::memory_order_relaxed) != 0;
  }
  void CompleteExcisionProbe();
  uint64_t max_excision_latency_ns() const {
    return max_excision_latency_ns_.load(std::memory_order_relaxed);
  }

  // Status of the first fatal report; OK if never tripped.
  Status status() const;

 private:
  std::atomic<bool> tripped_{false};
  // All-ones until configured: a reporter used without ConfigurePolicy never
  // considers any variant dead.
  std::atomic<uint32_t> live_mask_{~0u};
  std::atomic<uint64_t> excision_count_{0};
  std::atomic<uint64_t> excision_probe_ns_{0};
  std::atomic<uint64_t> max_excision_latency_ns_{0};

  mutable std::mutex mutex_;
  VariantFailurePolicy policy_ = VariantFailurePolicy::kShutdown;
  uint32_t min_survivors_ = 2;
  Status first_status_;
  bool have_status_ = false;
  std::vector<std::function<void()>> hooks_;
  std::vector<std::function<void(uint32_t)>> excision_hooks_;
  std::vector<ExcisionRecord> excisions_;
  bool hooks_run_ = false;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_REPORTER_H_
