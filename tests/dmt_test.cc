// Tests for the DMT-vs-Record/Replay study (src/dmt) — the quantitative
// backing for paper §2.1's argument that deterministic multithreading does
// not compose with software diversity while record/replay does.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "mvee/dmt/program.h"
#include "mvee/dmt/replay.h"
#include "mvee/dmt/respec.h"
#include "mvee/dmt/schedule.h"
#include "mvee/dmt/scheduler.h"

namespace mvee::dmt {
namespace {

ProgramSpec ContendedSpec() {
  ProgramSpec spec;
  spec.threads = 4;
  spec.locks = 3;  // Few locks => real contention => interleaving matters.
  spec.sections_per_thread = 40;
  spec.compute_cost_mean = 200;
  spec.critical_cost_mean = 50;
  spec.syscall_probability = 0.5;
  return spec;
}

// --- Structural validity of schedules ---

// Checks mutual exclusion, per-thread program order, and acquire/release
// alternation against the source program.
::testing::AssertionResult ValidateSchedule(const Program& program,
                                            const Schedule& schedule) {
  if (!schedule.completed) {
    return ::testing::AssertionFailure() << "schedule incomplete: " << schedule.failure;
  }
  // Per-thread cursor over the program's sync-relevant ops.
  std::vector<size_t> cursor(program.thread_count(), 0);
  auto next_sync_of = [&](uint32_t tid) -> const Op* {
    const auto& ops = program.threads[tid];
    while (cursor[tid] < ops.size()) {
      const Op& op = ops[cursor[tid]];
      if (op.kind != OpKind::kCompute && op.kind != OpKind::kSyscall) {
        return &op;
      }
      ++cursor[tid];
    }
    return nullptr;
  };

  std::vector<int64_t> holder(program.lock_count, -1);
  for (size_t i = 0; i < schedule.sync_order.size(); ++i) {
    const SyncEvent& event = schedule.sync_order[i];
    const Op* expected = next_sync_of(event.tid);
    if (expected == nullptr) {
      return ::testing::AssertionFailure()
             << "event " << i << ": thread " << event.tid << " has no pending sync op";
    }
    if (expected->kind != event.kind || expected->var != event.var) {
      return ::testing::AssertionFailure()
             << "event " << i << ": thread " << event.tid << " executed "
             << OpKindName(event.kind) << "(" << event.var << ") but program order says "
             << OpKindName(expected->kind) << "(" << expected->var << ")";
    }
    ++cursor[event.tid];
    if (event.kind == OpKind::kLock) {
      if (holder[event.var] != -1) {
        return ::testing::AssertionFailure()
               << "event " << i << ": lock " << event.var << " acquired by " << event.tid
               << " while held by " << holder[event.var];
      }
      holder[event.var] = event.tid;
    } else if (event.kind == OpKind::kUnlock) {
      if (holder[event.var] != static_cast<int64_t>(event.tid)) {
        return ::testing::AssertionFailure()
               << "event " << i << ": unlock of " << event.var << " by non-holder";
      }
      holder[event.var] = -1;
    }
  }
  return ::testing::AssertionSuccess();
}

// --- Generator ---

class GeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorSeedTest, ProgramsAreWellFormed) {
  ProgramSpec spec = ContendedSpec();
  spec.flag_pairs = 2;
  const Program program = GenerateProgram(spec, GetParam());
  ASSERT_EQ(program.thread_count(), spec.threads);
  EXPECT_EQ(program.lock_count, spec.locks);

  for (uint32_t t = 0; t < spec.threads; ++t) {
    int64_t held = -1;  // Locks must be balanced and never nested.
    uint32_t sections = 0;
    for (const Op& op : program.threads[t]) {
      switch (op.kind) {
        case OpKind::kLock:
          ASSERT_EQ(held, -1) << "nested lock in thread " << t;
          ASSERT_LT(op.var, spec.locks);
          held = op.var;
          ++sections;
          break;
        case OpKind::kUnlock:
          ASSERT_EQ(held, static_cast<int64_t>(op.var)) << "unbalanced unlock";
          held = -1;
          break;
        case OpKind::kCompute:
          ASSERT_GE(op.cost, 1u);
          break;
        case OpKind::kSetFlag:
        case OpKind::kWaitFlag:
          ASSERT_EQ(held, -1) << "flag op inside critical section would deadlock";
          ASSERT_LT(op.var, program.flag_count);
          break;
        case OpKind::kSyscall:
          break;
      }
    }
    EXPECT_EQ(held, -1) << "thread " << t << " exits holding a lock";
    EXPECT_EQ(sections, spec.sections_per_thread);
  }

  // Every flag waited on is set by a different thread.
  for (uint32_t flag = 0; flag < program.flag_count; ++flag) {
    int setter = -1;
    int waiter = -1;
    for (uint32_t t = 0; t < spec.threads; ++t) {
      for (const Op& op : program.threads[t]) {
        if (op.var != flag) {
          continue;
        }
        if (op.kind == OpKind::kSetFlag) {
          setter = static_cast<int>(t);
        } else if (op.kind == OpKind::kWaitFlag) {
          waiter = static_cast<int>(t);
        }
      }
    }
    if (waiter != -1) {
      ASSERT_NE(setter, -1) << "flag " << flag << " waited on but never set";
      EXPECT_NE(setter, waiter);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

TEST(PerturbTest, EpsilonZeroIsIdentity) {
  const Program program = GenerateProgram(ContendedSpec(), 7);
  const Program copy = PerturbCosts(program, 0.0, 99);
  ASSERT_EQ(copy.threads.size(), program.threads.size());
  for (uint32_t t = 0; t < program.thread_count(); ++t) {
    ASSERT_EQ(copy.threads[t].size(), program.threads[t].size());
    for (size_t i = 0; i < program.threads[t].size(); ++i) {
      EXPECT_EQ(copy.threads[t][i].kind, program.threads[t][i].kind);
      EXPECT_EQ(copy.threads[t][i].cost, program.threads[t][i].cost);
    }
  }
}

TEST(PerturbTest, OnlyComputeCostsChangeWithinBounds) {
  const Program program = GenerateProgram(ContendedSpec(), 7);
  const double epsilon = 0.3;
  const Program copy = PerturbCosts(program, epsilon, 99);
  bool any_changed = false;
  for (uint32_t t = 0; t < program.thread_count(); ++t) {
    for (size_t i = 0; i < program.threads[t].size(); ++i) {
      const Op& before = program.threads[t][i];
      const Op& after = copy.threads[t][i];
      ASSERT_EQ(after.kind, before.kind);
      ASSERT_EQ(after.var, before.var);
      if (before.kind != OpKind::kCompute) {
        ASSERT_EQ(after.cost, before.cost);
        continue;
      }
      any_changed = any_changed || after.cost != before.cost;
      const auto lo = static_cast<double>(before.cost) * (1.0 - epsilon) - 1.0;
      const auto hi = static_cast<double>(before.cost) * (1.0 + epsilon) + 1.0;
      EXPECT_GE(static_cast<double>(after.cost), std::max(1.0, lo));
      EXPECT_LE(static_cast<double>(after.cost), hi);
    }
  }
  EXPECT_TRUE(any_changed);
}

// --- Determinism: the defining DMT property ---

class DmtSchedulerTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Scheduler> MakeScheduler() const {
    const std::string which = GetParam();
    if (which == "kendo") {
      return std::make_unique<KendoScheduler>();
    }
    if (which == "quantum") {
      return std::make_unique<QuantumScheduler>();
    }
    return std::make_unique<BarrierScheduler>();
  }
};

TEST_P(DmtSchedulerTest, SameProgramSameSchedule) {
  const Program program = GenerateProgram(ContendedSpec(), 11);
  auto scheduler_a = MakeScheduler();
  auto scheduler_b = MakeScheduler();
  const Schedule a = scheduler_a->Run(program);
  const Schedule b = scheduler_b->Run(program);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.sync_order, b.sync_order);
  EXPECT_EQ(a.syscall_order, b.syscall_order);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST_P(DmtSchedulerTest, SchedulesAreStructurallyValid) {
  for (uint64_t seed : {3ULL, 17ULL, 4242ULL}) {
    const Program program = GenerateProgram(ContendedSpec(), seed);
    auto scheduler = MakeScheduler();
    const Schedule schedule = scheduler->Run(program);
    EXPECT_TRUE(ValidateSchedule(program, schedule)) << "seed " << seed;
    EXPECT_GT(schedule.makespan, 0u);
  }
}

TEST_P(DmtSchedulerTest, IdenticalVariantsNeverDiverge) {
  const Program program = GenerateProgram(ContendedSpec(), 5);
  const Program variant = PerturbCosts(program, 0.0, 1);
  auto scheduler = MakeScheduler();
  const Schedule a = scheduler->Run(program);
  const Schedule b = scheduler->Run(variant);
  const auto divergence = CompareSchedules(a, b, program.thread_count(), program.lock_count);
  EXPECT_FALSE(divergence.diverged);
  EXPECT_EQ(divergence.mismatch_fraction, 0.0);
}

// "Fixed, but different" (§2.1): the perturbed variant's schedule is itself
// perfectly stable run-to-run — DMT keeps its determinism promise — it is
// just a *different* stable schedule than the base variant's.
TEST_P(DmtSchedulerTest, PerturbedVariantIsInternallyStable) {
  const Program program = GenerateProgram(ContendedSpec(), 5);
  const Program variant = PerturbCosts(program, 0.25, 77);
  auto scheduler = MakeScheduler();
  const Schedule a = scheduler->Run(variant);
  const Schedule b = scheduler->Run(variant);
  EXPECT_EQ(a.sync_order, b.sync_order);
  EXPECT_EQ(a.syscall_order, b.syscall_order);
}

INSTANTIATE_TEST_SUITE_P(All, DmtSchedulerTest,
                         ::testing::Values("kendo", "quantum", "barrier"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- Diversity sensitivity: the incompatibility the paper predicts ---

// For progress-counter schedulers, at least one of several diversified
// variants must diverge from the base schedule. (Any single seed could get
// lucky on a short program; across five seeds with 25% perturbation on a
// contended program, non-divergence would mean the scheduler ignores costs.)
TEST(DiversitySensitivityTest, KendoDivergesUnderPerturbedCosts) {
  const Program program = GenerateProgram(ContendedSpec(), 21);
  KendoScheduler scheduler;
  const Schedule base = scheduler.Run(program);
  int diverged = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Program variant = PerturbCosts(program, 0.25, seed);
    const Schedule other = scheduler.Run(variant);
    const auto divergence =
        CompareSchedules(base, other, program.thread_count(), program.lock_count);
    diverged += divergence.diverged ? 1 : 0;
  }
  EXPECT_GE(diverged, 4) << "Kendo should be highly sensitive to instruction counts";
}

TEST(DiversitySensitivityTest, QuantumDivergesUnderPerturbedCosts) {
  const Program program = GenerateProgram(ContendedSpec(), 21);
  QuantumScheduler scheduler(QuantumConfig{.quantum = 500});
  const Schedule base = scheduler.Run(program);
  int diverged = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Program variant = PerturbCosts(program, 0.25, seed);
    const Schedule other = scheduler.Run(variant);
    const auto divergence =
        CompareSchedules(base, other, program.thread_count(), program.lock_count);
    diverged += divergence.diverged ? 1 : 0;
  }
  EXPECT_GE(diverged, 4);
}

// Barrier DMT orders sync ops by sequence position and thread id only, so
// diversified costs change nothing — its incompatibility lies elsewhere.
TEST(DiversitySensitivityTest, BarrierIsImmuneToPerturbedCosts) {
  const Program program = GenerateProgram(ContendedSpec(), 21);
  BarrierScheduler scheduler;
  const Schedule base = scheduler.Run(program);
  ASSERT_TRUE(base.completed);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Program variant = PerturbCosts(program, 0.5, seed);
    const Schedule other = scheduler.Run(variant);
    const auto divergence =
        CompareSchedules(base, other, program.thread_count(), program.lock_count);
    EXPECT_FALSE(divergence.diverged) << "seed " << seed;
  }
}

// ...namely ad-hoc synchronization: a poll loop never reaches the global
// barrier, so the whole variant deadlocks (§6's DThreads/Grace critique).
TEST(DiversitySensitivityTest, BarrierDeadlocksOnPollLoops) {
  ProgramSpec spec = ContendedSpec();
  spec.flag_pairs = 1;
  const Program program = GenerateProgram(spec, 9);
  BarrierScheduler scheduler;
  const Schedule schedule = scheduler.Run(program);
  EXPECT_FALSE(schedule.completed);
  EXPECT_NE(schedule.failure.find("poll loop"), std::string::npos) << schedule.failure;
}

// Kendo and quantum tolerate the same poll loops (waiters burn progress
// while spinning, so the setter eventually runs).
TEST(DiversitySensitivityTest, ClockSchedulersCompletePollLoops) {
  ProgramSpec spec = ContendedSpec();
  spec.flag_pairs = 2;
  const Program program = GenerateProgram(spec, 9);
  KendoScheduler kendo;
  QuantumScheduler quantum;
  EXPECT_TRUE(kendo.Run(program).completed);
  EXPECT_TRUE(quantum.Run(program).completed);
}

// Sweep: divergence appears across the (threads, locks, epsilon) matrix.
struct SweepParam {
  uint32_t threads;
  uint32_t locks;
  double epsilon;
};

class KendoSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KendoSweepTest, MismatchFractionGrowsWithEpsilon) {
  const SweepParam& param = GetParam();
  ProgramSpec spec = ContendedSpec();
  spec.threads = param.threads;
  spec.locks = param.locks;
  const Program program = GenerateProgram(spec, 33);
  KendoScheduler scheduler;
  const Schedule base = scheduler.Run(program);

  double total_mismatch = 0.0;
  constexpr int kVariants = 4;
  for (uint64_t seed = 1; seed <= kVariants; ++seed) {
    const Program variant = PerturbCosts(program, param.epsilon, seed);
    const Schedule other = scheduler.Run(variant);
    ASSERT_TRUE(other.completed);
    total_mismatch +=
        CompareSchedules(base, other, program.thread_count(), program.lock_count)
            .mismatch_fraction;
  }
  const double mean_mismatch = total_mismatch / kVariants;
  if (param.epsilon == 0.0) {
    EXPECT_EQ(mean_mismatch, 0.0);
  } else {
    EXPECT_GT(mean_mismatch, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KendoSweepTest,
    ::testing::Values(SweepParam{2, 2, 0.0}, SweepParam{2, 2, 0.3}, SweepParam{4, 3, 0.0},
                      SweepParam{4, 3, 0.1}, SweepParam{4, 3, 0.3}, SweepParam{8, 4, 0.3},
                      SweepParam{4, 1, 0.3}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "t" + std::to_string(info.param.threads) + "_l" +
             std::to_string(info.param.locks) + "_e" +
             std::to_string(static_cast<int>(info.param.epsilon * 100));
    });

// --- The OS baseline ---

TEST(OsSchedulerTest, SameSeedSameSchedule) {
  const Program program = GenerateProgram(ContendedSpec(), 13);
  OsScheduler a(OsConfig{.seed = 7});
  OsScheduler b(OsConfig{.seed = 7});
  EXPECT_EQ(a.Run(program).sync_order, b.Run(program).sync_order);
}

TEST(OsSchedulerTest, DifferentSeedsDiverge) {
  const Program program = GenerateProgram(ContendedSpec(), 13);
  OsScheduler a(OsConfig{.seed = 7});
  OsScheduler b(OsConfig{.seed = 8});
  const Schedule sa = a.Run(program);
  const Schedule sb = b.Run(program);
  const auto divergence =
      CompareSchedules(sa, sb, program.thread_count(), program.lock_count);
  EXPECT_TRUE(divergence.diverged)
      << "two OS runs of a contended program almost surely interleave differently";
}

TEST(OsSchedulerTest, SchedulesAreValid) {
  const Program program = GenerateProgram(ContendedSpec(), 13);
  OsScheduler scheduler(OsConfig{.seed = 99});
  EXPECT_TRUE(ValidateSchedule(program, scheduler.Run(program)));
}

// --- Record/Replay: diversity immunity (the paper's design, §3) ---

struct ReplayParam {
  double epsilon;
  uint64_t replay_seed;
};

class ReplayImmunityTest : public ::testing::TestWithParam<ReplayParam> {};

TEST_P(ReplayImmunityTest, ReplayMatchesMasterForAnyPerturbation) {
  const ReplayParam& param = GetParam();
  ProgramSpec spec = ContendedSpec();
  spec.flag_pairs = 1;
  const Program program = GenerateProgram(spec, 55);
  const Schedule master = RecordMaster(program, /*seed=*/17);
  ASSERT_TRUE(master.completed);

  // The slave variant is diversified (perturbed costs) and scheduled by a
  // *different* seeded interleaver; only the replay enforcement can make it
  // match.
  const Program variant = PerturbCosts(program, param.epsilon, 123);
  ReplayScheduler replayer(master, program.lock_count, program.flag_count,
                           param.replay_seed);
  const Schedule slave = replayer.Run(variant);
  ASSERT_TRUE(slave.completed) << slave.failure;

  const auto divergence =
      CompareSchedules(master, slave, program.thread_count(), program.lock_count);
  EXPECT_FALSE(divergence.diverged)
      << "first mismatch: tid " << divergence.first_tid << " call "
      << divergence.first_index;
  EXPECT_EQ(divergence.mismatch_fraction, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReplayImmunityTest,
    ::testing::Values(ReplayParam{0.0, 1}, ReplayParam{0.1, 2}, ReplayParam{0.25, 3},
                      ReplayParam{0.5, 4}, ReplayParam{1.0, 5}, ReplayParam{0.25, 999}),
    [](const ::testing::TestParamInfo<ReplayParam>& info) {
      return "e" + std::to_string(static_cast<int>(info.param.epsilon * 100)) + "_s" +
             std::to_string(info.param.replay_seed);
    });

TEST(ReplayTest, ReplayedScheduleIsValid) {
  const Program program = GenerateProgram(ContendedSpec(), 55);
  const Schedule master = RecordMaster(program, 17);
  ReplayScheduler replayer(master, program.lock_count, program.flag_count, 3);
  const Schedule slave = replayer.Run(program);
  EXPECT_TRUE(ValidateSchedule(program, slave));
}

TEST(ReplayTest, EnforcementActuallyStalls) {
  const Program program = GenerateProgram(ContendedSpec(), 55);
  const Schedule master = RecordMaster(program, 17);
  ReplayScheduler replayer(master, program.lock_count, program.flag_count,
                           /*scheduler_seed=*/987654);
  (void)replayer.Run(program);
  // A differently-seeded interleaver must have been held back at least once;
  // zero stalls would mean the recorded order was never actually enforced.
  EXPECT_GT(replayer.stalls(), 0u);
}

TEST(ReplayTest, WrongRecordingIsDetected) {
  const Program program = GenerateProgram(ContendedSpec(), 55);
  ProgramSpec other_spec = ContendedSpec();
  other_spec.sections_per_thread = 10;
  const Program other = GenerateProgram(other_spec, 77);
  const Schedule master = RecordMaster(other, 17);
  ReplayScheduler replayer(master, program.lock_count, program.flag_count, 3);
  const Schedule slave = replayer.Run(program);
  // The recording runs out (or misorders) long before the longer program
  // finishes: the replayer reports unsatisfiability instead of hanging —
  // the abstract analogue of the agents' replay deadline (§5.5).
  EXPECT_FALSE(slave.completed);
  EXPECT_NE(slave.failure.find("unsatisfiable"), std::string::npos);
}

// --- CompareSchedules unit behaviour ---

TEST(CompareSchedulesTest, FlagsFirstDivergentSyscall) {
  Schedule a;
  a.syscall_order = {{0, 100}, {1, 200}, {0, 101}};
  Schedule b = a;
  b.syscall_order[2].digest = 999;  // Thread 0's second call differs.
  const auto divergence = CompareSchedules(a, b, 2, 0);
  EXPECT_TRUE(divergence.diverged);
  EXPECT_EQ(divergence.first_tid, 0u);
  EXPECT_EQ(divergence.first_index, 1u);
}

TEST(CompareSchedulesTest, MissingCallsDiverge) {
  Schedule a;
  a.syscall_order = {{0, 100}, {0, 101}};
  Schedule b;
  b.syscall_order = {{0, 100}};
  const auto divergence = CompareSchedules(a, b, 1, 0);
  EXPECT_TRUE(divergence.diverged);
  EXPECT_EQ(divergence.first_index, 1u);
}

TEST(CompareSchedulesTest, IncompleteScheduleIsMaximallyDivergent) {
  Schedule a;
  Schedule b;
  b.completed = false;
  const auto divergence = CompareSchedules(a, b, 1, 1);
  EXPECT_TRUE(divergence.diverged);
  EXPECT_EQ(divergence.mismatch_fraction, 1.0);
}

TEST(CompareSchedulesTest, AcquisitionOrderMismatchCounts) {
  Schedule a;
  a.sync_order = {{0, 0, OpKind::kLock}, {1, 0, OpKind::kLock}};
  Schedule b;
  b.sync_order = {{1, 0, OpKind::kLock}, {0, 0, OpKind::kLock}};
  const auto divergence = CompareSchedules(a, b, 2, 1);
  EXPECT_TRUE(divergence.diverged);
  EXPECT_EQ(divergence.mismatch_fraction, 1.0);
}

TEST(PerVariableOrdersTest, ExtractsAcquisitionsOnly) {
  Schedule schedule;
  schedule.sync_order = {{0, 0, OpKind::kLock},
                         {0, 0, OpKind::kUnlock},
                         {1, 1, OpKind::kLock},
                         {2, 0, OpKind::kLock},
                         {1, 0, OpKind::kSetFlag}};
  const auto orders = PerVariableOrders(schedule, 2);
  ASSERT_EQ(orders.size(), 2u);
  EXPECT_EQ(orders[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(orders[1], (std::vector<uint32_t>{1}));
}

// The quantum scheduler's schedule is a function of where quantum
// boundaries land, so the quantum size itself changes the schedule — the
// reason CoreDet-style systems must fix the quantum as part of the
// "deterministic contract", and a second diversity hazard (variants built
// with different quanta can never agree).
TEST(DiversitySensitivityTest, QuantumSizeChangesTheSchedule) {
  int differs = 0;
  for (uint64_t seed = 40; seed < 45; ++seed) {
    const Program program = GenerateProgram(ContendedSpec(), seed);
    const Schedule small = QuantumScheduler(QuantumConfig{.quantum = 200}).Run(program);
    const Schedule large = QuantumScheduler(QuantumConfig{.quantum = 5000}).Run(program);
    const auto divergence =
        CompareSchedules(small, large, program.thread_count(), program.lock_count);
    differs += divergence.diverged ? 1 : 0;
  }
  EXPECT_GE(differs, 4);
}

// Kendo's wait_bump plays the same role: it feeds the logical clocks, so
// changing it reorders lock grants under contention.
TEST(DiversitySensitivityTest, KendoWaitBumpChangesTheSchedule) {
  int differs = 0;
  for (uint64_t seed = 50; seed < 55; ++seed) {
    const Program program = GenerateProgram(ContendedSpec(), seed);
    const Schedule fast = KendoScheduler(KendoConfig{.wait_bump = 4}).Run(program);
    const Schedule slow = KendoScheduler(KendoConfig{.wait_bump = 256}).Run(program);
    const auto divergence =
        CompareSchedules(fast, slow, program.thread_count(), program.lock_count);
    differs += divergence.diverged ? 1 : 0;
  }
  EXPECT_GE(differs, 4);
}

// --- Respec-style epoch speculation (§6's "doubtful ... in a
// security-oriented MVEE" claim) ---

TEST(RespecTest, LogicalDigestsCommitWithPerfectHints) {
  const Program program = GenerateProgram(ContendedSpec(), 71);
  const Schedule master = RecordMaster(program, 5);
  RespecConfig config;
  config.hint_fidelity = 1.0;  // Perfect imprecise-order hints.
  config.digest_model = EpochDigestModel::kLogical;
  const RespecReport report = RunRespecSlave(program, master, /*master_layout_seed=*/0,
                                             config);
  ASSERT_TRUE(report.schedule.completed) << report.schedule.failure;
  EXPECT_GT(report.epochs, 1u);
  EXPECT_EQ(report.rollbacks, 0u) << "perfect hints => every epoch commits";
}

TEST(RespecTest, ImperfectHintsRollBackAndRepair) {
  const Program program = GenerateProgram(ContendedSpec(), 71);
  const Schedule master = RecordMaster(program, 5);
  RespecConfig config;
  config.hint_fidelity = 0.0;  // Speculation is pure guessing.
  config.digest_model = EpochDigestModel::kLogical;
  config.scheduler_seed = 9;
  const RespecReport report = RunRespecSlave(program, master, 0, config);
  // With a diversity-aware (logical) epoch check, mismatched epochs are
  // detected, rolled back, and repaired by strict re-execution: the run
  // still completes — rollback is the cost, not a failure.
  ASSERT_TRUE(report.schedule.completed) << report.schedule.failure;
  EXPECT_GT(report.rollbacks, 0u);
  EXPECT_GT(report.wasted_cycles, 0u);
}

TEST(RespecTest, ConcreteDigestsWorkForIdenticalVariants) {
  const Program program = GenerateProgram(ContendedSpec(), 71);
  const Schedule master = RecordMaster(program, 5);
  RespecConfig config;
  config.hint_fidelity = 1.0;
  config.digest_model = EpochDigestModel::kConcrete;
  config.layout_seed = 42;  // Same layout as the master: Respec's own
                            // fault-tolerance use case (identical replicas).
  const RespecReport report = RunRespecSlave(program, master, /*master_layout_seed=*/42,
                                             config);
  ASSERT_TRUE(report.schedule.completed) << report.schedule.failure;
  EXPECT_EQ(report.rollbacks, 0u);
}

TEST(RespecTest, ConcreteDigestsFailUnderDiversity) {
  const Program program = GenerateProgram(ContendedSpec(), 71);
  const Schedule master = RecordMaster(program, 5);
  RespecConfig config;
  config.hint_fidelity = 1.0;  // Even with PERFECT speculation...
  config.digest_model = EpochDigestModel::kConcrete;
  config.layout_seed = 43;  // ...a diversified layout poisons the digest.
  const RespecReport report = RunRespecSlave(program, master, /*master_layout_seed=*/42,
                                             config);
  // The first epoch mismatches, strict re-execution reproduces the master's
  // logical schedule exactly and STILL mismatches: undecidable — exactly
  // why the paper rules out Respec-style checking for diversified variants.
  EXPECT_FALSE(report.schedule.completed);
  EXPECT_NE(report.schedule.failure.find("diversity"), std::string::npos);
  EXPECT_EQ(report.epochs, 1u);
}

TEST(RespecTest, FidelitySweepRollbacksDecreaseWithBetterHints) {
  const Program program = GenerateProgram(ContendedSpec(), 72);
  const Schedule master = RecordMaster(program, 6);
  uint32_t rollbacks_low = 0;
  uint32_t rollbacks_high = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RespecConfig config;
    config.scheduler_seed = seed;
    config.hint_fidelity = 0.2;
    rollbacks_low += RunRespecSlave(program, master, 0, config).rollbacks;
    config.hint_fidelity = 1.0;
    rollbacks_high += RunRespecSlave(program, master, 0, config).rollbacks;
  }
  EXPECT_GT(rollbacks_low, rollbacks_high);
  EXPECT_EQ(rollbacks_high, 0u);
}

// --- Makespan sanity ---

TEST(MakespanTest, QuantumSerializesAndBarrierWaits) {
  const Program program = GenerateProgram(ContendedSpec(), 3);
  // Parallel-capable models must not exceed the fully serial one.
  const uint64_t serial = QuantumScheduler().Run(program).makespan;
  const uint64_t os = OsScheduler(OsConfig{.seed = 5}).Run(program).makespan;
  const uint64_t barrier = BarrierScheduler().Run(program).makespan;
  EXPECT_GT(serial, 0u);
  EXPECT_GT(os, 0u);
  EXPECT_GT(barrier, 0u);
  EXPECT_LE(os, serial) << "random interleaver models parallel execution";
  EXPECT_GE(serial, program.TotalCost()) << "the token serializes everything";
}

}  // namespace
}  // namespace mvee::dmt
