#include "mvee/monitor/native.h"

#include "mvee/agents/context.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

// Native futex hook: straight to the kernel futex table, no monitor.
class NativeFutexHook final : public FutexHook {
 public:
  explicit NativeFutexHook(FutexTable* futexes) : futexes_(futexes) {}

  int64_t FutexWait(const std::atomic<int32_t>* word, int32_t expected) override {
    return futexes_->Wait(reinterpret_cast<uint64_t>(word), word, expected);
  }
  int64_t FutexWake(const std::atomic<int32_t>* word, int32_t count) override {
    return futexes_->Wake(reinterpret_cast<uint64_t>(word), count);
  }

 private:
  FutexTable* const futexes_;
};

}  // namespace

NativeRunner::NativeRunner(VirtualKernel* external_kernel, uint64_t seed) {
  if (external_kernel != nullptr) {
    kernel_ = external_kernel;
  } else {
    owned_kernel_ = std::make_unique<VirtualKernel>(seed);
    kernel_ = owned_kernel_.get();
  }
  diversity_ = std::make_unique<DiversityMap>(/*variant_index=*/0, seed, /*enable_aslr=*/true);
  process_ = std::make_unique<ProcessState>(/*pid=*/1000, diversity_->heap_base(),
                                            diversity_->map_base());
}

NativeRunner::~NativeRunner() {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& [tid, thread] : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

int64_t NativeRunner::Trap(uint32_t variant, uint32_t tid, SyscallRequest& request) {
  (void)variant;
  counters_.Count(ClassOf(request.sysno));
  if (request.sysno == Sysno::kClone) {
    return next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  if (request.sysno == Sysno::kMveeSelfAware) {
    return -1;  // "Not running under an MVEE."
  }
  if (request.sysno == Sysno::kSigaction) {
    return 0;  // Handler already stored via SetSignalHandler.
  }
  if (request.sysno == Sysno::kKill) {
    std::lock_guard<std::mutex> lock(signals_mutex_);
    pending_signals_[static_cast<uint32_t>(request.arg0)].push_back(
        static_cast<int32_t>(request.arg1));
    return 0;
  }
  const int64_t retval = kernel_->Execute(*process_, request).retval;

  // Native delivery mirrors the MVEE's: at the target thread's next trap (a
  // real kernel also delivers at kernel-exit boundaries).
  std::vector<int32_t> signals;
  {
    std::lock_guard<std::mutex> lock(signals_mutex_);
    auto pending = pending_signals_.find(tid);
    if (pending != pending_signals_.end()) {
      signals.swap(pending->second);
    }
  }
  for (int32_t sig : signals) {
    SignalHandler handler;
    {
      std::lock_guard<std::mutex> lock(signals_mutex_);
      auto entry = signal_handlers_.find(sig);
      if (entry != signal_handlers_.end()) {
        handler = entry->second;
      }
    }
    if (handler) {
      VariantEnv env(this, /*variant_index=*/0, tid, diversity_.get());
      handler(env);
    }
  }
  return retval;
}

void NativeRunner::SetSignalHandler(uint32_t variant, int32_t sig, SignalHandler handler) {
  (void)variant;
  std::lock_guard<std::mutex> lock(signals_mutex_);
  signal_handlers_[sig] = std::move(handler);
}

void NativeRunner::RunThread(uint32_t tid, const ThreadFn& fn) {
  VariantEnv env(this, /*variant_index=*/0, tid, diversity_.get());
  NativeFutexHook futex_hook(&kernel_->futexes());
  SyncContext context{agent_ != nullptr ? agent_ : NullAgent::Instance(), &futex_hook, tid};
  ScopedSyncContext scoped(&context);
  try {
    fn(env);
  } catch (const VariantKilled&) {
    // Only possible if user code throws it; swallow for symmetry.
  }
}

void NativeRunner::StartThread(uint32_t variant, uint32_t child_tid, ThreadFn fn) {
  (void)variant;
  std::thread thread(
      [this, child_tid, fn = std::move(fn)] { RunThread(child_tid, fn); });
  std::lock_guard<std::mutex> lock(threads_mutex_);
  threads_[child_tid] = std::move(thread);
}

void NativeRunner::JoinThread(uint32_t variant, uint32_t tid) {
  (void)variant;
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    auto it = threads_.find(tid);
    if (it == threads_.end()) {
      return;
    }
    to_join = std::move(it->second);
    threads_.erase(it);
  }
  if (to_join.joinable()) {
    to_join.join();
  }
}

Status NativeRunner::Run(Program program) {
  StartThread(0, 0, program);
  JoinThread(0, 0);
  for (;;) {
    std::thread to_join;
    {
      std::lock_guard<std::mutex> lock(threads_mutex_);
      if (threads_.empty()) {
        break;
      }
      auto it = threads_.begin();
      to_join = std::move(it->second);
      threads_.erase(it);
    }
    if (to_join.joinable()) {
      to_join.join();
    }
  }
  return Status::Ok();
}

}  // namespace mvee
