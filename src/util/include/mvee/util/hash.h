// Hash helpers.
//
// The wall-of-clocks agent maps sync-variable addresses onto a fixed pool of
// logical clocks using a cheap hash (paper §4.5: "Because we want to use a
// cheap hash function, hash collisions are quite likely"). We provide both
// the cheap address hash used on the agent hot path and FNV-1a for general
// hashing (syscall argument digests, VFS paths).

#ifndef MVEE_UTIL_HASH_H_
#define MVEE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mvee {

// FNV-1a 64-bit over a byte range.
constexpr uint64_t FnvHashBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

inline uint64_t FnvHash(std::string_view s) { return FnvHashBytes(s.data(), s.size()); }

// Incremental FNV combiner for streaming digests.
class FnvDigest {
 public:
  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  template <typename T>
  void UpdateValue(const T& value) {
    Update(&value, sizeof(value));
  }

  uint64_t Finish() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Cheap address hash used by the wall-of-clocks agent. Discards the low
// 3 bits before mixing: the paper deliberately assigns adjacent 32-bit sync
// variables within the same 64-bit line to one clock (a CMPXCHG8B could
// modify both at once), so addresses are bucketed at 8-byte granularity.
constexpr uint64_t ClockAddressHash(uint64_t address) {
  uint64_t x = address >> 3;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace mvee

#endif  // MVEE_UTIL_HASH_H_
