// Respec-style speculative online replay (Lee et al. [25], paper §6).
//
// Respec records an *imprecise* synchronization order in the master and
// replays it speculatively in the slaves; at the end of each replay epoch
// it compares the processes' state (including register contents) and rolls
// the slaves back on mismatch. The paper doubts this can work for a
// security-oriented MVEE: "diversity in the variants makes it hard (if not
// impossible) to detect whether the variants have diverged at the end of a
// replay interval" — diversified variants *never* have equal low-level
// state, so the epoch check cannot distinguish scheduling divergence from
// harmless layout differences.
//
// This module makes that argument measurable. The epoch replayer runs a
// variant without per-op enforcement, splits execution into epochs of
// `epoch_ops` sync ops, and compares an end-of-epoch state digest against
// the master's. Two digest models:
//
//   kLogical  — digests only logical state (per-variable acquisition counts
//               and orders): what an idealized, diversity-aware checker
//               could see. Mismatches happen only on real scheduling
//               divergence; rollback + strict re-execution repairs them.
//   kConcrete — additionally folds each variant's (simulated) address-space
//               layout into the digest, as a register/memory-level
//               comparison of diversified variants would: every epoch
//               mismatches, the replayer degenerates to rollback-always,
//               and speculation buys nothing. This is the §6 objection.

#ifndef MVEE_DMT_RESPEC_H_
#define MVEE_DMT_RESPEC_H_

#include <cstdint>

#include "mvee/dmt/program.h"
#include "mvee/dmt/schedule.h"
#include "mvee/dmt/scheduler.h"

namespace mvee::dmt {

enum class EpochDigestModel : uint8_t {
  kLogical = 0,  // Layout-independent logical state only.
  kConcrete,     // Includes diversity-dependent layout (register-level).
};

struct RespecConfig {
  uint32_t epoch_ops = 64;  // Sync ops per speculative epoch.
  EpochDigestModel digest_model = EpochDigestModel::kLogical;
  // Per-variant layout seed folded into concrete digests (stands in for the
  // diversified address-space contents Respec would compare). Equal seeds =
  // identical variants; different seeds = diversified variants.
  uint64_t layout_seed = 0;
  uint64_t scheduler_seed = 1;
  // Probability that the speculative pass follows the master's recorded
  // global order at each step — Respec's "imprecise order" hints. 1.0 means
  // perfect hints (epochs always match logically); lower values make the
  // speculative interleaving drift and trigger rollbacks.
  double hint_fidelity = 0.95;
  // A rollback re-executes the epoch strictly; if the digest still
  // mismatches (possible only under kConcrete with diversified layouts) the
  // epoch check is undecidable and the run aborts after this many attempts.
  uint32_t max_retries = 1;
  OpCosts costs;
};

struct RespecReport {
  uint32_t epochs = 0;
  uint32_t rollbacks = 0;
  // Virtual cycles spent on work that was rolled back and re-executed.
  uint64_t wasted_cycles = 0;
  Schedule schedule;
};

// Runs `program` as a Respec slave against the recorded `master` schedule
// and the master's layout seed (for the concrete digest model).
RespecReport RunRespecSlave(const Program& program, const Schedule& master,
                            uint64_t master_layout_seed, const RespecConfig& config);

}  // namespace mvee::dmt

#endif  // MVEE_DMT_RESPEC_H_
