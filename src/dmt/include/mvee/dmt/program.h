// Abstract data-race-free programs for the DMT-vs-Record/Replay study.
//
// The paper argues (§2.1, §6) that deterministic multithreading (DMT) is a
// poor fit for MVEEs because DMT systems schedule threads by *logical
// progress* — retired-instruction counts read from hardware performance
// counters — and software diversification changes instruction counts. Each
// diversified variant then gets a schedule that is fixed but *different*,
// which is exactly the "benign divergence" MVEEs must avoid. Record/Replay,
// by contrast, replays the master's observed order and is insensitive to
// progress perturbations.
//
// This module makes that argument measurable. A DmtProgram is a per-thread
// sequence of abstract operations (compute blocks with instruction costs,
// well-nested lock/unlock pairs, MVEE-visible syscalls, and ad-hoc flag
// synchronization à la the paper's Listing 2). Diversification is modelled
// by perturbing compute costs (PerturbCosts) — the precise effect diversity
// has on a performance-counter-driven scheduler. The schedulers in
// scheduler.h then execute these programs deterministically and we compare
// the schedules across "variants".

#ifndef MVEE_DMT_PROGRAM_H_
#define MVEE_DMT_PROGRAM_H_

#include <cstdint>
#include <vector>

namespace mvee::dmt {

enum class OpKind : uint8_t {
  kCompute = 0,  // `cost` simulated instructions, no communication.
  kLock,         // Acquire lock `var`.
  kUnlock,       // Release lock `var`.
  kSyscall,      // MVEE-visible system call; carries the thread's observation
                 // digest as its "argument" (see schedule.h).
  kSetFlag,      // Ad-hoc synchronization: store 1 to flag `var` (the plain
                 // volatile store of the paper's Listing 2).
  kWaitFlag,     // Ad-hoc synchronization: spin until flag `var` is set. The
                 // spin itself performs no sync op — the pattern that breaks
                 // sync-op-barrier DMT systems (§6).
};

const char* OpKindName(OpKind kind);

struct Op {
  OpKind kind = OpKind::kCompute;
  uint32_t var = 0;    // Lock id (kLock/kUnlock) or flag id (kSetFlag/kWaitFlag).
  uint64_t cost = 0;   // Simulated instructions (kCompute; others use fixed costs).
};

// One abstract data-race-free multithreaded program.
struct Program {
  uint32_t lock_count = 0;
  uint32_t flag_count = 0;
  std::vector<std::vector<Op>> threads;

  uint32_t thread_count() const { return static_cast<uint32_t>(threads.size()); }
  // Total simulated instructions across all threads (compute costs plus the
  // fixed costs schedulers charge for sync ops).
  uint64_t TotalCost() const;
};

// Knobs for the random program generator. Generated programs are data-race
// free by construction: locks are never nested (so no deadlock), every lock
// has a matching unlock, and flag waits always have a flag setter in another
// thread that is not itself gated on the waiting thread.
struct ProgramSpec {
  uint32_t threads = 4;
  uint32_t locks = 8;
  uint32_t sections_per_thread = 50;  // Critical sections per thread.
  uint64_t compute_cost_mean = 200;   // Instructions between sections.
  uint64_t critical_cost_mean = 40;   // Instructions inside a section.
  double syscall_probability = 0.3;   // P(syscall after a section).
  // Ad-hoc flag pairs: thread 2k sets flag k that thread 2k+1 waits on
  // mid-program. 0 disables.
  uint32_t flag_pairs = 0;
};

Program GenerateProgram(const ProgramSpec& spec, uint64_t seed);

// Models software diversification as seen by a performance-counter-driven
// scheduler: every compute cost is scaled by an independent factor drawn
// uniformly from [1-epsilon, 1+epsilon] (result clamped to >= 1). epsilon=0
// returns an identical copy. The *logic* of the program (ops, vars, order)
// is untouched — diversified variants are functionally equivalent.
Program PerturbCosts(const Program& program, double epsilon, uint64_t seed);

}  // namespace mvee::dmt

#endif  // MVEE_DMT_PROGRAM_H_
