// Divergence detection and MVEE shutdown fan-out.
//
// The first divergence (or stall/timeout) report wins; it trips the global
// abort flag, wakes every parked variant thread (monitor rendezvous, kernel
// futexes, listeners, pipes) and records the detail for the final report.
// "MVEEs terminate execution upon detection of divergence" (paper §1).

#ifndef MVEE_MONITOR_REPORTER_H_
#define MVEE_MONITOR_REPORTER_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/util/status.h"

namespace mvee {

class DivergenceReporter {
 public:
  // Registers a wakeup hook to run when the reporter trips (thread-set
  // monitors broadcast their CVs; the kernel wakes futexes and closes
  // listeners). Hooks run once, on the reporting thread.
  void AddShutdownHook(std::function<void()> hook);

  // Reports a divergence/timeout. Only the first report is recorded; all
  // reports trip the abort flag.
  void Report(StatusCode code, const std::string& detail);

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  const std::atomic<bool>* abort_flag() const { return &tripped_; }
  // Status of the first report; OK if never tripped.
  Status status() const;

 private:
  std::atomic<bool> tripped_{false};
  mutable std::mutex mutex_;
  Status first_status_;
  bool have_status_ = false;
  std::vector<std::function<void()>> hooks_;
  bool hooks_run_ = false;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_REPORTER_H_
