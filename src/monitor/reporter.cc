#include "mvee/monitor/reporter.h"

#include "mvee/util/log.h"

namespace mvee {

void DivergenceReporter::AddShutdownHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (hooks_run_) {
    hook();  // Late registration after a trip: run immediately.
    return;
  }
  hooks_.push_back(std::move(hook));
}

void DivergenceReporter::Report(StatusCode code, const std::string& detail) {
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!have_status_) {
      first_status_ = Status(code, detail);
      have_status_ = true;
      MVEE_LOG(kWarn) << "MVEE shutdown: " << first_status_.ToString();
    }
    tripped_.store(true, std::memory_order_release);
    if (!hooks_run_) {
      hooks_run_ = true;
      to_run.swap(hooks_);
    }
  }
  for (auto& hook : to_run) {
    hook();
  }
}

Status DivergenceReporter::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return have_status_ ? first_status_ : Status::Ok();
}

}  // namespace mvee
