// Virtual TCP-lite network.
//
// The nginx-style use case (paper §5.5) needs a server that accepts
// connections and a wrk-style client generating load. The virtual network
// provides per-port listeners with accept queues and bidirectional byte
// stream connections. Only the master variant executes network I/O; results
// are replicated (accept/connect/send/recv are kReplicated syscalls).
//
// Connections and listeners are waitable: each owns a WaitQueue fired on
// every state change (sys_poll parks on it instead of re-scanning on a sleep
// quantum) and registers in the kernel's WaitRegistry so teardown closes
// everything from one place (waitq.h).

#ifndef MVEE_VKERNEL_NET_H_
#define MVEE_VKERNEL_NET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>

#include "mvee/vkernel/vobject.h"
#include "mvee/vkernel/waitq.h"

namespace mvee {

// One direction of a connection: a bounded blocking byte stream. `sink` is
// the owning connection's WaitQueue, fired on every state change.
class ByteStream {
 public:
  explicit ByteStream(size_t capacity = 262144, WaitQueue* sink = nullptr)
      : capacity_(capacity), sink_(sink) {}

  // Blocks until data or close. Returns bytes read; 0 on orderly shutdown.
  int64_t Read(uint8_t* out, uint64_t size);
  // Blocks while full. Returns size, or -ECONNRESET if the peer closed.
  int64_t Write(const uint8_t* data, uint64_t size);
  void Close();
  bool closed() const;
  // Readiness queries for sys_poll: a Read would not block / a Write of at
  // least one byte would not block.
  bool Readable() const;
  bool Writable() const;

 private:
  void NotifySink() {
    if (sink_ != nullptr) {
      sink_->Notify();
    }
  }

  const size_t capacity_;
  WaitQueue* const sink_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<uint8_t> buffer_;
  bool closed_ = false;
};

// A full-duplex connection: the accept side reads what the connect side
// writes and vice versa.
class VConnection : public VObject, public Waitable {
 public:
  explicit VConnection(WaitRegistry* registry = nullptr)
      : client_to_server_(kStreamCapacity, &waitq_),
        server_to_client_(kStreamCapacity, &waitq_) {
    RegisterWaitable(registry);
  }
  // Unregister while the members a concurrent ShutdownWake touches still
  // exist (see Waitable::UnregisterWaitable).
  ~VConnection() override { UnregisterWaitable(); }

  // Server-side (accepted socket) operations.
  int64_t ServerRead(uint8_t* out, uint64_t size) { return client_to_server_.Read(out, size); }
  int64_t ServerWrite(const uint8_t* data, uint64_t size) {
    return server_to_client_.Write(data, size);
  }
  // Client-side operations.
  int64_t ClientRead(uint8_t* out, uint64_t size) { return server_to_client_.Read(out, size); }
  int64_t ClientWrite(const uint8_t* data, uint64_t size) {
    return client_to_server_.Write(data, size);
  }

  bool ServerReadable() const { return client_to_server_.Readable(); }
  bool ServerWritable() const { return server_to_client_.Writable(); }
  bool ClientReadable() const { return server_to_client_.Readable(); }
  bool ClientWritable() const { return client_to_server_.Writable(); }

  void CloseServerSide() { server_to_client_.Close(); }
  void CloseClientSide() { client_to_server_.Close(); }
  void CloseBoth() {
    client_to_server_.Close();
    server_to_client_.Close();
  }

  WaitQueue* waitq() override { return &waitq_; }
  void ShutdownWake() override { CloseBoth(); }

 private:
  static constexpr size_t kStreamCapacity = 262144;

  WaitQueue waitq_;
  ByteStream client_to_server_;
  ByteStream server_to_client_;
};

// Listening socket: pending-connection queue.
class VListener : public VObject, public Waitable {
 public:
  explicit VListener(int backlog, WaitRegistry* registry = nullptr) : backlog_(backlog) {
    RegisterWaitable(registry);
  }
  // Unregister while the members a concurrent ShutdownWake touches still
  // exist (see Waitable::UnregisterWaitable).
  ~VListener() override { UnregisterWaitable(); }

  // Client side: enqueues a new connection; fails with -ECONNREFUSED if the
  // listener is closed or the backlog is full.
  int64_t PushConnection(VRef<VConnection> conn);
  // Server side: blocks until a connection or close. nullptr on close.
  VRef<VConnection> Accept();
  // Non-blocking half for wait-queue-driven accepts: pops a pending
  // connection, or returns nullptr with *closed set when the listener died.
  VRef<VConnection> TryAccept(bool* closed);
  // sys_poll readiness: an Accept would not block.
  bool HasPending() const;
  void Close();

  WaitQueue* waitq() override { return &waitq_; }
  void ShutdownWake() override { Close(); }

 private:
  const int backlog_;
  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::deque<VRef<VConnection>> pending_;
  WaitQueue waitq_;
  bool closed_ = false;
};

// Port -> listener registry shared by the whole machine. When constructed by
// a VirtualKernel it carries the kernel's WaitRegistry, which every listener
// and connection it creates registers with.
class VirtualNetwork {
 public:
  explicit VirtualNetwork(WaitRegistry* registry = nullptr) : registry_(registry) {}

  // Returns 0 or -EADDRINUSE.
  int64_t Listen(uint16_t port, int backlog, VRef<VListener>* out);
  // Returns a connected VConnection or nullptr (-ECONNREFUSED semantics).
  VRef<VConnection> Connect(uint16_t port);
  void CloseListener(uint16_t port);
  // Closes every listener and empties the port map. Live connections belong
  // to the WaitRegistry (ShutdownAll closes them); a standalone network
  // (tests) closes only what it tracks.
  void CloseAll();

 private:
  WaitRegistry* const registry_;
  std::mutex mutex_;
  std::map<uint16_t, VRef<VListener>> listeners_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_NET_H_
