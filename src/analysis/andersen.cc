#include "mvee/analysis/andersen.h"

#include <deque>

#include "mvee/analysis/constraints.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/analysis/wave_solver.h"

namespace mvee {

namespace {

// The textbook worklist solver over std::set — the seed implementation,
// kept verbatim in spirit as the measurable baseline (same role as the
// global-lock recording path behind MVEE_SHARDED_RECORDING=0). One register
// pops at a time and re-inserts its entire points-to set into every
// successor; indirect calls re-resolve against the full set on every pop.
struct BaselineSolution {
  std::vector<std::set<int32_t>> points_to;
  AnalysisStats stats;
};

BaselineSolution SolveBaseline(const MirModule& module, const ConstraintProgram& program) {
  BaselineSolution solution;
  AnalysisStats& stats = solution.stats;
  stats.solver = "andersen-baseline";
  stats.constraints =
      program.addr_of.size() + program.copies.size() + program.indirect_calls.size();
  stats.call_edges_resolved = program.direct_call_edges;

  const int32_t n = program.reg_count;
  auto& points_to = solution.points_to;
  points_to.resize(n);
  std::vector<std::vector<int32_t>> copy_targets(n);
  // Indirect call sites keyed by their function-pointer register.
  std::vector<std::vector<size_t>> sites_on_reg(n);
  std::vector<std::set<int32_t>> resolved(program.indirect_calls.size());

  std::deque<int32_t> worklist;
  for (const auto& [dst, object] : program.addr_of) {
    if (dst >= 0 && dst < n && object >= 0 && points_to[dst].insert(object).second) {
      worklist.push_back(dst);
    }
  }
  for (const auto& [dst, src] : program.copies) {
    if (dst >= 0 && dst < n && src >= 0 && src < n && dst != src) {
      copy_targets[src].push_back(dst);
      ++stats.copy_edges;
      worklist.push_back(src);
    }
  }
  for (size_t site = 0; site < program.indirect_calls.size(); ++site) {
    const int32_t fptr = program.indirect_calls[site].fptr;
    if (fptr >= 0 && fptr < n) {
      sites_on_reg[fptr].push_back(site);
      worklist.push_back(fptr);
    }
  }

  std::vector<std::pair<int32_t, int32_t>> new_edges;
  while (!worklist.empty()) {
    ++stats.solver_iterations;
    const int32_t reg = worklist.front();
    worklist.pop_front();
    for (int32_t target : copy_targets[reg]) {
      bool changed = false;
      for (int32_t object : points_to[reg]) {
        changed |= points_to[target].insert(object).second;
      }
      if (changed) {
        worklist.push_back(target);
      }
    }
    // On-the-fly call graph: new function objects in pts(reg) bind new
    // callees at the sites dispatching through reg.
    for (size_t site : sites_on_reg[reg]) {
      const IndirectCallConstraint& call = program.indirect_calls[site];
      for (int32_t object : points_to[reg]) {
        if (static_cast<size_t>(object) >= program.object_function.size()) {
          continue;
        }
        const int32_t callee = program.object_function[object];
        if (callee < 0 || !resolved[site].insert(callee).second) {
          continue;
        }
        ++stats.call_edges_resolved;
        new_edges.clear();
        AppendCallCopies(module, callee, call.dst, call.args, &new_edges);
        for (const auto& [dst, src] : new_edges) {
          if (dst >= 0 && dst < n && src >= 0 && src < n && dst != src) {
            copy_targets[src].push_back(dst);
            ++stats.copy_edges;
            worklist.push_back(src);
          }
        }
      }
    }
  }

  for (const auto& set : points_to) {
    // std::set stores one red-black node (~64 bytes with pointers, color,
    // and the payload) per element — the representation cost the sparse
    // bitmaps exist to kill.
    stats.points_to_bytes += sizeof(set) + set.size() * 64;
  }
  return solution;
}

}  // namespace

AndersenAnalysis::AndersenAnalysis(const MirModule& module, const AnalysisOptions& options) {
  const ConstraintProgram program = BuildConstraintProgram(module);
  if (options.fast_solver) {
    WaveSolution solution = SolveWave(module, program);
    rep_ = std::move(solution.rep);
    pts_ = std::move(solution.pts);
    stats_ = std::move(solution.stats);
  } else {
    BaselineSolution solution = SolveBaseline(module, program);
    stats_ = std::move(solution.stats);
    const int32_t n = program.reg_count;
    rep_.resize(n);
    pts_.resize(n);
    for (int32_t reg = 0; reg < n; ++reg) {
      rep_[reg] = reg;
      for (int32_t object : solution.points_to[reg]) {
        pts_[reg].Insert(static_cast<uint32_t>(object));
      }
    }
  }
}

std::set<int32_t> AndersenAnalysis::PointsTo(int32_t reg) const {
  std::set<int32_t> result;
  ForEachPointee(reg, [&](int32_t object) { result.insert(result.end(), object); });
  return result;
}

std::vector<int32_t> AndersenAnalysis::PointsToSorted(int32_t reg) const {
  std::vector<int32_t> result;
  ForEachPointee(reg, [&](int32_t object) { result.push_back(object); });
  return result;  // ForEach yields ascending ids already.
}

bool AndersenAnalysis::PointsToObject(int32_t reg, int32_t object) const {
  if (reg < 0 || static_cast<size_t>(reg) >= rep_.size() || object < 0) {
    return false;
  }
  return pts_[rep_[reg]].Test(static_cast<uint32_t>(object));
}

bool AndersenAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  if (reg_a < 0 || static_cast<size_t>(reg_a) >= rep_.size() || reg_b < 0 ||
      static_cast<size_t>(reg_b) >= rep_.size()) {
    return false;
  }
  return pts_[rep_[reg_a]].Intersects(pts_[rep_[reg_b]]);
}

bool AndersenAnalysis::MayPointInto(int32_t reg, const std::set<int32_t>& objects) const {
  if (reg < 0 || static_cast<size_t>(reg) >= rep_.size()) {
    return false;
  }
  const SparseBitmap& pts = pts_[rep_[reg]];
  for (int32_t object : objects) {
    if (object >= 0 && pts.Test(static_cast<uint32_t>(object))) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<int32_t, int32_t>> ResolveCallCopies(const MirModule& module,
                                                           const AnalysisOptions& options) {
  std::vector<std::pair<int32_t, int32_t>> copies;
  bool has_indirect = false;
  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      if (inst.op == MirOp::kIndirectCall) {
        has_indirect = true;
      } else if (inst.op == MirOp::kCall) {
        const int32_t callee = (inst.object >= 0 &&
                                static_cast<size_t>(inst.object) < module.objects.size())
                                   ? module.objects[inst.object].function_index
                                   : -1;
        AppendCallCopies(module, callee, inst.dst, inst.args, &copies);
      }
    }
  }
  if (!has_indirect) {
    return copies;
  }
  // Indirect callees come from the points-to fixpoint.
  const AndersenAnalysis points_to(module, options);
  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      if (inst.op != MirOp::kIndirectCall) {
        continue;
      }
      points_to.ForEachPointee(inst.ptr, [&](int32_t object) {
        const int32_t callee = module.objects[object].function_index;
        if (callee >= 0) {
          AppendCallCopies(module, callee, inst.dst, inst.args, &copies);
        }
      });
    }
  }
  return copies;
}

SyncOpReport IdentifySyncOpsAndersen(const MirModule& module,
                                     const SyncOpAnalysisOptions& options) {
  SyncOpReport report;
  report.module_name = module.name;

  AndersenAnalysis points_to(module, options.analysis);
  report.stats = points_to.stats();

  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op == MirOp::kLockRmw) {
        report.type_i.push_back({function.name, i, inst.source_line, inst.op});
        points_to.ForEachPointee(inst.ptr,
                                 [&](int32_t object) { report.sync_objects.insert(object); });
      } else if (inst.op == MirOp::kXchg) {
        report.type_ii.push_back({function.name, i, inst.source_line, inst.op});
        points_to.ForEachPointee(inst.ptr,
                                 [&](int32_t object) { report.sync_objects.insert(object); });
      }
    }
  }

  if (options.treat_volatile_as_sync) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        report.sync_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLoad && inst.op != MirOp::kStore) {
        continue;
      }
      if (points_to.MayPointInto(inst.ptr, report.sync_objects)) {
        report.type_iii.push_back({function.name, i, inst.source_line, inst.op});
      } else {
        ++report.unmarked_memops;
      }
    }
  }
  return report;
}

}  // namespace mvee
