// Integration sweep: every benchmark stand-in under the MVEE (the full §5.1
// correctness matrix at test scale), plus VariantEnv API edge coverage that
// the workload shapes do not reach (pipes, dup, pread/pwrite, lseek whence
// modes, fd exhaustion behaviour, unordered-mode demonstration).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/workloads/workload.h"

namespace mvee {
namespace {

MveeOptions TestOptions(uint32_t variants = 2) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  return options;
}

std::string ResultOf(VirtualKernel& kernel, const std::string& name) {
  auto file = kernel.vfs().Open("result/" + name, false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

// The full correctness sweep, one test per benchmark: 2 variants, ASLR on,
// result digest equal to a native run's.
class AllWorkloadsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AllWorkloadsTest, MveeMatchesNative) {
  const WorkloadConfig& config = AllWorkloads()[GetParam()];
  const double scale = 0.02;

  std::string reference;
  {
    NativeRunner runner;
    ASSERT_TRUE(runner.Run(MakeWorkloadProgram(config, scale)).ok());
    reference = ResultOf(runner.kernel(), config.name);
  }
  ASSERT_FALSE(reference.empty());

  MveeOptions options = TestOptions(2);
  options.enable_aslr = true;
  Mvee mvee(options);
  const Status status = mvee.Run(MakeWorkloadProgram(config, scale));
  EXPECT_TRUE(status.ok()) << config.name << ": " << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), config.name), reference) << config.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllWorkloadsTest, ::testing::Range<size_t>(0, 25),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           const WorkloadConfig& config = AllWorkloads()[info.param];
                           return std::string(config.suite) + "_" + config.name;
                         });

TEST(EnvEdgeTest, PipeRoundTripUnderMvee) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    auto [rfd, wfd] = env.Pipe();
    ASSERT_GE(rfd, 0);
    ASSERT_GE(wfd, 0);
    auto reader_fd = std::make_shared<int64_t>(rfd);
    ThreadHandle reader = env.Spawn([reader_fd](VariantEnv& wenv) {
      std::vector<uint8_t> buffer(16);
      const int64_t n = wenv.Read(*reader_fd, buffer);
      EXPECT_EQ(n, 5);
      EXPECT_EQ(std::string(buffer.begin(), buffer.begin() + n), "hello");
    });
    env.Write(wfd, std::string("hello"));
    env.Close(wfd);
    env.Join(reader);
    env.Close(rfd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, PreadPwriteAndLseek) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t fd = env.Open("file", VOpenFlags::kWrite | VOpenFlags::kRead |
                                            VOpenFlags::kCreate | VOpenFlags::kTruncate);
    env.Write(fd, std::string("0123456789"));

    std::vector<uint8_t> buffer(4);
    EXPECT_EQ(env.Pread(fd, 2, buffer), 4);
    EXPECT_EQ(std::string(buffer.begin(), buffer.end()), "2345");

    const std::string patch = "AB";
    env.Pwrite(fd, 4, {reinterpret_cast<const uint8_t*>(patch.data()), patch.size()});

    // SEEK_END then read back the patched region.
    EXPECT_EQ(env.Lseek(fd, -6, 2), 4);
    EXPECT_EQ(env.Read(fd, buffer), 4);
    EXPECT_EQ(std::string(buffer.begin(), buffer.end()), "AB67");
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, DupAndFcntl) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t fd =
        env.Open("d", VOpenFlags::kWrite | VOpenFlags::kCreate);
    const int64_t dup = env.Dup(fd);
    EXPECT_GT(dup, fd);
    env.Write(dup, std::string("via dup"));
    env.Close(fd);
    env.Close(dup);
    EXPECT_EQ(env.Dup(999), -EBADF);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, StatUnlinkLifecycle) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    EXPECT_LT(env.Stat("ghost"), 0);
    const int64_t fd = env.Open("real", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::string("xyz"));
    env.Close(fd);
    EXPECT_EQ(env.Stat("real"), 3);  // Size.
    EXPECT_EQ(env.Unlink("real"), 0);
    EXPECT_LT(env.Stat("real"), 0);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, ErrorRetvalsAreReplicatedConsistently) {
  Mvee mvee(TestOptions(3));
  const Status status = mvee.Run([](VariantEnv& env) {
    // Failing calls must produce identical errno in every variant.
    EXPECT_EQ(env.Open("missing", VOpenFlags::kRead), -ENOENT);
    std::vector<uint8_t> buffer(4);
    EXPECT_EQ(env.Read(99, buffer), -EBADF);
    EXPECT_EQ(env.Close(1234), -EBADF);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, RdtscMonotonicAndReplicated) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t t1 = env.Rdtsc();
    const int64_t t2 = env.Rdtsc();
    EXPECT_GT(t2, t1);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(EnvEdgeTest, MmapFailurePathsCompared) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    EXPECT_EQ(env.Mmap(0, VProt::kRead), -EINVAL);
    const int64_t addr = env.Mmap(4096, VProt::kRead);
    ASSERT_GT(addr, 0);
    EXPECT_EQ(env.Munmap(addr + 4096, 4096), -EINVAL);  // Wrong address.
    EXPECT_EQ(env.Munmap(addr, 4096), 0);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Disabling the syscall ordering clock reproduces §3.1's benign-divergence
// hazard: concurrent opens can hand different fds to equivalent threads.
// Because the race is timing-dependent we only verify the knob's mechanics:
// with ordering ON the fd assignment is always consistent (asserted
// elsewhere); with ordering OFF the MVEE must either finish consistently or
// report a divergence — never hang or crash.
TEST(OrderingKnobTest, UnorderedModeFailsSoftly) {
  for (int round = 0; round < 5; ++round) {
    MveeOptions options = TestOptions(2);
    options.order_resource_calls = false;
    options.rendezvous_timeout = std::chrono::milliseconds(5000);
    options.seed = 900 + round;
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) {
      auto opener = [](const std::string& path) {
        return [path](VariantEnv& wenv) {
          const int64_t fd = wenv.Open(path, VOpenFlags::kCreate | VOpenFlags::kWrite);
          wenv.Write(fd, path + "@" + std::to_string(fd));
          wenv.Close(fd);
        };
      };
      ThreadHandle a = env.Spawn(opener("ua"));
      ThreadHandle b = env.Spawn(opener("ub"));
      env.Join(a);
      env.Join(b);
    });
    // Either outcome is legal; the process-level property is "no hang".
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kDivergence);
    }
  }
}

// --- sys_poll: the event-loop primitive (replicated readiness) ---

TEST(PollTest, FileAlwaysReadyPipeGated) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t file_fd =
        env.Open("pollfile", VOpenFlags::kWrite | VOpenFlags::kCreate);
    auto [read_fd, write_fd] = env.Pipe();

    VariantEnv::PollFd fds[2];
    fds[0] = {static_cast<int32_t>(file_fd), PollEvents::kIn | PollEvents::kOut, 0};
    fds[1] = {static_cast<int32_t>(read_fd), PollEvents::kIn, 0};
    // Non-blocking poll: the file is ready, the empty pipe is not.
    EXPECT_EQ(env.Poll(fds, 0), 1);
    EXPECT_EQ(fds[0].revents, PollEvents::kIn | PollEvents::kOut);
    EXPECT_EQ(fds[1].revents, 0);

    // Data in the pipe makes it readable.
    env.Write(write_fd, std::string("x"));
    fds[1].revents = 0;
    EXPECT_EQ(env.Poll(fds, 0), 2);
    EXPECT_EQ(fds[1].revents, PollEvents::kIn);

    env.Close(file_fd);
    env.Close(read_fd);
    env.Close(write_fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PollTest, TimeoutExpiresAtZeroReady) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    auto [read_fd, write_fd] = env.Pipe();
    VariantEnv::PollFd fds[1];
    fds[0] = {static_cast<int32_t>(read_fd), PollEvents::kIn, 0};
    EXPECT_EQ(env.Poll(fds, 20), 0);  // 20ms timeout, nothing arrives.
    EXPECT_EQ(fds[0].revents, 0);
    env.Close(read_fd);
    env.Close(write_fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PollTest, EventLoopServesSocketWithPoll) {
  // A miniature event loop: poll on {listener, connection}, accept and echo
  // — the architecture real nginx uses, running lockstepped. Readiness is
  // observed by the master and replicated, so all variants take identical
  // paths through the loop.
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t listen_fd = env.Socket();
    ASSERT_EQ(env.Bind(listen_fd, 7777), 0);
    ASSERT_EQ(env.Listen(listen_fd, 4), 0);

    ThreadHandle client = env.Spawn([](VariantEnv& wenv) {
      const int64_t fd = wenv.Socket();
      ASSERT_EQ(wenv.Connect(fd, 7777), 0);
      wenv.Send(fd, std::string("ping"));
      std::vector<uint8_t> buffer(16);
      const int64_t n = wenv.Recv(fd, buffer);
      ASSERT_EQ(n, 4);
      EXPECT_EQ(std::string(buffer.begin(), buffer.begin() + n), "pong");
      wenv.Shutdown(fd);
      wenv.Close(fd);
    });

    // Event loop: wait for the listener, accept; wait for the connection,
    // echo; two poll-gated steps instead of blocking accept/recv.
    VariantEnv::PollFd accept_set[1];
    accept_set[0] = {static_cast<int32_t>(listen_fd), PollEvents::kIn, 0};
    ASSERT_EQ(env.Poll(accept_set, -1), 1);
    ASSERT_EQ(accept_set[0].revents, PollEvents::kIn);
    const int64_t conn_fd = env.Accept(listen_fd);
    ASSERT_GE(conn_fd, 0);

    VariantEnv::PollFd conn_set[1];
    conn_set[0] = {static_cast<int32_t>(conn_fd), PollEvents::kIn, 0};
    ASSERT_EQ(env.Poll(conn_set, -1), 1);
    std::vector<uint8_t> buffer(16);
    const int64_t n = env.Recv(conn_fd, buffer);
    ASSERT_EQ(n, 4);
    env.Send(conn_fd, std::string("pong"));

    env.Join(client);
    env.Close(conn_fd);
    env.Close(listen_fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(PollTest, InvalidFdReportsHangup) {
  Mvee mvee(TestOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    VariantEnv::PollFd fds[1];
    fds[0] = {9999, PollEvents::kIn, 0};
    EXPECT_EQ(env.Poll(fds, 0), 1);
    EXPECT_EQ(fds[0].revents, PollEvents::kHup);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(FourVariantTest, WorkloadWithMaxVariants) {
  const WorkloadConfig* config = FindWorkload("barnes");
  ASSERT_NE(config, nullptr);
  MveeOptions options = TestOptions(4);
  options.enable_aslr = true;
  options.enable_dcl = true;
  Mvee mvee(options);
  const Status status = mvee.Run(MakeWorkloadProgram(*config, 0.01));
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(mvee.report().sync_ops_replayed, 3 * mvee.report().sync_ops_recorded);
}

}  // namespace
}  // namespace mvee
