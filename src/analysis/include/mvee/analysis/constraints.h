// Inclusion-constraint extraction shared by the Andersen engines.
//
// Both the textbook std::set solver and the wave-propagation solver
// (wave_solver.h) must implement the *same* constraint semantics — the
// differential tests demand bit-identical solutions — so the translation
// from MIR to constraints lives here, once:
//
//   AddrOf/Alloc   p = &x          {x} ⊆ pts(p)
//   Mov/Gep        p = q           pts(q) ⊆ pts(p)
//   kCall          r = f(a0..an)   pts(ai) ⊆ pts(param_i(f)),
//                                  pts(ret(f)) ⊆ pts(r)
//   kIndirectCall  r = (*fp)(...)  for every function object F ∈ pts(fp):
//                                  the kCall rule with callee F
//
// Direct calls have a static callee, so their parameter/return flow lowers
// to plain copy edges at build time. Indirect calls stay symbolic: their
// callee set grows with the points-to solution (the mutually-recursive
// call-graph / points-to fixpoint), so the solvers resolve them on the fly.

#ifndef MVEE_ANALYSIS_CONSTRAINTS_H_
#define MVEE_ANALYSIS_CONSTRAINTS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mvee/analysis/mir.h"
#include "mvee/analysis/stats.h"

namespace mvee {

// One unresolved indirect call site.
struct IndirectCallConstraint {
  int32_t fptr = -1;          // Function-pointer register.
  int32_t dst = -1;           // Register receiving the return value (-1 = none).
  std::vector<int32_t> args;  // Argument registers, positional.
};

struct ConstraintProgram {
  int32_t reg_count = 0;
  // (dst register, object): {object} ⊆ pts(dst).
  std::vector<std::pair<int32_t, int32_t>> addr_of;
  // (dst, src): pts(src) ⊆ pts(dst). Includes lowered direct-call edges.
  std::vector<std::pair<int32_t, int32_t>> copies;
  std::vector<IndirectCallConstraint> indirect_calls;
  // object id -> function index (>= 0) for function objects, else -1.
  std::vector<int32_t> object_function;
  // Direct call-graph edges resolved at build time (one per kCall site with
  // a valid callee; their copy edges are already lowered into `copies`).
  uint64_t direct_call_edges = 0;
};

ConstraintProgram BuildConstraintProgram(const MirModule& module);

// Appends the copy edges (dst, src) induced by binding call site
// (dst, args) to `callee` (a function index): args -> params positionally,
// callee return_reg -> dst. Returns how many edges were appended.
size_t AppendCallCopies(const MirModule& module, int32_t callee_function, int32_t call_dst,
                        const std::vector<int32_t>& args,
                        std::vector<std::pair<int32_t, int32_t>>* out);

}  // namespace mvee

#endif  // MVEE_ANALYSIS_CONSTRAINTS_H_
