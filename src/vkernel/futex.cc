#include "mvee/vkernel/futex.h"

#include <cerrno>

namespace mvee {

int64_t FutexTable::Wait(uint64_t logical_addr, const std::atomic<int32_t>* word,
                         int32_t expected) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Linux futex semantics: re-check the word under the bucket lock; if it no
  // longer holds the expected value the caller lost a race with a waker and
  // must retry in user space.
  if (word != nullptr && word->load(std::memory_order_acquire) != expected) {
    return -EAGAIN;
  }
  Bucket& bucket = buckets_[logical_addr];
  const uint64_t ticket = bucket.next_ticket++;
  ++bucket.waiters;
  bucket.cv.wait(lock, [&] { return ticket < bucket.wake_upto; });
  --bucket.waiters;
  if (bucket.waiters == 0) {
    buckets_.erase(logical_addr);  // Unconsumed wake credits die, like futex.
  }
  return 0;
}

int64_t FutexTable::Wake(uint64_t logical_addr, int32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(logical_addr);
  if (it == buckets_.end()) {
    return 0;
  }
  Bucket& bucket = it->second;
  const uint64_t unwoken = bucket.next_ticket - bucket.wake_upto;
  const uint64_t to_wake =
      static_cast<uint64_t>(count) < unwoken ? static_cast<uint64_t>(count) : unwoken;
  bucket.wake_upto += to_wake;
  if (to_wake > 0) {
    bucket.cv.notify_all();
  }
  return static_cast<int64_t>(to_wake);
}

void FutexTable::WakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [addr, bucket] : buckets_) {
    bucket.wake_upto = bucket.next_ticket;
    bucket.cv.notify_all();
  }
}

std::string FutexTable::DebugString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[96];
  for (const auto& [addr, bucket] : buckets_) {
    std::snprintf(line, sizeof(line), "addr=0x%llx waiters=%d pending=%d; ",
                  static_cast<unsigned long long>(addr), bucket.waiters, static_cast<int>(bucket.next_ticket - bucket.wake_upto));
    out += line;
  }
  return out;
}

size_t FutexTable::WaiterCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [addr, bucket] : buckets_) {
    total += static_cast<size_t>(bucket.waiters);
  }
  return total;
}

}  // namespace mvee
