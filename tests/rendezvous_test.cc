// Wait-free rendezvous tests: the round-slab protocol vs the mutex/condvar
// baseline (MveeOptions::waitfree_rendezvous), failure paths under the slab
// (timeouts with parked waiters, digest divergence), deterministic signal
// latching, the memoized argument digest, and — via a binary-wide operator
// new override — the zero-allocation guarantee on the replicated hot path
// (pooled payload arena + pooled loose records).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/fault_injection.h"
#include "mvee/util/park.h"

// --- Binary-wide heap allocation counter ------------------------------------
//
// Every operator new in this binary bumps g_heap_allocs. The allocation tests
// snapshot the counter inside a steady-state syscall loop: any heap traffic
// from the rendezvous, the payload replication, or the loose ring shows up as
// a nonzero delta. Deletes are not tracked (only allocation matters).

namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
    return ptr;
  }
  throw std::bad_alloc{};
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc{};
  }
  return ptr;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }

namespace mvee {
namespace {

constexpr int32_t kSigUsr1 = 10;

MveeOptions Opts(bool waitfree, uint32_t variants = 2) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.waitfree_rendezvous = waitfree;
  options.rendezvous_timeout = std::chrono::milliseconds(20000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
  return options;
}

std::string FileText(VirtualKernel& kernel, const std::string& path) {
  auto file = kernel.vfs().Open(path, /*create=*/false);
  if (file == nullptr) {
    return "";
  }
  auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

// --- Protocol equivalence ----------------------------------------------------

// Many thread sets, many rounds, all four syscall classes in the mix. Both
// protocols must return a clean verdict AND count the identical number of
// rounds — the slab is a transport change, not a policy change.
TEST(RendezvousStressTest, ManyThreadSetsMixedClassesBothProtocols) {
  std::map<bool, uint64_t> totals;
  for (const bool waitfree : {true, false}) {
    MveeOptions options = Opts(waitfree, 2);
    Mvee mvee(options);
    mvee.kernel().vfs().PutFile("stress_in", std::vector<uint8_t>(128, 0x5a));
    const Status status = mvee.Run([](VariantEnv& env) {
      std::vector<ThreadHandle> handles;
      for (int t = 0; t < 6; ++t) {
        handles.push_back(env.Spawn([t](VariantEnv& wenv) {
          std::vector<uint8_t> buffer(64);
          const int64_t in_fd = wenv.Open("stress_in", VOpenFlags::kRead);
          const int64_t out_fd = wenv.Open("stress_out_" + std::to_string(t),
                                           VOpenFlags::kCreate | VOpenFlags::kWrite);
          for (int i = 0; i < 30; ++i) {
            wenv.Read(in_fd, buffer);            // replicated (payload)
            wenv.Lseek(in_fd, 0, 0 /*SEEK_SET*/);  // ordered
            wenv.Gettid();                       // local
            wenv.MveeSelfAware();                // control
            wenv.GettimeofdayMicros();           // replicated (no payload)
          }
          wenv.Write(out_fd, std::string("done ") + std::to_string(t));
          wenv.Close(out_fd);
          wenv.Close(in_fd);
        }));
      }
      for (auto handle : handles) {
        env.Join(handle);
      }
    });
    ASSERT_TRUE(status.ok()) << "waitfree=" << waitfree << ": " << status.ToString();
    for (int t = 0; t < 6; ++t) {
      EXPECT_EQ(FileText(mvee.kernel(), "stress_out_" + std::to_string(t)),
                "done " + std::to_string(t));
    }
    totals[waitfree] = mvee.report().syscalls.total;
    EXPECT_GT(totals[waitfree], 6u * 30u * 5u);
  }
  // Identical deterministic workload => identical round counts.
  EXPECT_EQ(totals[true], totals[false]);
}

// Verdict equivalence on the failure side: the same divergent workload must
// be killed under both protocols.
TEST(RendezvousStressTest, DivergentWorkloadKilledUnderBothProtocols) {
  for (const bool waitfree : {true, false}) {
    Mvee mvee(Opts(waitfree));
    const Status status = mvee.Run([](VariantEnv& env) {
      const int64_t which = env.MveeSelfAware();
      const int64_t fd = env.Open("d", VOpenFlags::kCreate | VOpenFlags::kWrite);
      env.Write(fd, which == 0 ? std::string("benign") : std::string("pwned!"));
      env.Close(fd);
    });
    EXPECT_EQ(status.code(), StatusCode::kDivergence) << "waitfree=" << waitfree;
  }
}

TEST(RendezvousStressTest, ThreeAndFourVariantsUnderSlab) {
  for (uint32_t n : {3u, 4u}) {
    Mvee mvee(Opts(/*waitfree=*/true, n));
    mvee.kernel().vfs().PutFile("multi_in", std::vector<uint8_t>(32, 0x17));
    std::atomic<int> consistent{0};
    const Status status = mvee.Run([&](VariantEnv& env) {
      std::vector<uint8_t> buffer(32);
      const int64_t fd = env.Open("multi_in", VOpenFlags::kRead);
      if (env.Read(fd, buffer) == 32 && buffer[7] == 0x17) {
        consistent.fetch_add(1);
      }
      env.Close(fd);
    });
    EXPECT_TRUE(status.ok()) << n << " variants: " << status.ToString();
    EXPECT_EQ(consistent.load(), static_cast<int>(n));
  }
}

// --- Signal latching under the slab -------------------------------------------

// Deferred signals must land exactly once per round: the round's last arriver
// latches them into the slab, every variant copies the latch at drain.
TEST(RendezvousSignalTest, SignalLatchedExactlyOncePerRound) {
  for (const bool waitfree : {true, false}) {
    Mvee mvee(Opts(waitfree));
    const Status status = mvee.Run([](VariantEnv& env) {
      auto hits = std::make_shared<int>(0);
      env.Sigaction(kSigUsr1, [hits](VariantEnv&) { ++*hits; });
      env.Kill(/*tid=*/0, kSigUsr1);
      // Pump many more rounds: a latch bug (signal re-delivered from a stale
      // slab, or dropped by a reset) would change the count.
      for (int i = 0; i < 50; ++i) {
        env.Gettid();
      }
      const int64_t fd = env.Open("sig_once", VOpenFlags::kCreate | VOpenFlags::kWrite);
      env.Write(fd, std::to_string(*hits));
      env.Close(fd);
    });
    ASSERT_TRUE(status.ok()) << "waitfree=" << waitfree << ": " << status.ToString();
    EXPECT_EQ(FileText(mvee.kernel(), "sig_once"), "1") << "waitfree=" << waitfree;
  }
}

// Cross-thread kill with concurrent thread sets active: the signal reaches
// the target set's next round exactly once, in every variant, while other
// sets churn rounds through the same slabs.
TEST(RendezvousSignalTest, CrossThreadKillUnderConcurrentRounds) {
  Mvee mvee(Opts(/*waitfree=*/true));
  const Status status = mvee.Run([](VariantEnv& env) {
    struct State {
      InstrumentedAtomic<int32_t> hits{0};
    };
    auto state = std::make_shared<State>();
    env.Sigaction(kSigUsr1, [state](VariantEnv&) {
      state->hits.Store(state->hits.Load() + 1);
    });
    ThreadHandle noise = env.Spawn([](VariantEnv& wenv) {
      for (int i = 0; i < 40; ++i) {
        wenv.Gettid();
      }
    });
    ThreadHandle killer = env.Spawn([](VariantEnv& wenv) {
      wenv.Kill(/*tid=*/0, kSigUsr1);
    });
    env.Join(killer);
    int spins = 0;
    while (state->hits.Load() == 0 && spins++ < 200) {
      env.Gettid();
    }
    env.Join(noise);
    const int64_t fd = env.Open("sig_cross", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, std::to_string(state->hits.Load()));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(FileText(mvee.kernel(), "sig_cross"), "1");
}

// A kill aimed at a thread set that already ran its exit round must be
// dropped — not parked in the pending queue forever, where it would hold
// pending_signal_count above zero and silently disable every thread set's
// lock-free signal-latch fast path for the rest of the run.
TEST(RendezvousSignalTest, KillAfterTargetExitedIsDropped) {
  Mvee mvee(Opts(/*waitfree=*/true));
  const Status status = mvee.Run([](VariantEnv& env) {
    struct State {
      InstrumentedAtomic<int32_t> worker_tid{-1};
      InstrumentedAtomic<int32_t> hits{0};
    };
    auto state = std::make_shared<State>();
    env.Sigaction(kSigUsr1, [state](VariantEnv&) {
      state->hits.Store(state->hits.Load() + 1);
    });
    ThreadHandle worker = env.Spawn([state](VariantEnv& wenv) {
      state->worker_tid.Store(static_cast<int32_t>(wenv.Gettid()));
    });
    env.Join(worker);  // Worker ran its exit round; its tid is gone.
    env.Kill(static_cast<uint32_t>(state->worker_tid.Load()), kSigUsr1);
    for (int i = 0; i < 20; ++i) {
      env.Gettid();
    }
    const int64_t fd = env.Open("sig_dead", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, std::to_string(state->hits.Load()));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Nobody latched it, nobody ever will: the handler must not have run.
  EXPECT_EQ(FileText(mvee.kernel(), "sig_dead"), "0");
}

// --- Failure paths under the slab ---------------------------------------------

// A variant that never arrives must trip the rendezvous timeout even though
// the waiting sibling has long since exhausted its spin budget and parked —
// the parked wait still polls the deadline.
TEST(RendezvousFailureTest, MissingVariantTripsTimeoutWhileParked) {
  for (const bool waitfree : {true, false}) {
    MveeOptions options = Opts(waitfree);
    options.rendezvous_timeout = std::chrono::milliseconds(300);
    Mvee mvee(options);
    const auto start = std::chrono::steady_clock::now();
    const Status status = mvee.Run([](VariantEnv& env) {
      if (env.MveeSelfAware() == 0) {
        env.Stat("x");  // The sibling never arrives at this call...
      } else {
        // ... because it stalls without making any syscall.
        std::this_thread::sleep_for(std::chrono::milliseconds(1200));
      }
    });
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(status.code(), StatusCode::kTimeout) << "waitfree=" << waitfree;
    EXPECT_NE(mvee.report().divergence_detail.find("rendezvous timeout"), std::string::npos)
        << "waitfree=" << waitfree << ": " << mvee.report().divergence_detail;
    // The timeout fired from the parked wait, not from the 20s default.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000)
        << "waitfree=" << waitfree;
  }
}

// A mismatched digest kills the MVEE with an actionable report naming the
// mismatching call.
TEST(RendezvousFailureTest, DigestMismatchKillsWithUsefulReport) {
  for (const bool waitfree : {true, false}) {
    Mvee mvee(Opts(waitfree));
    const Status status = mvee.Run([](VariantEnv& env) {
      const int64_t which = env.MveeSelfAware();
      const int64_t fd = env.Open("m", VOpenFlags::kCreate | VOpenFlags::kWrite);
      env.Write(fd, which == 0 ? std::string("aaaa") : std::string("bbbb"));
      env.Close(fd);
    });
    EXPECT_EQ(status.code(), StatusCode::kDivergence) << "waitfree=" << waitfree;
    const std::string& detail = mvee.report().divergence_detail;
    EXPECT_NE(detail.find("argument mismatch"), std::string::npos) << detail;
    EXPECT_NE(detail.find("sys_write"), std::string::npos) << detail;
  }
}

// No lost wakeups with parked waiters: one variant repeatedly arrives late
// enough that the other exhausts its spin budget and parks, and every round
// still completes (a dropped wake would surface as a rendezvous timeout).
TEST(RendezvousFailureTest, ParkedWaiterWakesWhenLatePeerArrives) {
  Mvee mvee(Opts(/*waitfree=*/true));
  const Status status = mvee.Run([](VariantEnv& env) {
    const bool laggard = env.MveeSelfAware() == 1;
    for (int i = 0; i < 5; ++i) {
      if (laggard) {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
      }
      env.Gettid();
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Same discipline on the master-publication edge: the master blocks inside
// the kernel (nanosleep) long past the slaves' spin budget; the parked
// slaves must pick up the published result promptly, not via slice polling
// of a stale ticket (which a lost wake would degrade to).
TEST(RendezvousFailureTest, ParkedSlaveSeesLateMasterResult) {
  Mvee mvee(Opts(/*waitfree=*/true, 3));
  std::atomic<int> agreed{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    for (int i = 0; i < 3; ++i) {
      env.NanosleepNanos(120 * 1000 * 1000);  // Master executes; slaves park.
    }
    if (env.Gettid() == 0) {
      agreed.fetch_add(1);
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(agreed.load(), 3);
}

// --- Memoized argument digest ---------------------------------------------------

TEST(ComparableDigestMemoTest, UnprimedRecomputesPrimedFreezes) {
  SyscallRequest request;
  request.sysno = Sysno::kWrite;
  request.arg0 = 3;
  const std::vector<uint8_t> bytes(64, 0xee);
  request.in_data = bytes;

  // Unprimed: every call reflects the current fields.
  const uint64_t digest = request.ComparableDigest();
  request.arg0 = 4;
  EXPECT_NE(request.ComparableDigest(), digest);
  request.arg0 = 3;
  EXPECT_EQ(request.ComparableDigest(), digest);

  // Primed (what the monitor does on rendezvous entry): the trap hashes its
  // arguments exactly once — later reads return the memo without rehashing.
  request.PrimeComparableDigest();
  EXPECT_TRUE(request.digest_primed());
  EXPECT_EQ(request.ComparableDigest(), digest);
  request.arg0 = 99;  // Would change a fresh hash; the memo must not move.
  EXPECT_EQ(request.ComparableDigest(), digest);
}

// --- Zero allocations on the hot path --------------------------------------------

// Lockstep + slab: after warmup (slab payload pools sized, fd table built),
// a replicated-read storm must not allocate at all — the payload lives in
// the slab's pooled arena and slaves copy spans, not vectors.
TEST(RendezvousAllocationTest, LockstepReplicatedReadHotPathIsAllocationFree) {
  MveeOptions options = Opts(/*waitfree=*/true);
  Mvee mvee(options);
  mvee.kernel().vfs().PutFile("blob", std::vector<uint8_t>(64, 0xab));
  std::atomic<uint64_t> allocations{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    std::vector<uint8_t> buffer(64);
    const int64_t fd = env.Open("blob", VOpenFlags::kRead);
    // Warmup: touch every slab in the ring (payload pools grow once) and
    // settle lazy monitor state.
    for (int i = 0; i < 64; ++i) {
      env.Read(fd, buffer);
      env.Lseek(fd, 0, 0 /*SEEK_SET*/);
    }
    const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 256; ++i) {
      env.Read(fd, buffer);
      env.Lseek(fd, 0, 0 /*SEEK_SET*/);
    }
    const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
    allocations.fetch_add(after - before);
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(allocations.load(), 0u)
      << "heap allocations leaked into the lockstep replicated-read hot path";
}

// The fault-injection sites woven through RunSyscall and the vkernel
// (docs/fault_injection.md) ride the same hot paths the storms above measure:
// since fault_plan is empty here, both lockstep storms already prove the
// DISARMED sites allocation-free. This pins the per-check cost down
// explicitly: a disarmed ShouldFire is one relaxed load and a predicted
// branch, so a multi-million-call storm must stay allocation-free and far
// under the cost of even an uncontended mutex round-trip.
TEST(RendezvousAllocationTest, DisarmedFaultSitesAreFree) {
  FaultInjector injector;  // never armed
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  constexpr uint64_t kCalls = 4'000'000;
  uint64_t fired = 0;
  for (uint64_t i = 0; i < kCalls; ++i) {
    // Rotate sites/variants so the branch predictor sees the real mix.
    const auto site = static_cast<FaultSite>(i % kFaultSiteCount);
    fired += injector.ShouldFire(site, static_cast<uint32_t>(i % 4)) ? 1 : 0;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(fired, 0u);
  EXPECT_EQ(after - before, 0u)
      << "a disarmed fault site allocated on the hot path";
  const double ns_per_call =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      static_cast<double>(kCalls);
  // Generous bound (a CI-shared core still does a relaxed load + branch in
  // single-digit ns); catches any regression that puts a lock, a map lookup,
  // or a string build on the disarmed path.
  EXPECT_LT(ns_per_call, 50.0) << "disarmed ShouldFire cost " << ns_per_call << " ns/call";
}

// Loose mode: the ring's pooled records (no shared_ptr churn) and pooled
// payloads make the leader/follower steady state allocation-free too.
TEST(RendezvousAllocationTest, LooseHotPathIsAllocationFree) {
  MveeOptions options = Opts(/*waitfree=*/true);
  options.sync_model = SyncModel::kLoose;
  options.loose_buffer_depth = 8;  // Small pool: warmup touches every record.
  Mvee mvee(options);
  mvee.kernel().vfs().PutFile("blob", std::vector<uint8_t>(64, 0xcd));
  std::atomic<uint64_t> allocations{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    // Loose mode has no lockstep alignment: the leader runs up to the ring
    // depth ahead, so a follower-side window would catch the leader's
    // POST-window syscalls (close teardown, the once-per-thread exit-round
    // bookkeeping). Measure on the leader; the lagging follower's replay of
    // the same storm falls inside the leader's window anyway, so its
    // allocations would still be caught.
    const bool leader = env.MveeSelfAware() == 0;
    std::vector<uint8_t> buffer(64);
    const int64_t fd = env.Open("blob", VOpenFlags::kRead);
    for (int i = 0; i < 64; ++i) {
      env.Read(fd, buffer);
      env.Lseek(fd, 0, 0 /*SEEK_SET*/);
    }
    const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 256; ++i) {
      env.Read(fd, buffer);
      env.Lseek(fd, 0, 0 /*SEEK_SET*/);
    }
    const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
    if (leader) {
      allocations.fetch_add(after - before);
    }
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(allocations.load(), 0u)
      << "heap allocations leaked into the loose-mode hot path";
}

// --- ParkingSpot ------------------------------------------------------------------

TEST(ParkingSpotTest, WakeLiftsParkedWaiterPromptly) {
  ParkingSpot spot;
  std::atomic<bool> flag{false};
  std::atomic<bool> observed{false};
  std::thread waiter([&] {
    while (!flag.load(std::memory_order_acquire)) {
      spot.BeginPark();
      const uint64_t ticket = spot.Ticket();
      if (flag.load(std::memory_order_acquire)) {
        spot.EndPark();
        break;
      }
      spot.WaitTicket(ticket, std::chrono::microseconds(200000));
      spot.EndPark();
    }
    observed.store(true, std::memory_order_release);
  });
  // Give the waiter time to actually park, then publish + wake.
  while (spot.parked() == 0) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  flag.store(true, std::memory_order_release);
  spot.WakeParked();
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(observed.load());
  // Far below the 200ms slice: the wake, not the slice timeout, lifted it.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 150);
}

TEST(ParkingSpotTest, WakeWithNobodyParkedIsANoOp) {
  ParkingSpot spot;
  spot.WakeParked();  // Must not touch the mutex path or crash.
  EXPECT_EQ(spot.parked(), 0u);
}

}  // namespace
}  // namespace mvee
