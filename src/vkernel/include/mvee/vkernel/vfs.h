// In-memory virtual filesystem shared by all variants.
//
// File *content* is a shared resource (the real kernel's filesystem is shared
// between the variants' processes too); each variant process has its own file
// descriptor table on top (fd_table.h). Open flags follow a small subset of
// POSIX semantics: create, truncate, append, read/write.
//
// Concurrency (docs/DESIGN.md §7): under the sharded mode the path/inode
// namespace is striped into lock-striped buckets selected by path hash, and
// every thread keeps a small direct-mapped open-file handle cache so the
// open() of a hot path (the http server's document, a bench blob) takes no
// lock at all. Unlink/PutFile bump a generation the caches validate against.
// The seed's one-mutex-one-map layout survives as the measurable baseline
// (sharded = false).

#ifndef MVEE_VKERNEL_VFS_H_
#define MVEE_VKERNEL_VFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/vkernel/vkernel_config.h"
#include "mvee/vkernel/vobject.h"

namespace mvee {

// Open flags (bitmask). Deliberately not the raw POSIX values — the vkernel
// has its own stable ABI.
struct VOpenFlags {
  static constexpr int64_t kRead = 1 << 0;
  static constexpr int64_t kWrite = 1 << 1;
  static constexpr int64_t kCreate = 1 << 2;
  static constexpr int64_t kTruncate = 1 << 3;
  static constexpr int64_t kAppend = 1 << 4;
};

// A regular file: byte vector + lock. Thread-safe at the operation level.
class VFile : public VObject {
 public:
  // Reads up to `size` bytes at `offset`; returns bytes read (0 at EOF).
  int64_t ReadAt(uint64_t offset, uint8_t* out, uint64_t size) const;
  // Writes `size` bytes at `offset`, growing the file as needed; returns size.
  int64_t WriteAt(uint64_t offset, const uint8_t* data, uint64_t size);
  // Appends and returns the offset the data landed at.
  uint64_t Append(const uint8_t* data, uint64_t size);
  uint64_t Size() const;
  void Truncate();
  // Snapshot of the contents (for tests and output comparison).
  std::vector<uint8_t> Contents() const;

 private:
  mutable std::mutex mutex_;
  std::vector<uint8_t> data_;
};

struct VStat {
  uint64_t size = 0;
  uint64_t inode = 0;
};

// Path -> file map. Flat namespace (no directories); paths are opaque keys.
class Vfs {
 public:
  explicit Vfs(bool sharded = DefaultShardedVkernel());

  // Returns the file, creating it if `create`. nullptr if absent and !create.
  VRef<VFile> Open(const std::string& path, bool create);
  bool Exists(const std::string& path) const;
  // Returns negative errno or 0.
  int64_t Stat(const std::string& path, VStat* out) const;
  // Returns negative errno or 0.
  int64_t Unlink(const std::string& path);
  // Pre-populates a file (test/bench fixture helper).
  void PutFile(const std::string& path, std::vector<uint8_t> contents);
  size_t FileCount() const;

  bool sharded() const { return sharded_; }

 private:
  // Stripe count: power of two, sized so unrelated paths rarely share a
  // lock. Cache-line padded so stripe locks never false-share.
  static constexpr size_t kStripes = 16;

  struct Entry {
    VRef<VFile> file;
    uint64_t inode = 0;
  };
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    std::map<std::string, Entry> files;
  };

  Stripe& StripeFor(const std::string& path);
  const Stripe& StripeFor(const std::string& path) const;
  VRef<VFile> OpenSlow(const std::string& path, bool create);

  const bool sharded_;
  // Identifies this instance in the thread-local handle caches (instances
  // can be destroyed and reallocated at the same address).
  const uint64_t vfs_id_;
  // Bumped by Unlink (the only absent-making transition); handle-cache
  // entries stamped with an older generation are dead.
  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> next_inode_{1};
  Stripe stripes_[kStripes];
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_VFS_H_
