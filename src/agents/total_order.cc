#include "mvee/agents/total_order.h"

#include <chrono>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

TotalOrderRuntime::TotalOrderRuntime(const AgentConfig& config, AgentControl control)
    : config_(config), control_(std::move(control)), ring_(config.buffer_capacity) {
  ring_.EnableCursorCaching(config_.cached_ring_cursors);
  // One consumer cursor per slave variant. All threads of a slave variant
  // share one cursor: the total order is variant-global.
  consumer_ids_.resize(config_.num_variants, 0);
  for (uint32_t v = 1; v < config_.num_variants; ++v) {
    consumer_ids_[v] = ring_.RegisterConsumer();
  }
}

std::unique_ptr<SyncAgent> TotalOrderRuntime::CreateAgent(uint32_t variant_index) {
  const AgentRole role = variant_index == 0 ? AgentRole::kMaster : AgentRole::kSlave;
  return std::make_unique<TotalOrderAgent>(this, role, consumer_ids_[variant_index]);
}

TotalOrderAgent::TotalOrderAgent(TotalOrderRuntime* runtime, AgentRole role, size_t consumer_id)
    : runtime_(runtime),
      role_(role),
      consumer_id_(consumer_id),
      stats_variant_(role == AgentRole::kMaster ? 0
                                                : static_cast<uint32_t>(consumer_id) + 1) {}

void TotalOrderAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;  // Teardown: no second throw from destructor-driven sync ops.
  }
  if (role_ == AgentRole::kMaster) {
    // Global instrumentation lock held across the sync op: the recorded
    // order is the execution order. This read-write sharing on one cache
    // line is the scalability problem §4.5 attributes to the simple agents.
    SpinWait waiter;
    while (runtime_->master_lock_.test_and_set(std::memory_order_acquire)) {
      if (runtime_->control_.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    return;
  }

  // Slave: stall until the front of the buffer names this thread. Only the
  // named thread advances the cursor, so concurrent peeks are safe.
  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;
  for (;;) {
    if (runtime_->control_.aborted()) {
      throw VariantKilled{};
    }
    TotalOrderRuntime::Entry entry;
    if (runtime_->ring_.Peek(consumer_id_, 0, &entry) && entry.tid == tid) {
      return;
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("total-order replay deadline exceeded (tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

void TotalOrderAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    // The push must stay inside the instrumentation lock: the ring has one
    // logical producer (whoever holds the lock) and its push order *is* the
    // recorded total order.
    if (!runtime_->ring_.TryPush(TotalOrderRuntime::Entry{tid})) {
      runtime_->stats_.shard(stats_variant_, tid).record_stalls.fetch_add(1, std::memory_order_relaxed);
      SpinWait waiter;
      while (!runtime_->ring_.TryPush(TotalOrderRuntime::Entry{tid})) {
        if (runtime_->control_.aborted()) {
          runtime_->master_lock_.clear(std::memory_order_release);
          throw VariantKilled{};
        }
        waiter.Pause();
      }
    }
    runtime_->stats_.shard(stats_variant_, tid).ops_recorded.fetch_add(1, std::memory_order_relaxed);
    runtime_->master_lock_.clear(std::memory_order_release);
    return;
  }

  runtime_->ring_.Advance(consumer_id_);
  runtime_->stats_.shard(stats_variant_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mvee
