// In-memory virtual filesystem shared by all variants.
//
// File *content* is a shared resource (the real kernel's filesystem is shared
// between the variants' processes too); each variant process has its own file
// descriptor table on top (fd_table.h). Open flags follow a small subset of
// POSIX semantics: create, truncate, append, read/write.

#ifndef MVEE_VKERNEL_VFS_H_
#define MVEE_VKERNEL_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mvee {

// Open flags (bitmask). Deliberately not the raw POSIX values — the vkernel
// has its own stable ABI.
struct VOpenFlags {
  static constexpr int64_t kRead = 1 << 0;
  static constexpr int64_t kWrite = 1 << 1;
  static constexpr int64_t kCreate = 1 << 2;
  static constexpr int64_t kTruncate = 1 << 3;
  static constexpr int64_t kAppend = 1 << 4;
};

// A regular file: byte vector + lock. Thread-safe at the operation level.
class VFile {
 public:
  // Reads up to `size` bytes at `offset`; returns bytes read (0 at EOF).
  int64_t ReadAt(uint64_t offset, uint8_t* out, uint64_t size) const;
  // Writes `size` bytes at `offset`, growing the file as needed; returns size.
  int64_t WriteAt(uint64_t offset, const uint8_t* data, uint64_t size);
  // Appends and returns the offset the data landed at.
  uint64_t Append(const uint8_t* data, uint64_t size);
  uint64_t Size() const;
  void Truncate();
  // Snapshot of the contents (for tests and output comparison).
  std::vector<uint8_t> Contents() const;

 private:
  mutable std::mutex mutex_;
  std::vector<uint8_t> data_;
};

struct VStat {
  uint64_t size = 0;
  uint64_t inode = 0;
};

// Path -> file map. Flat namespace (no directories); paths are opaque keys.
class Vfs {
 public:
  // Returns the file, creating it if `create`. nullptr if absent and !create.
  std::shared_ptr<VFile> Open(const std::string& path, bool create);
  bool Exists(const std::string& path) const;
  // Returns negative errno or 0.
  int64_t Stat(const std::string& path, VStat* out) const;
  // Returns negative errno or 0.
  int64_t Unlink(const std::string& path);
  // Pre-populates a file (test/bench fixture helper).
  void PutFile(const std::string& path, std::vector<uint8_t> contents);
  size_t FileCount() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<VFile>> files_;
  uint64_t next_inode_ = 1;
  std::map<std::string, uint64_t> inodes_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_VFS_H_
