// Regenerates the paper's §5.5 nginx use case:
//   1. native throughput of the thread-pooled server (wrk-style load);
//   2. 2-variant MVEE throughput with instrumented custom sync primitives
//      (the paper reports 3% off native over a real network, 48% off over
//      loopback — our virtual network behaves like the loopback case);
//   3. the uninstrumented build diverging as soon as traffic flows;
//   4. the CVE-2013-2028-style attack: succeeds natively, detected by the
//      MVEE before the secret leaks.

#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"

namespace {

using namespace mvee;

WrkResult ServeAndMeasure(VirtualKernel& kernel, const WrkOptions& wrk_options,
                          const std::function<void()>& serve) {
  WrkResult result;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = kernel.network().Connect(wrk_options.port)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    result = RunWrk(kernel, wrk_options);
  });
  serve();
  client.join();
  return result;
}

ServerConfig BenchServer(uint16_t port, uint32_t budget, bool instrument, bool vuln = false) {
  ServerConfig config;
  config.port = port;
  config.pool_threads = 8;  // Paper uses 32; scaled to the bench machine.
  config.page_bytes = 4096;  // 4 KiB static page, as in §5.5.
  config.connection_budget = budget;
  config.instrument_custom_sync = instrument;
  config.enable_vulnerability = vuln;
  return config;
}

}  // namespace

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  PrintHeader("Use case §5.5: nginx-style server under ReMon");

  WrkOptions wrk;
  wrk.connections = 10;  // Paper: 10 simultaneous connections.
  wrk.requests_per_conn = 20;
  const uint32_t budget = wrk.connections * wrk.requests_per_conn + 1;

  // 1. Native throughput.
  double native_rps = 0;
  {
    NativeRunner runner;
    wrk.port = 9000;
    const WrkResult result = ServeAndMeasure(
        runner.kernel(), wrk, [&] { runner.Run(MakeServerProgram(BenchServer(9000, budget, true))); });
    native_rps = result.RequestsPerSecond();
    std::printf("native:                    %6.0f req/s (%lu/%lu ok, %.1f KB)\n", native_rps,
                (unsigned long)result.responses_ok, (unsigned long)result.requests_attempted,
                result.bytes_received / 1024.0);
  }

  // 2. MVEE, instrumented custom sync ops.
  {
    MveeOptions options;
    options.num_variants = 2;
    options.enable_aslr = true;
    options.agent = AgentKind::kWallOfClocks;
    options.rendezvous_timeout = std::chrono::milliseconds(120000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
    Mvee mvee(options);
    wrk.port = 9001;
    Status status;
    const WrkResult result = ServeAndMeasure(mvee.kernel(), wrk, [&] {
      status = mvee.Run(MakeServerProgram(BenchServer(9001, budget, true)));
    });
    const double mvee_rps = result.RequestsPerSecond();
    std::printf("MVEE (2 variants, WoC):    %6.0f req/s, %.0f%% below native "
                "(paper: 48%% below on loopback), status=%s\n",
                mvee_rps, native_rps > 0 ? 100.0 * (1.0 - mvee_rps / native_rps) : 0.0,
                status.ToString().c_str());
  }

  // 3. Uninstrumented custom sync ops: divergence under traffic.
  {
    int divergences = 0;
    int rounds = 0;
    for (int round = 0; round < 4 && divergences == 0; ++round) {
      ++rounds;
      MveeOptions options;
      options.num_variants = 2;
      options.agent = AgentKind::kWallOfClocks;
      options.rendezvous_timeout = std::chrono::milliseconds(20000);
      options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
      options.seed = 1000 + round;
      Mvee mvee(options);
      wrk.port = static_cast<uint16_t>(9010 + round);
      Status status;
      ServeAndMeasure(mvee.kernel(), wrk, [&] {
        status = mvee.Run(MakeServerProgram(BenchServer(wrk.port, budget, false)));
      });
      if (!status.ok()) {
        ++divergences;
      }
    }
    std::printf("uninstrumented build:      divergence detected after %d round(s) of traffic "
                "(paper: \"quickly triggers a divergence\")\n",
                rounds);
  }

  // 4. Attack: native success vs MVEE detection.
  {
    NativeRunner runner;
    AttackResult attack;
    std::thread client([&] {
      VRef<VConnection> probe;
      while ((probe = runner.kernel().network().Connect(9020)) == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      probe->CloseClientSide();
      attack = RunAttack(runner.kernel(), 9020, DiversityMap(0, 0x5eedULL, true).map_base());
    });
    runner.Run(MakeServerProgram(BenchServer(9020, 2, true, /*vuln=*/true)));
    client.join();
    std::printf("attack vs native server:   secret leaked = %s\n",
                attack.secret_leaked ? "YES (compromised)" : "no");
  }
  {
    MveeOptions options;
    options.num_variants = 2;
    options.enable_aslr = true;
    options.rendezvous_timeout = std::chrono::milliseconds(20000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
    Mvee mvee(options);
    AttackResult attack;
    Status status;
    std::thread client([&] {
      VRef<VConnection> probe;
      while ((probe = mvee.kernel().network().Connect(9021)) == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      probe->CloseClientSide();
      attack = RunAttack(mvee.kernel(), 9021, DiversityMap(0, options.seed, true).map_base());
    });
    status = mvee.Run(MakeServerProgram(BenchServer(9021, 2, true, /*vuln=*/true)));
    client.join();
    std::printf("attack vs 2-variant MVEE:  secret leaked = %s, MVEE status = %s\n",
                attack.secret_leaked ? "YES (compromised)" : "no",
                status.ToString().c_str());
  }
  return 0;
}
