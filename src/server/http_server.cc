#include "mvee/server/http_server.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <deque>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "mvee/sync/primitives.h"
#include "mvee/syscall/sysno.h"
#include "mvee/util/hash.h"
#include "mvee/vkernel/vfs.h"

namespace mvee {

void NgxSpinlock::Lock() {
  if (instrumented_) {
    for (;;) {
      int32_t expected = 0;
      if (instrumented_state_.CompareExchange(expected, 1)) {
        return;
      }
      std::this_thread::yield();
    }
  }
  // Stock build: raw compiler atomics, invisible to the sync agent — the
  // §5.5 failure mode.
  for (;;) {
    int32_t expected = 0;
    if (raw_state_.compare_exchange_strong(expected, 1, std::memory_order_acquire)) {
      return;
    }
    std::this_thread::yield();
  }
}

void NgxSpinlock::Unlock() {
  if (instrumented_) {
    instrumented_state_.Store(0);
    return;
  }
  raw_state_.store(0, std::memory_order_release);
}

std::string ServerSecret() { return "SECRET{worker-key-0xdeadbeef-cafebabe}"; }

uint64_t LayoutToken(uint64_t map_base) { return SplitMix64(map_base ^ 0x5eC2e7ULL); }

namespace {

// Connection-fd queue between the dispatcher and the pool. Uses the
// instrumented (pthread-equivalent) primitives — these were never the
// problem in §5.5.
class ConnQueue {
 public:
  void Push(int64_t fd) {
    LockGuard<Mutex> guard(mutex_);
    queue_.push_back(fd);
    available_.Signal();
  }

  // Returns -1 on shutdown (poison pill).
  int64_t Pop() {
    mutex_.Lock();
    while (queue_.empty()) {
      available_.Wait(mutex_);
    }
    const int64_t fd = queue_.front();
    queue_.pop_front();
    mutex_.Unlock();
    return fd;
  }

 private:
  Mutex mutex_;
  CondVar available_;
  std::deque<int64_t> queue_;
};

struct ServerState {
  explicit ServerState(const ServerConfig& config)
      : stats_lock(config.instrument_custom_sync) {}

  ConnQueue connections;
  NgxSpinlock stats_lock;
  ServerStats stats;
};

// Reads one HTTP/1.0 request (until "\r\n\r\n" or connection close).
std::string ReadRequest(VariantEnv& env, int64_t fd) {
  std::string request;
  uint8_t buffer[512];
  while (request.find("\r\n\r\n") == std::string::npos) {
    const int64_t n = env.Recv(fd, buffer);
    if (n <= 0) {
      break;
    }
    request.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
    if (request.size() > 65536) {
      break;
    }
  }
  return request;
}

std::string RequestPath(const std::string& request) {
  // "GET /path HTTP/1.0"
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    return "/";
  }
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    return "/";
  }
  return request.substr(method_end + 1, path_end - method_end - 1);
}

std::string MakeResponse(const std::string& body, uint64_t request_id) {
  std::string response = "HTTP/1.0 200 OK\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nX-Request-Id: " + std::to_string(request_id) + "\r\n\r\n";
  response += body;
  return response;
}

// The CVE-2013-2028 stand-in. A request "/vuln" carries a binary payload
// after the headers:
//   [64 filler bytes][8-byte layout token]
// The "stack buffer" is 64 bytes; the token overflows into the response
// selector. A selector matching this variant's own layout token redirects
// the response to the secret (a successful hijack); any other value yields
// a corrupted-but-benign response. An attacker can only tailor the token to
// ONE variant's layout — the others produce different bytes and the MVEE's
// send() comparison catches it (§5.5).
std::string HandleVuln(VariantEnv& env, const std::string& request,
                       const std::string& static_page) {
  const size_t body_start = request.find("\r\n\r\n");
  std::string payload =
      body_start == std::string::npos ? "" : request.substr(body_start + 4);

  char stack_buffer[64];
  uint64_t response_selector = 0;  // "Adjacent" to the buffer on the stack.
  // The bug: memcpy without a length check.
  const size_t n = payload.size();
  for (size_t i = 0; i < n; ++i) {
    if (i < sizeof(stack_buffer)) {
      stack_buffer[i] = payload[i];
    } else if (i - sizeof(stack_buffer) < sizeof(response_selector)) {
      // Overflow: bytes land in the selector (simulated adjacency).
      reinterpret_cast<char*>(&response_selector)[i - sizeof(stack_buffer)] = payload[i];
    }
  }
  (void)stack_buffer;

  if (response_selector == LayoutToken(env.diversity().map_base())) {
    return ServerSecret();  // Control-flow hijack succeeded in this variant.
  }
  if (response_selector != 0) {
    return "corrupted:" + std::to_string(response_selector & 0xffff);
  }
  return static_page;
}

void Worker(std::shared_ptr<ServerState> state, const ServerConfig& config,
            std::string static_page, VariantEnv& env) {
  for (;;) {
    const int64_t fd = state->connections.Pop();
    if (fd < 0) {
      break;  // Poison pill.
    }
    const std::string request = ReadRequest(env, fd);
    const std::string path = RequestPath(request);

    std::string body;
    bool vuln_hit = false;
    if (config.enable_vulnerability && path.rfind("/vuln", 0) == 0) {
      body = HandleVuln(env, request, static_page);
      vuln_hit = true;
    } else {
      body = static_page;
    }

    // Custom-primitive critical section: the request id lands in the
    // response header, so a cross-variant mismatch is externally visible.
    // The yield inside mirrors nginx doing real work under its locks and
    // widens the race window that uninstrumented builds lose on.
    state->stats_lock.Lock();
    const uint64_t request_id = ++state->stats.requests_served;
    std::this_thread::yield();
    state->stats.bytes_sent += body.size();
    if (vuln_hit) {
      ++state->stats.vuln_hits;
    }
    state->stats_lock.Unlock();

    env.Send(fd, MakeResponse(body, request_id));
    env.Close(fd);
  }
}

// --- Readiness-driven event loop (docs/DESIGN.md §10) ------------------------
//
// One acceptor thread polls the listener and hands accepted fds to the pool
// workers over vkernel pipes (4-byte records, deterministic round-robin).
// Each worker multiplexes its handoff pipe plus all of its live connections
// through sys_poll, parsing HTTP/1.1 keep-alive and pipelined requests out of
// a bounded per-connection buffer. Under the MVEE this is deterministic
// because fd numbers are identical across variants (ordered allocation +
// shadow-fd checks), poll revents / recv payloads / pipe reads are all
// replicated from the master, and so every variant takes identical branches.

// Poll slice for both the acceptor and the workers. Finite so an idle server
// still makes a fresh syscall every slice (keeping the blocked-call watchdog
// fed); readiness wakes a parked poll immediately via the wait queues, so the
// slice length never adds serving latency.
constexpr int64_t kPollSliceMs = 500;
constexpr size_t kRecvChunk = 4096;

struct ParsedRequest {
  std::string path;
  std::string version;  // "HTTP/1.0" or "HTTP/1.1".
  bool keep_alive = false;
  size_t content_length = 0;
  size_t total_bytes = 0;  // Request line + headers + body.
};

enum class ParseStatus { kNeedMore, kComplete, kBadRequest, kTooLarge };

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Tries to parse one complete request from the front of `in`. `max_bytes`
// bounds the whole request (line + headers + body): headers that never
// terminate inside the cap and bodies that exceed it are kTooLarge (→ 413),
// grammar violations are kBadRequest (→ 400).
ParseStatus ParseRequest(const std::string& in, size_t max_bytes, ParsedRequest* out) {
  const size_t head_end = in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return in.size() > max_bytes ? ParseStatus::kTooLarge : ParseStatus::kNeedMore;
  }
  const size_t body_start = head_end + 4;
  if (body_start > max_bytes) {
    return ParseStatus::kTooLarge;
  }

  const size_t line_end = in.find("\r\n");
  const std::string_view line(in.data(), line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || line.find(' ', sp2 + 1) != std::string_view::npos) {
    return ParseStatus::kBadRequest;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || path.empty() || path.front() != '/' ||
      (version != "HTTP/1.0" && version != "HTTP/1.1")) {
    return ParseStatus::kBadRequest;
  }

  size_t content_length = 0;
  std::string connection;
  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = std::min(in.find("\r\n", pos), head_end);
    const std::string_view header(in.data() + pos, eol - pos);
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return ParseStatus::kBadRequest;
    }
    const std::string_view key = TrimSpaces(header.substr(0, colon));
    const std::string_view value = TrimSpaces(header.substr(colon + 1));
    if (EqualsIgnoreCase(key, "content-length")) {
      if (value.empty()) {
        return ParseStatus::kBadRequest;
      }
      content_length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return ParseStatus::kBadRequest;
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
        if (content_length > max_bytes) {
          return ParseStatus::kTooLarge;
        }
      }
    } else if (EqualsIgnoreCase(key, "connection")) {
      connection.assign(value);
      for (char& c : connection) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    pos = eol + 2;
  }

  if (body_start + content_length > max_bytes) {
    return ParseStatus::kTooLarge;
  }
  if (in.size() < body_start + content_length) {
    return ParseStatus::kNeedMore;
  }

  out->path.assign(path);
  out->version.assign(version);
  out->content_length = content_length;
  out->total_bytes = body_start + content_length;
  out->keep_alive =
      version == "HTTP/1.1" ? connection != "close" : connection == "keep-alive";
  return ParseStatus::kComplete;
}

std::string MakeEventResponse(const ParsedRequest& request, const std::string& body,
                              uint64_t request_id) {
  std::string response = request.version + " 200 OK\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nX-Request-Id: " + std::to_string(request_id);
  // HTTP/1.1 defaults to keep-alive and HTTP/1.0 to close, so only the
  // non-default cases need an explicit header.
  if (request.keep_alive && request.version == "HTTP/1.0") {
    response += "\r\nConnection: keep-alive";
  } else if (!request.keep_alive && request.version == "HTTP/1.1") {
    response += "\r\nConnection: close";
  }
  response += "\r\n\r\n";
  response += body;
  return response;
}

std::string MakeErrorResponse(int status) {
  const char* reason = status == 413 ? "Payload Too Large" : "Bad Request";
  const std::string body =
      status == 413 ? "request exceeds server limit\n" : "malformed request\n";
  return "HTTP/1.1 " + std::to_string(status) + " " + reason +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

struct EventConn {
  int64_t fd = -1;
  std::string in;  // Bounded: max_request_bytes plus one recv chunk.
};

// Services one readable connection: drains a recv chunk, then answers every
// complete request already buffered (pipelining), in arrival order. Returns
// false when the connection must be closed (EOF, error response, or a
// non-keep-alive request was answered).
bool ServiceConn(EventConn& conn, ServerState& state, const ServerConfig& config,
                 const std::string& static_page, VariantEnv& env) {
  uint8_t buffer[kRecvChunk];
  const int64_t n = env.Recv(conn.fd, buffer);
  if (n <= 0) {
    return false;  // EOF (e.g. a probe connection) or a dead stream.
  }
  conn.in.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));

  for (;;) {
    ParsedRequest request;
    const ParseStatus status = ParseRequest(conn.in, config.max_request_bytes, &request);
    if (status == ParseStatus::kNeedMore) {
      return true;
    }
    if (status == ParseStatus::kBadRequest || status == ParseStatus::kTooLarge) {
      state.stats_lock.Lock();
      if (status == ParseStatus::kBadRequest) {
        ++state.stats.bad_requests;
      } else {
        ++state.stats.oversized_requests;
      }
      state.stats_lock.Unlock();
      env.Send(conn.fd, MakeErrorResponse(status == ParseStatus::kTooLarge ? 413 : 400));
      return false;
    }

    const std::string raw = conn.in.substr(0, request.total_bytes);
    conn.in.erase(0, request.total_bytes);

    std::string body;
    bool vuln_hit = false;
    if (config.enable_vulnerability && request.path.rfind("/vuln", 0) == 0) {
      body = HandleVuln(env, raw, static_page);
      vuln_hit = true;
    } else {
      body = static_page;
    }

    // Same custom-primitive critical section as the seed dispatcher: the
    // request id is externally visible, so uninstrumented builds still lose
    // the §5.5 race under the event loop.
    state.stats_lock.Lock();
    const uint64_t request_id = ++state.stats.requests_served;
    std::this_thread::yield();
    state.stats.bytes_sent += body.size();
    if (vuln_hit) {
      ++state.stats.vuln_hits;
    }
    state.stats_lock.Unlock();

    env.Send(conn.fd, MakeEventResponse(request, body, request_id));
    if (!request.keep_alive) {
      return false;
    }
  }
}

void EventWorker(std::shared_ptr<ServerState> state, const ServerConfig& config,
                 const std::string& static_page, int64_t pipe_fd, VariantEnv& env) {
  std::vector<EventConn> conns;
  std::string handoff;  // Carry buffer: pipe reads may split the 4-byte records.
  bool pipe_open = true;

  while (pipe_open || !conns.empty()) {
    std::vector<VariantEnv::PollFd> set;
    set.reserve((pipe_open ? 1 : 0) + conns.size());
    if (pipe_open) {
      set.push_back({static_cast<int32_t>(pipe_fd), PollEvents::kIn, 0});
    }
    for (const EventConn& conn : conns) {
      set.push_back({static_cast<int32_t>(conn.fd), PollEvents::kIn, 0});
    }

    if (env.Poll(set, kPollSliceMs) <= 0) {
      continue;  // Timeout heartbeat; re-arm.
    }

    size_t base = 0;
    if (pipe_open) {
      if (set[0].revents != 0) {
        uint8_t buffer[64];
        const int64_t n = env.Read(pipe_fd, buffer);
        if (n <= 0) {
          // Acceptor closed its end: the budget is drained. Finish the live
          // connections, then exit.
          env.Close(pipe_fd);
          pipe_open = false;
        } else {
          handoff.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
          while (handoff.size() >= sizeof(int32_t)) {
            int32_t fd = -1;
            std::memcpy(&fd, handoff.data(), sizeof(fd));
            handoff.erase(0, sizeof(fd));
            conns.push_back(EventConn{fd, {}});
          }
        }
      }
      base = 1;
    }

    // Only the connections that were in this round's poll set have revents;
    // connections admitted from the pipe above are polled next round.
    const size_t polled = set.size() - base;
    for (size_t i = 0; i < polled; ++i) {
      if (set[base + i].revents == 0) {
        continue;
      }
      EventConn& conn = conns[i];
      if (!ServiceConn(conn, *state, config, static_page, env)) {
        env.Close(conn.fd);
        conn.fd = -1;
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const EventConn& c) { return c.fd < 0; }),
                conns.end());
  }
}

void EventAcceptLoop(const ServerConfig& config, int64_t listen_fd,
                     const std::vector<std::pair<int64_t, int64_t>>& pipes,
                     VariantEnv& env) {
  uint32_t accepted = 0;
  while (accepted < config.connection_budget) {
    VariantEnv::PollFd listener{static_cast<int32_t>(listen_fd), PollEvents::kIn, 0};
    if (env.Poll({&listener, 1}, kPollSliceMs) <= 0) {
      continue;  // Timeout heartbeat.
    }
    const int64_t conn_fd = env.Accept(listen_fd);
    if (conn_fd < 0) {
      break;  // Listener torn down.
    }
    uint8_t record[sizeof(int32_t)];
    const int32_t fd32 = static_cast<int32_t>(conn_fd);
    std::memcpy(record, &fd32, sizeof(fd32));
    env.Write(pipes[accepted % pipes.size()].second,
              std::span<const uint8_t>(record, sizeof(record)));
    ++accepted;
  }
}

void WriteStats(const ServerState& state, VariantEnv& env) {
  // Final stats: lockstep-compared across variants, so any divergence in
  // the served-request accounting is caught here at the latest.
  const std::string stats_line =
      "requests=" + std::to_string(state.stats.requests_served) +
      " bytes=" + std::to_string(state.stats.bytes_sent) +
      " vuln=" + std::to_string(state.stats.vuln_hits) +
      " bad=" + std::to_string(state.stats.bad_requests) +
      " oversized=" + std::to_string(state.stats.oversized_requests) + "\n";
  const int64_t fd = env.Open("result/http_stats",
                              VOpenFlags::kWrite | VOpenFlags::kCreate | VOpenFlags::kTruncate);
  env.Write(fd, stats_line);
  env.Close(fd);
}

}  // namespace

Program MakeServerProgram(const ServerConfig& config) {
  return [config](VariantEnv& env) {
    const std::string static_page(config.page_bytes, 'x');
    auto state = std::make_shared<ServerState>(config);

    const int64_t listen_fd = env.Socket();
    env.Bind(listen_fd, config.port);
    const int64_t backlog = config.use_event_loop ? config.listen_backlog : 128;
    if (env.Listen(listen_fd, backlog) != 0) {
      return;  // Port in use (another variant run left it open).
    }

    if (config.use_event_loop) {
      const uint32_t workers = std::max(1u, config.pool_threads);
      std::vector<std::pair<int64_t, int64_t>> pipes;
      for (uint32_t t = 0; t < workers; ++t) {
        pipes.push_back(env.Pipe());
      }
      std::vector<ThreadHandle> pool;
      for (uint32_t t = 0; t < workers; ++t) {
        const int64_t read_fd = pipes[t].first;
        pool.push_back(env.Spawn([state, config, static_page, read_fd](VariantEnv& wenv) {
          EventWorker(state, config, static_page, read_fd, wenv);
        }));
      }
      EventAcceptLoop(config, listen_fd, pipes, env);
      for (const auto& pipe : pipes) {
        env.Close(pipe.second);  // Workers observe EOF, drain, and exit.
      }
      for (ThreadHandle handle : pool) {
        env.Join(handle);
      }
    } else {
      // Seed dispatcher: one blocking accept at a time, one connection per
      // worker wakeup, HTTP/1.0 only.
      std::vector<ThreadHandle> pool;
      for (uint32_t t = 0; t < config.pool_threads; ++t) {
        pool.push_back(env.Spawn([state, config, static_page](VariantEnv& wenv) {
          Worker(state, config, static_page, wenv);
        }));
      }
      for (uint32_t c = 0; c < config.connection_budget; ++c) {
        const int64_t conn_fd = env.Accept(listen_fd);
        if (conn_fd < 0) {
          break;
        }
        state->connections.Push(conn_fd);
      }
      for (uint32_t t = 0; t < config.pool_threads; ++t) {
        state->connections.Push(-1);
      }
      for (ThreadHandle handle : pool) {
        env.Join(handle);
      }
    }

    env.Shutdown(listen_fd);
    env.Close(listen_fd);
    WriteStats(*state, env);
  };
}

}  // namespace mvee
