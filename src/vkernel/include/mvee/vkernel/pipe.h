// Bounded in-kernel pipe with blocking read/write.
//
// Pipes are only ever operated on by the master variant (reads and writes are
// replicated calls), so real blocking on a condition variable is safe here —
// the monitor does not hold the syscall ordering clock's critical section
// around replicated calls (paper §4.1 Limitations).
//
// Every state change additionally fires the pipe's WaitQueue so sys_poll
// blocks on wakeups instead of re-scanning on a sleep quantum (waitq.h), and
// the pipe registers itself in the kernel's WaitRegistry so MVEE teardown
// closes it from one place.

#ifndef MVEE_VKERNEL_PIPE_H_
#define MVEE_VKERNEL_PIPE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "mvee/vkernel/vobject.h"
#include "mvee/vkernel/waitq.h"

namespace mvee {

class VPipe : public VObject, public Waitable {
 public:
  explicit VPipe(size_t capacity = 65536, WaitRegistry* registry = nullptr)
      : capacity_(capacity) {
    RegisterWaitable(registry);
  }
  // Unregister while the members a concurrent ShutdownWake touches still
  // exist (see Waitable::UnregisterWaitable).
  ~VPipe() override { UnregisterWaitable(); }

  // Blocks until at least 1 byte is available or the write end closes.
  // Returns bytes read, 0 on EOF.
  int64_t Read(uint8_t* out, uint64_t size);

  // Blocks while the pipe is full. Returns bytes written or -EPIPE if the
  // read end has closed.
  int64_t Write(const uint8_t* data, uint64_t size);

  void CloseWriteEnd();
  void CloseReadEnd();
  bool write_closed() const;
  size_t BytesBuffered() const;

  WaitQueue* waitq() override { return &waitq_; }

  // Waitable: close both ends so blocked readers/writers (and pollers) wake.
  void ShutdownWake() override {
    CloseWriteEnd();
    CloseReadEnd();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<uint8_t> buffer_;
  WaitQueue waitq_;
  bool write_closed_ = false;
  bool read_closed_ = false;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_PIPE_H_
