// Per-variant kernel-side process state.
//
// Each variant of the protected program gets its own process state: a file
// descriptor table and an address space. Shared machine state (filesystem,
// network, clock, futex table) lives in VirtualKernel.

#ifndef MVEE_VKERNEL_PROCESS_H_
#define MVEE_VKERNEL_PROCESS_H_

#include <atomic>
#include <cstdint>

#include "mvee/vkernel/fd_table.h"
#include "mvee/vkernel/memory.h"
#include "mvee/vkernel/vkernel_config.h"

namespace mvee {

class ProcessState {
 public:
  // `heap_base` / `map_base` encode the variant's (simulated) address-space
  // layout diversity. `sharded_vkernel` selects the descriptor table's
  // concurrency mode (lock-free leased lookups vs the seed's global mutex);
  // the monitor passes MveeOptions::sharded_vkernel, standalone constructions
  // follow the environment default.
  ProcessState(int32_t pid, uint64_t heap_base, uint64_t map_base,
               bool sharded_vkernel = DefaultShardedVkernel())
      : pid_(pid), fds_(sharded_vkernel), address_space_(heap_base, map_base) {}

  int32_t pid() const { return pid_; }
  FdTable& fds() { return fds_; }
  AddressSpace& memory() { return address_space_; }

  // Which MVEE variant owns this process state. Defaults to 0 (standalone
  // constructions); the monitor stamps it so kernel-side fault attribution
  // (docs/fault_injection.md) can name the victim variant.
  uint32_t variant_index() const { return variant_index_; }
  void set_variant_index(uint32_t index) { variant_index_ = index; }

  // Allocates a kernel thread id for sys_clone.
  int32_t NextTid() { return next_tid_.fetch_add(1, std::memory_order_relaxed); }

 private:
  const int32_t pid_;
  uint32_t variant_index_ = 0;
  FdTable fds_;
  AddressSpace address_space_;
  std::atomic<int32_t> next_tid_{2};  // tid 1 is the initial thread.
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_PROCESS_H_
