#include "mvee/agents/wall_of_clocks.h"

#include <chrono>
#include <string>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

WallOfClocksRuntime::WallOfClocksRuntime(const AgentConfig& config, AgentControl control)
    : config_(ValidatedAgentConfig(config)),
      control_(std::move(control)),
      master_clocks_(config_.clock_count),
      rings_(true, config_),
      slave_clocks_(config_.num_variants > 0 ? config_.num_variants - 1 : 0) {
  for (auto& clocks : slave_clocks_) {
    clocks = std::vector<SlaveClock>(config_.clock_count);
  }
}

void WallOfClocksRuntime::DetachVariant(uint32_t variant) {
  if (variant == 0 || variant >= config_.num_variants) {
    return;
  }
  // Consumer v-1 of every per-thread ring belongs to slave variant v.
  rings_.DetachConsumer(variant - 1);
}

std::unique_ptr<SyncAgent> WallOfClocksRuntime::CreateAgent(uint32_t variant_index) {
  const AgentRole role = variant_index == 0 ? AgentRole::kMaster : AgentRole::kSlave;
  return std::make_unique<WallOfClocksAgent>(this, role, variant_index);
}

WallOfClocksAgent::WallOfClocksAgent(WallOfClocksRuntime* runtime, AgentRole role,
                                     uint32_t variant_index)
    : runtime_(runtime),
      role_(role),
      variant_index_(variant_index),
      pending_(runtime->config_.max_threads) {}

void WallOfClocksAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;  // Teardown: no second throw from destructor-driven sync ops.
  }
  CheckTidBound(tid, runtime_->config_.max_threads, runtime_->control_, name());
  const uint32_t clock_id = runtime_->ClockOf(addr);

  if (role_ == AgentRole::kMaster) {
    // Lock the clock bucket across the op so that the recorded per-clock
    // order equals the execution order. Contention here mirrors the
    // program's own contention on the corresponding sync variables (§4.5:
    // overhead "scales with the pre-existing resource contention").
    auto& clock = runtime_->master_clocks_[clock_id];
    SpinWait waiter;
    while (clock.lock.test_and_set(std::memory_order_acquire)) {
      if (runtime_->control_.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    pending_[tid].clock_id = clock_id;
    pending_[tid].time = clock.time;
    return;
  }

  // Slave: fetch this thread's next recorded entry, then wait for the local
  // clock copy to reach the recorded time.
  auto& ring = runtime_->rings_.Get(tid);
  const size_t consumer = variant_index_ - 1;
  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;

  WallOfClocksRuntime::Entry entry;
  while (!ring.Peek(consumer, 0, &entry)) {
    if (runtime_->control_.should_unwind(variant_index_)) {
      throw VariantKilled{};
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(variant_index_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("wall-of-clocks replay deadline (no entry, tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }

  auto& local_clock = runtime_->slave_clocks_[consumer][entry.clock_id].time;
  waiter.Reset();
  while (local_clock.load(std::memory_order_acquire) != entry.time) {
    if (runtime_->control_.should_unwind(variant_index_)) {
      throw VariantKilled{};
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(variant_index_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("wall-of-clocks replay deadline (clock " +
                                    std::to_string(entry.clock_id) + " stuck at " +
                                    std::to_string(local_clock.load()) + ", want " +
                                    std::to_string(entry.time) + ", tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  pending_[tid].clock_id = entry.clock_id;
  pending_[tid].time = entry.time;
}

void WallOfClocksAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    const Pending pending = pending_[tid];
    auto& clock = runtime_->master_clocks_[pending.clock_id];
    clock.time = pending.time + 1;
    clock.lock.clear(std::memory_order_release);

    // Publication happens outside the clock lock: this ring belongs to this
    // master thread alone (single producer), and slaves order replay by the
    // recorded clock value, not by push order — so a delayed push can only
    // delay, never reorder, the replay. Keeping a full-ring stall out of the
    // lock also lets other masters keep advancing this clock meanwhile.
    auto& ring = runtime_->rings_.Get(tid);
    WallOfClocksRuntime::Entry entry;
    entry.clock_id = pending.clock_id;
    entry.time = pending.time;
    if (!ring.TryPush(entry)) {
      runtime_->stats_.shard(variant_index_, tid).record_stalls.fetch_add(1, std::memory_order_relaxed);
      SpinWait waiter;
      while (!ring.TryPush(entry)) {
        if (runtime_->control_.aborted()) {
          throw VariantKilled{};
        }
        waiter.Pause();
      }
    }
    runtime_->stats_.shard(variant_index_, tid).ops_recorded.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const size_t consumer = variant_index_ - 1;
  const Pending pending = pending_[tid];
  runtime_->slave_clocks_[consumer][pending.clock_id].time.store(pending.time + 1,
                                                                 std::memory_order_release);
  runtime_->rings_.Get(tid).Advance(consumer);
  runtime_->stats_.shard(variant_index_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mvee
