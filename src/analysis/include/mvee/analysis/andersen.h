// Andersen-style subset-based points-to analysis over MIR.
//
// The paper's second automation attempt used SVF, "an Andersen-style,
// subset-based points-to analysis" (§4.3.1), noting it keeps more precision
// than Steensgaard's unification but is costlier. Cost is exactly why the
// paper abandoned it at production scale — so this class carries two
// engines behind AnalysisOptions::fast_solver:
//
//   fast_solver = false  the textbook inclusion-constraint worklist over
//                        std::set (the seed implementation, kept in-binary
//                        as the measurable baseline);
//   fast_solver = true   the wave-propagation engine (wave_solver.h):
//                        sparse bitmaps, difference propagation, online
//                        cycle collapse.
//
// Both engines consume the same ConstraintProgram (constraints.h) — AddrOf,
// copy, and interprocedural parameter/return flow, with indirect-call
// targets resolved on the fly from the growing points-to solution — and
// produce bit-identical solutions; the differential tests in
// tests/analysis_test.cc prove per-register equality on randomized modules.
//
// The directionality is what distinguishes it from Steensgaard: `p = &x;
// p = &y; q = &y` does NOT force x into pts(q). The analysis bench compares
// the two on precision (spurious type-(iii) marks) and run time.

#ifndef MVEE_ANALYSIS_ANDERSEN_H_
#define MVEE_ANALYSIS_ANDERSEN_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "mvee/analysis/mir.h"
#include "mvee/analysis/options.h"
#include "mvee/analysis/sparse_bitmap.h"
#include "mvee/analysis/stats.h"

namespace mvee {

class AndersenAnalysis {
 public:
  explicit AndersenAnalysis(const MirModule& module, const AnalysisOptions& options = {});

  // The set of object indices pointer register `reg` may point to,
  // materialized. Convenient for tests; hot paths should use ForEachPointee
  // or PointsToObject, which query the bitmap solution directly.
  std::set<int32_t> PointsTo(int32_t reg) const;

  // Sorted pointee ids — the differential tests' comparison form.
  std::vector<int32_t> PointsToSorted(int32_t reg) const;

  template <typename Fn>
  void ForEachPointee(int32_t reg, Fn fn) const {
    if (reg >= 0 && static_cast<size_t>(reg) < rep_.size()) {
      pts_[rep_[reg]].ForEach([&](uint32_t object) { fn(static_cast<int32_t>(object)); });
    }
  }

  bool PointsToObject(int32_t reg, int32_t object) const;
  bool MayAlias(int32_t reg_a, int32_t reg_b) const;
  // True if `reg` may point to any object in `objects`. Probes the bitmap
  // per candidate — no set materialization.
  bool MayPointInto(int32_t reg, const std::set<int32_t>& objects) const;

  const AnalysisStats& stats() const { return stats_; }
  // Back-compat cost metric (pre-AnalysisStats callers).
  uint64_t solver_iterations() const { return stats_.solver_iterations; }

 private:
  // rep_[r] names the constraint node holding r's solution — the wave
  // engine collapses cycle members onto one node; the baseline maps each
  // register to itself.
  std::vector<int32_t> rep_;
  std::vector<SparseBitmap> pts_;
  AnalysisStats stats_;
};

// All call-induced def-use copy pairs (dst, src): direct calls resolved
// statically, indirect calls from the points-to fixpoint. The _Atomic
// qualifier propagation (atomic_check.cc) walks these like Mov edges.
std::vector<std::pair<int32_t, int32_t>> ResolveCallCopies(const MirModule& module,
                                                           const AnalysisOptions& options = {});

}  // namespace mvee

#endif  // MVEE_ANALYSIS_ANDERSEN_H_
