// Regenerates paper Table 3: sync ops identified per module by the two-stage
// analysis — type (i) LOCK-prefixed, type (ii) XCHG, type (iii) aliasing
// aligned load/stores — over the synthetic binary corpus, plus the worked
// examples of Listings 1 and 2 and the _Atomic propagation workflow
// (§4.3.1).

#include <cstdio>

#include "mvee/analysis/atomic_check.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/field_sensitive.h"
#include "mvee/analysis/syncop_analysis.h"

int main() {
  using namespace mvee;

  std::printf("\n================================================================\n");
  std::printf("Table 3: identified sync ops per module (paper values in parens)\n");
  std::printf("================================================================\n");
  std::printf("%-22s %13s %13s %13s %9s\n", "module", "(i) LOCK", "(ii) XCHG",
              "(iii) ld/st", "unmarked");

  const auto specs = Table3Specs();
  for (const auto& spec : specs) {
    const SyncOpReport report = IdentifySyncOps(BuildSyntheticModule(spec));
    std::printf("%-22s %5zu (%5zu) %5zu (%5zu) %5zu (%5zu) %9zu\n", report.module_name.c_str(),
                report.type_i.size(), spec.type_i, report.type_ii.size(), spec.type_ii,
                report.type_iii.size(), spec.type_iii, report.unmarked_memops);
  }

  std::printf("\n--- Worked examples (paper Listings 1 & 2) ---\n");
  {
    const SyncOpReport listing1 = IdentifySyncOps(BuildListing1Module());
    std::printf("listing1 (ad-hoc spinlock): type(i)=%zu type(iii)=%zu; "
                "stage 2 marked the unlock store at %s\n",
                listing1.type_i.size(), listing1.type_iii.size(),
                listing1.type_iii.empty() ? "<missed!>"
                                          : listing1.type_iii[0].source_line.c_str());
  }
  {
    const SyncOpReport base = IdentifySyncOps(BuildListing2Module());
    SyncOpAnalysisOptions volatile_opt;
    volatile_opt.treat_volatile_as_sync = true;
    const SyncOpReport extended = IdentifySyncOps(BuildListing2Module(), volatile_opt);
    std::printf("listing2 (volatile condvar): base analysis found %zu (documented "
                "limitation), volatile extension found %zu\n",
                base.TotalSyncOps(), extended.TotalSyncOps());
  }

  std::printf("\n--- _Atomic qualifier propagation (Figure 3 workflow) ---\n");
  for (const auto& spec : specs) {
    const MirModule module = BuildSyntheticModule(spec);
    const SyncOpReport report = IdentifySyncOps(module);
    const PropagationResult propagation = PropagateQualifiers(module, report.sync_objects);
    std::printf("%-22s qualified %3zu objects, %4zu pointers, fixpoint in %d compiles, "
                "%zu hard errors\n",
                module.name.c_str(), propagation.qualified_objects.size(),
                propagation.qualified_regs.size(), propagation.iterations,
                propagation.hard_errors.size());
  }

  std::printf("\n--- Heap field-sensitivity (§4.3.1's DSA/SVF complaint) ---\n");
  std::printf("STL refcounting pattern (§5.3): heap nodes, LOCK XADD on field 0,\n"
              "plain payload accesses on fields 1..4. Spurious marks per analysis:\n");
  {
    const RefcountHeapCorpus corpus = BuildRefcountHeapModule(
        /*nodes=*/32, /*payload_fields=*/4, /*accesses_per_field=*/3);
    const SyncOpReport steensgaard = IdentifySyncOps(corpus.module);
    const SyncOpReport andersen = IdentifySyncOpsAndersen(corpus.module);
    const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(corpus.module);
    const size_t total_plain = corpus.payload_memops;
    auto spurious = [&](const SyncOpReport& report) {
      return report.type_iii.size() - corpus.real_type_iii;
    };
    std::printf("  ground truth: %zu real type (iii), %zu plain payload memops\n",
                corpus.real_type_iii, total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "steensgaard (DSA-style)", steensgaard.type_iii.size(),
                spurious(steensgaard), 100.0 * spurious(steensgaard) / total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "andersen (SVF-as-queried)", andersen.type_iii.size(), spurious(andersen),
                100.0 * spurious(andersen) / total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "andersen field-sensitive", sensitive.type_iii.size(), spurious(sensitive),
                100.0 * spurious(sensitive) / total_plain);
    std::printf("  (the paper reports \"the majority of type (iii) instructions that\n"
                "   target heap-allocated variables\" are spuriously marked by both\n"
                "   DSA and SVF; field-granular heap queries eliminate that.)\n");
  }
  return 0;
}
