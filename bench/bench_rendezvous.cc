// Lockstep round throughput: wait-free round slabs vs the mutex/condvar
// baseline (MveeOptions::waitfree_rendezvous).
//
// The workload is the rendezvous cost in isolation: T threads per variant,
// each hammering replicated 64-byte reads (the class whose round does the
// most work — digest compare, master kernel call, pooled payload publication,
// per-slave copy) plus an ordered lseek to keep the fd offset pinned. Every
// call is one full gather/execute/drain round, so rounds/second ==
// syscalls/second. Under the mutex protocol each round costs several
// lock/unlock pairs, two condvar waits and up to three notify_all fan-outs
// (futex syscalls whenever anyone sleeps); under the slab protocol it costs
// a handful of atomic RMWs and release/acquire stores, with SpinWait/parked
// waiting instead of condvars (docs/DESIGN.md §6).
//
// Both modes run in one binary on the same workload; results go to
// BENCH_monitor.json. Knobs:
//   MVEE_BENCH_RDV_THREADS      worker threads per variant     (default 4)
//   MVEE_BENCH_RDV_VARIANTS     variants                       (default 2)
//   MVEE_BENCH_RDV_ITERS        replicated reads per thread    (default 3000)
//   MVEE_BENCH_RDV_REPS         repetitions, best-of kept      (default 3)
//   MVEE_BENCH_RDV_MIN_SPEEDUP  exit nonzero below this        (default 0 = off)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

namespace {

using namespace mvee;
using mvee::bench::EnvInt;

struct RendezvousRun {
  std::string mode;
  uint32_t variants = 0;
  uint32_t threads = 0;
  uint64_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  bool ok = false;
};

// T workers per variant, each reading a private 64-byte file in lockstep
// rounds. Private descriptors keep the ordered lseek traffic on disjoint
// per-fd domains, so what is measured is the rendezvous itself, not ordering
// contention (that ratio lives in bench_order_domains).
RendezvousRun RunLockstep(bool waitfree, uint32_t variants, uint32_t threads, int64_t iters) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.enable_aslr = false;
  options.waitfree_rendezvous = waitfree;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);

  Mvee mvee(options);
  for (uint32_t t = 0; t < threads; ++t) {
    mvee.kernel().vfs().PutFile("rdv_blob_" + std::to_string(t),
                                std::vector<uint8_t>(64, 0x42));
  }
  const Status status = mvee.Run([threads, iters](VariantEnv& env) {
    std::vector<ThreadHandle> handles;
    for (uint32_t t = 0; t < threads; ++t) {
      handles.push_back(env.Spawn([t, iters](VariantEnv& wenv) {
        std::vector<uint8_t> buffer(64);
        const int64_t fd = wenv.Open("rdv_blob_" + std::to_string(t), VOpenFlags::kRead);
        for (int64_t i = 0; i < iters; ++i) {
          wenv.Pread(fd, 0, buffer);
        }
        wenv.Close(fd);
      }));
    }
    for (auto handle : handles) {
      env.Join(handle);
    }
  });

  const MveeReport& report = mvee.report();
  RendezvousRun run;
  run.mode = waitfree ? "slab" : "mutex";
  run.variants = variants;
  run.threads = threads;
  run.rounds = report.syscalls.total;
  run.seconds = report.wall_seconds;
  run.rounds_per_sec = run.seconds > 0 ? static_cast<double>(run.rounds) / run.seconds : 0;
  run.ok = status.ok();
  return run;
}

void WriteMonitorJson(const std::vector<RendezvousRun>& runs, double speedup) {
  const std::string path = mvee::bench::ResolveBenchJsonPath("BENCH_monitor.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"rendezvous\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RendezvousRun& run = runs[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"variants\": %u, \"threads\": %u, "
                 "\"rounds\": %llu, \"seconds\": %.4f, \"rounds_per_sec\": %.1f, "
                 "\"ok\": %s}%s\n",
                 run.mode.c_str(), run.variants, run.threads,
                 static_cast<unsigned long long>(run.rounds), run.seconds, run.rounds_per_sec,
                 run.ok ? "true" : "false", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"speedup_slab_vs_mutex\": %.2f\n}\n", speedup);
  std::fclose(file);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main() {
  using namespace mvee::bench;

  const auto threads = static_cast<uint32_t>(EnvInt("MVEE_BENCH_RDV_THREADS", 4));
  const auto variants = static_cast<uint32_t>(EnvInt("MVEE_BENCH_RDV_VARIANTS", 2));
  const int64_t iters = EnvInt("MVEE_BENCH_RDV_ITERS", 3000);
  const int64_t reps = EnvInt("MVEE_BENCH_RDV_REPS", 3);

  PrintHeader("Lockstep round throughput: mutex/condvar vs wait-free round slabs (" +
              std::to_string(variants) + " variants, " + std::to_string(threads) +
              " threads, " + std::to_string(iters) + " replicated reads/thread)");

  std::vector<RendezvousRun> runs;
  // Warm-up pass (thread pools, allocator, file cache) kept out of the runs.
  RunLockstep(/*waitfree=*/true, variants, /*threads=*/2, /*iters=*/200);

  for (const bool waitfree : {false, true}) {
    // Best of `reps` runs: on small/oversubscribed hosts a single run is
    // dominated by scheduler noise; the best run is the least-perturbed
    // measurement of each protocol's intrinsic cost.
    RendezvousRun run;
    for (int64_t rep = 0; rep < reps; ++rep) {
      RendezvousRun attempt = RunLockstep(waitfree, variants, threads, iters);
      if (!attempt.ok) {
        run = attempt;
        break;
      }
      if (rep == 0 || attempt.rounds_per_sec > run.rounds_per_sec) {
        run = attempt;
      }
    }
    std::printf("  %-6s %8.3fs  %10.0f rounds/s  (%llu rounds%s)\n", run.mode.c_str(),
                run.seconds, run.rounds_per_sec, static_cast<unsigned long long>(run.rounds),
                run.ok ? "" : ", FAILED RUN");
    runs.push_back(run);
  }

  const double speedup =
      runs[0].rounds_per_sec > 0 ? runs[1].rounds_per_sec / runs[0].rounds_per_sec : 0;
  std::printf("\n  slab vs mutex speedup: %.2fx\n", speedup);
  WriteMonitorJson(runs, speedup);

  if (!runs[0].ok || !runs[1].ok) {
    std::fprintf(stderr, "FAIL: a measurement run did not complete cleanly\n");
    return 1;
  }
  const double min_speedup = std::getenv("MVEE_BENCH_RDV_MIN_SPEEDUP")
                                 ? std::atof(std::getenv("MVEE_BENCH_RDV_MIN_SPEEDUP"))
                                 : 0.0;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n", speedup, min_speedup);
    return 1;
  }
  return 0;
}
