// Unit tests for src/util: RNG determinism, hashing, the broadcast ring, and
// the statistics helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "mvee/util/hash.h"
#include "mvee/util/histogram.h"
#include "mvee/util/rng.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/util/stats.h"
#include "mvee/util/status.h"

namespace mvee {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(123);
  Rng b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HashTest, FnvMatchesKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(FnvHashBytes("", 0), 0xcbf29ce484222325ULL);
  // Different strings hash differently.
  EXPECT_NE(FnvHash("hello"), FnvHash("world"));
}

TEST(HashTest, DigestMatchesOneShot) {
  FnvDigest digest;
  digest.Update("he", 2);
  digest.Update("llo", 3);
  EXPECT_EQ(digest.Finish(), FnvHash("hello"));
}

TEST(HashTest, ClockAddressHashBucketsAdjacent32BitWords) {
  // Two 32-bit variables in the same 64-bit line map to the same clock
  // (paper §4.5: a single CMPXCHG8B could modify both).
  const uint64_t base = 0x7f0000001000ULL;
  EXPECT_EQ(ClockAddressHash(base), ClockAddressHash(base + 4));
  EXPECT_NE(ClockAddressHash(base), ClockAddressHash(base + 8));
}

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status(StatusCode::kDivergence, "write mismatch");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
  EXPECT_EQ(status.ToString(), "divergence: write mismatch");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status(StatusCode::kNotFound, "x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(BroadcastRingTest, SingleConsumerFifo) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  for (int i = 0; i < 5; ++i) {
    ring.Push(i);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.CanPop(consumer));
    EXPECT_EQ(ring.Pop(consumer), i);
  }
  EXPECT_FALSE(ring.CanPop(consumer));
}

TEST(BroadcastRingTest, TryPushFailsWhenFull) {
  BroadcastRing<int> ring(4);
  const size_t consumer = ring.RegisterConsumer();
  (void)consumer;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
}

TEST(BroadcastRingTest, EachConsumerSeesFullStream) {
  BroadcastRing<int> ring(16);
  const size_t c0 = ring.RegisterConsumer();
  const size_t c1 = ring.RegisterConsumer();
  for (int i = 0; i < 10; ++i) {
    ring.Push(i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.Pop(c0), i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ring.Pop(c1), i);
  }
}

TEST(BroadcastRingTest, ProducerBoundedBySlowestConsumer) {
  BroadcastRing<int> ring(4);
  const size_t fast = ring.RegisterConsumer();
  const size_t slow = ring.RegisterConsumer();
  for (int i = 0; i < 4; ++i) {
    ring.Push(i);
  }
  // Fast consumer drains; slow consumer has not moved: still full.
  for (int i = 0; i < 4; ++i) {
    ring.Pop(fast);
  }
  EXPECT_FALSE(ring.TryPush(100));
  ring.Pop(slow);
  EXPECT_TRUE(ring.TryPush(100));
}

TEST(BroadcastRingTest, PeekDoesNotConsume) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  ring.Push(7);
  ring.Push(8);
  int value = 0;
  EXPECT_TRUE(ring.Peek(consumer, 0, &value));
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(ring.Peek(consumer, 1, &value));
  EXPECT_EQ(value, 8);
  EXPECT_FALSE(ring.Peek(consumer, 2, &value));
  ring.Advance(consumer);
  EXPECT_TRUE(ring.Peek(consumer, 0, &value));
  EXPECT_EQ(value, 8);
}

TEST(BroadcastRingTest, TryReadAbsoluteSequence) {
  BroadcastRing<int> ring(8);
  ring.RegisterConsumer();
  ring.Push(10);
  ring.Push(11);
  int value = 0;
  EXPECT_TRUE(ring.TryRead(0, &value));
  EXPECT_EQ(value, 10);
  EXPECT_TRUE(ring.TryRead(1, &value));
  EXPECT_EQ(value, 11);
  EXPECT_FALSE(ring.TryRead(2, &value));
}

TEST(BroadcastRingTest, AdvanceToIsMonotonicUnderRacingAdvancers) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  for (int i = 0; i < 6; ++i) {
    ring.Push(i);
  }
  // Out-of-order winners (the PO retire loop's lagging-thread case): the
  // larger advance lands first, the smaller one must be a no-op.
  ring.AdvanceTo(consumer, 4);
  EXPECT_EQ(ring.ReadCursor(consumer), 4u);
  ring.AdvanceTo(consumer, 2);
  EXPECT_EQ(ring.ReadCursor(consumer), 4u);
  ring.AdvanceTo(consumer, 6);
  EXPECT_EQ(ring.ReadCursor(consumer), 6u);
  // The producer may now lap the retired slots — exactly `capacity` entries
  // fit past the advanced cursor.
  for (int i = 6; i < 14; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
}

TEST(BroadcastRingTest, AdvanceToConcurrentMaxWins) {
  BroadcastRing<uint64_t> ring(1 << 12);
  const size_t consumer = ring.RegisterConsumer();
  for (uint64_t i = 0; i < 4000; ++i) {
    ring.Push(i);
  }
  std::vector<std::thread> advancers;
  for (int t = 0; t < 4; ++t) {
    advancers.emplace_back([&, t] {
      for (uint64_t seq = 1 + t; seq <= 4000; seq += 4) {
        ring.AdvanceTo(consumer, seq);
      }
    });
  }
  for (auto& thread : advancers) {
    thread.join();
  }
  EXPECT_EQ(ring.ReadCursor(consumer), 4000u);
}

// --- TicketedRingMerge (the sharded TO/PO recording merge, docs/DESIGN.md §8) ---

struct TicketEntry {
  uint64_t seq = 0;
  uint64_t key = 0;
};

TEST(TicketedRingMergeTest, StrictMergeReconstructsGlobalOrder) {
  // Three "master threads" record interleaved tickets into private rings.
  BroadcastRing<TicketEntry> ring_a(16);
  BroadcastRing<TicketEntry> ring_b(16);
  BroadcastRing<TicketEntry> ring_c(16);
  for (auto* ring : {&ring_a, &ring_b, &ring_c}) {
    ring->RegisterConsumer();
  }
  ring_a.Push({0, 100});
  ring_b.Push({1, 200});
  ring_a.Push({2, 100});
  ring_c.Push({3, 300});
  ring_b.Push({4, 100});

  BroadcastRing<TicketEntry>* rings[] = {&ring_a, &ring_b, &ring_c};
  TicketedRingMerge<TicketEntry> merge(rings, 3, 0);
  const auto seq_of = [](const TicketEntry& e) { return e.seq; };

  TicketEntry out;
  for (uint64_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(merge.TryPopNext(seq, seq_of, &out)) << "seq " << seq;
    EXPECT_EQ(out.seq, seq);
  }
  // Sequence 5 has not been produced anywhere.
  EXPECT_FALSE(merge.TryPopNext(5, seq_of, &out));
  // A gap (seq 6 pushed, 5 missing) must not be popped out of order.
  ring_c.Push({6, 300});
  EXPECT_FALSE(merge.TryPopNext(5, seq_of, &out));
  ring_a.Push({5, 100});
  EXPECT_TRUE(merge.TryPopNext(5, seq_of, &out));
  EXPECT_TRUE(merge.TryPopNext(6, seq_of, &out));
}

TEST(TicketedRingMergeTest, DependenceScanFindsConflictsBelowLimit) {
  BroadcastRing<TicketEntry> ring_a(16);
  BroadcastRing<TicketEntry> ring_b(16);
  for (auto* ring : {&ring_a, &ring_b}) {
    ring->RegisterConsumer();
  }
  ring_a.Push({0, 100});
  ring_a.Push({2, 200});
  ring_b.Push({1, 200});
  ring_b.Push({3, 100});

  BroadcastRing<TicketEntry>* rings[] = {&ring_a, &ring_b};
  TicketedRingMerge<TicketEntry> merge(rings, 2, 0);
  const auto seq_of = [](const TicketEntry& e) { return e.seq; };
  const auto key_is = [](uint64_t key) {
    return [key](const TicketEntry& e) { return e.key == key; };
  };

  // Key 100 at seq 3 conflicts with unconsumed seq 0 in ring_a.
  EXPECT_TRUE(merge.AnyUnconsumedBelow(3, seq_of, key_is(100)));
  // Key 300 conflicts with nothing.
  EXPECT_FALSE(merge.AnyUnconsumedBelow(3, seq_of, key_is(300)));
  // Consuming ring_a's front (seq 0, key 100) clears the conflict.
  ring_a.Advance(0);
  EXPECT_FALSE(merge.AnyUnconsumedBelow(3, seq_of, key_is(100)));
  // Key 200 still conflicts through both rings (seq 1 and seq 2)...
  EXPECT_TRUE(merge.AnyUnconsumedBelow(2, seq_of, key_is(200)));
  // ...until ring_b's front (seq 1) is consumed; entries at/above the limit
  // are never conflicts, so limit 2 now sees nothing.
  ring_b.Advance(0);
  EXPECT_TRUE(merge.AnyUnconsumedBelow(3, seq_of, key_is(200)));
  EXPECT_FALSE(merge.AnyUnconsumedBelow(2, seq_of, key_is(200)));
}

TEST(BroadcastRingTest, ConcurrentProducerConsumer) {
  BroadcastRing<uint64_t> ring(64);
  const size_t consumer = ring.RegisterConsumer();
  constexpr uint64_t kCount = 20000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      ring.Push(i);
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    const uint64_t got = ring.Pop(consumer);
    ASSERT_EQ(got, expected);
    ++expected;
  }
  producer.join();
}

// The cached-cursor fast path must be observationally identical to the
// rescan-every-op ring, so every invariant below runs in both modes.
class BroadcastRingCachingTest : public ::testing::TestWithParam<bool> {
 protected:
  bool caching() const { return GetParam(); }
};

TEST_P(BroadcastRingCachingTest, WraparoundPastCapacityKeepsFifo) {
  BroadcastRing<uint64_t> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  // Many times around the ring: every slot is reused repeatedly and the
  // producer gate must track the consumer exactly.
  for (uint64_t i = 0; i < 100; ++i) {
    ring.Push(i);
    EXPECT_EQ(ring.Pop(consumer), i);
  }
  // Bursts that span the wrap boundary.
  for (uint64_t round = 0; round < 16; ++round) {
    for (uint64_t i = 0; i < 5; ++i) {
      ring.Push(round * 5 + i);
    }
    for (uint64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(ring.Pop(consumer), round * 5 + i);
    }
  }
}

TEST_P(BroadcastRingCachingTest, SlowestConsumerGatesProducer) {
  BroadcastRing<int> ring(4);
  const size_t fast = ring.RegisterConsumer();
  const size_t slow = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  for (int i = 0; i < 4; ++i) {
    ring.Pop(fast);
  }
  // The fast consumer's progress alone must never admit a push: the slot
  // still holds the slow consumer's next element. A producer cache refreshed
  // during the fill must not leak capacity here.
  EXPECT_FALSE(ring.TryPush(100));
  ring.Pop(slow);
  EXPECT_TRUE(ring.TryPush(100));
  EXPECT_FALSE(ring.TryPush(101));  // Full again: slow is 3 behind + 1 new.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(ring.Pop(slow), i);
  }
  EXPECT_EQ(ring.Pop(slow), 100);
  EXPECT_EQ(ring.Pop(fast), 100);
}

TEST_P(BroadcastRingCachingTest, PeekLookaheadWindow) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  for (int i = 0; i < 6; ++i) {
    ring.Push(i);
  }
  int value = -1;
  for (uint64_t offset = 0; offset < 6; ++offset) {
    EXPECT_TRUE(ring.Peek(consumer, offset, &value));
    EXPECT_EQ(value, static_cast<int>(offset));
  }
  // Beyond the produced window: must refuse even when the consumer's cached
  // write cursor was refreshed by the in-window peeks (a stale-low cache is
  // conservative; there is no path to a stale-high one).
  EXPECT_FALSE(ring.Peek(consumer, 6, &value));
  ring.Advance(consumer);
  ring.Advance(consumer);
  EXPECT_TRUE(ring.Peek(consumer, 3, &value));
  EXPECT_EQ(value, 5);
  EXPECT_FALSE(ring.Peek(consumer, 4, &value));
  // New production becomes visible through a cache refresh.
  ring.Push(6);
  EXPECT_TRUE(ring.Peek(consumer, 4, &value));
  EXPECT_EQ(value, 6);
}

TEST_P(BroadcastRingCachingTest, TryPushFailsExactlyWhenFull) {
  BroadcastRing<int> ring(4);
  const size_t consumer = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  // Warm the producer's cached gate first, so fullness is detected against a
  // stale cache and forces the authoritative rescan.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(ring.TryPush(round));
    ring.Pop(consumer);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_FALSE(ring.TryPush(99));  // Still full; repeated probes stay false.
  EXPECT_EQ(ring.Pop(consumer), 0);
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_FALSE(ring.TryPush(99));
}

TEST_P(BroadcastRingCachingTest, ConsumerAwareTryReadTracksProduction) {
  BroadcastRing<int> ring(8);
  const size_t consumer = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  int value = -1;
  EXPECT_FALSE(ring.TryRead(consumer, 0, &value));
  ring.Push(10);
  ring.Push(11);
  EXPECT_TRUE(ring.TryRead(consumer, 0, &value));
  EXPECT_EQ(value, 10);
  EXPECT_TRUE(ring.TryRead(consumer, 1, &value));
  EXPECT_EQ(value, 11);
  EXPECT_FALSE(ring.TryRead(consumer, 2, &value));
  ring.Push(12);
  EXPECT_TRUE(ring.TryRead(consumer, 2, &value));
  EXPECT_EQ(value, 12);
}

TEST_P(BroadcastRingCachingTest, ConcurrentBroadcastTwoConsumers) {
  // Tiny capacity maximizes gate refreshes and full/empty edges — the paths
  // where a stale cache would admit an overwrite or a premature read.
  BroadcastRing<uint64_t> ring(16);
  const size_t c0 = ring.RegisterConsumer();
  const size_t c1 = ring.RegisterConsumer();
  ring.EnableCursorCaching(caching());
  constexpr uint64_t kCount = 20000;
  // Count mismatches instead of asserting inside the threads: an early
  // return there would strand the blocking producer (hang) or destroy a
  // joinable thread (terminate) instead of failing cleanly.
  std::atomic<uint64_t> mismatches{0};
  auto drain = [&](size_t consumer) {
    for (uint64_t i = 0; i < kCount; ++i) {
      if (ring.Pop(consumer) != i) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      ring.Push(i);
    }
  });
  std::thread drainer([&] { drain(c1); });
  drain(c0);
  producer.join();
  drainer.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(CachingModes, BroadcastRingCachingTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CachedCursors" : "Uncached";
                         });

TEST(SampleStatsTest, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
  EXPECT_NEAR(stats.StdDev(), 1.2909944, 1e-6);
  EXPECT_NEAR(stats.GeoMean(), 2.2133638, 1e-6);
}

TEST(SampleStatsTest, PercentileInterpolates) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(stats.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(stats.Percentile(0), 1.0, 0.01);
  EXPECT_NEAR(stats.Percentile(100), 100.0, 0.01);
}

TEST(LatencyHistogramTest, RecordsAndApproximates) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.Record(1000);  // ~2^10
  }
  EXPECT_EQ(histogram.TotalCount(), 100u);
  const uint64_t p50 = histogram.ApproxPercentile(50);
  EXPECT_GE(p50, 512u);
  EXPECT_LE(p50, 2048u);
}

// --- LogHistogram (the open-loop harness's latency store) --------------------

// Rank-matched reference: the same "ceil(q * n)-th smallest sample" rule
// LogHistogram::ValueAtQuantile implements, computed on the raw samples.
uint64_t ReferenceQuantile(std::vector<uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(q * static_cast<double>(samples.size()))));
  return samples[rank - 1];
}

// The histogram's answer must land within 1% of the sorted-vector reference
// at every probed quantile (the bucket-midpoint bound is ~0.8%).
void ExpectQuantilesMatch(const LogHistogram& histogram,
                          const std::vector<uint64_t>& samples, const char* label) {
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const uint64_t reference = ReferenceQuantile(samples, q);
    const uint64_t approx = histogram.ValueAtQuantile(q);
    const double tolerance = std::max(1.0, static_cast<double>(reference) * 0.01);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(reference), tolerance)
        << label << " q=" << q;
  }
}

TEST(LogHistogramTest, UniformSamplesMatchSortedReference) {
  Rng rng(42);
  LogHistogram histogram;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t value = rng.NextInRange(1, 1'000'000);
    samples.push_back(value);
    histogram.Record(value);
  }
  EXPECT_EQ(histogram.Count(), samples.size());
  ExpectQuantilesMatch(histogram, samples, "uniform");
}

TEST(LogHistogramTest, BimodalSamplesMatchSortedReference) {
  // 85% fast path around tens of microseconds, 15% slow path around
  // milliseconds — the shape a keep-alive server under occasional accept
  // queueing actually produces.
  Rng rng(43);
  LogHistogram histogram;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t value = rng.NextBelow(100) < 85
                               ? rng.NextInRange(10'000, 60'000)
                               : rng.NextInRange(2'000'000, 9'000'000);
    samples.push_back(value);
    histogram.Record(value);
  }
  ExpectQuantilesMatch(histogram, samples, "bimodal");
}

TEST(LogHistogramTest, HeavyTailSamplesMatchSortedReference) {
  // Log-uniform spread over six orders of magnitude: the tail quantiles land
  // in sparse high buckets, the worst case for log-bucketed error.
  Rng rng(44);
  LogHistogram histogram;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t magnitude = 1ull << rng.NextInRange(7, 27);
    const uint64_t value = magnitude + rng.NextBelow(magnitude);
    samples.push_back(value);
    histogram.Record(value);
  }
  ExpectQuantilesMatch(histogram, samples, "heavy-tail");
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram histogram;
  for (uint64_t v = 0; v < 128; ++v) {
    histogram.Record(v);
  }
  // Values below one sub-bucket span get their own bucket: quantiles are
  // exact, not approximate.
  EXPECT_EQ(histogram.ValueAtQuantile(0.5), 63u);
  EXPECT_EQ(histogram.Min(), 0u);
  EXPECT_EQ(histogram.Max(), 127u);
}

TEST(LogHistogramTest, MergeIsAssociativeAndExact) {
  Rng rng(45);
  std::vector<LogHistogram> parts(3);
  LogHistogram all;
  std::vector<uint64_t> samples;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 5000; ++i) {
      const uint64_t value = rng.NextInRange(100, 50'000'000);
      parts[p].Record(value);
      all.Record(value);
      samples.push_back(value);
    }
  }

  // (a + b) + c.
  LogHistogram left;
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  // a + (b + c).
  LogHistogram bc;
  bc.Merge(parts[1]);
  bc.Merge(parts[2]);
  LogHistogram right;
  right.Merge(parts[0]);
  right.Merge(bc);

  EXPECT_TRUE(left == right);
  EXPECT_TRUE(left == all);  // Merging shards == recording everything once.
  ExpectQuantilesMatch(left, samples, "merged");
}

TEST(LogHistogramTest, BucketBoundErrorUnderOnePercentAtP99) {
  // Adversarial placement for the p99 rank: a dense cluster just below the
  // target and the rank sample alone in its bucket, across magnitudes.
  for (uint64_t magnitude : {1ull << 10, 1ull << 17, 1ull << 24, 1ull << 31}) {
    LogHistogram histogram;
    std::vector<uint64_t> samples;
    for (int i = 0; i < 990; ++i) {
      samples.push_back(magnitude / 2);
      histogram.Record(magnitude / 2);
    }
    for (int i = 0; i < 10; ++i) {
      const uint64_t value = magnitude + static_cast<uint64_t>(i);
      samples.push_back(value);
      histogram.Record(value);
    }
    const uint64_t reference = ReferenceQuantile(samples, 0.99);
    const uint64_t approx = histogram.ValueAtQuantile(0.99);
    const double relative_error =
        std::abs(static_cast<double>(approx) - static_cast<double>(reference)) /
        static_cast<double>(reference);
    EXPECT_LE(relative_error, 0.01) << "magnitude=" << magnitude;
  }
}

TEST(LogHistogramTest, EmptyAndClampedEdges) {
  LogHistogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.ValueAtQuantile(0.99), 0u);

  histogram.Record(777);
  // One sample: every quantile is that sample, exactly (min/max clamping).
  EXPECT_EQ(histogram.ValueAtQuantile(0.0), 777u);
  EXPECT_EQ(histogram.ValueAtQuantile(0.5), 777u);
  EXPECT_EQ(histogram.ValueAtQuantile(1.0), 777u);

  // Values beyond the trackable ceiling clamp instead of indexing out of
  // bounds.
  histogram.Record(~0ull);
  EXPECT_EQ(histogram.Max(), LogHistogram::kMaxTrackable);
}

}  // namespace
}  // namespace mvee
