// Synthetic PARSEC 2.1 / SPLASH-2x workload kernels.
//
// The paper evaluates on the real benchmark suites with four worker threads
// (§5.1, Figure 5, Tables 1-2). Those binaries cannot run on the virtual
// kernel, so each benchmark is replaced by a kernel with the same
// *concurrency shape* (pipeline, task queue, fine-grained grid, barrier
// phases, data-parallel) and knobs tuned so its system-call and sync-op
// rates land in the same regime as the paper's Table 2 row. Absolute run
// times differ; the relative behaviour under the MVEE — which is driven by
// syscall rate x sync-op rate x contention shape — is preserved
// (docs/DESIGN.md §2 documents this substitution).

#ifndef MVEE_WORKLOADS_WORKLOAD_H_
#define MVEE_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <string>

#include "mvee/variant/env.h"

namespace mvee {

// Concurrency shape of a workload kernel.
enum class WorkloadShape : uint8_t {
  kDataParallel = 0,  // Independent items, a final reduction (blackscholes).
  kAtomicHammer,      // Independent compute + very hot refcount-style atomics
                      // (swaptions' inlined STL refcounting).
  kPipeline,          // Bounded queues between stages (dedup, ferret, vips).
  kTaskQueue,         // Central task queue, workers pop/push (radiosity).
  kFineGrainGrid,     // Per-cell locks, neighbour updates (fluidanimate).
  kBarrierPhase,      // Phased compute + barriers (ocean, streamcluster).
};

const char* WorkloadShapeName(WorkloadShape shape);

// Static description + tuning knobs of one benchmark stand-in.
struct WorkloadConfig {
  const char* name;   // Paper benchmark name, e.g. "dedup".
  const char* suite;  // "PARSEC" | "SPLASH".
  WorkloadShape shape;

  // Concurrency.
  uint32_t worker_threads = 4;  // Paper runs 4 worker threads.
  uint32_t stages = 3;          // kPipeline only.
  uint32_t locks = 16;          // Lock pool / grid size.

  // Work volume (scaled by the runner's scale factor).
  uint64_t items = 10000;       // Outer iterations / chunks / tasks / phases.
  uint32_t work_per_item = 64;  // Compute per item (mix rounds).

  // Rate knobs.
  uint32_t sync_per_item = 1;    // Extra shared atomic ops per item.
  uint32_t syscall_every = 64;   // 1 syscall per N items (0 = none).
  uint32_t io_every = 0;         // 1 write() per N items (0 = none).

  // Paper Table 2 reference values (4 worker threads).
  double paper_runtime_sec = 0.0;
  double paper_syscall_rate_k = 0.0;  // 1000 syscalls / second.
  double paper_sync_rate_k = 0.0;     // 1000 sync ops / second.
};

// All 25 benchmark stand-ins (12 PARSEC + 13 SPLASH), Table 2 order.
// canneal and cholesky are excluded exactly as in the paper (§5.1).
std::span<const WorkloadConfig> AllWorkloads();

// Finds a workload by name; nullptr if unknown.
const WorkloadConfig* FindWorkload(const std::string& name);

// Builds the variant program for `config`, with all work volumes multiplied
// by `scale` (0 < scale <= 1 shrinks; tests use ~0.02, benches ~0.2).
// The program writes a deterministic result digest to "result/<name>" as its
// last act, so the MVEE's lockstep comparison validates cross-variant
// equivalence of the *computation*, not just of the syscall stream.
Program MakeWorkloadProgram(const WorkloadConfig& config, double scale);

}  // namespace mvee

#endif  // MVEE_WORKLOADS_WORKLOAD_H_
