#include "mvee/vkernel/vfs.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "mvee/util/hash.h"

namespace mvee {

namespace {

// Per-thread open-file handle cache: direct-mapped by path hash. A hit
// resolves a hot path (http document, bench blob) to its VFile with zero
// locks and zero map lookups. Entries are validated against the owning Vfs
// instance id and its unlink generation; the held VRef legitimately keeps an
// unlinked file's contents alive (POSIX: open handles survive unlink).
// Retention is bounded: a stale entry drops its reference the next time its
// slot is probed, so a thread pins at most kHandleCacheSlots files — and
// only until its next vkernel open.
struct HandleCacheEntry {
  uint64_t vfs_id = 0;
  uint64_t generation = 0;
  uint64_t path_hash = 0;
  std::string path;
  VRef<VFile> file;
};

constexpr size_t kHandleCacheSlots = 16;  // power of two

thread_local std::array<HandleCacheEntry, kHandleCacheSlots> tls_handle_cache;

std::atomic<uint64_t> next_vfs_id{1};

}  // namespace

int64_t VFile::ReadAt(uint64_t offset, uint8_t* out, uint64_t size) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (offset >= data_.size()) {
    return 0;
  }
  const uint64_t available = data_.size() - offset;
  const uint64_t n = std::min(size, available);
  std::memcpy(out, data_.data() + offset, n);
  return static_cast<int64_t>(n);
}

int64_t VFile::WriteAt(uint64_t offset, const uint8_t* data, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (offset + size > data_.size()) {
    data_.resize(offset + size);
  }
  std::memcpy(data_.data() + offset, data, size);
  return static_cast<int64_t>(size);
}

uint64_t VFile::Append(const uint8_t* data, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t offset = data_.size();
  data_.insert(data_.end(), data, data + size);
  return offset;
}

uint64_t VFile::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

void VFile::Truncate() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.clear();
}

std::vector<uint8_t> VFile::Contents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Vfs::Vfs(bool sharded)
    : sharded_(sharded), vfs_id_(next_vfs_id.fetch_add(1, std::memory_order_relaxed)) {}

Vfs::Stripe& Vfs::StripeFor(const std::string& path) {
  // The baseline routes every path through stripe 0: one mutex, one map —
  // the seed's exact cost profile, measurable in-run against sharding.
  return stripes_[sharded_ ? FnvHash(path) & (kStripes - 1) : 0];
}

const Vfs::Stripe& Vfs::StripeFor(const std::string& path) const {
  return stripes_[sharded_ ? FnvHash(path) & (kStripes - 1) : 0];
}

VRef<VFile> Vfs::Open(const std::string& path, bool create) {
  if (!sharded_) {
    return OpenSlow(path, create);
  }
  const uint64_t hash = FnvHash(path);
  HandleCacheEntry& cached = tls_handle_cache[hash & (kHandleCacheSlots - 1)];
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cached.vfs_id == vfs_id_ && cached.generation == generation &&
      cached.path_hash == hash && cached.path == path) {
    return cached.file;
  }
  // Stale entry (other instance, unlinked generation, different path): drop
  // its reference NOW, not at overwrite time — a cached VRef must not pin a
  // dead Vfs's file bodies any longer than the next probe of this slot.
  cached.file.Reset();
  cached.vfs_id = 0;
  VRef<VFile> file = OpenSlow(path, create);
  if (file != nullptr) {
    cached.vfs_id = vfs_id_;
    cached.generation = generation;
    cached.path_hash = hash;
    cached.path = path;
    cached.file = file;
  }
  return file;
}

VRef<VFile> Vfs::OpenSlow(const std::string& path, bool create) {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.files.find(path);
  if (it != stripe.files.end()) {
    return it->second.file;
  }
  if (!create) {
    return nullptr;
  }
  Entry entry;
  entry.file = MakeVRef<VFile>();
  entry.inode = next_inode_.fetch_add(1, std::memory_order_relaxed);
  VRef<VFile> file = entry.file;
  stripe.files.emplace(path, std::move(entry));
  return file;
}

bool Vfs::Exists(const std::string& path) const {
  const Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.files.count(path) != 0;
}

int64_t Vfs::Stat(const std::string& path, VStat* out) const {
  const Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.files.find(path);
  if (it == stripe.files.end()) {
    return -ENOENT;
  }
  out->size = it->second.file->Size();
  out->inode = it->second.inode;
  return 0;
}

int64_t Vfs::Unlink(const std::string& path) {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.files.find(path);
  if (it == stripe.files.end()) {
    return -ENOENT;
  }
  stripe.files.erase(it);
  // Invalidate every thread's handle cache: a later open of this path must
  // miss (and, with create, produce a fresh file), not resurrect this one.
  generation_.fetch_add(1, std::memory_order_release);
  return 0;
}

void Vfs::PutFile(const std::string& path, std::vector<uint8_t> contents) {
  auto file = Open(path, /*create=*/true);
  file->Truncate();
  if (!contents.empty()) {
    file->Append(contents.data(), contents.size());
  }
}

size_t Vfs::FileCount() const {
  size_t count = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    count += stripe.files.size();
  }
  return count;
}

}  // namespace mvee
