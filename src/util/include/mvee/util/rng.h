// Deterministic pseudo-random number generation.
//
// Everything in libmvee that needs randomness (address-space diversity,
// workload think times, attack payload jitter) draws from an explicitly
// seeded SplitMix64/Xoshiro generator so that experiments are reproducible.

#ifndef MVEE_UTIL_RNG_H_
#define MVEE_UTIL_RNG_H_

#include <cstdint>

namespace mvee {

// SplitMix64: used for seeding and for cheap one-shot mixing.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace mvee

#endif  // MVEE_UTIL_RNG_H_
