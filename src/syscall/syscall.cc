#include <sstream>

#include "mvee/syscall/record.h"
#include "mvee/syscall/sysno.h"

namespace mvee {

SyscallClass ClassOf(Sysno sysno) {
  switch (sysno) {
    // I/O and blocking calls: master executes, results replicated (§4.1).
    case Sysno::kRead:
    case Sysno::kWrite:
    case Sysno::kPread:
    case Sysno::kPwrite:
    case Sysno::kAccept:
    case Sysno::kConnect:
    case Sysno::kSend:
    case Sysno::kRecv:
    case Sysno::kGettimeofday:
    case Sysno::kClockGettime:
    case Sysno::kNanosleep:
    case Sysno::kRdtsc:
    case Sysno::kGetrandom:
    case Sysno::kFutex:  // Blocking; "treated as an I/O operation" (§4.1 fn 5).
    // Network establishment touches the machine-shared port namespace, so
    // only the master may perform it; slaves get shadow descriptors.
    case Sysno::kSocket:
    case Sysno::kBind:
    case Sysno::kListen:
    case Sysno::kShutdown:
    // Poll blocks until readiness; only the master observes the real
    // network, so followers take the replicated revents.
    case Sysno::kPoll:
    // Unlink destructively mutates the shared filesystem: executing it once
    // per variant is not idempotent (the slaves would observe -ENOENT).
    case Sysno::kUnlink:
      return SyscallClass::kReplicated;

    // Shared-resource calls: executed per-variant, ordered across threads so
    // resource identifiers (fds, mappings) match in all variants (§3.1).
    case Sysno::kOpen:
    case Sysno::kClose:
    case Sysno::kLseek:
    case Sysno::kStat:
    case Sysno::kDup:
    case Sysno::kFcntl:
    case Sysno::kPipe:
    case Sysno::kBrk:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
    case Sysno::kClone:
      return SyscallClass::kOrdered;

    // Benign local calls.
    case Sysno::kSchedYield:
    case Sysno::kGettid:
    case Sysno::kGetpid:
      return SyscallClass::kLocal;

    // MVEE control. Signal calls are control calls too: the monitor itself
    // is the signal-routing authority (registration is variant-local state;
    // kill enqueues into the monitor's pending queue exactly once per
    // rendezvous).
    case Sysno::kExit:
    case Sysno::kExitGroup:
    case Sysno::kSigaction:
    case Sysno::kKill:
    case Sysno::kMveeSelfAware:
    case Sysno::kMveeCheckpoint:
    case Sysno::kCount:
      return SyscallClass::kControl;
  }
  return SyscallClass::kControl;
}

SyscallSensitivity SensitivityOf(Sysno sysno) {
  switch (sysno) {
    // Calls that touch the outside world or the address space.
    case Sysno::kOpen:
    case Sysno::kWrite:
    case Sysno::kPwrite:
    case Sysno::kUnlink:
    case Sysno::kMmap:
    case Sysno::kMunmap:
    case Sysno::kMprotect:
    case Sysno::kSocket:
    case Sysno::kBind:
    case Sysno::kListen:
    case Sysno::kAccept:
    case Sysno::kConnect:
    case Sysno::kSend:
    case Sysno::kClone:
    case Sysno::kExit:
    case Sysno::kExitGroup:
    case Sysno::kSigaction:  // Handler installation redirects control flow.
    case Sysno::kKill:
      return SyscallSensitivity::kSensitive;
    default:
      return SyscallSensitivity::kBenign;
  }
}

const char* SysnoName(Sysno sysno) {
  switch (sysno) {
    case Sysno::kOpen:
      return "sys_open";
    case Sysno::kClose:
      return "sys_close";
    case Sysno::kRead:
      return "sys_read";
    case Sysno::kWrite:
      return "sys_write";
    case Sysno::kPread:
      return "sys_pread";
    case Sysno::kPwrite:
      return "sys_pwrite";
    case Sysno::kLseek:
      return "sys_lseek";
    case Sysno::kStat:
      return "sys_stat";
    case Sysno::kUnlink:
      return "sys_unlink";
    case Sysno::kDup:
      return "sys_dup";
    case Sysno::kFcntl:
      return "sys_fcntl";
    case Sysno::kPipe:
      return "sys_pipe";
    case Sysno::kBrk:
      return "sys_brk";
    case Sysno::kMmap:
      return "sys_mmap";
    case Sysno::kMunmap:
      return "sys_munmap";
    case Sysno::kMprotect:
      return "sys_mprotect";
    case Sysno::kFutex:
      return "sys_futex";
    case Sysno::kSchedYield:
      return "sys_sched_yield";
    case Sysno::kGettid:
      return "sys_gettid";
    case Sysno::kGetpid:
      return "sys_getpid";
    case Sysno::kClone:
      return "sys_clone";
    case Sysno::kGettimeofday:
      return "sys_gettimeofday";
    case Sysno::kClockGettime:
      return "sys_clock_gettime";
    case Sysno::kNanosleep:
      return "sys_nanosleep";
    case Sysno::kRdtsc:
      return "rdtsc";
    case Sysno::kSocket:
      return "sys_socket";
    case Sysno::kBind:
      return "sys_bind";
    case Sysno::kListen:
      return "sys_listen";
    case Sysno::kAccept:
      return "sys_accept";
    case Sysno::kConnect:
      return "sys_connect";
    case Sysno::kSend:
      return "sys_send";
    case Sysno::kRecv:
      return "sys_recv";
    case Sysno::kShutdown:
      return "sys_shutdown";
    case Sysno::kPoll:
      return "sys_poll";
    case Sysno::kGetrandom:
      return "sys_getrandom";
    case Sysno::kExit:
      return "sys_exit";
    case Sysno::kExitGroup:
      return "sys_exit_group";
    case Sysno::kSigaction:
      return "sys_rt_sigaction";
    case Sysno::kKill:
      return "sys_tgkill";
    case Sysno::kMveeSelfAware:
      return "sys_mvee_self_aware";
    case Sysno::kMveeCheckpoint:
      return "sys_mvee_checkpoint";
    case Sysno::kCount:
      return "sys_invalid";
  }
  return "sys_unknown";
}

std::string SyscallRequest::ToString() const {
  std::ostringstream out;
  out << SysnoName(sysno) << "(" << arg0 << ", " << arg1 << ", " << arg2;
  if (!path.empty()) {
    out << ", path=\"" << path << "\"";
  }
  if (!in_data.empty()) {
    out << ", in=" << in_data.size() << "B";
  }
  if (!out_data.empty()) {
    out << ", out=" << out_data.size() << "B";
  }
  out << ")";
  return out.str();
}

}  // namespace mvee
