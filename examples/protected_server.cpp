// End-to-end §5.5 scenario: a thread-pooled web server protected by the
// MVEE, load-tested with the wrk-style client, then attacked with a
// CVE-2013-2028-style exploit.
//
//   $ ./protected_server
//
// Shows: (1) the MVEE is transparent to clients under load, and (2) the
// attack that compromises a native server is detected before any data
// leaks when two diversified variants run in lockstep.

#include <cstdio>
#include <thread>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"
#include "mvee/util/log.h"

using namespace mvee;

namespace {

void AwaitListener(VirtualKernel& kernel, uint16_t port) {
  VRef<VConnection> probe;
  while ((probe = kernel.network().Connect(port)) == nullptr) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  probe->CloseClientSide();
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);

  // --- Scenario 1: serving under the MVEE ---------------------------------
  std::printf("== serving 100 requests through a 2-variant MVEE ==\n");
  {
    MveeOptions options;
    options.num_variants = 2;
    options.enable_aslr = true;
    options.agent = AgentKind::kWallOfClocks;
    options.rendezvous_timeout = std::chrono::milliseconds(60000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
    Mvee mvee(options);

    ServerConfig server;
    server.port = 8080;
    server.pool_threads = 8;
    server.connection_budget = 101;  // 100 requests + the readiness probe.
    server.instrument_custom_sync = true;

    WrkOptions wrk;
    wrk.port = 8080;
    wrk.connections = 10;
    wrk.requests_per_conn = 10;

    WrkResult load;
    Status status;
    std::thread client([&] {
      AwaitListener(mvee.kernel(), 8080);
      load = RunWrk(mvee.kernel(), wrk);
    });
    status = mvee.Run(MakeServerProgram(server));
    client.join();

    std::printf("MVEE status: %s\n", status.ToString().c_str());
    std::printf("client saw: %lu/%lu OK, %.1f req/s, %.0f KiB\n",
                (unsigned long)load.responses_ok, (unsigned long)load.requests_attempted,
                load.RequestsPerSecond(), load.bytes_received / 1024.0);
  }

  // --- Scenario 2: the attack ----------------------------------------------
  std::printf("\n== CVE-2013-2028-style attack ==\n");
  {
    // Against the native server, the tailored exploit wins.
    NativeRunner native;
    ServerConfig server;
    server.port = 8081;
    server.pool_threads = 2;
    server.connection_budget = 2;
    server.enable_vulnerability = true;

    AttackResult attack;
    std::thread client([&] {
      AwaitListener(native.kernel(), 8081);
      attack = RunAttack(native.kernel(), 8081, DiversityMap(0, 0x5eedULL, true).map_base());
    });
    native.Run(MakeServerProgram(server));
    client.join();
    std::printf("native server: secret leaked = %s\n", attack.secret_leaked ? "YES" : "no");
  }
  {
    // Against the MVEE, the same exploit matches only the master's layout.
    MveeOptions options;
    options.num_variants = 2;
    options.enable_aslr = true;
    options.rendezvous_timeout = std::chrono::milliseconds(30000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
    Mvee mvee(options);

    ServerConfig server;
    server.port = 8082;
    server.pool_threads = 2;
    server.connection_budget = 2;
    server.enable_vulnerability = true;

    AttackResult attack;
    Status status;
    std::thread client([&] {
      AwaitListener(mvee.kernel(), 8082);
      attack = RunAttack(mvee.kernel(), 8082, DiversityMap(0, options.seed, true).map_base());
    });
    status = mvee.Run(MakeServerProgram(server));
    client.join();
    std::printf("MVEE-protected: secret leaked = %s, MVEE verdict: %s\n",
                attack.secret_leaked ? "YES" : "no", status.ToString().c_str());
  }
  return 0;
}
