// Explicit _Atomic type-qualification workflow (paper §4.3.1, Figure 3).
//
// The paper modifies clang to impose a stronger typing discipline:
//   (i)   warning  — pointer to non-qualified cast to pointer to qualified,
//   (ii)  error    — pointer to qualified cast to non-qualified,
//   (iii) error    — qualified variable used in inline assembly.
// The programmer then refactors, recompiles, and repeats until a fixpoint
// where every sync variable and every pointer to one is fully qualified.
//
// Here the same is modelled on MIR: CheckAtomicQualifiers produces the
// diagnostics for a given qualification state, and PropagateQualifiers runs
// the whole refactor-until-clean loop automatically, reporting how many
// "compile" iterations the fixpoint took.

#ifndef MVEE_ANALYSIS_ATOMIC_CHECK_H_
#define MVEE_ANALYSIS_ATOMIC_CHECK_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "mvee/analysis/mir.h"

namespace mvee {

struct AtomicDiagnostic {
  enum class Kind : uint8_t {
    kWarningCastToAtomic = 0,  // non-qualified -> qualified pointer
    kErrorCastFromAtomic,      // qualified -> non-qualified pointer (discard)
    kErrorAtomicInAsm,         // qualified variable in inline assembly
  };
  Kind kind;
  std::string function;
  size_t instruction_index;
  std::string source_line;
};

struct AtomicCheckResult {
  std::vector<AtomicDiagnostic> diagnostics;
  bool HasErrors() const {
    for (const auto& diagnostic : diagnostics) {
      if (diagnostic.kind != AtomicDiagnostic::Kind::kWarningCastToAtomic) {
        return true;
      }
    }
    return false;
  }
};

// The §4.3.1 "can still be improved in several ways" extensions, implemented:
struct AtomicCheckOptions {
  // Improvement 1: assign the _Atomic qualifier automatically to volatile
  // variables (they are sync variables accessed only via aligned load/store,
  // which the stage-1 script cannot see).
  bool auto_qualify_volatile = false;
  // Improvement 3: permit _Atomic in easy-to-analyze inline assembly blocks
  // (MirBuilder::AsmBlockAnalyzable) instead of rejecting all of them.
  bool permit_analyzable_asm = false;
};

// One "compilation" with the modified clang: reports every qualification
// violation given the current set of qualified pointer registers
// (`qualified_regs`) and the objects' atomic_qualified flags.
AtomicCheckResult CheckAtomicQualifiers(const MirModule& module,
                                        const std::set<int32_t>& qualified_regs,
                                        const AtomicCheckOptions& options = {});

struct PropagationResult {
  std::set<int32_t> qualified_regs;     // Pointers that ended up qualified.
  std::set<int32_t> qualified_objects;  // Objects (seed + discovered).
  int iterations = 0;                   // "Compiles" until the fixpoint.
  // Sites that can never be made clean (qualified vars in inline asm);
  // the paper's tool rejects these outright.
  std::vector<AtomicDiagnostic> hard_errors;
};

// Runs the Figure 3 loop: starting from `seed_objects` (the sync variables
// stage 1/2 identified), repeatedly qualifies every pointer reachable along
// def-use chains (both directions) until a compile produces no new
// diagnostics.
PropagationResult PropagateQualifiers(const MirModule& module,
                                      const std::set<int32_t>& seed_objects,
                                      const AtomicCheckOptions& options = {});

}  // namespace mvee

#endif  // MVEE_ANALYSIS_ATOMIC_CHECK_H_
