// Partial-order (PO) replication agent (paper §4.5, Figure 4b).
//
// The master records (thread, sync-variable key) pairs into one global
// buffer under the same global instrumentation lock as the TO agent. Slaves,
// however, only enforce the recorded order between *dependent* ops — ops on
// the same sync variable. A slave thread scans a lookahead window for its
// next entry and may execute as soon as every unconsumed earlier entry with
// the same key has been consumed. This eliminates TO's unnecessary stalls at
// the cost of window scans and extra memory pressure (§4.5).

#ifndef MVEE_AGENTS_PARTIAL_ORDER_H_
#define MVEE_AGENTS_PARTIAL_ORDER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {

class PartialOrderRuntime {
 public:
  PartialOrderRuntime(const AgentConfig& config, AgentControl control);

  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  const AgentStats& stats() const { return stats_; }

 private:
  friend class PartialOrderAgent;

  struct Entry {
    uint32_t tid = 0;
    uint64_t key = 0;  // master-space sync-variable identity
  };

  // Per-slave-variant replay state.
  struct SlaveState {
    // consumed[seq & mask]: whether entry seq has been replayed. Reset when
    // the base cursor passes, so the producer can reuse the slot.
    std::vector<std::atomic<uint8_t>> consumed;
    // Next entry index each thread will look for (owned by that thread).
    std::vector<std::atomic<uint64_t>> next_index_by_tid;
    // Protects base-cursor advancement; readers load the atomic directly
    // (base only moves forward, stale reads are safe).
    std::mutex base_mutex;
    std::atomic<uint64_t> base{0};
    size_t consumer_id = 0;
  };

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  BroadcastRing<Entry> ring_;
  std::atomic_flag master_lock_ = ATOMIC_FLAG_INIT;
  std::vector<std::unique_ptr<SlaveState>> slaves_;  // index: variant-1
};

class PartialOrderAgent final : public SyncAgent {
 public:
  PartialOrderAgent(PartialOrderRuntime* runtime, AgentRole role,
                    PartialOrderRuntime::SlaveState* slave);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "partial-order"; }

 private:
  // Index of the entry this thread matched in BeforeSyncOp, consumed in
  // AfterSyncOp. One pending op per thread.
  static constexpr uint32_t kMaxThreads = 256;

  PartialOrderRuntime* const runtime_;
  const AgentRole role_;
  PartialOrderRuntime::SlaveState* const slave_;
  // Stats shard key: 0 for the master, consumer id + 1 for slaves.
  const uint32_t stats_variant_;
  uint64_t pending_index_[kMaxThreads] = {};
};

}  // namespace mvee

#endif  // MVEE_AGENTS_PARTIAL_ORDER_H_
