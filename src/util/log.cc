#include "mvee/util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mvee {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[mvee %s] %s\n", LevelName(level), message.c_str());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() { LogLine(level_, stream_.str()); }

}  // namespace mvee
