// Status codes and a lightweight Result type used across libmvee.
//
// The virtual kernel returns negative errno values the way the Linux syscall
// ABI does; Status wraps the non-kernel error domain (monitor, agents,
// analysis) where an errno does not make sense.

#ifndef MVEE_UTIL_STATUS_H_
#define MVEE_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace mvee {

// Error domain for monitor/agent/analysis code.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kDivergence,   // MVEE detected behavioural divergence between variants.
  kTimeout,      // A lockstep rendezvous or replay wait timed out.
  kUnsupported,  // Feature intentionally unimplemented (see docs/DESIGN.md).
};

// Returns a stable, human-readable name for `code` ("ok", "divergence", ...).
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDivergence:
      return "divergence";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

// A status: code plus optional context message. Cheap to copy when OK.
class Status {
 public:
  Status() = default;
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "divergence: write args mismatch" or just "ok".
  std::string ToString() const {
    if (message_.empty()) {
      return StatusCodeName(code_);
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a Status. Minimal expected<> stand-in that
// keeps libmvee free of exceptions on hot paths.
template <typename T>
class Result {
 public:
  Result(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : ok_(false), status_(std::move(status)) {}  // NOLINT

  bool ok() const { return ok_; }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T value_or(T fallback) const { return ok_ ? value_ : std::move(fallback); }

 private:
  bool ok_;
  T value_{};
  Status status_{};
};

}  // namespace mvee

#endif  // MVEE_UTIL_STATUS_H_
