// Ordered-syscall throughput: sharded ordering domains vs the global clock.
//
// The workload is the §5.5 nginx-style shape reduced to its ordering
// bottleneck: T variant threads, each owning one descriptor, each issuing a
// storm of descriptor-scoped ordered calls (lseek) — the per-fd traffic a
// multi-threaded server generates between accepts. Under the global clock
// every one of those calls (a) serializes the master threads through one
// critical section and (b) forces each slave variant to replay the calls of
// ALL threads in one total order, with a spin-wait handoff per call. Under
// sharded ordering (MveeOptions::sharded_order_domains) each descriptor is
// its own domain, so both effects disappear and only true conflicts
// serialize (docs/syscall_ordering.md).
//
// Both modes run in one binary on the same workload; results go to
// BENCH_order.json. Knobs:
//   MVEE_BENCH_ORDER_THREADS   worker threads per variant   (default 8)
//   MVEE_BENCH_ORDER_VARIANTS  variants                     (default 2)
//   MVEE_BENCH_ORDER_ITERS     ordered calls per thread     (default 2000)
//   MVEE_BENCH_ORDER_REPS      repetitions, best-of kept    (default 3)
//   MVEE_BENCH_ORDER_MIN_SPEEDUP  exit nonzero below this   (default 0 = off)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

namespace {

using namespace mvee;
using mvee::bench::EnvInt;

struct OrderRun {
  std::string mode;
  uint32_t variants = 0;
  uint32_t threads = 0;
  uint64_t ordered_calls = 0;
  double seconds = 0.0;
  double ordered_per_sec = 0.0;
  uint64_t domains_created = 0;
  uint64_t domains_retired = 0;
  uint64_t domains_reclaimed = 0;
  bool ok = false;
};

// T workers, each: open a private file, hammer it with ordered lseeks, close.
// The opens/closes exercise the fd-namespace domain (and domain teardown);
// the lseek storm is the per-fd steady state being measured.
OrderRun RunOrdered(bool sharded, uint32_t variants, uint32_t threads, int64_t iters) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.enable_aslr = false;
  options.sharded_order_domains = sharded;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);

  Mvee mvee(options);
  const Status status = mvee.Run([threads, iters](VariantEnv& env) {
    std::vector<ThreadHandle> handles;
    for (uint32_t t = 0; t < threads; ++t) {
      handles.push_back(env.Spawn([t, iters](VariantEnv& wenv) {
        const std::string path = "order_bench_" + std::to_string(t);
        const int64_t fd = wenv.Open(path, VOpenFlags::kCreate | VOpenFlags::kWrite);
        for (int64_t i = 0; i < iters; ++i) {
          wenv.Lseek(fd, (i & 1023), 0 /*SEEK_SET*/);
        }
        wenv.Close(fd);
      }));
    }
    for (auto handle : handles) {
      env.Join(handle);
    }
  });

  const MveeReport& report = mvee.report();
  OrderRun run;
  run.mode = sharded ? "sharded" : "global";
  run.variants = variants;
  run.threads = threads;
  run.ordered_calls = report.syscalls.ordered;
  run.seconds = report.wall_seconds;
  run.ordered_per_sec = run.seconds > 0 ? static_cast<double>(run.ordered_calls) / run.seconds : 0;
  run.domains_created = report.order_domains_created;
  run.domains_retired = report.order_domains_retired;
  run.domains_reclaimed = report.order_domains_reclaimed;
  run.ok = status.ok();
  return run;
}

void WriteOrderJson(const std::vector<OrderRun>& runs, double speedup) {
  const std::string path = mvee::bench::ResolveBenchJsonPath("BENCH_order.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"order\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const OrderRun& run = runs[i];
    std::fprintf(file,
                 "    {\"mode\": \"%s\", \"variants\": %u, \"threads\": %u, "
                 "\"ordered_calls\": %llu, \"seconds\": %.4f, \"ordered_per_sec\": %.1f, "
                 "\"domains_created\": %llu, \"domains_retired\": %llu, "
                 "\"domains_reclaimed\": %llu, \"ok\": %s}%s\n",
                 run.mode.c_str(), run.variants, run.threads,
                 static_cast<unsigned long long>(run.ordered_calls), run.seconds,
                 run.ordered_per_sec, static_cast<unsigned long long>(run.domains_created),
                 static_cast<unsigned long long>(run.domains_retired),
                 static_cast<unsigned long long>(run.domains_reclaimed),
                 run.ok ? "true" : "false", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"speedup_sharded_vs_global\": %.2f\n}\n", speedup);
  std::fclose(file);
  std::printf("wrote %s (%zu runs)\n", path.c_str(), runs.size());
}

}  // namespace

int main() {
  using namespace mvee::bench;

  const auto threads = static_cast<uint32_t>(EnvInt("MVEE_BENCH_ORDER_THREADS", 8));
  const auto variants = static_cast<uint32_t>(EnvInt("MVEE_BENCH_ORDER_VARIANTS", 2));
  const int64_t iters = EnvInt("MVEE_BENCH_ORDER_ITERS", 2000);
  const int64_t reps = EnvInt("MVEE_BENCH_ORDER_REPS", 3);

  PrintHeader("Ordered-syscall throughput: global clock vs sharded domains (" +
              std::to_string(variants) + " variants, " + std::to_string(threads) +
              " threads, " + std::to_string(iters) + " lseeks/thread)");

  std::vector<OrderRun> runs;
  // Warm-up pass (thread pools, allocator, file cache) kept out of the runs.
  RunOrdered(/*sharded=*/true, variants, /*threads=*/2, /*iters=*/200);

  for (const bool sharded : {false, true}) {
    // Best of `reps` runs: on small/oversubscribed hosts a single run is
    // dominated by scheduler noise; the best run is the least-perturbed
    // measurement of each mode's intrinsic cost.
    OrderRun run;
    for (int64_t rep = 0; rep < reps; ++rep) {
      OrderRun attempt = RunOrdered(sharded, variants, threads, iters);
      if (!attempt.ok) {
        run = attempt;
        break;
      }
      if (rep == 0 || attempt.ordered_per_sec > run.ordered_per_sec) {
        run = attempt;
      }
    }
    std::printf("  %-8s %8.3fs  %10.0f ordered/s  (%llu ordered calls%s, domains %llu/%llu/%llu)\n",
                run.mode.c_str(), run.seconds, run.ordered_per_sec,
                static_cast<unsigned long long>(run.ordered_calls), run.ok ? "" : ", FAILED RUN",
                static_cast<unsigned long long>(run.domains_created),
                static_cast<unsigned long long>(run.domains_retired),
                static_cast<unsigned long long>(run.domains_reclaimed));
    runs.push_back(run);
  }

  const double speedup =
      runs[0].ordered_per_sec > 0 ? runs[1].ordered_per_sec / runs[0].ordered_per_sec : 0;
  std::printf("\n  sharded vs global speedup: %.2fx\n", speedup);
  WriteOrderJson(runs, speedup);

  if (!runs[0].ok || !runs[1].ok) {
    std::fprintf(stderr, "FAIL: a measurement run did not complete cleanly\n");
    return 1;
  }
  const double min_speedup =
      std::getenv("MVEE_BENCH_ORDER_MIN_SPEEDUP") ? std::atof(std::getenv("MVEE_BENCH_ORDER_MIN_SPEEDUP")) : 0.0;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n", speedup, min_speedup);
    return 1;
  }
  return 0;
}
