// Integration tests for the MVEE monitor: lockstep execution, result
// replication, syscall ordering, divergence detection, policies, and the
// covert-channel building blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/sync/primitives.h"

namespace mvee {
namespace {

MveeOptions DefaultOptions(uint32_t variants = 2) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(20000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
  return options;
}

std::string FileText(VirtualKernel& kernel, const std::string& path) {
  auto file = kernel.vfs().Open(path, /*create=*/false);
  if (file == nullptr) {
    return "";
  }
  auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

TEST(MveeBasicTest, HelloWorldTwoVariants) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t fd = env.Open("out.txt",
                                VOpenFlags::kWrite | VOpenFlags::kCreate);
    ASSERT_GE(fd, 0);
    env.Write(fd, std::string("hello mvee\n"));
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  // The write executed exactly once (master), deduplicated for the slaves.
  EXPECT_EQ(FileText(mvee.kernel(), "out.txt"), "hello mvee\n");
  EXPECT_GE(mvee.report().syscalls.total, 3u);
}

TEST(MveeBasicTest, RunsWithEveryAgentKind) {
  for (AgentKind kind : {AgentKind::kNull, AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                         AgentKind::kWallOfClocks}) {
    MveeOptions options = DefaultOptions(2);
    options.agent = kind;
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) {
      const int64_t fd = env.Open("x", VOpenFlags::kWrite | VOpenFlags::kCreate);
      env.Write(fd, std::string("ok"));
      env.Close(fd);
    });
    EXPECT_TRUE(status.ok()) << AgentKindName(kind) << ": " << status.ToString();
  }
}

TEST(MveeBasicTest, ThreeAndFourVariants) {
  for (uint32_t n : {3u, 4u}) {
    Mvee mvee(DefaultOptions(n));
    const Status status = mvee.Run([](VariantEnv& env) {
      const int64_t fd = env.Open("f", VOpenFlags::kWrite | VOpenFlags::kCreate);
      env.Write(fd, std::string("abc"));
      env.Close(fd);
    });
    EXPECT_TRUE(status.ok()) << n << " variants: " << status.ToString();
  }
}

TEST(MveeReplicationTest, ReadResultsAreReplicatedToSlaves) {
  Mvee mvee(DefaultOptions(3));
  mvee.kernel().vfs().PutFile("input", {'d', 'a', 't', 'a'});
  std::atomic<int> consistent{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t fd = env.Open("input", VOpenFlags::kRead);
    std::vector<uint8_t> buffer(4);
    const int64_t n = env.Read(fd, buffer);
    // Every variant (slaves included) must observe the same bytes.
    if (n == 4 && std::string(buffer.begin(), buffer.end()) == "data") {
      consistent.fetch_add(1);
    }
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(consistent.load(), 3);
}

TEST(MveeReplicationTest, GetrandomIdenticalAcrossVariants) {
  Mvee mvee(DefaultOptions(2));
  std::vector<std::vector<uint8_t>> observed(2);
  std::mutex mutex;
  const Status status = mvee.Run([&](VariantEnv& env) {
    std::vector<uint8_t> buffer(16);
    env.Getrandom(buffer);
    const int64_t which = env.MveeSelfAware();
    std::lock_guard<std::mutex> lock(mutex);
    observed[which] = buffer;
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(observed[0], observed[1]);
}

TEST(MveeReplicationTest, TimeIsReplicatedNotResampled) {
  Mvee mvee(DefaultOptions(2));
  std::vector<int64_t> times(2, -1);
  std::mutex mutex;
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t t = env.GettimeofdayMicros();
    const int64_t which = env.MveeSelfAware();
    std::lock_guard<std::mutex> lock(mutex);
    times[which] = t;
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(times[0], times[1]);
}

TEST(MveeControlTest, SelfAwareReturnsVariantIndex) {
  Mvee mvee(DefaultOptions(3));
  std::atomic<int> sum{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    sum.fetch_add(static_cast<int>(env.MveeSelfAware()));
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(MveeControlTest, GetpidGettidConsistent) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    EXPECT_EQ(env.Getpid(), 1000);
    EXPECT_EQ(env.Gettid(), 0);
  });
  EXPECT_TRUE(status.ok());
}

TEST(MveeThreadTest, SpawnJoinTwoWorkers) {
  Mvee mvee(DefaultOptions(2));
  std::atomic<int> work_done{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    auto worker = [&](VariantEnv& wenv) {
      wenv.Gettid();  // One syscall so the thread set rendezvouses.
      work_done.fetch_add(1);
    };
    ThreadHandle a = env.Spawn(worker);
    ThreadHandle b = env.Spawn(worker);
    env.Join(a);
    env.Join(b);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  // 2 workers x 2 variants.
  EXPECT_EQ(work_done.load(), 4);
}

TEST(MveeThreadTest, SpawnedThreadsGetConsistentTids) {
  Mvee mvee(DefaultOptions(2));
  std::mutex mutex;
  std::vector<std::vector<int64_t>> tids(2);
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    std::vector<ThreadHandle> handles;
    for (int i = 0; i < 3; ++i) {
      handles.push_back(env.Spawn([&, which](VariantEnv& wenv) {
        const int64_t tid = wenv.Gettid();
        std::lock_guard<std::mutex> lock(mutex);
        tids[which].push_back(tid);
      }));
    }
    for (auto handle : handles) {
      env.Join(handle);
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(tids[0].size(), 3u);
  std::sort(tids[0].begin(), tids[0].end());
  std::sort(tids[1].begin(), tids[1].end());
  EXPECT_EQ(tids[0], tids[1]);
}

// The paper's §3.1 motivating example: two threads open files concurrently;
// with the syscall ordering clock the fd<->file assignment is identical in
// all variants.
TEST(MveeOrderingTest, ConcurrentOpensYieldConsistentFds) {
  for (int round = 0; round < 5; ++round) {
    MveeOptions options = DefaultOptions(2);
    options.seed = 100 + round;
    Mvee mvee(options);
    std::mutex mutex;
    // (variant, path) -> fd
    std::map<std::pair<int64_t, std::string>, int64_t> fds;
    const Status status = mvee.Run([&](VariantEnv& env) {
      const int64_t which = env.MveeSelfAware();
      auto open_worker = [&, which](const std::string& path) {
        return [&, which, path](VariantEnv& wenv) {
          const int64_t fd = wenv.Open(path, VOpenFlags::kCreate | VOpenFlags::kWrite);
          std::lock_guard<std::mutex> lock(mutex);
          fds[{which, path}] = fd;
        };
      };
      ThreadHandle a = env.Spawn(open_worker("file_a"));
      ThreadHandle b = env.Spawn(open_worker("file_b"));
      env.Join(a);
      env.Join(b);
    });
    ASSERT_TRUE(status.ok()) << status.ToString();
    const int64_t fd_a0 = fds[{0, "file_a"}];
    const int64_t fd_a1 = fds[{1, "file_a"}];
    const int64_t fd_b0 = fds[{0, "file_b"}];
    const int64_t fd_b1 = fds[{1, "file_b"}];
    EXPECT_EQ(fd_a0, fd_a1);
    EXPECT_EQ(fd_b0, fd_b1);
  }
}

TEST(MveeDivergenceTest, ArgumentMismatchIsDetected) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t fd = env.Open("out", VOpenFlags::kCreate | VOpenFlags::kWrite);
    // A memory-corruption attack succeeds in one variant only: the variants
    // write different payloads and the monitor must catch it.
    env.Write(fd, which == 0 ? std::string("benign") : std::string("pwned!"));
    env.Close(fd);
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
}

TEST(MveeDivergenceTest, SyscallNumberMismatchIsDetected) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    if (which == 0) {
      env.Stat("somewhere");
    } else {
      env.Unlink("somewhere");
    }
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
}

TEST(MveeDivergenceTest, MissingSyscallTimesOut) {
  MveeOptions options = DefaultOptions(2);
  options.rendezvous_timeout = std::chrono::milliseconds(300);
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    if (which == 0) {
      env.Stat("x");  // The slave never arrives at this call...
    } else {
      // ... because it silently stalls without making any syscall (a hung
      // variant, not a mismatched one).
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
    }
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
}

TEST(MveeDivergenceTest, DivergenceWinsOverLaterCalls) {
  Mvee mvee(DefaultOptions(2));
  std::atomic<int> after_divergence{0};
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t fd = env.Open("o", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, which == 0 ? std::string("a") : std::string("b"));
    after_divergence.fetch_add(1);  // Unreachable: variants are killed.
    env.Close(fd);
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(after_divergence.load(), 0);
}

TEST(MveePolicyTest, SensitivePolicySkipsBenignComparison) {
  MveeOptions options = DefaultOptions(2);
  options.policy = MonitorPolicy::kLockstepSensitive;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    // stat is benign: different paths tolerated under the relaxed policy.
    env.Stat(which == 0 ? "p" : "q");
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(MveePolicyTest, SensitivePolicyStillCatchesWrites) {
  MveeOptions options = DefaultOptions(2);
  options.policy = MonitorPolicy::kLockstepSensitive;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t fd = env.Open("o", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, which == 0 ? std::string("x") : std::string("y"));
    env.Close(fd);
  });
  EXPECT_FALSE(status.ok());
}

TEST(MveeMemoryTest, MmapReturnsDiversifiedAddressesButComparableCalls) {
  MveeOptions options = DefaultOptions(2);
  options.enable_aslr = true;
  Mvee mvee(options);
  std::vector<int64_t> addresses(2, 0);
  std::mutex mutex;
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t addr = env.Mmap(8192, VProt::kRead | VProt::kWrite);
    ASSERT_GT(addr, 0);
    {
      std::lock_guard<std::mutex> lock(mutex);
      addresses[which] = addr;
    }
    EXPECT_EQ(env.Mprotect(addr, 8192, VProt::kRead), 0);
    EXPECT_EQ(env.Munmap(addr, 8192), 0);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(addresses[0], addresses[1]);  // ASLR made them differ.
}

TEST(MveeMemoryTest, BrkConsistentGrowth) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t initial = env.Brk(0);
    const int64_t grown = env.Brk(4096);
    EXPECT_EQ(grown, initial + 4096);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(MveeSyncTest, MutexUnderMveeProducesConsistentResult) {
  for (AgentKind kind :
       {AgentKind::kTotalOrder, AgentKind::kPartialOrder, AgentKind::kWallOfClocks}) {
    MveeOptions options = DefaultOptions(2);
    options.agent = kind;
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) {
      // Per-variant shared state: a counter guarded by an instrumented mutex.
      auto mutex = std::make_shared<Mutex>();
      auto counter = std::make_shared<int>(0);
      auto worker = [mutex, counter](VariantEnv& wenv) {
        for (int i = 0; i < 50; ++i) {
          LockGuard<Mutex> guard(*mutex);
          ++*counter;
        }
        wenv.Gettid();
      };
      ThreadHandle a = env.Spawn(worker);
      ThreadHandle b = env.Spawn(worker);
      env.Join(a);
      env.Join(b);
      // Every variant writes its result: lockstep compare verifies equality.
      const int64_t fd = env.Open("result", VOpenFlags::kCreate | VOpenFlags::kWrite);
      env.Write(fd, std::to_string(*counter));
      env.Close(fd);
    });
    EXPECT_TRUE(status.ok()) << AgentKindName(kind) << ": " << status.ToString();
    EXPECT_EQ(FileText(mvee.kernel(), "result"), "100");
  }
}

// Without sync-op replication, racing critical sections produce divergent
// outputs that the monitor detects — the claim motivating the whole paper
// (§1, §5.5's uninstrumented-nginx run).
TEST(MveeSyncTest, UninstrumentedRacyOrderEventuallyDiverges) {
  int divergences = 0;
  // Racy interleavings are timing-dependent; 24 independently-seeded rounds
  // make a no-divergence run astronomically unlikely even on a loaded host,
  // and the loop exits on the first divergence (usually round one).
  for (int round = 0; round < 24 && divergences == 0; ++round) {
    MveeOptions options = DefaultOptions(2);
    options.agent = AgentKind::kNull;  // No replication.
    options.rendezvous_timeout = std::chrono::milliseconds(5000);
    options.seed = round;
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) {
      auto order = std::make_shared<std::vector<int>>();
      auto mutex = std::make_shared<Mutex>();
      auto worker = [order, mutex](int id) {
        return [order, mutex, id](VariantEnv& wenv) {
          for (int i = 0; i < 40; ++i) {
            mutex->Lock();
            order->push_back(id);
            mutex->Unlock();
            if (i % 8 == 0) {
              wenv.SchedYield();  // Perturb the schedule.
            }
          }
          wenv.Gettid();
        };
      };
      ThreadHandle a = env.Spawn(worker(1));
      ThreadHandle b = env.Spawn(worker(2));
      env.Join(a);
      env.Join(b);
      std::string serialized;
      for (int id : *order) {
        serialized += static_cast<char>('0' + id);
      }
      const int64_t fd = env.Open("trace", VOpenFlags::kCreate | VOpenFlags::kWrite);
      env.Write(fd, serialized);
      env.Close(fd);
    });
    if (!status.ok()) {
      ++divergences;
    }
  }
  EXPECT_GT(divergences, 0);
}

TEST(MveeCovertChannelTest, TrylockOutcomeIsReplicated) {
  // §5.4: whether a trylock succeeds is decided by the master and replayed
  // in the slaves, so a data-dependent pattern of trylock outcomes is a
  // cross-variant channel. Here we only verify the replication property:
  // all variants observe the same outcome sequence.
  Mvee mvee(DefaultOptions(2));
  std::mutex mutex;
  std::map<int64_t, std::string> outcomes;
  const Status status = mvee.Run([&](VariantEnv& env) {
    auto lock = std::make_shared<Mutex>();
    auto pattern = std::make_shared<std::string>();
    auto holder = [lock](VariantEnv& wenv) {
      lock->Lock();
      wenv.NanosleepNanos(2000000);  // Hold for 2ms.
      lock->Unlock();
      wenv.Gettid();
    };
    auto prober = [lock, pattern](VariantEnv& wenv) {
      for (int i = 0; i < 20; ++i) {
        *pattern += lock->TryLock() ? '1' : '0';
        if (pattern->back() == '1') {
          lock->Unlock();
        }
        wenv.NanosleepNanos(200000);
      }
    };
    ThreadHandle h = env.Spawn(holder);
    ThreadHandle p = env.Spawn(prober);
    env.Join(h);
    env.Join(p);
    const int64_t which = env.MveeSelfAware();
    std::lock_guard<std::mutex> guard(mutex);
    outcomes[which] = *pattern;
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(outcomes[0], outcomes[1]);
}

TEST(NativeRunnerTest, RunsProgramDirectly) {
  NativeRunner runner;
  const Status status = runner.Run([](VariantEnv& env) {
    const int64_t fd = env.Open("n", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, std::string("native"));
    env.Close(fd);
    EXPECT_EQ(env.MveeSelfAware(), -1);  // Not under an MVEE.
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(runner.counters().total, 4u);
}

TEST(NativeRunnerTest, ThreadsAndMutexesWork) {
  NativeRunner runner;
  std::atomic<int> total{0};
  const Status status = runner.Run([&](VariantEnv& env) {
    auto mutex = std::make_shared<Mutex>();
    auto counter = std::make_shared<int>(0);
    std::vector<ThreadHandle> handles;
    for (int i = 0; i < 4; ++i) {
      handles.push_back(env.Spawn([mutex, counter](VariantEnv&) {
        for (int j = 0; j < 100; ++j) {
          LockGuard<Mutex> guard(*mutex);
          ++*counter;
        }
      }));
    }
    for (auto handle : handles) {
      env.Join(handle);
    }
    total.store(*counter);
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(total.load(), 400);
}

// --- Sharded syscall-ordering domains (docs/syscall_ordering.md) ----------

// Descriptor-scoped ordered ops on disjoint fds replay without a shared
// clock; every variant must still land on identical per-fd offsets.
TEST(OrderDomainTest, PerFdOpsStayConsistentAcrossVariants) {
  MveeOptions options = DefaultOptions(3);
  options.sharded_order_domains = true;
  Mvee mvee(options);
  std::mutex mutex;
  // (variant, worker) -> final offset
  std::map<std::pair<int64_t, int>, int64_t> offsets;
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
      handles.push_back(env.Spawn([&, which, t](VariantEnv& wenv) {
        const int64_t fd =
            wenv.Open("pfd_" + std::to_string(t), VOpenFlags::kCreate | VOpenFlags::kWrite);
        ASSERT_GE(fd, 0);
        for (int i = 1; i <= 50; ++i) {
          wenv.Lseek(fd, t + 1, 1 /*SEEK_CUR*/);
        }
        const int64_t offset = wenv.Lseek(fd, 0, 1 /*SEEK_CUR*/);
        wenv.Close(fd);
        std::lock_guard<std::mutex> lock(mutex);
        offsets[{which, t}] = offset;
      }));
    }
    for (auto handle : handles) {
      env.Join(handle);
    }
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (int t = 0; t < 4; ++t) {
    const int64_t master_offset = offsets[{0, t}];
    EXPECT_EQ(master_offset, 50 * (t + 1));
    EXPECT_EQ((offsets[{1, t}]), master_offset) << "worker " << t;
    EXPECT_EQ((offsets[{2, t}]), master_offset) << "worker " << t;
  }
  // 4 per-fd domains were stamped (one per worker file) and retired at close.
  const MveeReport& report = mvee.report();
  EXPECT_GE(report.order_domains_created, 4u);
  EXPECT_GE(report.order_domains_retired, 4u);
}

// A reopened descriptor number must get a FRESH domain: replay clocks of the
// torn-down descriptor cannot leak into its successor, and the run must
// reclaim every retired domain once replays drain.
TEST(OrderDomainTest, FdReuseAcrossDomainTeardown) {
  MveeOptions options = DefaultOptions(2);
  options.sharded_order_domains = true;
  Mvee mvee(options);
  std::mutex mutex;
  std::map<int64_t, std::vector<int64_t>> fds_by_variant;
  const Status status = mvee.Run([&](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    for (int cycle = 0; cycle < 6; ++cycle) {
      const int64_t fd = env.Open("reuse.txt", VOpenFlags::kCreate | VOpenFlags::kWrite);
      ASSERT_GE(fd, 0);
      // Stamp the per-fd domain so teardown has something to tear down.
      EXPECT_EQ(env.Lseek(fd, cycle, 0 /*SEEK_SET*/), cycle);
      EXPECT_EQ(env.Close(fd), 0);
      std::lock_guard<std::mutex> lock(mutex);
      fds_by_variant[which].push_back(fd);
    }
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The same fd number was reused each cycle, identically across variants.
  ASSERT_EQ(fds_by_variant[0].size(), 6u);
  EXPECT_EQ(fds_by_variant[0], fds_by_variant[1]);
  EXPECT_EQ(fds_by_variant[0].front(), fds_by_variant[0].back());
  const MveeReport& report = mvee.report();
  // One fresh per-fd domain per cycle (+ the stamped process-wide domains).
  EXPECT_GE(report.order_domains_created, 6u);
  EXPECT_EQ(report.order_domains_retired, 6u);
  // Quiescent teardown reclaimed every retired domain.
  EXPECT_EQ(report.order_domains_reclaimed, report.order_domains_retired);
}

// Two-phase accept: the allocation half of sys_accept must stay ordered
// against concurrent fd-namespace churn (open/close/dup), or slave shadow-fd
// numbering drifts — the monitor's shadow-fd check turns any drift into a
// divergence verdict, so a clean verdict is the assertion.
TEST(OrderDomainTest, TwoPhaseAcceptVsConcurrentClose) {
  for (int round = 0; round < 3; ++round) {
    MveeOptions options = DefaultOptions(2);
    options.sharded_order_domains = true;
    options.seed = 7000 + round;
    Mvee mvee(options);
    std::mutex mutex;
    std::map<int64_t, int64_t> conn_fds;
    const Status status = mvee.Run([&](VariantEnv& env) {
      const int64_t which = env.MveeSelfAware();
      const int64_t listen_fd = env.Socket();
      ASSERT_EQ(env.Bind(listen_fd, static_cast<uint16_t>(9100 + round)), 0);
      ASSERT_EQ(env.Listen(listen_fd, 4), 0);

      // Namespace churn racing the accept's allocation half.
      ThreadHandle churn = env.Spawn([](VariantEnv& wenv) {
        for (int i = 0; i < 12; ++i) {
          const int64_t fd = wenv.Open("churn", VOpenFlags::kCreate | VOpenFlags::kWrite);
          const int64_t dup_fd = wenv.Dup(fd);
          wenv.Close(dup_fd);
          wenv.Close(fd);
        }
      });
      ThreadHandle client = env.Spawn([round](VariantEnv& wenv) {
        const int64_t fd = wenv.Socket();
        ASSERT_EQ(wenv.Connect(fd, static_cast<uint16_t>(9100 + round)), 0);
        wenv.Send(fd, std::string("hi"));
        wenv.Shutdown(fd);
        wenv.Close(fd);
      });

      const int64_t conn_fd = env.Accept(listen_fd);
      ASSERT_GE(conn_fd, 0);
      std::vector<uint8_t> buffer(4);
      env.Recv(conn_fd, buffer);

      env.Join(churn);
      env.Join(client);
      env.Close(conn_fd);
      env.Close(listen_fd);
      std::lock_guard<std::mutex> lock(mutex);
      conn_fds[which] = conn_fd;
    });
    ASSERT_TRUE(status.ok()) << "round " << round << ": " << status.ToString();
    EXPECT_EQ(conn_fds[0], conn_fds[1]) << "round " << round;
  }
}

// Sharding is a performance relaxation, not a policy change: the same
// workloads must produce the same verdicts with the toggle on and off.
TEST(OrderDomainTest, ToggleOffEquivalence) {
  auto clean_workload = [](VariantEnv& env) {
    auto worker = [](const std::string& path) {
      return [path](VariantEnv& wenv) {
        const int64_t fd = wenv.Open(path, VOpenFlags::kCreate | VOpenFlags::kWrite);
        wenv.Lseek(fd, 8, 0 /*SEEK_SET*/);
        wenv.Close(fd);
      };
    };
    ThreadHandle a = env.Spawn(worker("eq_a"));
    ThreadHandle b = env.Spawn(worker("eq_b"));
    env.Join(a);
    env.Join(b);
  };
  auto divergent_workload = [](VariantEnv& env) {
    const int64_t which = env.MveeSelfAware();
    const int64_t fd = env.Open("eq_d", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, which == 0 ? std::string("good") : std::string("evil"));
    env.Close(fd);
  };

  for (const bool sharded : {true, false}) {
    MveeOptions options = DefaultOptions(2);
    options.sharded_order_domains = sharded;
    {
      Mvee mvee(options);
      const Status status = mvee.Run(clean_workload);
      EXPECT_TRUE(status.ok()) << "sharded=" << sharded << ": " << status.ToString();
      if (!sharded) {
        // The baseline never touches the domain table.
        EXPECT_EQ(mvee.report().order_domains_created, 0u);
      }
    }
    {
      Mvee mvee(options);
      const Status status = mvee.Run(divergent_workload);
      EXPECT_EQ(status.code(), StatusCode::kDivergence) << "sharded=" << sharded;
    }
  }
}

TEST(MveeReportTest, CountersPopulated) {
  Mvee mvee(DefaultOptions(2));
  const Status status = mvee.Run([](VariantEnv& env) {
    auto mutex = std::make_shared<Mutex>();
    mutex->Lock();
    mutex->Unlock();
    env.GettimeofdayMicros();
    env.Stat("nothing");
  });
  EXPECT_TRUE(status.ok());
  const MveeReport& report = mvee.report();
  EXPECT_GT(report.syscalls.total, 0u);
  EXPECT_GT(report.syscalls.replicated, 0u);  // gettimeofday
  EXPECT_GT(report.syscalls.ordered, 0u);     // stat
  EXPECT_GT(report.sync_ops_recorded, 0u);    // mutex ops
  EXPECT_EQ(report.sync_ops_recorded, report.sync_ops_replayed);
  EXPECT_GT(report.wall_seconds, 0.0);
}

}  // namespace
}  // namespace mvee
