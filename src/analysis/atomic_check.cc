#include "mvee/analysis/atomic_check.h"

#include "mvee/analysis/andersen.h"

namespace mvee {

AtomicCheckResult CheckAtomicQualifiers(const MirModule& module,
                                        const std::set<int32_t>& qualified_regs,
                                        const AtomicCheckOptions& options) {
  AtomicCheckResult result;
  auto qualified = [&](int32_t reg) { return qualified_regs.count(reg) != 0; };

  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      switch (inst.op) {
        case MirOp::kAddrOf:
          // &object of a qualified object flowing into a non-qualified
          // pointer: the discipline requires the pointer to be qualified.
          if (module.objects[inst.object].atomic_qualified && !qualified(inst.dst)) {
            result.diagnostics.push_back({AtomicDiagnostic::Kind::kErrorCastFromAtomic,
                                          function.name, i, inst.source_line});
          }
          break;
        case MirOp::kMov:
        case MirOp::kGep:
          if (qualified(inst.src) && !qualified(inst.dst)) {
            result.diagnostics.push_back({AtomicDiagnostic::Kind::kErrorCastFromAtomic,
                                          function.name, i, inst.source_line});
          } else if (!qualified(inst.src) && qualified(inst.dst)) {
            result.diagnostics.push_back({AtomicDiagnostic::Kind::kWarningCastToAtomic,
                                          function.name, i, inst.source_line});
          }
          break;
        case MirOp::kAsmBlock:
          // AsmBlockAnalyzable blocks (src == 1) are exempt when improvement
          // 3 is enabled — the checker can reason about them.
          if (qualified(inst.ptr) && !(options.permit_analyzable_asm && inst.src == 1)) {
            result.diagnostics.push_back({AtomicDiagnostic::Kind::kErrorAtomicInAsm,
                                          function.name, i, inst.source_line});
          }
          break;
        default:
          break;
      }
    }
  }
  return result;
}

PropagationResult PropagateQualifiers(const MirModule& module,
                                      const std::set<int32_t>& seed_objects,
                                      const AtomicCheckOptions& options) {
  PropagationResult result;
  result.qualified_objects = seed_objects;

  // Improvement 1: volatile variables are sync variables too (§4.3); fold
  // them into the seed so the refactoring loop qualifies their pointers.
  if (options.auto_qualify_volatile) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        result.qualified_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  // Interprocedural def-use: argument/parameter and return/destination
  // bindings are copies too — a qualified pointer passed into a callee (or
  // returned from one) carries the qualifier across the call, in both
  // directions like any Mov edge. Indirect-call callees come from the
  // points-to fixpoint.
  const std::vector<std::pair<int32_t, int32_t>> call_copies = ResolveCallCopies(module);

  // Iterate "compiles": after each one, qualify the pointers the
  // diagnostics point at (refactoring step), until clean.
  for (;;) {
    ++result.iterations;
    bool changed = false;

    // Refactoring pass: qualify pointers along def-use chains, both
    // directions (§4.3.1: "propagate the _Atomic type-qualifier up and down
    // the def-use chains of all pointers to sync variables").
    for (const auto& function : module.functions) {
      for (const auto& inst : function.instructions) {
        switch (inst.op) {
          case MirOp::kAddrOf:
          case MirOp::kAlloc:
            if (result.qualified_objects.count(inst.object) != 0 &&
                result.qualified_regs.insert(inst.dst).second) {
              changed = true;
            }
            break;
          case MirOp::kMov:
          case MirOp::kGep:
            // Down the chain: dst inherits src's qualifier.
            if (result.qualified_regs.count(inst.src) != 0 &&
                result.qualified_regs.insert(inst.dst).second) {
              changed = true;
            }
            // Up the chain: if the destination must be qualified, the source
            // feeding it must be too.
            if (result.qualified_regs.count(inst.dst) != 0 &&
                result.qualified_regs.insert(inst.src).second) {
              changed = true;
            }
            break;
          default:
            break;
        }
      }
    }
    for (const auto& [dst, src] : call_copies) {
      if (result.qualified_regs.count(src) != 0 && result.qualified_regs.insert(dst).second) {
        changed = true;
      }
      if (result.qualified_regs.count(dst) != 0 && result.qualified_regs.insert(src).second) {
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  // Final compile: the only diagnostics left must be hard errors (inline
  // assembly touching qualified variables), which no refactoring fixes.
  // Evaluate against a module whose seed objects carry the qualifier.
  MirModule qualified_module = module;
  for (int32_t obj : result.qualified_objects) {
    qualified_module.objects[obj].atomic_qualified = true;
  }
  const AtomicCheckResult final_check =
      CheckAtomicQualifiers(qualified_module, result.qualified_regs, options);
  for (const auto& diagnostic : final_check.diagnostics) {
    if (diagnostic.kind == AtomicDiagnostic::Kind::kErrorAtomicInAsm) {
      result.hard_errors.push_back(diagnostic);
    }
  }
  return result;
}

}  // namespace mvee
