#include "mvee/monitor/order_domain.h"

namespace mvee {

OrderDomainTable::OrderDomainTable(uint32_t num_variants) : num_variants_(num_variants) {
  for (uint32_t id = 0; id < OrderDomainIds::kFirstFd; ++id) {
    static_domains_[id] = std::make_unique<OrderDomain>(id, num_variants_);
  }
}

OrderDomain* OrderDomainTable::FindOrCreate(uint32_t id) {
  if (id < OrderDomainIds::kFirstFd) {
    return static_domains_[id].get();
  }
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = domains_.find(id);
    if (it != domains_.end()) {
      return it->second.get();
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = domains_[id];
  if (slot == nullptr) {
    slot = std::make_unique<OrderDomain>(id, num_variants_);
    ++created_;
  }
  return slot.get();
}

void OrderDomainTable::Retire(uint32_t id) {
  if (id < OrderDomainIds::kFirstFd || id == OrderDomainIds::kNone) {
    return;
  }
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = domains_.find(id);
  if (it != domains_.end() &&
      !it->second->retired.exchange(true, std::memory_order_relaxed)) {
    retired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void OrderDomainTable::DetachVariant(uint32_t variant) {
  if (variant == 0 || variant >= num_variants_) {
    return;
  }
  dead_mask_.fetch_or(1u << variant, std::memory_order_release);
}

size_t OrderDomainTable::Reclaim() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const uint32_t dead = dead_mask_.load(std::memory_order_acquire);
  size_t freed = 0;
  for (auto it = domains_.begin(); it != domains_.end();) {
    OrderDomain& domain = *it->second;
    bool quiescent = domain.retired.load(std::memory_order_relaxed);
    if (quiescent) {
      for (uint32_t v = 1; v < num_variants_ && quiescent; ++v) {
        if ((dead & (1u << v)) != 0) {
          continue;  // Excised: its clock froze where its threads left it.
        }
        quiescent = domain.SlaveClock(v).load(std::memory_order_acquire) == domain.next_ts;
      }
    }
    if (quiescent) {
      it = domains_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  reclaimed_ += freed;
  return freed;
}

OrderDomainStats OrderDomainTable::stats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  OrderDomainStats stats;
  stats.created = created_;
  stats.retired = retired_.load(std::memory_order_relaxed);
  stats.reclaimed = reclaimed_;
  stats.live = domains_.size();
  return stats;
}

}  // namespace mvee
