#include "mvee/vkernel/futex.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <vector>

namespace mvee {

namespace {

// Parked-wait slice for sharded waiters: the unlink-then-wake protocol is
// lost-wakeup-free (park.h), so the slice is only the second line of
// defense; 500us keeps even a hypothetical miss invisible at run scale.
constexpr auto kFutexParkSlice = std::chrono::microseconds(500);

}  // namespace

// --- Sharded path ------------------------------------------------------------

int64_t FutexTable::WaitSharded(uint64_t logical_addr, const std::atomic<int32_t>* word,
                                int32_t expected) {
  WaitNode node;
  Shard& shard = ShardFor(logical_addr);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // A wait that starts after teardown drained the shards would enqueue a
    // node nobody will ever wake; report "woken" and let the variant unwind
    // at its next trap (the reporter is already tripped).
    if (registry_ != nullptr && registry_->shutdown()) {
      return 0;
    }
    // Linux futex semantics: re-check the word under the bucket lock; if it
    // no longer holds the expected value the caller lost a race with a waker
    // and must retry in user space.
    if (word != nullptr && word->load(std::memory_order_acquire) != expected) {
      return -EAGAIN;
    }
    AddrQueue& queue = shard.queues[logical_addr];
    if (queue.tail != nullptr) {
      queue.tail->next = &node;
    } else {
      queue.head = &node;
    }
    queue.tail = &node;
    ++queue.waiters;
  }
  // The waker unlinked us before setting `woken`, so after this loop the
  // node is unreachable and safe to pop off the stack. BeginPark / re-check /
  // WaitTicket on the shard's spot is park.h's lost-wakeup-free discipline.
  while (!node.woken.load(std::memory_order_acquire)) {
    if (registry_ != nullptr && registry_->shutdown()) {
      // Teardown while parked: cancel by unlinking under the shard lock. If
      // a waker already unlinked the node, its `woken` store is imminent —
      // keep looping for it (the waker no longer touches the node after).
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (node.woken.load(std::memory_order_acquire)) {
        break;
      }
      auto it = shard.queues.find(logical_addr);
      if (it != shard.queues.end()) {
        AddrQueue& queue = it->second;
        WaitNode** link = &queue.head;
        while (*link != nullptr && *link != &node) {
          link = &(*link)->next;
        }
        if (*link == &node) {
          *link = node.next;
          if (queue.tail == &node) {
            WaitNode* last = queue.head;
            while (last != nullptr && last->next != nullptr) {
              last = last->next;
            }
            queue.tail = last;
          }
          --queue.waiters;
          if (queue.waiters == 0) {
            shard.queues.erase(it);
          }
          return 0;
        }
      }
      continue;  // Unlinked by a waker: wait for its `woken` store.
    }
    shard.park.BeginPark();
    const uint64_t ticket = shard.park.Ticket();
    if (node.woken.load(std::memory_order_acquire)) {
      shard.park.EndPark();
      break;
    }
    if (stats_ != nullptr) {
      stats_->waits.fetch_add(1, std::memory_order_relaxed);
    }
    shard.park.WaitTicket(ticket, kFutexParkSlice);
    shard.park.EndPark();
  }
  return 0;
}

int64_t FutexTable::WakeSharded(uint64_t logical_addr, int32_t count) {
  WaitNode* to_wake = nullptr;
  WaitNode** tail_next = &to_wake;
  int64_t woken = 0;
  Shard& shard = ShardFor(logical_addr);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.queues.find(logical_addr);
    if (it == shard.queues.end()) {
      return 0;
    }
    AddrQueue& queue = it->second;
    while (woken < count && queue.head != nullptr) {
      WaitNode* node = queue.head;
      queue.head = node->next;
      if (queue.head == nullptr) {
        queue.tail = nullptr;
      }
      node->next = nullptr;
      *tail_next = node;
      tail_next = &node->next;
      --queue.waiters;
      ++woken;
    }
    if (queue.waiters == 0) {
      // Reclaim at zero waiters: unconsumed wake credits die, like futex,
      // and a long-running server retains no per-address state.
      shard.queues.erase(it);
    }
  }
  // Release outside the shard lock. `woken` is the LAST access to each node:
  // the released thread may return and reuse its stack immediately. The
  // parked-wakeup goes through the shard's spot, which outlives every node.
  while (to_wake != nullptr) {
    WaitNode* node = to_wake;
    to_wake = node->next;
    node->woken.store(true, std::memory_order_release);
  }
  if (woken > 0) {
    shard.park.WakeParked();
    if (stats_ != nullptr) {
      stats_->wakeups.fetch_add(static_cast<uint64_t>(woken), std::memory_order_relaxed);
    }
  }
  return woken;
}

// --- Baseline path (the seed's global mutex + broadcast condvar) -------------

int64_t FutexTable::WaitGlobal(uint64_t logical_addr, const std::atomic<int32_t>* word,
                               int32_t expected) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Post-teardown waits must not sleep on a bucket WakeAll already drained.
  if (registry_ != nullptr && registry_->shutdown()) {
    return 0;
  }
  if (word != nullptr && word->load(std::memory_order_acquire) != expected) {
    return -EAGAIN;
  }
  Bucket& bucket = buckets_[logical_addr];
  const uint64_t ticket = bucket.next_ticket++;
  ++bucket.waiters;
  bucket.cv.wait(lock, [&] { return ticket < bucket.wake_upto; });
  --bucket.waiters;
  if (bucket.waiters == 0) {
    buckets_.erase(logical_addr);  // Unconsumed wake credits die, like futex.
  }
  return 0;
}

int64_t FutexTable::WakeGlobal(uint64_t logical_addr, int32_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(logical_addr);
  if (it == buckets_.end()) {
    return 0;
  }
  Bucket& bucket = it->second;
  const uint64_t unwoken = bucket.next_ticket - bucket.wake_upto;
  const uint64_t to_wake =
      static_cast<uint64_t>(count) < unwoken ? static_cast<uint64_t>(count) : unwoken;
  bucket.wake_upto += to_wake;
  if (to_wake > 0) {
    bucket.cv.notify_all();
  }
  return static_cast<int64_t>(to_wake);
}

// --- Common entry points -----------------------------------------------------

int64_t FutexTable::Wait(uint64_t logical_addr, const std::atomic<int32_t>* word,
                         int32_t expected) {
  return sharded_ ? WaitSharded(logical_addr, word, expected)
                  : WaitGlobal(logical_addr, word, expected);
}

int64_t FutexTable::Wake(uint64_t logical_addr, int32_t count) {
  if (count <= 0) {
    return 0;
  }
  return sharded_ ? WakeSharded(logical_addr, count) : WakeGlobal(logical_addr, count);
}

void FutexTable::WakeAll() {
  if (sharded_) {
    for (Shard& shard : shards_) {
      // Collect the addresses first: WakeSharded takes the shard lock itself
      // and erases entries.
      std::vector<uint64_t> addrs;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto& [addr, queue] : shard.queues) {
          addrs.push_back(addr);
        }
      }
      for (const uint64_t addr : addrs) {
        WakeSharded(addr, INT32_MAX);
      }
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [addr, bucket] : buckets_) {
    bucket.wake_upto = bucket.next_ticket;
    bucket.cv.notify_all();
  }
}

size_t FutexTable::WaiterCount() const {
  size_t total = 0;
  if (sharded_) {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [addr, queue] : shard.queues) {
        total += static_cast<size_t>(queue.waiters);
      }
    }
    return total;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [addr, bucket] : buckets_) {
    total += static_cast<size_t>(bucket.waiters);
  }
  return total;
}

size_t FutexTable::BucketCount() const {
  size_t total = 0;
  if (sharded_) {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.queues.size();
    }
    return total;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

std::string FutexTable::DebugString() const {
  std::string out;
  char line[96];
  if (sharded_) {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [addr, queue] : shard.queues) {
        std::snprintf(line, sizeof(line), "addr=0x%llx waiters=%d; ",
                      static_cast<unsigned long long>(addr), queue.waiters);
        out += line;
      }
    }
    return out;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [addr, bucket] : buckets_) {
    std::snprintf(line, sizeof(line), "addr=0x%llx waiters=%d pending=%d; ",
                  static_cast<unsigned long long>(addr), bucket.waiters,
                  static_cast<int>(bucket.next_ticket - bucket.wake_upto));
    out += line;
  }
  return out;
}

}  // namespace mvee
