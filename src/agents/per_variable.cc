#include "mvee/agents/per_variable.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

constexpr size_t kProbeLimit = 64;

// Largest table the runtime will preallocate: 2^28 slots of 8-byte keys is
// already a 2 GiB key array; anything larger is a config error, not a real
// wall size.
constexpr size_t kMaxTableCapacity = size_t{1} << 28;

size_t NextPow2(size_t n) {
  size_t p = 2;
  while (p < n && p < kMaxTableCapacity) {
    p <<= 1;
  }
  return p;
}

// clock_count * 8 with saturation: a huge clock_count must clamp to the max
// table size, not wrap around (size_t overflow would otherwise produce a
// tiny — or zero — table and an all-wrong mask).
size_t TableSlotsFor(size_t clock_count) {
  if (clock_count > kMaxTableCapacity / 8) {
    return kMaxTableCapacity;
  }
  return clock_count * 8;
}

}  // namespace

size_t PerVariableRuntime::TableCapacityFor(size_t clock_count) {
  return NextPow2(TableSlotsFor(clock_count));
}

PerVariableRuntime::PerVariableRuntime(const AgentConfig& config, AgentControl control)
    : config_(ValidatedAgentConfig(config)),
      control_(std::move(control)),
      table_capacity_(TableCapacityFor(config_.clock_count)),
      table_mask_(table_capacity_ - 1),
      keys_(table_capacity_),
      overflow_capacity_(std::min(table_capacity_, size_t{1} << 12)),
      overflow_mask_(overflow_capacity_ - 1),
      overflow_keys_(overflow_capacity_),
      master_clocks_(table_capacity_),
      rings_(true, config_),
      slave_clocks_(config_.num_variants > 0 ? config_.num_variants - 1 : 0) {
  for (auto& key : keys_) {
    key.store(0, std::memory_order_relaxed);
  }
  for (auto& key : overflow_keys_) {
    key.store(0, std::memory_order_relaxed);
  }
  for (auto& clocks : slave_clocks_) {
    clocks = std::vector<SlaveClock>(table_capacity_);
  }
}

uint32_t PerVariableRuntime::ClockOf(const void* addr) {
  // Bucket at 8-byte granularity for the same CMPXCHG8B reason as WoC; +1 so
  // the null bucket can never collide with the empty-slot sentinel 0.
  const uint64_t key = (reinterpret_cast<uint64_t>(addr) >> 3) + 1;
  uint64_t index = ClockAddressHash(key) & table_mask_;
  for (size_t probe = 0; probe < kProbeLimit; ++probe) {
    const uint64_t current = keys_[index].load(std::memory_order_acquire);
    if (current == key) {
      return static_cast<uint32_t>(index);
    }
    if (current == 0) {
      uint64_t expected = 0;
      if (keys_[index].compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
        variables_mapped_.fetch_add(1, std::memory_order_relaxed);
        return static_cast<uint32_t>(index);
      }
      if (expected == key) {
        return static_cast<uint32_t>(index);  // Lost the race to ourselves.
      }
      // Lost to a different key; keep probing from here.
    }
    index = (index + 1) & table_mask_;
  }
  // Table region saturated: degrade to WoC-style hashed assignment. The
  // clock still exists (every table index has one); we merely share it.
  // Count the overflow only on this key's first fallback — TableOverflows()
  // reports saturated variables, not lookups — via an insert-only dedup set
  // probed the same way as the main table.
  uint64_t overflow_index = ClockAddressHash(key) & overflow_mask_;
  bool seen_before = false;
  for (size_t probe = 0; probe < kProbeLimit; ++probe) {
    const uint64_t current = overflow_keys_[overflow_index].load(std::memory_order_acquire);
    if (current == key) {
      seen_before = true;
      break;
    }
    if (current == 0) {
      uint64_t expected = 0;
      if (overflow_keys_[overflow_index].compare_exchange_strong(expected, key,
                                                                std::memory_order_acq_rel)) {
        break;  // First sighting: we count it below.
      }
      if (expected == key) {
        seen_before = true;  // Lost the race to ourselves.
        break;
      }
    }
    overflow_index = (overflow_index + 1) & overflow_mask_;
    // Probe exhaustion: the dedup set is saturated too; count every lookup
    // (overcount beats a second dedup layer in a config this degenerate).
  }
  if (!seen_before) {
    table_overflows_.fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<uint32_t>(ClockAddressHash(key) & table_mask_);
}

void PerVariableRuntime::DetachVariant(uint32_t variant) {
  if (variant == 0 || variant >= config_.num_variants) {
    return;
  }
  // Consumer v-1 of every per-thread ring belongs to slave variant v.
  rings_.DetachConsumer(variant - 1);
}

std::unique_ptr<SyncAgent> PerVariableRuntime::CreateAgent(uint32_t variant_index) {
  const AgentRole role = variant_index == 0 ? AgentRole::kMaster : AgentRole::kSlave;
  return std::make_unique<PerVariableAgent>(this, role, variant_index);
}

PerVariableAgent::PerVariableAgent(PerVariableRuntime* runtime, AgentRole role,
                                   uint32_t variant_index)
    : runtime_(runtime),
      role_(role),
      variant_index_(variant_index),
      pending_(runtime->config_.max_threads) {}

void PerVariableAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  CheckTidBound(tid, runtime_->config_.max_threads, runtime_->control_, name());

  if (role_ == AgentRole::kMaster) {
    const uint32_t clock_id = runtime_->ClockOf(addr);
    auto& clock = runtime_->master_clocks_[clock_id];
    SpinWait waiter;
    while (clock.lock.test_and_set(std::memory_order_acquire)) {
      if (runtime_->control_.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    pending_[tid].clock_id = clock_id;
    pending_[tid].time = clock.time;
    return;
  }

  // Slave: addresses differ per variant under ASLR/DCL, so the slave never
  // consults the table — the recorded clock id alone drives replay, which is
  // what makes the agent address-space-layout agnostic (§4.5.1).
  auto& ring = runtime_->rings_.Get(tid);
  const size_t consumer = variant_index_ - 1;
  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;

  PerVariableRuntime::Entry entry;
  while (!ring.Peek(consumer, 0, &entry)) {
    if (runtime_->control_.should_unwind(variant_index_)) {
      throw VariantKilled{};
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(variant_index_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("per-variable replay deadline (no entry, tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }

  auto& local_clock = runtime_->slave_clocks_[consumer][entry.clock_id].time;
  waiter.Reset();
  while (local_clock.load(std::memory_order_acquire) != entry.time) {
    if (runtime_->control_.should_unwind(variant_index_)) {
      throw VariantKilled{};
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(variant_index_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("per-variable replay deadline (clock " +
                                    std::to_string(entry.clock_id) + " stuck at " +
                                    std::to_string(local_clock.load()) + ", want " +
                                    std::to_string(entry.time) + ", tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  pending_[tid].clock_id = entry.clock_id;
  pending_[tid].time = entry.time;
}

void PerVariableAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    const Pending pending = pending_[tid];
    auto& clock = runtime_->master_clocks_[pending.clock_id];
    clock.time = pending.time + 1;
    clock.lock.clear(std::memory_order_release);

    // Publication outside the clock lock, same ordering argument as
    // wall-of-clocks: the ring is thread-private on the producer side and
    // replay is ordered by the recorded clock value.
    auto& ring = runtime_->rings_.Get(tid);
    PerVariableRuntime::Entry entry;
    entry.clock_id = pending.clock_id;
    entry.time = pending.time;
    if (!ring.TryPush(entry)) {
      runtime_->stats_.shard(variant_index_, tid).record_stalls.fetch_add(1, std::memory_order_relaxed);
      SpinWait waiter;
      while (!ring.TryPush(entry)) {
        if (runtime_->control_.aborted()) {
          throw VariantKilled{};
        }
        waiter.Pause();
      }
    }
    runtime_->stats_.shard(variant_index_, tid).ops_recorded.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const size_t consumer = variant_index_ - 1;
  const Pending pending = pending_[tid];
  runtime_->slave_clocks_[consumer][pending.clock_id].time.store(pending.time + 1,
                                                                 std::memory_order_release);
  runtime_->rings_.Get(tid).Advance(consumer);
  runtime_->stats_.shard(variant_index_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mvee
