// Small statistics helpers for the benchmark harness: running mean/stddev,
// min/max, percentiles, and geometric means (Table 1 reports aggregated
// average slowdowns; Figure 5 reports per-benchmark relative overheads).

#ifndef MVEE_UTIL_STATS_H_
#define MVEE_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mvee {

// Accumulates samples; summary queries are O(n log n) at most (percentile).
class SampleStats {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  double GeoMean() const;
  // p in [0,100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

// Fixed-bucket latency histogram (power-of-two bucket bounds in nanoseconds).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t nanos);
  uint64_t TotalCount() const;
  // Upper bound (ns) of bucket i.
  static uint64_t BucketBound(size_t i);
  // Approximate percentile from bucket counts.
  uint64_t ApproxPercentile(double p) const;
  std::string ToString() const;

 private:
  uint64_t counts_[kBuckets] = {};
};

}  // namespace mvee

#endif  // MVEE_UTIL_STATS_H_
