#include "mvee/analysis/andersen.h"

#include <deque>

#include "mvee/analysis/syncop_analysis.h"

namespace mvee {

AndersenAnalysis::AndersenAnalysis(const MirModule& module) {
  points_to_.resize(module.register_count);
  copy_targets_.resize(module.register_count);

  // Seed constraints and build the copy graph.
  std::deque<int32_t> worklist;
  auto enqueue = [&](int32_t reg) { worklist.push_back(reg); };

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc:
          if (points_to_[inst.dst].insert(inst.object).second) {
            enqueue(inst.dst);
          }
          break;
        case MirOp::kMov:
        case MirOp::kGep:
          copy_targets_[inst.src].push_back(inst.dst);
          enqueue(inst.src);
          break;
        default:
          break;
      }
    }
  }

  // Worklist fixpoint: propagate pts(src) into pts(dst) along copy edges.
  while (!worklist.empty()) {
    ++solver_iterations_;
    const int32_t reg = worklist.front();
    worklist.pop_front();
    for (int32_t target : copy_targets_[reg]) {
      bool changed = false;
      for (int32_t obj : points_to_[reg]) {
        changed |= points_to_[target].insert(obj).second;
      }
      if (changed) {
        worklist.push_back(target);
      }
    }
  }
}

const std::set<int32_t>& AndersenAnalysis::PointsTo(int32_t reg) const {
  if (reg < 0 || static_cast<size_t>(reg) >= points_to_.size()) {
    return empty_;
  }
  return points_to_[reg];
}

bool AndersenAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  const auto& a = PointsTo(reg_a);
  const auto& b = PointsTo(reg_b);
  for (int32_t obj : a) {
    if (b.count(obj) != 0) {
      return true;
    }
  }
  return false;
}

bool AndersenAnalysis::MayPointInto(int32_t reg, const std::set<int32_t>& objects) const {
  for (int32_t obj : PointsTo(reg)) {
    if (objects.count(obj) != 0) {
      return true;
    }
  }
  return false;
}

SyncOpReport IdentifySyncOpsAndersen(const MirModule& module,
                                     const SyncOpAnalysisOptions& options) {
  SyncOpReport report;
  report.module_name = module.name;

  AndersenAnalysis points_to(module);

  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op == MirOp::kLockRmw) {
        report.type_i.push_back({function.name, i, inst.source_line, inst.op});
        for (int32_t obj : points_to.PointsTo(inst.ptr)) {
          report.sync_objects.insert(obj);
        }
      } else if (inst.op == MirOp::kXchg) {
        report.type_ii.push_back({function.name, i, inst.source_line, inst.op});
        for (int32_t obj : points_to.PointsTo(inst.ptr)) {
          report.sync_objects.insert(obj);
        }
      }
    }
  }

  if (options.treat_volatile_as_sync) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        report.sync_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLoad && inst.op != MirOp::kStore) {
        continue;
      }
      if (points_to.MayPointInto(inst.ptr, report.sync_objects)) {
        report.type_iii.push_back({function.name, i, inst.source_line, inst.op});
      } else {
        ++report.unmarked_memops;
      }
    }
  }
  return report;
}

}  // namespace mvee
