// Regenerates paper Figure 5: per-benchmark run-time overhead relative to
// native execution for all 25 PARSEC/SPLASH stand-ins, three synchronization
// agents, 2..4 variants.
//
// The shape claims to check against the paper:
//   * wall-of-clocks beats partial-order beats/competes-with total-order on
//     sync-heavy benchmarks;
//   * sync-quiet benchmarks (blackscholes, radix, lu, freqmine) are close to
//     1.0x under every agent;
//   * syscall-heavy benchmarks (dedup, water_spatial) pay monitor overheads
//     under every agent.
//
// Variant count defaults to 2; set MVEE_BENCH_VARIANTS=4 for the full sweep
// (slower).

#include <cstdio>
#include <cstdlib>

#include "bench/common.h"

int main() {
  using namespace mvee;
  using namespace mvee::bench;
  SetLogLevel(LogLevel::kError);

  const double scale = BenchScale(2.0);
  uint32_t max_variants = 2;
  if (const char* env = std::getenv("MVEE_BENCH_VARIANTS")) {
    const int value = std::atoi(env);
    if (value >= 2 && value <= 4) {
      max_variants = static_cast<uint32_t>(value);
    }
  }

  constexpr AgentKind kAgents[] = {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                                   AgentKind::kWallOfClocks};

  PrintHeader("Figure 5: per-benchmark overhead relative to native (1.00 = native)");
  std::printf("scale=%.3f, variants=2..%u\n\n", scale, max_variants);

  for (uint32_t variants = 2; variants <= max_variants; ++variants) {
    std::printf("--- %u variants ---\n", variants);
    std::printf("%-7s %-15s %10s %8s %8s %8s\n", "suite", "benchmark", "native(s)", "TO",
                "PO", "WoC");
    for (const auto& config : AllWorkloads()) {
      const NativeRun native = RunNative(config, scale);
      std::printf("%-7s %-15s %10.3f", config.suite, config.name, native.seconds);
      for (AgentKind agent : kAgents) {
        const MveeRun run = RunUnderMvee(config, scale, variants, agent);
        if (run.ok && native.seconds > 0) {
          std::printf(" %7.2fx", run.seconds / native.seconds);
        } else {
          std::printf("   FAIL ");
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
