#include "mvee/agents/partial_order.h"

#include <chrono>
#include <string>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

PartialOrderRuntime::PartialOrderRuntime(const AgentConfig& config, AgentControl control)
    : config_(ValidatedAgentConfig(config)),
      control_(std::move(control)),
      ring_(config_.sharded_recording ? 2 : config_.buffer_capacity),
      record_shards_(config_.sharded_recording, config_.record_shard_count),
      thread_rings_(config_.sharded_recording, config_) {
  ring_.EnableCursorCaching(config_.cached_ring_cursors);
  for (uint32_t v = 1; v < config_.num_variants; ++v) {
    auto slave = std::make_unique<SlaveState>();
    if (config_.sharded_recording) {
      slave->consumed_through = std::vector<ConsumedMark>(config_.max_threads);
      // Capacity contract (watermark.h): the gate admits at most po_window
      // outstanding sequences plus a max_threads overshoot (the gate check
      // precedes the ticket draw), so every live mark fits.
      slave->replay_mark = std::make_unique<PrefixWatermark>(
          config_.po_window + config_.max_threads + 1);
    } else {
      slave->consumed = std::vector<std::atomic<uint64_t>>(config_.buffer_capacity);
      slave->next_index_by_tid = std::vector<std::atomic<uint64_t>>(config_.max_threads);
    }
    slave->consumer_id = ring_.RegisterConsumer();
    slaves_.push_back(std::move(slave));
  }
}

size_t PartialOrderRuntime::RecordShardIndex(const void* addr) {
  // Default-config shard mapping (tests construct their runtimes with the
  // default max_threads, whose auto record_shard_count is the default).
  return RecordShards::IndexFor(addr, RecordShards::kDefaultShardCount);
}

void PartialOrderRuntime::RetireConsumedPrefix(SlaveState* slave) {
  const uint64_t mask = config_.buffer_capacity - 1;
  uint64_t base = slave->base.load(std::memory_order_acquire);
  while (base < ring_.WriteCursor() &&
         slave->consumed[base & mask].load(std::memory_order_acquire) == base + 1) {
    // Exactly one thread wins the CAS for each slot; winners publish through
    // AdvanceTo, whose monotonic CAS-max tolerates winners finishing out of
    // order (a lagging winner's smaller advance is simply subsumed).
    if (slave->base.compare_exchange_weak(base, base + 1, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      ring_.AdvanceTo(slave->consumer_id, base + 1);
      ++base;
    }
  }
}

void PartialOrderRuntime::DetachVariant(uint32_t variant) {
  if (variant == 0 || variant >= config_.num_variants) {
    return;
  }
  // Consumer v-1 belongs to slave variant v in both the baseline global ring
  // and every per-thread recording ring.
  ring_.DetachConsumer(slaves_[variant - 1]->consumer_id);
  if (thread_rings_.enabled()) {
    thread_rings_.DetachConsumer(variant - 1);
  }
  // Publish before any later gate pass recomputes the minimum, so a master
  // stalled on the dead variant's frozen watermark drops it on its next
  // slow-path iteration.
  detached_slaves_.fetch_or(uint32_t{1} << (variant - 1), std::memory_order_acq_rel);
}

uint64_t PartialOrderRuntime::ReplayedPrefix(uint32_t variant) {
  if (variant == 0 || variant >= config_.num_variants || !config_.sharded_recording) {
    return 0;
  }
  return slaves_[variant - 1]->replay_mark->TryAdvance();
}

void PartialOrderRuntime::GateOnReplayWindow(uint32_t tid, AgentStats::Shard& stats) {
  // One relaxed load on the fast path: limits only grow, so a stale (small)
  // value can only send us to the slow path, never admit an out-of-window
  // ticket.
  if (record_shards_.TicketsIssued() < window_limit_.load(std::memory_order_relaxed))
      [[likely]] {
    return;
  }
  SpinWait waiter;
  bool stalled = false;
  for (;;) {
    const uint32_t detached = detached_slaves_.load(std::memory_order_acquire);
    uint64_t min_prefix = ~uint64_t{0};
    bool any_live = false;
    for (uint32_t v = 1; v < config_.num_variants; ++v) {
      if (detached & (uint32_t{1} << (v - 1))) {
        continue;
      }
      any_live = true;
      // The stalled side donates the fold work (watermark.h): slaves only
      // release-store their marks.
      const uint64_t prefix = slaves_[v - 1]->replay_mark->TryAdvance();
      min_prefix = prefix < min_prefix ? prefix : min_prefix;
    }
    if (!any_live) {
      // No replayer left to bound: the window is moot (matches the
      // single-variant and post-excision baselines, which never stalled).
      window_limit_.store(~uint64_t{0}, std::memory_order_relaxed);
      return;
    }
    const uint64_t limit = min_prefix + config_.po_window;
    window_limit_.store(limit, std::memory_order_relaxed);
    if (record_shards_.TicketsIssued() < limit) {
      return;
    }
    if (!stalled) {
      stalled = true;
      stats.record_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (control_.aborted()) {
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

std::unique_ptr<SyncAgent> PartialOrderRuntime::CreateAgent(uint32_t variant_index) {
  if (variant_index == 0) {
    return std::make_unique<PartialOrderAgent>(this, AgentRole::kMaster, nullptr);
  }
  return std::make_unique<PartialOrderAgent>(this, AgentRole::kSlave,
                                             slaves_[variant_index - 1].get());
}

PartialOrderAgent::PartialOrderAgent(PartialOrderRuntime* runtime, AgentRole role,
                                     PartialOrderRuntime::SlaveState* slave)
    : runtime_(runtime),
      role_(role),
      slave_(slave),
      stats_variant_(slave == nullptr ? 0 : static_cast<uint32_t>(slave->consumer_id) + 1),
      pending_index_(runtime->config_.max_threads, 0),
      held_shard_(runtime->config_.max_threads, nullptr) {}

void PartialOrderAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;  // Teardown: no second throw from destructor-driven sync ops.
  }
  CheckTidBound(tid, runtime_->config_.max_threads, runtime_->control_, name());
  if (role_ == AgentRole::kMaster) {
    if (runtime_->config_.sharded_recording) {
      // Window gate BEFORE the shard lock: a gated master must not stall
      // while holding a shard other replaying-adjacent masters need.
      runtime_->GateOnReplayWindow(tid, runtime_->stats_.shard(stats_variant_, tid));
      // Per-variable shard lock held across (op + ticket + push): see the
      // total-order agent and docs/DESIGN.md §8 for the ordering argument.
      held_shard_[tid] = &runtime_->record_shards_.Acquire(
          addr, runtime_->control_, runtime_->stats_.shard(stats_variant_, tid));
      return;
    }
    // Global instrumentation lock baseline (shared helper in record_shards.h).
    AcquireGlobalRecordLock(runtime_->master_lock_, runtime_->control_,
                            runtime_->stats_.shard(stats_variant_, tid));
    return;
  }

  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;

  auto check_deadline = [&](const char* phase) {
    if (runtime_->control_.should_unwind(stats_variant_)) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall(std::string("partial-order replay deadline (") + phase +
                                    ", tid " + std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
  };

  if (runtime_->config_.sharded_recording) {
    // Sharded replay (docs/DESIGN.md §8). Step 1: this thread's next entry
    // is its own ring's front — master thread t produced exactly thread t's
    // entries, in program order, so no window scan is needed to find it.
    auto& ring = runtime_->thread_rings_.Get(tid);
    const size_t consumer = slave_->consumer_id;
    PartialOrderRuntime::Entry mine;
    while (!ring.Peek(consumer, 0, &mine)) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      check_deadline("front");
      waiter.Pause();
    }

    pending_index_[tid] = mine.seq;

    // Step 2, O(1) dependence wait: the master recorded this op's immediate
    // same-shard predecessor edge (it held the shard lock while drawing the
    // ticket, so the edge was known for free). Waiting until the
    // predecessor is consumed transitively waits for the whole earlier
    // chain — which includes every earlier same-key op. Thread prev_tid
    // publishes a consumed-watermark after every replayed op (it consumes
    // its entries in increasing sequence order), so one acquire load
    // answers "has prev_seq been replayed". Deliberately NOT a peek into
    // ring[prev_tid]: a cross-thread peek races that ring's cursor advance
    // and can read a just-recycled slot's far-larger sequence, wrongly
    // releasing this waiter. The baseline scans O(po_window) entries for
    // the same answer.
    if (mine.prev_seq == PartialOrderRuntime::kNoPrev) {
      return;
    }
    auto& prev_mark = slave_->consumed_through[mine.prev_tid].next;
    waiter.Reset();
    while (prev_mark.load(std::memory_order_acquire) <= mine.prev_seq) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      check_deadline("dependence");
      waiter.Pause();
    }
    return;
  }

  // Baseline replay. Step 1: locate this thread's next recorded entry by
  // scanning forward from where the previous scan stopped (each global entry
  // is scanned at most once per thread, so the scan is amortized O(1)).
  const uint64_t mask = runtime_->config_.buffer_capacity - 1;
  auto& ring = runtime_->ring_;
  const size_t consumer = slave_->consumer_id;

  // The scan may look at most `po_window` entries past the retire base (the
  // paper's lookahead window): a thread whose next entry lies beyond it
  // stalls until other threads consume the in-window entries. Progress is
  // guaranteed for any window >= 1 because the entry at `base` is always the
  // owning thread's next entry. Small windows bound scan cost and memory
  // freshness at the price of TO-like stalls (ablation 5 sweeps this).
  const uint64_t window = runtime_->config_.po_window;
  uint64_t index = slave_->next_index_by_tid[tid].load(std::memory_order_relaxed);
  PartialOrderRuntime::Entry mine;
  for (;;) {
    const uint64_t base_now = slave_->base.load(std::memory_order_acquire);
    if (index < base_now) {
      // Everything below base is consumed — including all of this thread's
      // earlier entries — so its next entry is at or above base. Skipping
      // ahead is therefore lossless, and it keeps the scan out of retired
      // slots the producer may already be reusing.
      index = base_now;
    }
    if (index >= base_now + window) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      // Help retire while stalled: the threads that consumed the in-window
      // entries may already be idle, and the window cannot open until the
      // base advances past their marks.
      runtime_->RetireConsumedPrefix(slave_);
      check_deadline("window");
      waiter.Pause();
      continue;
    }
    PartialOrderRuntime::Entry entry;
    if (!ring.TryRead(consumer, index, &entry)) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      runtime_->RetireConsumedPrefix(slave_);
      check_deadline("scan");
      waiter.Pause();
      continue;
    }
    if (entry.tid == tid) {
      mine = entry;
      break;
    }
    ++index;
  }
  pending_index_[tid] = index;

  // Step 2: wait until every unconsumed earlier entry with the same key has
  // been replayed. This is the window scan the paper describes; it preserves
  // the recorded order between dependent ops only.
  waiter.Reset();
  for (;;) {
    bool blocked = false;
    // base only moves forward; a stale (smaller) value is safe, it only
    // lengthens the scan.
    const uint64_t base = slave_->base.load(std::memory_order_acquire);
    for (uint64_t j = base; j < index; ++j) {
      if (slave_->consumed[j & mask].load(std::memory_order_acquire) == j + 1) {
        continue;  // Already replayed.
      }
      PartialOrderRuntime::Entry other;
      if (!ring.TryRead(consumer, j, &other)) {
        continue;  // Retired concurrently.
      }
      if (other.key == mine.key) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      return;
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    check_deadline("dependence");
    waiter.Pause();
  }
}

void PartialOrderAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    if (runtime_->config_.sharded_recording) {
      auto& shard = *held_shard_[tid];
      PartialOrderRuntime::Entry entry;
      entry.tid = tid;
      entry.key = reinterpret_cast<uint64_t>(addr);
      entry.seq = runtime_->record_shards_.DrawTicket();
      // Dependence edge: the previous op recorded under this shard lock (the
      // chain covers every same-key op, plus benignly-merged collisions).
      entry.prev_seq = shard.extra.last_seq;
      entry.prev_tid = shard.extra.last_tid;
      shard.extra.last_seq = entry.seq;
      shard.extra.last_tid = tid;
      RecordIntoRing(runtime_->thread_rings_.Get(tid), entry, shard, runtime_->control_,
                     runtime_->stats_.shard(stats_variant_, tid));
      return;
    }
    PartialOrderRuntime::Entry entry;
    entry.tid = tid;
    entry.key = reinterpret_cast<uint64_t>(addr);
    // Shared baseline tail (record_shards.h): push inside the lock, so the
    // ring's push order is the recorded order.
    RecordIntoGlobalRing(runtime_->ring_, entry, runtime_->master_lock_,
                         runtime_->control_,
                         runtime_->stats_.shard(stats_variant_, tid));
    return;
  }

  if (runtime_->config_.sharded_recording) {
    runtime_->thread_rings_.Get(tid).Advance(slave_->consumer_id);
    // The release publishes this op's effects to whichever thread acquires
    // the watermark in its dependence wait.
    slave_->consumed_through[tid].next.store(pending_index_[tid] + 1,
                                             std::memory_order_release);
    // Feed the master's po_window gate: one release store; the gated master
    // folds the prefix itself (watermark.h).
    slave_->replay_mark->Mark(pending_index_[tid]);
    runtime_->stats_.shard(stats_variant_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const uint64_t mask = runtime_->config_.buffer_capacity - 1;
  const uint64_t index = pending_index_[tid];
  slave_->consumed[index & mask].store(index + 1, std::memory_order_release);
  slave_->next_index_by_tid[tid].store(index + 1, std::memory_order_relaxed);
  runtime_->stats_.shard(stats_variant_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
  runtime_->RetireConsumedPrefix(slave_);
}

}  // namespace mvee
