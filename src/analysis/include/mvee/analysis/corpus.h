// Synthetic MIR corpus.
//
// The paper's Table 3 reports how many type (i)/(ii)/(iii) sync ops its
// analysis identifies in glibc, libpthread, libgomp, libstdc++ and four
// PARSEC binaries. Those binaries cannot be disassembled here, so the corpus
// generator synthesizes modules whose *identifiable* instruction populations
// match the paper's counts, embedded in non-sync noise the analysis must not
// mark. Running the real two-stage analysis over this corpus regenerates
// Table 3 and simultaneously validates the analysis' precision.

#ifndef MVEE_ANALYSIS_CORPUS_H_
#define MVEE_ANALYSIS_CORPUS_H_

#include <cstdint>
#include <vector>

#include "mvee/analysis/mir.h"

namespace mvee {

struct CorpusSpec {
  const char* module_name;
  size_t type_i;    // LOCK-prefixed RMW sites.
  size_t type_ii;   // XCHG sites.
  size_t type_iii;  // Aliasing aligned load/store sites.
  size_t noise_memops;    // Non-sync loads/stores (must stay unmarked).
  size_t noise_computes;  // Pure computation instructions.
};

// The eight Table 3 rows.
std::vector<CorpusSpec> Table3Specs();

// Builds one synthetic module for `spec` (deterministic given `seed`).
MirModule BuildSyntheticModule(const CorpusSpec& spec, uint64_t seed = 0x7ab1e3);

// All Table 3 modules.
std::vector<MirModule> BuildTable3Corpus();

// Paper Listing 1: an ad-hoc spinlock — LOCK CMPXCHG in spinlock_lock plus a
// plain store in spinlock_unlock that aliases the same variable. Stage 2
// must find the store.
MirModule BuildListing1Module();

// Paper Listing 2: a naive condition variable using only volatile
// loads/stores — invisible to the base analysis, found only with the
// volatile extension.
MirModule BuildListing2Module();

// A module with an _Atomic-qualified variable reaching an inline-assembly
// block — the §4.3.1 hard-error case.
MirModule BuildAsmViolationModule();

// The STL thread-safe refcounting pattern (paper §5.3): heap-allocated
// container nodes whose field 0 is an atomically-updated reference counter
// (LOCK XADD) and whose fields 1..payload_fields hold plain data, accessed
// through statically-known member selects. Field-insensitive points-to marks
// every payload access as type (iii) — "the majority of type (iii)
// instructions that target heap-allocated variables are classified as
// potential aliases" (§4.3.1) — while the field-sensitive analysis keeps
// them unmarked.
struct RefcountHeapCorpus {
  MirModule module;
  size_t real_type_iii = 0;     // Ground truth: refcount-aliasing memops.
  size_t payload_memops = 0;    // Plain data accesses (should stay unmarked).
};
RefcountHeapCorpus BuildRefcountHeapModule(size_t nodes = 8, size_t payload_fields = 4,
                                           size_t accesses_per_field = 3);

// Interprocedural corpus: a ring of worker functions passing a pointer
// parameter around (worker_k calls worker_{k+1}, the last calls the first),
// each seeding the ring with addresses from a shared sync-variable pool.
// The ring's parameter copies form one large cycle through the constraint
// graph — the shape the wave solver's SCC collapse exists for, and the shape
// that makes the textbook worklist solver re-propagate full sets around the
// loop. On top of the ring:
//   - a dispatcher calls workers through function-pointer registers that
//     each hold several function addresses, so callees only resolve via the
//     call-graph / points-to fixpoint;
//   - `escaping_locals` stack objects are RMW'd in their creating worker and
//     passed by address into the next worker (which stores through them) —
//     under an interprocedural analysis they are touched by two functions
//     and must LOSE the kThreadLocal / kNull verdict in
//     DeriveAssignmentPlan;
//   - per-worker private noise objects whose accesses carry "noise:"-
//     prefixed source lines — ground truth for counting spurious type (iii)
//     marks (precision metric);
//   - `conflated_noise` noise objects whose address shares a register with a
//     pool address: Andersen keeps them apart, Steensgaard's unification
//     smears them into the sync class (a measurable precision gap).
struct InterprocSpec {
  const char* module_name = "interproc";
  size_t workers = 8;            // Ring length (call-chain depth).
  size_t pool_size = 32;         // Shared sync-variable pool.
  size_t sites_per_worker = 8;   // Pool addresses seeded + RMW'd per worker.
  size_t alias_regs_per_worker = 4;  // Copies of the ring param.
  size_t memops_per_alias = 2;   // Loads/stores through each copy.
  size_t noise_per_worker = 4;   // Private noise objects per worker.
  size_t conflated_noise = 2;    // Noise objects unification will smear.
  size_t fp_sites = 2;           // Indirect-call dispatch sites.
  size_t fp_fanout = 3;          // Function addresses per dispatch fptr.
  size_t escaping_locals = 2;    // Stack objects passed across the call.
};

struct InterprocCorpus {
  MirModule module;
  size_t noise_memops = 0;  // Ground truth: memops that must stay unmarked.
  // Stack objects whose address escapes into the next worker; their
  // DeriveAssignmentPlan verdict must not be kThreadLocal.
  std::vector<int32_t> escaping_objects;
};

// Deterministic for a given (spec, seed).
InterprocCorpus BuildInterprocModule(const InterprocSpec& spec, uint64_t seed = 0xca11f10);

// The analysis bench's size sweep: ~10k / ~40k / >=100k instruction rows
// (scaled Table-3 analogues; the paper's binaries are this order of size).
std::vector<InterprocSpec> ScaledInterprocSpecs();

}  // namespace mvee

#endif  // MVEE_ANALYSIS_CORPUS_H_
