#include "mvee/agents/sync_agent.h"

#include <string>

#include "mvee/util/variant_killed.h"

namespace mvee {

NullAgent* NullAgent::Instance() {
  static NullAgent instance;
  return &instance;
}

const char* AgentKindName(AgentKind kind) {
  switch (kind) {
    case AgentKind::kNull:
      return "null";
    case AgentKind::kTotalOrder:
      return "total-order";
    case AgentKind::kPartialOrder:
      return "partial-order";
    case AgentKind::kWallOfClocks:
      return "wall-of-clocks";
    case AgentKind::kPerVariableOrder:
      return "per-variable-order";
  }
  return "unknown";
}

void CheckTidBound(uint32_t tid, uint32_t max_threads, const AgentControl& control,
                   const char* agent_name) {
  if (tid < max_threads) [[likely]] {
    return;
  }
  if (control.on_stall) {
    control.on_stall(std::string(agent_name) + ": logical tid " + std::to_string(tid) +
                     " exceeds AgentConfig::max_threads = " + std::to_string(max_threads) +
                     " (raise max_threads for this workload)");
  }
  throw VariantKilled{};
}

}  // namespace mvee
