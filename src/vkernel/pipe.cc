#include "mvee/vkernel/pipe.h"

#include <algorithm>
#include <cerrno>

namespace mvee {

int64_t VPipe::Read(uint8_t* out, uint64_t size) {
  uint64_t n = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    readable_.wait(lock, [&] { return !buffer_.empty() || write_closed_; });
    if (buffer_.empty()) {
      return 0;  // EOF.
    }
    n = std::min<uint64_t>(size, buffer_.size());
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = buffer_.front();
      buffer_.pop_front();
    }
    writable_.notify_all();
  }
  waitq_.Notify();  // Space freed: writers polling for kOut.
  return static_cast<int64_t>(n);
}

int64_t VPipe::Write(const uint8_t* data, uint64_t size) {
  uint64_t written = 0;
  while (written < size) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      writable_.wait(lock, [&] { return buffer_.size() < capacity_ || read_closed_; });
      if (read_closed_) {
        return written > 0 ? static_cast<int64_t>(written) : -EPIPE;
      }
      const uint64_t room = capacity_ - buffer_.size();
      const uint64_t n = std::min(room, size - written);
      buffer_.insert(buffer_.end(), data + written, data + written + n);
      written += n;
      readable_.notify_all();
    }
    waitq_.Notify();  // Data available: readers parked in poll.
  }
  return static_cast<int64_t>(written);
}

void VPipe::CloseWriteEnd() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    write_closed_ = true;
    readable_.notify_all();
  }
  waitq_.Notify();
}

void VPipe::CloseReadEnd() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    read_closed_ = true;
    writable_.notify_all();
  }
  waitq_.Notify();
}

bool VPipe::write_closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_closed_;
}

size_t VPipe::BytesBuffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.size();
}

}  // namespace mvee
