#include "mvee/analysis/points_to.h"

#include <algorithm>

namespace mvee {

PointsToAnalysis::PointsToAnalysis(const MirModule& module) {
  stats_.solver = "steensgaard";
  reg_count_ = module.register_count;
  object_count_ = static_cast<int32_t>(module.objects.size());
  const int32_t node_count = reg_count_ + object_count_;
  parent_.resize(node_count);
  for (int32_t i = 0; i < node_count; ++i) {
    parent_[i] = i;
  }
  successor_.assign(node_count, -1);

  // Function objects, for indirect-call target resolution (there are few:
  // scanning them per site per pass is cheap).
  std::vector<int32_t> function_objects;
  for (int32_t obj = 0; obj < object_count_; ++obj) {
    if (module.objects[obj].function_index >= 0) {
      function_objects.push_back(obj);
    }
  }

  // Binds a call site to `callee`: unify args with params, return with dst.
  auto unify_call = [&](int32_t callee, int32_t dst, const std::vector<int32_t>& args) {
    if (callee < 0 || static_cast<size_t>(callee) >= module.functions.size()) {
      return;
    }
    ++stats_.call_edges_resolved;
    const MirFunction& target = module.functions[callee];
    const size_t bound = std::min(args.size(), target.params.size());
    for (size_t i = 0; i < bound; ++i) {
      if (args[i] >= 0) {
        UnifySuccessors(target.params[i], args[i]);
        ++stats_.copy_edges;
      }
    }
    if (dst >= 0 && target.return_reg >= 0) {
      UnifySuccessors(dst, target.return_reg);
      ++stats_.copy_edges;
    }
  };

  // Intraprocedural constraints and direct calls are solved online by
  // unification (each operation maintains the invariant that every class
  // has at most one successor class). Indirect calls need the outer
  // fixpoint below: resolving one can grow a pointee class, which can
  // reveal new callees at another site.
  struct IndirectSite {
    const MirInst* inst;
    std::set<int32_t> resolved;  // Callee function indices already bound.
  };
  std::vector<IndirectSite> indirect_sites;

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc: {
          // dst may point to object: unify succ(dst) with the object class.
          ++stats_.constraints;
          const int32_t object_node = reg_count_ + inst.object;
          const int32_t succ = SuccessorOf(inst.dst);
          Union(succ, object_node);
          break;
        }
        case MirOp::kMov:
        case MirOp::kGep: {
          // dst = src (field-insensitive): unify successors.
          ++stats_.constraints;
          ++stats_.copy_edges;
          UnifySuccessors(inst.dst, inst.src);
          break;
        }
        case MirOp::kCall: {
          ++stats_.constraints;
          const int32_t callee = (inst.object >= 0 &&
                                  static_cast<size_t>(inst.object) < module.objects.size())
                                     ? module.objects[inst.object].function_index
                                     : -1;
          unify_call(callee, inst.dst, inst.args);
          break;
        }
        case MirOp::kIndirectCall:
          ++stats_.constraints;
          indirect_sites.push_back({&inst, {}});
          break;
        default:
          break;
      }
    }
  }

  // Indirect-call fixpoint.
  bool changed = !indirect_sites.empty();
  while (changed) {
    changed = false;
    for (IndirectSite& site : indirect_sites) {
      const int32_t pointee_class = PointeeClassOf(site.inst->ptr);
      if (pointee_class == -1) {
        continue;
      }
      for (int32_t obj : function_objects) {
        if (Find(reg_count_ + obj) != Find(pointee_class)) {
          continue;
        }
        const int32_t callee = module.objects[obj].function_index;
        if (!site.resolved.insert(callee).second) {
          continue;
        }
        unify_call(callee, site.inst->dst, site.inst->args);
        changed = true;
      }
    }
  }

  BuildMemberIndex(module);
}

int32_t PointsToAnalysis::Find(int32_t node) const {
  while (parent_[node] != node) {
    parent_[node] = parent_[parent_[node]];
    node = parent_[node];
  }
  return node;
}

void PointsToAnalysis::Union(int32_t a, int32_t b) {
  const int32_t root_a = Find(a);
  const int32_t root_b = Find(b);
  if (root_a == root_b) {
    return;
  }
  ++stats_.solver_iterations;
  ++stats_.sccs_collapsed;
  parent_[root_b] = root_a;
  // Merge successors: if both classes had one, those must unify too
  // (recursive join — the heart of Steensgaard's near-linear algorithm).
  const int32_t succ_a = successor_[root_a];
  const int32_t succ_b = successor_[root_b];
  if (succ_b != -1) {
    if (succ_a == -1) {
      successor_[root_a] = succ_b;
    } else {
      Union(succ_a, succ_b);
    }
  }
}

int32_t PointsToAnalysis::SuccessorOf(int32_t node) {
  const int32_t root = Find(node);
  if (successor_[root] == -1) {
    // No successor yet: grow the universe with a fresh synthetic class so
    // later unifications have a concrete node to merge with. Synthetic
    // nodes never appear in the member index, so they cannot leak into
    // query results.
    parent_.push_back(static_cast<int32_t>(parent_.size()));
    successor_.push_back(-1);
    successor_[root] = static_cast<int32_t>(parent_.size() - 1);
  }
  return successor_[Find(node)];
}

void PointsToAnalysis::UnifySuccessors(int32_t a, int32_t b) {
  const int32_t succ_a = SuccessorOf(a);
  const int32_t succ_b = SuccessorOf(b);
  Union(succ_a, succ_b);
}

int32_t PointsToAnalysis::PointeeClassOf(int32_t reg) const {
  if (reg < 0 || reg >= reg_count_) {
    return -1;
  }
  const int32_t succ = successor_[Find(reg)];
  return succ == -1 ? -1 : Find(succ);
}

void PointsToAnalysis::BuildMemberIndex(const MirModule& module) {
  (void)module;
  for (int32_t obj = 0; obj < object_count_; ++obj) {
    class_members_[Find(reg_count_ + obj)].push_back(obj);
  }
  for (auto& [root, members] : class_members_) {
    std::sort(members.begin(), members.end());
    stats_.points_to_bytes += sizeof(int32_t) * members.capacity() + sizeof(root);
  }
  stats_.points_to_bytes += sizeof(int32_t) * (parent_.capacity() + successor_.capacity());
}

std::set<int32_t> PointsToAnalysis::PointsTo(int32_t reg) const {
  std::set<int32_t> result;
  const int32_t pointee_class = PointeeClassOf(reg);
  if (pointee_class == -1) {
    return result;
  }
  const auto it = class_members_.find(pointee_class);
  if (it == class_members_.end()) {
    return result;
  }
  result.insert(it->second.begin(), it->second.end());
  return result;
}

bool PointsToAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  if (reg_a < 0 || reg_b < 0) {
    return false;
  }
  const int32_t succ_a = successor_[Find(reg_a)];
  const int32_t succ_b = successor_[Find(reg_b)];
  if (succ_a == -1 || succ_b == -1) {
    return false;
  }
  return Find(succ_a) == Find(succ_b);
}

bool PointsToAnalysis::MayPointInto(int32_t reg, const std::set<int32_t>& objects) const {
  const int32_t pointee_class = PointeeClassOf(reg);
  if (pointee_class == -1) {
    return false;
  }
  const auto it = class_members_.find(pointee_class);
  if (it == class_members_.end()) {
    return false;
  }
  for (int32_t obj : it->second) {
    if (objects.count(obj) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace mvee
