#include "mvee/agents/total_order.h"

#include <chrono>
#include <string>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

TotalOrderRuntime::TotalOrderRuntime(const AgentConfig& config, AgentControl control)
    : config_(ValidatedAgentConfig(config)),
      control_(std::move(control)),
      // The baseline global ring is only populated when sharded recording is
      // off; shrink whichever side is idle so a runtime never pays for both.
      ring_(config_.sharded_recording ? 2 : config_.buffer_capacity),
      record_shards_(config_.sharded_recording, config_.record_shard_count),
      thread_rings_(config_.sharded_recording, config_),
      replay_fronts_(config_.num_variants > 0 ? config_.num_variants - 1 : 0) {
  ring_.EnableCursorCaching(config_.cached_ring_cursors);
  // One consumer cursor per slave variant. All threads of a slave variant
  // share one cursor: the total order is variant-global.
  consumer_ids_.resize(config_.num_variants, 0);
  for (uint32_t v = 1; v < config_.num_variants; ++v) {
    consumer_ids_[v] = ring_.RegisterConsumer();
  }
}

void TotalOrderRuntime::DetachVariant(uint32_t variant) {
  if (variant == 0 || variant >= config_.num_variants) {
    return;
  }
  // Consumer v-1 belongs to slave variant v in both the baseline global ring
  // and every per-thread recording ring.
  ring_.DetachConsumer(consumer_ids_[variant]);
  if (thread_rings_.enabled()) {
    thread_rings_.DetachConsumer(variant - 1);
  }
}

std::unique_ptr<SyncAgent> TotalOrderRuntime::CreateAgent(uint32_t variant_index) {
  const AgentRole role = variant_index == 0 ? AgentRole::kMaster : AgentRole::kSlave;
  return std::make_unique<TotalOrderAgent>(this, role, consumer_ids_[variant_index]);
}

TotalOrderAgent::TotalOrderAgent(TotalOrderRuntime* runtime, AgentRole role, size_t consumer_id)
    : runtime_(runtime),
      role_(role),
      consumer_id_(consumer_id),
      stats_variant_(role == AgentRole::kMaster ? 0
                                                : static_cast<uint32_t>(consumer_id) + 1),
      pending_seq_(runtime->config_.max_threads, 0),
      held_shard_(runtime->config_.max_threads, nullptr) {}

void TotalOrderAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;  // Teardown: no second throw from destructor-driven sync ops.
  }
  CheckTidBound(tid, runtime_->config_.max_threads, runtime_->control_, name());
  if (role_ == AgentRole::kMaster) {
    if (runtime_->config_.sharded_recording) {
      // Per-variable shard lock held across (op + ticket + push): conflicting
      // ops serialize here — and only here — so the ticket order drawn in
      // AfterSyncOp is a linear extension of the conflict order, which is
      // all the slaves need (docs/DESIGN.md §8). Independent ops proceed in
      // parallel; the global master lock is gone from the hot path.
      held_shard_[tid] = &runtime_->record_shards_.Acquire(
          addr, runtime_->control_, runtime_->stats_.shard(stats_variant_, tid));
      return;
    }
    // Global instrumentation lock held across the sync op (shared baseline
    // helper in record_shards.h; rationale documented there).
    AcquireGlobalRecordLock(runtime_->master_lock_, runtime_->control_,
                            runtime_->stats_.shard(stats_variant_, tid));
    return;
  }

  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;

  if (runtime_->config_.sharded_recording) {
    // Slave merge (docs/DESIGN.md §8): thread t's next op is its own ring's
    // front (master thread t produced exactly this thread's entries, in
    // order), and the per-variant next_seq ratchet admits the one entry
    // whose global sequence is next. Together the per-thread fronts plus
    // the ratchet ARE the deterministic merge of the per-thread rings.
    auto& ring = runtime_->thread_rings_.Get(tid);
    TotalOrderRuntime::Entry entry;
    while (!ring.Peek(consumer_id_, 0, &entry)) {
      if (runtime_->control_.should_unwind(stats_variant_)) {
        throw VariantKilled{};
      }
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      if (deadline.Expired(waiter)) {
        if (runtime_->control_.on_stall) {
          runtime_->control_.on_stall("total-order replay deadline (no entry, tid " +
                                      std::to_string(tid) + ")");
        }
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    auto& front = runtime_->replay_fronts_[consumer_id_].next_seq;
    waiter.Reset();
    while (front.load(std::memory_order_acquire) != entry.seq) {
      if (runtime_->control_.should_unwind(stats_variant_)) {
        throw VariantKilled{};
      }
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      if (deadline.Expired(waiter)) {
        if (runtime_->control_.on_stall) {
          runtime_->control_.on_stall("total-order replay deadline (seq " +
                                      std::to_string(entry.seq) + " waiting on " +
                                      std::to_string(front.load()) + ", tid " +
                                      std::to_string(tid) + ")");
        }
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    pending_seq_[tid] = entry.seq;
    return;
  }

  // Baseline slave: stall until the front of the global buffer names this
  // thread. Only the named thread advances the cursor, so concurrent peeks
  // are safe.
  for (;;) {
    if (runtime_->control_.should_unwind(stats_variant_)) {
      throw VariantKilled{};
    }
    TotalOrderRuntime::Entry entry;
    if (runtime_->ring_.Peek(consumer_id_, 0, &entry) && entry.tid == tid) {
      return;
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall("total-order replay deadline exceeded (tid " +
                                    std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

void TotalOrderAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;  // The shard was resolved (and locked) in BeforeSyncOp.
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    if (runtime_->config_.sharded_recording) {
      // Ticket and push both stay inside the shard lock. The ticket gives
      // conflicting ops sequences in conflict order; the push-before-unlock
      // chains ring publications of conflicting ops, so a slave that sees a
      // later conflicting entry is guaranteed to also see every earlier one
      // (the §8 visibility argument the PO dependence wait relies on).
      const TotalOrderRuntime::Entry entry{tid, runtime_->record_shards_.DrawTicket()};
      RecordIntoRing(runtime_->thread_rings_.Get(tid), entry, *held_shard_[tid],
                     runtime_->control_, runtime_->stats_.shard(stats_variant_, tid));
      return;
    }
    // Shared baseline tail (record_shards.h): the push stays inside the
    // instrumentation lock, so the ring's push order *is* the recorded order.
    RecordIntoGlobalRing(runtime_->ring_, TotalOrderRuntime::Entry{tid, 0},
                         runtime_->master_lock_, runtime_->control_,
                         runtime_->stats_.shard(stats_variant_, tid));
    return;
  }

  if (runtime_->config_.sharded_recording) {
    runtime_->thread_rings_.Get(tid).Advance(consumer_id_);
    // Release the ratchet: hands this op's effects to whichever thread owns
    // the next sequence (its acquire load in BeforeSyncOp pairs with this).
    runtime_->replay_fronts_[consumer_id_].next_seq.store(pending_seq_[tid] + 1,
                                                          std::memory_order_release);
  } else {
    runtime_->ring_.Advance(consumer_id_);
  }
  runtime_->stats_.shard(stats_variant_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mvee
