// mvee_run: command-line driver for the MVEE.
//
//   $ ./mvee_run                                 # list workloads
//   $ ./mvee_run dedup                           # defaults: woc, 2 variants
//   $ ./mvee_run radiosity --agent=to --variants=4 --scale=0.1
//   $ ./mvee_run barnes --agent=pvo --policy=sensitive --loose --no-aslr
//
// Runs one PARSEC/SPLASH benchmark stand-in natively and under the MVEE
// with the requested configuration, then prints a one-run report: wall
// times, overhead factor, syscall/sync-op counters, and the divergence
// verdict. The whole public surface of the library in ~150 lines.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/util/log.h"
#include "mvee/workloads/workload.h"

using namespace mvee;

namespace {

void PrintUsageAndWorkloads() {
  std::printf(
      "usage: mvee_run <workload> [options]\n"
      "  --agent=to|po|woc|pvo|null   replication agent (default woc)\n"
      "  --variants=N                 2-4 variants (default 2)\n"
      "  --scale=F                    workload scale factor (default 0.05)\n"
      "  --policy=all|sensitive       lockstep comparison policy (default all)\n"
      "  --loose                      VARAN-style loose sync model\n"
      "  --no-aslr                    disable simulated ASLR\n"
      "  --dcl                        disjoint code layouts\n"
      "  --seed=N                     diversity/kernel seed\n\n"
      "workloads:\n");
  for (const WorkloadConfig& config : AllWorkloads()) {
    std::printf("  %-16s %-7s %-14s paper: %6.1fs, %7.2fK syscalls/s, %9.2fK sync ops/s\n",
                config.name, config.suite, WorkloadShapeName(config.shape),
                config.paper_runtime_sec, config.paper_syscall_rate_k,
                config.paper_sync_rate_k);
  }
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  if (argc < 2) {
    PrintUsageAndWorkloads();
    return 1;
  }
  const WorkloadConfig* workload = FindWorkload(argv[1]);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n\n", argv[1]);
    PrintUsageAndWorkloads();
    return 1;
  }

  MveeOptions options;
  double scale = 0.05;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--agent", &value)) {
      if (value == "to") {
        options.agent = AgentKind::kTotalOrder;
      } else if (value == "po") {
        options.agent = AgentKind::kPartialOrder;
      } else if (value == "woc") {
        options.agent = AgentKind::kWallOfClocks;
      } else if (value == "pvo") {
        options.agent = AgentKind::kPerVariableOrder;
      } else if (value == "null") {
        options.agent = AgentKind::kNull;
      } else {
        std::fprintf(stderr, "unknown agent '%s'\n", value.c_str());
        return 1;
      }
    } else if (ParseFlag(argv[i], "--variants", &value)) {
      options.num_variants = static_cast<uint32_t>(std::atoi(value.c_str()));
      if (options.num_variants < 2 || options.num_variants > 4) {
        std::fprintf(stderr, "--variants must be 2-4\n");
        return 1;
      }
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      scale = std::atof(value.c_str());
      if (scale <= 0) {
        std::fprintf(stderr, "--scale must be > 0\n");
        return 1;
      }
    } else if (ParseFlag(argv[i], "--policy", &value)) {
      options.policy = value == "sensitive" ? MonitorPolicy::kLockstepSensitive
                                            : MonitorPolicy::kLockstepAll;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(argv[i], "--loose") == 0) {
      options.sync_model = SyncModel::kLoose;
    } else if (std::strcmp(argv[i], "--no-aslr") == 0) {
      options.enable_aslr = false;
    } else if (std::strcmp(argv[i], "--dcl") == 0) {
      options.enable_dcl = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 1;
    }
  }
  options.rendezvous_timeout = std::chrono::milliseconds(120000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(120000);

  // Native baseline.
  std::printf("workload %s (%s, %s shape), scale %.3f\n", workload->name, workload->suite,
              WorkloadShapeName(workload->shape), scale);
  NativeRunner native;
  const auto native_start = std::chrono::steady_clock::now();
  if (!native.Run(MakeWorkloadProgram(*workload, scale)).ok()) {
    std::fprintf(stderr, "native run failed\n");
    return 1;
  }
  const double native_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - native_start).count();
  std::printf("native: %.3fs\n", native_seconds);

  // MVEE run.
  Mvee mvee(options);
  const Status status = mvee.Run(MakeWorkloadProgram(*workload, scale));
  const MveeReport& report = mvee.report();
  std::printf("mvee (%u variants, %s agent, %s policy, %s model): %.3fs (%.2fx native)\n",
              options.num_variants, AgentKindName(options.agent),
              options.policy == MonitorPolicy::kLockstepAll ? "all" : "sensitive",
              options.sync_model == SyncModel::kLockstep ? "lockstep" : "loose",
              report.wall_seconds,
              native_seconds > 0 ? report.wall_seconds / native_seconds : 0.0);
  std::printf("  syscalls: %llu replicated, %llu ordered, %llu local\n",
              (unsigned long long)report.syscalls.replicated,
              (unsigned long long)report.syscalls.ordered,
              (unsigned long long)report.syscalls.local);
  std::printf("  sync ops: %llu recorded, %llu replayed, %llu replay stalls\n",
              (unsigned long long)report.sync_ops_recorded,
              (unsigned long long)report.sync_ops_replayed,
              (unsigned long long)report.replay_stalls);
  if (status.ok()) {
    std::printf("verdict: no divergence\n");
    return 0;
  }
  std::printf("verdict: %s — %s\n", status.ToString().c_str(),
              report.divergence_detail.c_str());
  return 2;
}
