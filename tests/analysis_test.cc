// Tests for the sync-op identification pipeline (paper §4.3): the MIR
// builder, Steensgaard points-to, the two-stage analysis (incl. the Listing
// 1 / Listing 2 behaviours the paper discusses), the volatile extension, the
// _Atomic qualifier checker, and the Table 3 corpus regeneration.

#include <gtest/gtest.h>

#include "mvee/analysis/atomic_check.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/field_sensitive.h"
#include "mvee/analysis/points_to.h"
#include "mvee/analysis/syncop_analysis.h"

namespace mvee {
namespace {

TEST(PointsToTest, AddrOfEstablishesPointsTo) {
  MirBuilder builder("m");
  const int32_t obj = builder.Object("x");
  const int32_t reg = builder.Reg();
  builder.AddrOf(reg, obj);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_EQ(analysis.PointsTo(reg), std::set<int32_t>{obj});
}

TEST(PointsToTest, CopyPropagates) {
  MirBuilder builder("m");
  const int32_t obj = builder.Object("x");
  const int32_t a = builder.Reg();
  const int32_t b = builder.Reg();
  const int32_t c = builder.Reg();
  builder.AddrOf(a, obj).Mov(b, a).Gep(c, b);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_TRUE(analysis.MayAlias(a, b));
  EXPECT_TRUE(analysis.MayAlias(a, c));
  EXPECT_EQ(analysis.PointsTo(c), std::set<int32_t>{obj});
}

TEST(PointsToTest, DisjointPointersDoNotAlias) {
  MirBuilder builder("m");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, x).AddrOf(q, y);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_FALSE(analysis.MayAlias(p, q));
}

TEST(PointsToTest, UnificationMergesOnDoubleAssignment) {
  // Steensgaard is unification-based: p = &x; p = &y makes {x,y} one class,
  // so q = &x aliases p even through y. This is the over-approximation the
  // paper observed with DSA.
  MirBuilder builder("m");
  const int32_t x = builder.Object("x");
  const int32_t y = builder.Object("y");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, x).AddrOf(p, y).AddrOf(q, y);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_TRUE(analysis.MayAlias(p, q));
  EXPECT_EQ(analysis.PointsTo(p).size(), 2u);
}

TEST(PointsToTest, HeapObjectsTracked) {
  MirBuilder builder("m");
  const int32_t heap = builder.Object("h", MirStorage::kHeap);
  const int32_t p = builder.Reg();
  builder.Alloc(p, heap);
  PointsToAnalysis analysis(builder.Build());
  EXPECT_EQ(analysis.PointsTo(p), std::set<int32_t>{heap});
}

TEST(SyncOpAnalysisTest, Listing1SpinlockFindsUnlockStore) {
  // The paper's worked example: the LOCK CMPXCHG in spinlock_lock is a
  // stage-1 sync op; the plain store in spinlock_unlock aliases the same
  // variable and must be marked in stage 2.
  const SyncOpReport report = IdentifySyncOps(BuildListing1Module());
  EXPECT_EQ(report.type_i.size(), 1u);
  EXPECT_EQ(report.type_ii.size(), 0u);
  ASSERT_EQ(report.type_iii.size(), 1u);
  EXPECT_EQ(report.type_iii[0].function, "spinlock_unlock");
  EXPECT_EQ(report.type_iii[0].source_line, "listing1.c:9");
  // The bystander store stays unmarked.
  EXPECT_EQ(report.unmarked_memops, 1u);
}

TEST(SyncOpAnalysisTest, Listing2CondvarMissedWithoutVolatile) {
  // The documented limitation (§4.3): load/store-only primitives are
  // invisible to the base analysis.
  const SyncOpReport report = IdentifySyncOps(BuildListing2Module());
  EXPECT_EQ(report.TotalSyncOps(), 0u);
  EXPECT_EQ(report.unmarked_memops, 2u);
}

TEST(SyncOpAnalysisTest, Listing2CondvarFoundWithVolatileExtension) {
  SyncOpAnalysisOptions options;
  options.treat_volatile_as_sync = true;
  const SyncOpReport report = IdentifySyncOps(BuildListing2Module(), options);
  EXPECT_EQ(report.type_iii.size(), 2u);  // The flag's store and load.
  EXPECT_EQ(report.unmarked_memops, 0u);
}

TEST(SyncOpAnalysisTest, NoisePrecision) {
  // A module with only private memory traffic: nothing may be marked.
  MirBuilder builder("quiet");
  for (int i = 0; i < 50; ++i) {
    const int32_t obj = builder.Object("v" + std::to_string(i), MirStorage::kStack);
    const int32_t reg = builder.Reg();
    builder.AddrOf(reg, obj).Load(reg).Store(reg);
  }
  const SyncOpReport report = IdentifySyncOps(builder.Build());
  EXPECT_EQ(report.TotalSyncOps(), 0u);
  EXPECT_EQ(report.unmarked_memops, 100u);
}

class Table3Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Table3Test, CorpusRowMatchesPaperCounts) {
  const auto specs = Table3Specs();
  const CorpusSpec& spec = specs[GetParam()];
  const SyncOpReport report = IdentifySyncOps(BuildSyntheticModule(spec));
  EXPECT_EQ(report.type_i.size(), spec.type_i) << spec.module_name;
  EXPECT_EQ(report.type_ii.size(), spec.type_ii) << spec.module_name;
  EXPECT_EQ(report.type_iii.size(), spec.type_iii) << spec.module_name;
  // Precision: every noise memop stays unmarked.
  EXPECT_EQ(report.unmarked_memops, spec.noise_memops) << spec.module_name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3Test, ::testing::Range<size_t>(0, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string name = Table3Specs()[info.param].module_name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Table3FormatTest, RendersAllRows) {
  std::vector<SyncOpReport> reports;
  for (const auto& module : BuildTable3Corpus()) {
    reports.push_back(IdentifySyncOps(module));
  }
  const std::string table = FormatTable3(reports);
  EXPECT_NE(table.find("libc-2.19.so"), std::string::npos);
  EXPECT_NE(table.find("319"), std::string::npos);  // libc type (i) count.
  EXPECT_NE(table.find("409"), std::string::npos);  // libc type (ii) count.
}

TEST(AtomicCheckTest, CleanModuleHasNoDiagnostics) {
  MirBuilder builder("clean");
  const int32_t obj = builder.Object("lock", MirStorage::kGlobal, false,
                                     /*atomic_qualified=*/true);
  const int32_t p = builder.Reg();
  builder.AddrOf(p, obj).LockRmw(p);
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {p});
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(AtomicCheckTest, DiscardingQualifierIsError) {
  MirBuilder builder("discard");
  const int32_t obj = builder.Object("lock", MirStorage::kGlobal, false, true);
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, obj).Mov(q, p, "cast.c:7");
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {p});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].kind, AtomicDiagnostic::Kind::kErrorCastFromAtomic);
  EXPECT_EQ(result.diagnostics[0].source_line, "cast.c:7");
  EXPECT_TRUE(result.HasErrors());
}

TEST(AtomicCheckTest, AddingQualifierIsWarning) {
  MirBuilder builder("add");
  const int32_t obj = builder.Object("plain");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, obj).Mov(q, p, "cast.c:9");
  const AtomicCheckResult result = CheckAtomicQualifiers(builder.Build(), {q});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].kind, AtomicDiagnostic::Kind::kWarningCastToAtomic);
  EXPECT_FALSE(result.HasErrors());
}

TEST(AtomicCheckTest, AsmUseIsHardError) {
  const MirModule module = BuildAsmViolationModule();
  PropagationResult result = PropagateQualifiers(module, {0});
  ASSERT_EQ(result.hard_errors.size(), 1u);
  EXPECT_EQ(result.hard_errors[0].kind, AtomicDiagnostic::Kind::kErrorAtomicInAsm);
}

TEST(AtomicCheckTest, PropagationReachesFixpoint) {
  // A chain lock -> p0 -> p1 -> p2 plus an upstream source feeding p1: the
  // fixpoint must qualify every register in the def-use web.
  MirBuilder builder("chain");
  const int32_t lock = builder.Object("lock");
  const int32_t p0 = builder.Reg();
  const int32_t p1 = builder.Reg();
  const int32_t p2 = builder.Reg();
  const int32_t upstream = builder.Reg();
  builder.AddrOf(p0, lock).Mov(p1, p0).Mov(p2, p1).Mov(p1, upstream);
  const PropagationResult result = PropagateQualifiers(builder.Build(), {lock});
  EXPECT_EQ(result.qualified_regs.size(), 4u);  // p0, p1, p2, upstream.
  EXPECT_GE(result.iterations, 2);              // Needed more than one "compile".
  EXPECT_TRUE(result.hard_errors.empty());
}

TEST(AtomicCheckTest, UnrelatedPointersStayUnqualified) {
  MirBuilder builder("unrelated");
  const int32_t lock = builder.Object("lock");
  const int32_t other = builder.Object("other");
  const int32_t p = builder.Reg();
  const int32_t q = builder.Reg();
  builder.AddrOf(p, lock).AddrOf(q, other);
  const PropagationResult result = PropagateQualifiers(builder.Build(), {lock});
  EXPECT_EQ(result.qualified_regs.count(p), 1u);
  EXPECT_EQ(result.qualified_regs.count(q), 0u);
}

TEST(MirTest, BuilderProducesWellFormedModule) {
  MirBuilder builder("wf");
  const int32_t obj = builder.Object("x");
  const int32_t reg = builder.Reg();
  builder.Function("f");
  builder.AddrOf(reg, obj).LockRmw(reg).Compute();
  const MirModule module = builder.Build();
  EXPECT_EQ(module.name, "wf");
  EXPECT_EQ(module.functions.size(), 1u);
  EXPECT_EQ(module.InstructionCount(), 3u);
  EXPECT_EQ(module.register_count, 1);
}

// --- Field-sensitive analysis (§4.3.1's missing piece) ---

TEST(FieldSensitiveTest, DistinctFieldsDoNotAlias) {
  MirBuilder builder("m");
  const int32_t node = builder.Object("node", MirStorage::kHeap);
  const int32_t base = builder.Reg();
  const int32_t refcount = builder.Reg();
  const int32_t payload = builder.Reg();
  builder.Function("f");
  builder.Alloc(base, node)
      .GepField(refcount, base, 0)
      .GepField(payload, base, 1);
  FieldSensitiveAnalysis analysis(builder.Build());
  EXPECT_FALSE(analysis.MayAlias(refcount, payload));
  EXPECT_TRUE(analysis.MayAlias(base, refcount)) << "base covers field 0";
}

TEST(FieldSensitiveTest, OpaqueArithmeticSmearToAnyField) {
  MirBuilder builder("m");
  const int32_t node = builder.Object("node", MirStorage::kHeap);
  const int32_t base = builder.Reg();
  const int32_t anywhere = builder.Reg();
  const int32_t payload = builder.Reg();
  builder.Function("f");
  builder.Alloc(base, node)
      .Gep(anywhere, base)  // Opaque pointer arithmetic: field unknown.
      .GepField(payload, base, 3);
  FieldSensitiveAnalysis analysis(builder.Build());
  // The SVF conservatism the paper observed: arithmetic forfeits precision.
  EXPECT_TRUE(analysis.MayAlias(anywhere, payload));
}

TEST(FieldSensitiveTest, LocsMayAliasSemantics) {
  EXPECT_TRUE(LocsMayAlias({1, 0}, {1, 0}));
  EXPECT_FALSE(LocsMayAlias({1, 0}, {1, 1}));
  EXPECT_FALSE(LocsMayAlias({1, 0}, {2, 0}));
  EXPECT_TRUE(LocsMayAlias({1, FieldLoc::kAnyField}, {1, 7}));
  EXPECT_TRUE(LocsMayAlias({1, 7}, {1, FieldLoc::kAnyField}));
}

TEST(FieldSensitiveTest, RefcountPatternKeepsPayloadUnmarked) {
  const RefcountHeapCorpus corpus = BuildRefcountHeapModule();

  // Field-insensitive (Andersen / SVF-as-queryable, §4.3.1): every payload
  // access aliases the locked object => spurious type (iii) marks.
  const SyncOpReport flat = IdentifySyncOpsAndersen(corpus.module);
  EXPECT_EQ(flat.type_iii.size(), corpus.real_type_iii + corpus.payload_memops)
      << "field-insensitive analysis must over-mark the heap payload";

  // Field-sensitive: only the genuine refcount reloads are marked.
  const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(corpus.module);
  EXPECT_EQ(sensitive.type_iii.size(), corpus.real_type_iii);
  EXPECT_EQ(sensitive.unmarked_memops, corpus.payload_memops);
  EXPECT_EQ(sensitive.type_i.size(), flat.type_i.size()) << "stage 1 is unchanged";
}

TEST(FieldSensitiveTest, AgreesWithAndersenOnFieldFreeModules) {
  // On Listing 1 (no aggregates) field sensitivity must change nothing.
  const MirModule module = BuildListing1Module();
  const SyncOpReport flat = IdentifySyncOpsAndersen(module);
  const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(module);
  EXPECT_EQ(sensitive.type_i.size(), flat.type_i.size());
  EXPECT_EQ(sensitive.type_ii.size(), flat.type_ii.size());
  EXPECT_EQ(sensitive.type_iii.size(), flat.type_iii.size());
  EXPECT_EQ(sensitive.unmarked_memops, flat.unmarked_memops);
}

TEST(FieldSensitiveTest, VolatileExtensionCoversWholeObject) {
  const MirModule module = BuildListing2Module();
  SyncOpAnalysisOptions options;
  options.treat_volatile_as_sync = true;
  const SyncOpReport report = IdentifySyncOpsFieldSensitive(module, options);
  // Both the store and the load on the volatile flag are found.
  EXPECT_EQ(report.type_iii.size(), 2u);
}

// --- §4.3.1 checker improvements ---

TEST(AtomicCheckImprovementsTest, AutoVolatileQualifiesListing2) {
  const MirModule module = BuildListing2Module();
  // Without improvement 1 there is nothing to seed from: stage 1 finds no
  // atomics in Listing 2, so propagation qualifies nothing.
  const PropagationResult plain = PropagateQualifiers(module, {});
  EXPECT_TRUE(plain.qualified_objects.empty());
  EXPECT_TRUE(plain.qualified_regs.empty());

  AtomicCheckOptions options;
  options.auto_qualify_volatile = true;
  const PropagationResult improved = PropagateQualifiers(module, {}, options);
  EXPECT_EQ(improved.qualified_objects.size(), 1u) << "the volatile flag";
  EXPECT_EQ(improved.qualified_regs.size(), 2u) << "both pointers to it";
  EXPECT_TRUE(improved.hard_errors.empty());
}

TEST(AtomicCheckImprovementsTest, AnalyzableAsmIsPermitted) {
  MirBuilder builder("analyzable_asm");
  const int32_t var = builder.Object("lock", MirStorage::kGlobal);
  builder.Function("f");
  const int32_t pointer = builder.Reg();
  builder.AddrOf(pointer, var, "a.c:1");
  builder.AsmBlockAnalyzable(pointer, "a.c:2");
  const MirModule module = builder.Build();

  // Improvement 3 off: the qualified pointer in asm is a hard error.
  const PropagationResult strict = PropagateQualifiers(module, {var});
  ASSERT_EQ(strict.hard_errors.size(), 1u);
  EXPECT_EQ(strict.hard_errors[0].kind, AtomicDiagnostic::Kind::kErrorAtomicInAsm);

  // Improvement 3 on: the easy-to-analyze block is accepted.
  AtomicCheckOptions options;
  options.permit_analyzable_asm = true;
  const PropagationResult relaxed = PropagateQualifiers(module, {var}, options);
  EXPECT_TRUE(relaxed.hard_errors.empty());
}

TEST(AtomicCheckImprovementsTest, OpaqueAsmStillRejected) {
  // BuildAsmViolationModule uses a plain AsmBlock: improvement 3 must not
  // exempt it.
  const MirModule module = BuildAsmViolationModule();
  AtomicCheckOptions options;
  options.permit_analyzable_asm = true;
  const PropagationResult result = PropagateQualifiers(module, {0}, options);
  EXPECT_EQ(result.hard_errors.size(), 1u);
}

}  // namespace
}  // namespace mvee
