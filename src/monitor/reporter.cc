#include "mvee/monitor/reporter.h"

#include <chrono>

#include "mvee/util/log.h"

namespace mvee {

namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

void DivergenceReporter::ConfigurePolicy(VariantFailurePolicy policy,
                                         uint32_t min_survivors, uint32_t num_variants) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
  min_survivors_ = min_survivors;
  live_mask_.store(num_variants >= 32 ? ~0u : (1u << num_variants) - 1,
                   std::memory_order_seq_cst);
}

void DivergenceReporter::AddShutdownHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (hooks_run_) {
    hook();  // Late registration after a trip: run immediately.
    return;
  }
  hooks_.push_back(std::move(hook));
}

void DivergenceReporter::AddExcisionHook(std::function<void(uint32_t)> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  excision_hooks_.push_back(std::move(hook));
}

void DivergenceReporter::Report(StatusCode code, const std::string& detail) {
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!have_status_) {
      first_status_ = Status(code, detail);
      have_status_ = true;
      MVEE_LOG(kWarn) << "MVEE shutdown: " << first_status_.ToString();
    }
    tripped_.store(true, std::memory_order_release);
    if (!hooks_run_) {
      hooks_run_ = true;
      to_run.swap(hooks_);
    }
  }
  for (auto& hook : to_run) {
    hook();
  }
}

bool DivergenceReporter::ReportVariantFailure(uint32_t variant, StatusCode code,
                                              const std::string& detail, uint64_t round) {
  const uint32_t bit = 1u << variant;
  std::vector<std::function<void(uint32_t)>> hooks;
  bool excised = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tripped_.load(std::memory_order_acquire)) {
      return false;
    }
    const uint32_t live = live_mask_.load(std::memory_order_relaxed);
    if ((live & bit) == 0) {
      return true;  // Lost a race to another reporter of the same variant.
    }
    const uint32_t survivors = static_cast<uint32_t>(std::popcount(live)) - 1;
    excised = policy_ == VariantFailurePolicy::kExcise && variant != 0 &&
              survivors >= min_survivors_;
    if (excised) {
      excisions_.push_back(ExcisionRecord{variant, code, detail, round});
      excision_count_.fetch_add(1, std::memory_order_relaxed);
      // Linearization point of the excision: seq_cst pairs with the
      // syscall-entry dead checks (docs/DESIGN.md §9).
      live_mask_.store(live & ~bit, std::memory_order_seq_cst);
      excision_probe_ns_.store(MonotonicNowNs(), std::memory_order_relaxed);
      MVEE_LOG(kWarn) << "MVEE excision: variant " << variant << " left at round "
                      << round << ": " << Status(code, detail).ToString();
      hooks = excision_hooks_;
    }
  }
  if (!excised) {
    // Policy (or the min_survivors floor, or master failure) demands the
    // classic whole-MVEE shutdown; escalate outside the lock.
    Report(code,
           "variant " + std::to_string(variant) + " failed (not excisable): " + detail);
    return false;
  }
  for (auto& hook : hooks) {
    hook(variant);
  }
  return true;
}

std::vector<ExcisionRecord> DivergenceReporter::excisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return excisions_;
}

void DivergenceReporter::CompleteExcisionProbe() {
  const uint64_t stamp = excision_probe_ns_.exchange(0, std::memory_order_relaxed);
  if (stamp == 0) {
    return;
  }
  const uint64_t now = MonotonicNowNs();
  const uint64_t latency = now > stamp ? now - stamp : 0;
  uint64_t current = max_excision_latency_ns_.load(std::memory_order_relaxed);
  while (latency > current && !max_excision_latency_ns_.compare_exchange_weak(
                                  current, latency, std::memory_order_relaxed)) {
  }
}

Status DivergenceReporter::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return have_status_ ? first_status_ : Status::Ok();
}

}  // namespace mvee
