// Thrown inside variant threads when the MVEE shuts the variants down
// (divergence detected or replay stall). The variant thread runner catches it
// and unwinds the thread; this mirrors the monitor killing the variant
// processes in the real ReMon.

#ifndef MVEE_UTIL_VARIANT_KILLED_H_
#define MVEE_UTIL_VARIANT_KILLED_H_

#include <exception>

namespace mvee {

struct VariantKilled {};

// True while the current thread is already unwinding (usually from a
// VariantKilled). Teardown-sensitive code (agents, traps) must not throw a
// second exception from a destructor-driven call in that state.
inline bool AlreadyUnwinding() { return std::uncaught_exceptions() > 0; }

}  // namespace mvee

#endif  // MVEE_UTIL_VARIANT_KILLED_H_
