// Property-style sweeps (parameterized gtest) over the configuration spaces
// of the replication agents, the analysis pipeline, and the virtual kernel.
//
// These are the invariants docs/DESIGN.md §5 commits to:
//   P1  replay correctness: for every agent kind, variant count, thread
//       count and buffer size, every slave reproduces the master's per-
//       variable sync-op order;
//   P2  WoC wall-size independence: any clock_count >= 1 is correct
//       (collisions only serialize, §4.5);
//   P3  analysis exactness on generated ground truth, for any seed;
//   P4  kernel determinism: equal seeds + equal request streams => equal
//       results;
//   P5  digest sensitivity: every compared field perturbs the digest, and
//       only compared fields do.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "mvee/agents/agent_fleet.h"
#include "mvee/agents/context.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/rng.h"
#include "mvee/util/variant_killed.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {
namespace {

// --- P1 / P2: agent replay matrix ---

struct AgentMatrixParam {
  AgentKind kind;
  uint32_t variants;
  uint32_t threads;
  size_t buffer_capacity;
  size_t clock_count;
  size_t po_window = 1 << 12;
};

std::string ParamName(const ::testing::TestParamInfo<AgentMatrixParam>& info) {
  const auto& p = info.param;
  std::string name = AgentKindName(p.kind);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_v" + std::to_string(p.variants) + "_t" + std::to_string(p.threads) + "_b" +
         std::to_string(p.buffer_capacity) + "_c" + std::to_string(p.clock_count) + "_w" +
         std::to_string(p.po_window);
}

class AgentMatrixTest : public ::testing::TestWithParam<AgentMatrixParam> {};

TEST_P(AgentMatrixTest, ReplayPreservesPerLockOrder) {
  const AgentMatrixParam& param = GetParam();
  AgentConfig config;
  config.num_variants = param.variants;
  config.max_threads = param.threads;
  config.buffer_capacity = param.buffer_capacity;
  config.clock_count = param.clock_count;
  config.po_window = param.po_window;
  config.replay_deadline = std::chrono::milliseconds(30000);
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(param.kind, config, control);

  constexpr size_t kLocks = 5;
  constexpr int kOps = 60;
  struct VariantState {
    explicit VariantState(size_t n) : locks(n), logs(n) {}
    std::vector<SpinLock> locks;
    std::vector<std::vector<uint32_t>> logs;
  };
  std::vector<std::unique_ptr<VariantState>> states;
  std::vector<std::unique_ptr<SyncAgent>> agents;
  for (uint32_t v = 0; v < param.variants; ++v) {
    states.push_back(std::make_unique<VariantState>(kLocks));
    agents.push_back(fleet.CreateAgent(v));
  }

  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  for (uint32_t v = 0; v < param.variants; ++v) {
    for (uint32_t t = 0; t < param.threads; ++t) {
      workers.emplace_back([&, v, t] {
        SyncContext context{agents[v].get(), nullptr, t};
        ScopedSyncContext scoped(&context);
        Rng rng(7'000 + t);
        try {
          for (int i = 0; i < kOps; ++i) {
            const size_t lock = rng.NextBelow(kLocks);
            states[v]->locks[lock].Lock();
            states[v]->logs[lock].push_back(t);
            states[v]->locks[lock].Unlock();
          }
        } catch (const VariantKilled&) {
          failed.store(true);
        }
      });
    }
  }
  for (auto& worker : workers) {
    worker.join();
  }
  ASSERT_FALSE(failed.load());
  for (uint32_t v = 1; v < param.variants; ++v) {
    for (size_t lock = 0; lock < kLocks; ++lock) {
      EXPECT_EQ(states[0]->logs[lock], states[v]->logs[lock])
          << "variant " << v << " lock " << lock;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AgentMatrixTest,
    ::testing::Values(
        // P1: kind x variants x threads.
        AgentMatrixParam{AgentKind::kTotalOrder, 2, 2, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kTotalOrder, 3, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kTotalOrder, 4, 2, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPartialOrder, 2, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPartialOrder, 3, 2, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPartialOrder, 4, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kWallOfClocks, 2, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kWallOfClocks, 3, 3, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kWallOfClocks, 4, 4, 1 << 12, 64},
        // Tiny buffers: heavy producer backpressure, still correct.
        AgentMatrixParam{AgentKind::kTotalOrder, 2, 4, 16, 64},
        AgentMatrixParam{AgentKind::kPartialOrder, 2, 4, 16, 64},
        AgentMatrixParam{AgentKind::kWallOfClocks, 2, 4, 16, 64},
        // P2: degenerate and large clock walls (WoC only).
        AgentMatrixParam{AgentKind::kWallOfClocks, 2, 4, 1 << 12, 1},
        AgentMatrixParam{AgentKind::kWallOfClocks, 2, 4, 1 << 12, 2},
        AgentMatrixParam{AgentKind::kWallOfClocks, 2, 4, 1 << 12, 65536},
        AgentMatrixParam{AgentKind::kWallOfClocks, 3, 4, 1 << 12, 7},
        // Per-variable-order ablation agent: same contract as the others,
        // including under a deliberately tiny table (clock_count 1 => the
        // address table saturates and falls back to hashed sharing).
        AgentMatrixParam{AgentKind::kPerVariableOrder, 2, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPerVariableOrder, 3, 3, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPerVariableOrder, 4, 4, 1 << 12, 64},
        AgentMatrixParam{AgentKind::kPerVariableOrder, 2, 4, 16, 64},
        AgentMatrixParam{AgentKind::kPerVariableOrder, 2, 4, 1 << 12, 1},
        // Partial-order lookahead windows from degenerate (1 = TO-like) to
        // tiny: correctness must hold at any window size.
        AgentMatrixParam{AgentKind::kPartialOrder, 2, 4, 1 << 12, 64, 1},
        AgentMatrixParam{AgentKind::kPartialOrder, 2, 4, 1 << 12, 64, 2},
        AgentMatrixParam{AgentKind::kPartialOrder, 3, 4, 1 << 12, 64, 8},
        AgentMatrixParam{AgentKind::kPartialOrder, 4, 2, 1 << 12, 64, 16}),
    ParamName);

// --- P3: analysis exactness on generated ground truth ---

class AnalysisSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisSeedTest, IdentificationExactForAnySeed) {
  CorpusSpec spec{"random_module", 37, 11, 23, 150, 60};
  const MirModule module = BuildSyntheticModule(spec, /*seed=*/GetParam());
  for (auto identify : {IdentifySyncOps, IdentifySyncOpsAndersen}) {
    const SyncOpReport report = identify(module, {});
    EXPECT_EQ(report.type_i.size(), spec.type_i);
    EXPECT_EQ(report.type_ii.size(), spec.type_ii);
    EXPECT_EQ(report.type_iii.size(), spec.type_iii);   // Soundness.
    EXPECT_EQ(report.unmarked_memops, spec.noise_memops);  // Precision.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisSeedTest,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999, 0xdeadbeef));

// --- P4: kernel determinism ---

TEST(KernelDeterminismTest, EqualSeedsEqualResults) {
  auto run_script = [](uint64_t seed) {
    VirtualKernel kernel(seed);
    ProcessState process(1, 0x10000, 0x100000);
    std::vector<int64_t> results;
    Rng rng(555);
    for (int i = 0; i < 200; ++i) {
      SyscallRequest request;
      switch (rng.NextBelow(5)) {
        case 0: {
          request.sysno = Sysno::kOpen;
          request.path = "f" + std::to_string(rng.NextBelow(8));
          request.arg0 = VOpenFlags::kCreate | VOpenFlags::kWrite;
          break;
        }
        case 1: {
          request.sysno = Sysno::kClose;
          request.arg0 = static_cast<int64_t>(rng.NextBelow(12));
          break;
        }
        case 2: {
          request.sysno = Sysno::kBrk;
          request.arg0 = static_cast<int64_t>(rng.NextBelow(3)) * 4096;
          break;
        }
        case 3: {
          request.sysno = Sysno::kMmap;
          request.arg0 = 4096;
          request.arg1 = VProt::kRead;
          break;
        }
        default: {
          request.sysno = Sysno::kStat;
          request.path = "f" + std::to_string(rng.NextBelow(8));
          break;
        }
      }
      results.push_back(kernel.Execute(process, request).retval);
    }
    return results;
  };
  EXPECT_EQ(run_script(7), run_script(7));
}

// --- P5: digest sensitivity ---

TEST(DigestPropertyTest, EveryComparedFieldPerturbs) {
  SyscallRequest base;
  base.sysno = Sysno::kWrite;
  base.arg0 = 3;
  base.arg1 = 5;
  base.arg2 = 7;
  base.arg3 = 9;
  base.path = "p";
  base.logical_addr = 0x100;
  const uint64_t digest = base.ComparableDigest();

  {
    SyscallRequest x = base;
    x.sysno = Sysno::kRead;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.arg0 = 4;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.arg1 = 6;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.arg2 = 8;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.arg3 = 10;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.path = "q";
    EXPECT_NE(x.ComparableDigest(), digest);
  }
  {
    SyscallRequest x = base;
    x.logical_addr = 0x101;
    EXPECT_NE(x.ComparableDigest(), digest);
  }
}

TEST(DigestPropertyTest, UncomparedFieldsDoNotPerturb) {
  SyscallRequest base;
  base.sysno = Sysno::kFutex;
  base.arg0 = FutexOp::kWait;
  base.arg1 = 2;
  const uint64_t digest = base.ComparableDigest();

  SyscallRequest x = base;
  x.local_addr = 0xdeadbeef;  // Raw per-variant address: excluded.
  std::atomic<int32_t> word{2};
  x.futex_word = &word;  // Pointer operand: excluded.
  EXPECT_EQ(x.ComparableDigest(), digest);
}

TEST(DigestPropertyTest, OutBufferContentIrrelevantSizeCompared) {
  std::vector<uint8_t> buffer_a(64, 0xAA);
  std::vector<uint8_t> buffer_b(64, 0xBB);
  SyscallRequest a;
  a.sysno = Sysno::kRead;
  a.arg0 = 3;
  a.arg1 = 64;
  a.out_data = buffer_a;
  SyscallRequest b = a;
  b.out_data = buffer_b;
  // Output buffers are written by the kernel, not the variant: their
  // *content* must not affect comparison (sizes travel in arg1).
  EXPECT_EQ(a.ComparableDigest(), b.ComparableDigest());
}

}  // namespace
}  // namespace mvee
