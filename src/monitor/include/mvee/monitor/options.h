// MVEE configuration.

#ifndef MVEE_MONITOR_OPTIONS_H_
#define MVEE_MONITOR_OPTIONS_H_

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "mvee/agents/sync_agent.h"
#include "mvee/agents/variable_map.h"
#include "mvee/monitor/reporter.h"
#include "mvee/vkernel/vkernel_config.h"

namespace mvee {

// Default for MveeOptions::fault_plan: the MVEE_FAULT_PLAN environment
// string (docs/fault_injection.md), empty = no faults armed.
inline std::string DefaultFaultPlan() {
  const char* env = std::getenv("MVEE_FAULT_PLAN");
  return env != nullptr ? std::string(env) : std::string();
}

// Default for MveeOptions::waitfree_rendezvous: on, unless the environment
// forces the mutex baseline (MVEE_WAITFREE_RENDEZVOUS=0). The override lets
// the entire existing test suite run under either protocol without edits
// (`MVEE_WAITFREE_RENDEZVOUS=0 ctest`); explicit assignments in code always
// win.
inline bool DefaultWaitfreeRendezvous() {
  const char* env = std::getenv("MVEE_WAITFREE_RENDEZVOUS");
  return env == nullptr || env[0] != '0';
}

// Which system calls the monitor compares in lockstep across variants
// (paper §5.1 tested "a variety of monitoring policies ranging from strict
// lockstepping on all system calls to lockstepping only on security-
// sensitive system calls").
enum class MonitorPolicy : uint8_t {
  kLockstepAll = 0,        // Compare every call.
  kLockstepSensitive,      // Compare only security-sensitive calls.
};

// Variant synchronization model (paper §2 "The variant synchronization
// model is a key differentiator among MVEEs"):
//  - kLockstep: security-oriented; no variant proceeds past a monitored call
//    until all variants made an equivalent call (ReMon/GHUMVEE).
//  - kLoose: reliability-oriented (VARAN-style, §6): the leader runs ahead
//    and deposits syscall records in a ring buffer; followers consume and
//    verify asynchronously. Divergence detection is delayed by the buffer
//    depth — the security/latency trade-off the paper describes.
enum class SyncModel : uint8_t {
  kLockstep = 0,
  kLoose,
};

struct MveeOptions {
  // Number of variants (master + slaves). The paper evaluates 2-4.
  uint32_t num_variants = 2;
  // Replication strategy for sync ops.
  AgentKind agent = AgentKind::kWallOfClocks;
  // Comparison policy.
  MonitorPolicy policy = MonitorPolicy::kLockstepAll;
  // Synchronization model (lockstep = paper's security model).
  SyncModel sync_model = SyncModel::kLockstep;
  // Ring depth per thread set in kLoose mode (how far the leader may run
  // ahead of the slowest follower).
  size_t loose_buffer_depth = 256;
  // Simulated disjoint code layouts (§5.1 correctness runs use DCL): each
  // variant's address ranges are made mutually non-overlapping.
  bool enable_dcl = false;
  // Simulated ASLR: per-variant randomized heap/map bases.
  bool enable_aslr = true;
  // Enforce the syscall ordering clock on shared-resource calls (§4.1).
  // Disabling reproduces the benign-divergence failure mode of §3.1.
  bool order_resource_calls = true;
  // Shard the ordering clock into per-resource domains (per-fd for
  // descriptor-scoped ops, process-wide only for fd-namespace / memory /
  // clone traffic) instead of one global critical section + one replay clock
  // per variant (docs/syscall_ordering.md). Disabling restores the
  // global-clock baseline so both modes are measurable in one run —
  // mirroring AgentConfig::cached_ring_cursors.
  bool sharded_order_domains = true;
  // Lockstep rendezvous protocol: epoch-numbered round slabs advanced by
  // atomic arrivals, release/acquire handoffs, and spin-then-park waits
  // (docs/DESIGN.md §6) instead of the mutex/condvar round. Disabling
  // restores the mutex baseline so both protocols are measurable in one
  // process — mirroring sharded_order_domains / cached_ring_cursors.
  // Default on; MVEE_WAITFREE_RENDEZVOUS=0 in the environment flips the
  // default so whole test suites can sweep the baseline.
  bool waitfree_rendezvous = DefaultWaitfreeRendezvous();
  // Virtual-kernel concurrency mode (docs/DESIGN.md §7): striped VFS with a
  // per-thread handle cache, lock-free generation-tagged fd lookups, hashed
  // futex shards with intrusive wait queues, per-thread-set getrandom RNG
  // streams, and wait-queue-driven poll/accept. Disabling restores the
  // seed's global-mutex kernel (and its 200us poll quantum) so both modes
  // are measurable in one process — mirroring waitfree_rendezvous /
  // sharded_order_domains. Default on; MVEE_SHARDED_VKERNEL=0 in the
  // environment flips the default so whole test suites can sweep the
  // baseline.
  bool sharded_vkernel = DefaultShardedVkernel();
  // Seed for diversity and kernel randomness.
  uint64_t seed = 0x5eedULL;
  // Lockstep rendezvous deadline; exceeded => divergence (variants made
  // different numbers/kinds of calls, e.g. uninstrumented sync ops, §5.5).
  std::chrono::milliseconds rendezvous_timeout{10000};
  // Failure-handling policy (docs/DESIGN.md §9). kShutdown is the paper's
  // security posture: any variant failure terminates the MVEE. kExcise is
  // the reliability mode: the failed variant is removed and the survivors
  // keep serving, as long as at least min_survivors variants remain.
  VariantFailurePolicy on_variant_failure = VariantFailurePolicy::kShutdown;
  // Excision floor: below this many survivors, security demands shutdown
  // (a 1-variant "MVEE" compares nothing).
  uint32_t min_survivors = 2;
  // Blocked-call watchdog deadline (docs/DESIGN.md §9): a monitor-side sweep
  // that generalizes rendezvous_timeout to vkernel blocking calls (futex
  // wait, accept, poll park). A call stuck past the deadline is logged with
  // a round-state dump; past 1.5x it gets a non-destructive nudge (spurious
  // futex/wait-queue wakeups, abandoned-lease release); past 2x the laggard
  // is excised (policy permitting) or the MVEE shuts down. Zero disables
  // the watchdog (restoring the old hang-forever behavior).
  std::chrono::milliseconds blocked_call_timeout{10000};
  // Deterministic fault plan (docs/fault_injection.md), e.g.
  // "crash@2:5;stall@*:3:250". Empty = nothing armed; the disarmed
  // injection sites cost one relaxed load each.
  std::string fault_plan = DefaultFaultPlan();
  // Agent tuning.
  AgentConfig agent_config;
  // Static per-variable agent seeding (docs/DESIGN.md §11): routes derived
  // by the analysis layer (DeriveAssignmentPlan) or written by hand. Only
  // consulted when agent_config.adaptive_agents is on; variables the plan
  // does not name (and all unbound addresses) ride the default route =
  // `agent`.
  AgentAssignmentPlan agent_plan;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_OPTIONS_H_
