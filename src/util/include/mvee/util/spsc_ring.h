// Single-producer / single-consumer lock-free ring buffer.
//
// This is the data structure behind the wall-of-clocks agent's per-thread
// sync buffers (paper §4.5: "there is one sync buffer per master thread, such
// that each buffer has only one producer"). The producer is a master-variant
// thread; each consumer is the corresponding thread of one slave variant.
//
// To support N slave variants reading the same stream, the buffer keeps an
// independent read cursor per consumer; an element is logically retired only
// when all consumers have passed it, which bounds producer progress to
// capacity ahead of the slowest consumer.
//
// Cursor caching (LMAX-Disruptor-style gating sequences): in steady state the
// producer gates on a *cached* minimum read cursor and recomputes the real
// minimum only when the ring appears full, and each consumer gates on a
// *cached* copy of the write cursor refreshed only when the ring appears
// empty. Both caches are monotonic lower bounds of the authoritative
// cursors, so a stale cache can delay progress by at most one refresh but can
// never admit an overwrite (producer side) or a premature read (consumer
// side). The result is that Push/Peek/Pop/Advance touch no remote cache
// lines in steady state — the cross-core read-write sharing the paper blames
// for the simple agents' slowdowns (§4.5) is confined to the empty/full
// edges. `EnableCursorCaching(false)` restores the rescan-every-op behavior
// (bench_ring_throughput measures both in one run).

#ifndef MVEE_UTIL_SPSC_RING_H_
#define MVEE_UTIL_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mvee/util/spin.h"

namespace mvee {

// Fixed-capacity broadcast ring. One producer, up to `kMaxConsumers`
// registered consumers, each with a private cursor. All memory is allocated
// up front (agents must not allocate dynamically, paper §3.3).
template <typename T>
class BroadcastRing {
 public:
  static constexpr size_t kMaxConsumers = 15;

  // `capacity` must be a power of two.
  explicit BroadcastRing(size_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  BroadcastRing(const BroadcastRing&) = delete;
  BroadcastRing& operator=(const BroadcastRing&) = delete;

  size_t capacity() const { return capacity_; }

  // Registers a consumer and returns its id. Must happen before production
  // starts. Not thread-safe (bootstrap-time only).
  size_t RegisterConsumer() {
    assert(consumer_count_ < kMaxConsumers);
    return consumer_count_++;
  }

  size_t consumer_count() const { return consumer_count_; }

  // Bootstrap/bench toggle: when disabled, every operation consults the
  // authoritative cursors (the pre-Disruptor behavior). Not thread-safe; flip
  // only before production starts.
  void EnableCursorCaching(bool enabled) { cursor_caching_ = enabled; }
  bool cursor_caching() const { return cursor_caching_; }

  // Producer side: blocks (spin-waits) until a slot is free, then publishes.
  // Returns the sequence number of the published element.
  uint64_t Push(const T& value) {
    const uint64_t seq = write_cursor_.load(std::memory_order_relaxed);
    SpinWait waiter;
    while (!HasSpace(seq)) {
      waiter.Pause();
    }
    slots_[seq & mask_] = value;
    write_cursor_.store(seq + 1, std::memory_order_release);
    return seq;
  }

  // Producer side: true if the next Push/TryPush would succeed. Lets a
  // producer that stores its element out-of-band (e.g. the monitor's pooled
  // loose records, which live in a slot array indexed by sequence) verify the
  // slot has been retired by every consumer BEFORE overwriting it.
  bool CanPush() { return HasSpace(write_cursor_.load(std::memory_order_relaxed)); }

  // Producer side, non-blocking. Returns false if the ring is full.
  bool TryPush(const T& value) {
    const uint64_t seq = write_cursor_.load(std::memory_order_relaxed);
    if (!HasSpace(seq)) {
      return false;
    }
    slots_[seq & mask_] = value;
    write_cursor_.store(seq + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: true if an element is available for `consumer`.
  bool CanPop(size_t consumer) const {
    const uint64_t read = cursors_[consumer].read.load(std::memory_order_relaxed);
    return read < VisibleWriteCursor(consumer, read);
  }

  // Consumer side: spin-waits for the next element and returns a copy.
  T Pop(size_t consumer) {
    auto& cursor = cursors_[consumer];
    const uint64_t read = cursor.read.load(std::memory_order_relaxed);
    SpinWait waiter;
    while (read >= VisibleWriteCursor(consumer, read)) {
      waiter.Pause();
    }
    T value = slots_[read & mask_];
    cursor.read.store(read + 1, std::memory_order_release);
    return value;
  }

  // Consumer side: peeks at the element `offset` ahead of the cursor without
  // consuming. Returns false if not yet produced. Used by the partial-order
  // agent's lookahead window.
  bool Peek(size_t consumer, uint64_t offset, T* out) const {
    const uint64_t read = cursors_[consumer].read.load(std::memory_order_relaxed);
    const uint64_t want = read + offset;
    if (want >= VisibleWriteCursor(consumer, want)) {
      return false;
    }
    *out = slots_[want & mask_];
    return true;
  }

  // Consumer side: advances the cursor by one (after a successful Peek(0)).
  // Single-advancer per consumer id: the load+store pair is not atomic.
  void Advance(size_t consumer) {
    auto& cursor = cursors_[consumer].read;
    cursor.store(cursor.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  // Consumer side: advances the cursor to `seq` (monotonic CAS-max). Safe
  // under concurrent advancers, unlike Advance: racing retirers (the
  // partial-order agent's lock-free retire loop) may publish their advances
  // out of order, and the max-CAS keeps the cursor monotonic either way.
  void AdvanceTo(size_t consumer, uint64_t seq) {
    auto& cursor = cursors_[consumer].read;
    uint64_t current = cursor.load(std::memory_order_relaxed);
    while (current < seq &&
           !cursor.compare_exchange_weak(current, seq, std::memory_order_release,
                                         std::memory_order_relaxed)) {
    }
  }

  // Reads the element at absolute sequence `seq` if it has been produced.
  // The caller must guarantee `seq` has not been retired (i.e. seq >= the
  // minimum consumer cursor); within that window slots are stable.
  bool TryRead(uint64_t seq, T* out) const {
    if (seq >= write_cursor_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = slots_[seq & mask_];
    return true;
  }

  // As above, but gates through `consumer`'s cached write cursor so a hit
  // stays on the consumer's own cache line. Same retirement caveat; used by
  // the partial-order agent's window scans.
  bool TryRead(size_t consumer, uint64_t seq, T* out) const {
    if (seq >= VisibleWriteCursor(consumer, seq)) {
      return false;
    }
    *out = slots_[seq & mask_];
    return true;
  }

  // Sequence of the next element `consumer` would pop.
  uint64_t ReadCursor(size_t consumer) const {
    return cursors_[consumer].read.load(std::memory_order_relaxed);
  }

  // Excision support (docs/DESIGN.md §9): marks `consumer` detached so the
  // producer gate skips its cursor — a dead variant stops back-pressuring
  // the ring. An explicit flag rather than a cursor sentinel: the dead
  // variant's threads may still execute a straggling Advance (a plain
  // load+store), which would clobber any sentinel value. Their reads stay
  // memory-safe (slots_ is a fixed array) but may observe recycled slots;
  // by the time a variant is detached its threads are unwinding and no
  // longer act on ring contents.
  void DetachConsumer(size_t consumer) {
    cursors_[consumer].detached.store(true, std::memory_order_release);
  }

  bool ConsumerDetached(size_t consumer) const {
    return cursors_[consumer].detached.load(std::memory_order_acquire);
  }

  // Sequence of the next element the producer will publish.
  uint64_t WriteCursor() const { return write_cursor_.load(std::memory_order_acquire); }

 private:
  // One line per consumer: `read` is written by the consumer and read by the
  // producer (only on gate refresh); `cached_write` is the consumer's private
  // lower bound of the producer's write cursor. Threads of one slave variant
  // may share a consumer id, so the cache is an atomic: the release-store on
  // refresh hands the producer's publications to sibling threads that later
  // acquire-load the cached value.
  struct alignas(64) ConsumerCursor {
    std::atomic<uint64_t> read{0};
    mutable std::atomic<uint64_t> cached_write{0};
    // Set when the owning variant was excised; MinReadCursor ignores the
    // cursor from then on.
    std::atomic<bool> detached{false};
  };

  // Producer gate: true if slot `seq` can be written without clobbering an
  // unconsumed element. Consumer cursors only move forward, so the cached
  // bound is conservative and a pass against it is always safe; only an
  // apparent full ring forces the remote rescan. (`free_until_` cannot
  // overflow: sequences are monotonic 64-bit counts.)
  bool HasSpace(uint64_t seq) {
    if (cursor_caching_ && seq < free_until_) [[likely]] {
      return true;
    }
    free_until_ = MinReadCursor() + capacity_;
    return seq < free_until_;
  }

  // First sequence not yet visible to `consumer`; refreshes the consumer's
  // cached write cursor only when `want` appears unavailable. The refresh
  // store is skipped when nothing changed, so a consumer spinning on an
  // empty ring keeps its cursor line clean (sibling threads sharing the
  // consumer id would otherwise invalidate each other every iteration).
  uint64_t VisibleWriteCursor(size_t consumer, uint64_t want) const {
    const ConsumerCursor& cursor = cursors_[consumer];
    if (cursor_caching_) [[likely]] {
      const uint64_t cached = cursor.cached_write.load(std::memory_order_acquire);
      if (want < cached) [[likely]] {
        return cached;
      }
      const uint64_t fresh = write_cursor_.load(std::memory_order_acquire);
      if (fresh != cached) {
        cursor.cached_write.store(fresh, std::memory_order_release);
      }
      return fresh;
    }
    return write_cursor_.load(std::memory_order_acquire);
  }

  uint64_t MinReadCursor() const {
    if (consumer_count_ == 0) {
      // No consumers registered: recording-only mode (e.g. benchmarking the
      // producer path); retire immediately.
      return write_cursor_.load(std::memory_order_relaxed);
    }
    uint64_t min = UINT64_MAX;
    bool any_attached = false;
    for (size_t i = 0; i < consumer_count_; ++i) {
      if (cursors_[i].detached.load(std::memory_order_acquire)) {
        continue;  // Excised variant: its stalled cursor must not gate pushes.
      }
      any_attached = true;
      const uint64_t cursor = cursors_[i].read.load(std::memory_order_acquire);
      if (cursor < min) {
        min = cursor;
      }
    }
    if (!any_attached) {
      return write_cursor_.load(std::memory_order_relaxed);
    }
    return min;
  }

  const size_t capacity_;
  const uint64_t mask_;
  std::vector<T> slots_;
  // Producer-owned line: the write cursor plus the cached gate (touched only
  // by the producer, so a plain field).
  alignas(64) std::atomic<uint64_t> write_cursor_{0};
  uint64_t free_until_ = 0;  // first sequence the cached gate would reject
  ConsumerCursor cursors_[kMaxConsumers];
  size_t consumer_count_ = 0;
  bool cursor_caching_ = true;
};

// Deterministic merge over per-thread ticketed rings — the REFERENCE MODEL
// of the sharded recording protocol (docs/DESIGN.md §8), exercised by
// util_test. The production agents specialize it rather than call it: the
// TO slave distributes TryPopNext into own-ring fronts plus a next_seq
// ratchet, and the PO slave replaces AnyUnconsumedBelow with recorded
// (prev_tid, prev_seq) edges checked against per-thread consumed
// watermarks (cross-thread slot reads race slot recycling — see
// partial_order.h). Keep this class in sync with docs/DESIGN.md §8 when the
// protocol changes.
//
// The sharded TO/PO masters record into one ring per master thread; every
// entry carries a global sequence number drawn from a single fetch_add
// ticket counter, so the union of the rings is a dense sequence 0,1,2,...
// Slaves reconstruct the recorded order by merging the rings on those
// sequences. Two properties make the merge cheap:
//   - within one ring, sequences are strictly increasing (one master thread
//     drew its tickets in program order), so per-ring scans stop at the
//     first too-large sequence;
//   - the globally-next sequence is always at some ring's front, so the
//     strict merge never looks past the fronts.
// `seq_of` extracts the sequence from an entry. Single merging thread per
// consumer id; concurrent use against rings whose cursors other threads
// advance inherits the recycling caveat above.
template <typename T>
class TicketedRingMerge {
 public:
  TicketedRingMerge(BroadcastRing<T>* const* rings, size_t ring_count, size_t consumer)
      : rings_(rings), ring_count_(ring_count), consumer_(consumer) {}

  // Strict merge step: pops the entry with global sequence `seq` if it has
  // been published (it can only be at a ring front — sequences are dense and
  // every smaller one has been popped). Returns false when the producing
  // thread has not pushed it yet. Single merging thread per consumer id.
  template <typename SeqFn>
  bool TryPopNext(uint64_t seq, SeqFn&& seq_of, T* out) {
    for (size_t r = 0; r < ring_count_; ++r) {
      T front;
      if (rings_[r]->Peek(consumer_, 0, &front) && seq_of(front) == seq) {
        rings_[r]->Advance(consumer_);
        *out = front;
        return true;
      }
    }
    return false;
  }

  // Dependence scan (the partial-order slave's lookahead): true if any
  // unconsumed entry with sequence < `limit` matches `pred`. Entries below a
  // ring's cursor have been replayed; entries at/after it have not. May
  // report a spurious match if a cursor advances mid-scan (the slot being
  // read was retired); callers poll, so the stale answer washes out on the
  // next pass.
  template <typename SeqFn, typename PredFn>
  bool AnyUnconsumedBelow(uint64_t limit, SeqFn&& seq_of, PredFn&& pred) const {
    for (size_t r = 0; r < ring_count_; ++r) {
      const BroadcastRing<T>& ring = *rings_[r];
      for (uint64_t index = ring.ReadCursor(consumer_);; ++index) {
        T entry;
        if (!ring.TryRead(consumer_, index, &entry)) {
          break;  // Nothing more published in this ring.
        }
        if (seq_of(entry) >= limit) {
          break;  // Sequences in one ring only grow.
        }
        if (pred(entry)) {
          return true;
        }
      }
    }
    return false;
  }

 private:
  BroadcastRing<T>* const* rings_;
  size_t ring_count_;
  size_t consumer_;
};

}  // namespace mvee

#endif  // MVEE_UTIL_SPSC_RING_H_
