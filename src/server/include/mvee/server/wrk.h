// wrk-style load generators and attack client (paper §5.5).
//
// Clients are *outside* the MVEE — they model the separate client machine of
// the paper's evaluation — so they talk to the virtual network directly
// rather than through a monitored variant. Two load shapes:
//
//   * RunWrk: the seed's closed-loop client — each request opens a fresh
//     connection and the next request waits for the previous response.
//     Throughput measures the server's per-connection cost.
//   * RunWrkOpenLoop: arrival-rate-driven — connection i arrives at
//     start + i/rate whether or not earlier responses came back, sustains
//     thousands of in-flight keep-alive connections, and records latency
//     from the *intended* send time into a log-bucketed histogram, so
//     percentiles are free of coordinated omission.

#ifndef MVEE_SERVER_WRK_H_
#define MVEE_SERVER_WRK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mvee/util/histogram.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {

// --- Shared HTTP/1.x response parsing ---------------------------------------

struct HttpResponse {
  int status = 0;
  uint64_t request_id = 0;     // X-Request-Id header; 0 when absent.
  size_t content_length = 0;
  size_t total_bytes = 0;      // Bytes this response consumed from the buffer.
  std::string body;

  bool ok() const { return status >= 200 && status < 300; }
};

enum class HttpParseStatus {
  kNeedMore,   // Buffer holds only a prefix of the response.
  kComplete,   // `out` is filled; erase total_bytes from the buffer front.
  kMalformed,  // Not an HTTP/1.x status line + headers.
};

// Incremental parser over the front of `buffer`: status line, headers
// (Content-Length framing, X-Request-Id extraction), body. Keep-alive safe —
// trailing bytes of a pipelined follow-up response are left untouched.
HttpParseStatus TryParseHttpResponse(std::string_view buffer, HttpResponse* out);

// --- Closed-loop client (seed-compatible) -----------------------------------

struct WrkOptions {
  uint16_t port = 8080;
  uint32_t connections = 10;        // Parallel client threads (paper: 10).
  uint32_t requests_per_conn = 10;  // Sequential requests per thread.
  std::string path = "/index.html";
};

struct WrkResult {
  uint64_t requests_attempted = 0;
  uint64_t responses_ok = 0;          // Parsed, status 2xx.
  uint64_t responses_non2xx = 0;      // Parsed, status outside 2xx.
  uint64_t responses_truncated = 0;   // Connection died before a full response.
  uint64_t bytes_received = 0;
  double seconds = 0.0;

  double RequestsPerSecond() const {
    return seconds > 0 ? static_cast<double>(responses_ok) / seconds : 0.0;
  }
};

// Generates load against the server listening on `options.port` inside
// `kernel`'s virtual network. Blocks until all requests completed or failed.
WrkResult RunWrk(VirtualKernel& kernel, const WrkOptions& options);

// --- Open-loop load generator -----------------------------------------------

struct OpenLoopOptions {
  uint16_t port = 8080;
  uint32_t connections = 1000;     // Total connection arrivals over the run.
  uint32_t requests_per_conn = 2;  // Keep-alive requests per connection.
  uint32_t pipeline_depth = 1;     // Requests in flight per connection.
  double arrival_rate = 2000.0;    // Connection arrivals per second.
  uint32_t client_threads = 4;     // Arrival i is driven by thread i % threads.
  std::string path = "/index.html";
  bool collect_request_ids = false;  // Gather X-Request-Id of every 2xx.
};

struct OpenLoopResult {
  uint64_t connections_opened = 0;
  uint64_t connect_retries = 0;  // Refused connects (listener backlog full),
                                 // retried without moving the schedule.
  uint64_t requests_attempted = 0;
  uint64_t responses_ok = 0;
  uint64_t responses_non2xx = 0;
  uint64_t responses_truncated = 0;
  uint64_t bytes_received = 0;
  double seconds = 0.0;
  // Intended-send-to-response-complete, nanoseconds. The first request of a
  // connection is timed from the connection's *scheduled* arrival, so accept
  // and backlog queueing count against the server.
  LogHistogram latency_ns;
  std::vector<uint64_t> request_ids;  // When collect_request_ids.

  double RequestsPerSecond() const {
    return seconds > 0 ? static_cast<double>(responses_ok) / seconds : 0.0;
  }
  uint64_t PercentileNanos(double q) const { return latency_ns.ValueAtQuantile(q); }
};

// Open-loop run against the server on `options.port`. Blocks until every
// scheduled connection has been served (or observed to die).
OpenLoopResult RunWrkOpenLoop(VirtualKernel& kernel, const OpenLoopOptions& options);

// --- Attack client -----------------------------------------------------------

struct AttackResult {
  bool connected = false;
  bool secret_leaked = false;   // The hijack produced the secret.
  std::string response_body;
};

// Sends one CVE-2013-2028-style exploit tailored to a victim with mapping
// base `victim_map_base` (an attacker who leaked the master's layout).
AttackResult RunAttack(VirtualKernel& kernel, uint16_t port, uint64_t victim_map_base);

}  // namespace mvee

#endif  // MVEE_SERVER_WRK_H_
